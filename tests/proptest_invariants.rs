//! Property tests over the public API: kernel outputs must stay valid for
//! arbitrary seeds, and the model must respect its monotonicity laws.

use ninja_gap::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn any_seed_validates_every_kernel(seed in 0u64..1_000_000) {
        let pool = ThreadPool::with_threads(2);
        for spec in registry() {
            let mut instance = (spec.make)(ProblemSize::Test, seed);
            for v in [Variant::Algorithmic, Variant::Ninja] {
                prop_assert!(
                    instance.validate(v, &pool).is_ok(),
                    "{} {} seed {}", spec.name, v, seed
                );
            }
        }
    }

    // Differential rung-vs-rung check: every optimized rung of the ladder
    // must agree with the naive reference (within each kernel's documented
    // validation tolerance) for arbitrary seeds. Inputs are randomized via
    // the seed (every kernel derives its whole input from it); the size
    // stays at the `Test` preset because the larger presets take seconds
    // per variant, which proptest would multiply by cases x kernels x
    // rungs. The registry never contains the `chaos-*` fault-injection
    // kernels, so this property only exercises real kernels.
    #[test]
    fn every_rung_matches_naive_for_any_seed(seed in 0u64..1_000_000) {
        let pool = ThreadPool::with_threads(2);
        for spec in registry() {
            prop_assert!(
                !spec.name.starts_with("chaos"),
                "fault-injection kernel {} leaked into the registry", spec.name
            );
            let mut instance = (spec.make)(ProblemSize::Test, seed);
            for v in [Variant::Parallel, Variant::Simd, Variant::Algorithmic, Variant::Ninja] {
                prop_assert!(
                    instance.validate(v, &pool).is_ok(),
                    "{} {} diverged from naive at seed {}", spec.name, v, seed
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn model_gap_at_least_one(cores in 1u32..128, lanes_exp in 0u32..5) {
        let mut m = machines::westmere();
        m.cores = cores;
        m.simd_f32_lanes = 1 << lanes_exp;
        for spec in registry() {
            let gap = predicted_gap(&spec.character, &m);
            prop_assert!(gap >= 0.99, "{}: gap {gap}", spec.name);
            let residual = predicted_residual(&spec.character, &m);
            prop_assert!((0.99..10.0).contains(&residual), "{}: residual {residual}", spec.name);
        }
    }

    #[test]
    fn model_monotone_in_cores(cores in 1u32..64) {
        let mut small = machines::westmere();
        small.cores = cores;
        let mut big = small.clone();
        big.cores = cores * 2;
        for spec in registry() {
            let t_small = ninja_gap::model::time_per_elem(
                &spec.character, Variant::Ninja, &small);
            let t_big = ninja_gap::model::time_per_elem(
                &spec.character, Variant::Ninja, &big);
            prop_assert!(t_big <= t_small * 1.0001, "{}", spec.name);
        }
    }

    #[test]
    fn geomean_between_min_and_max(values in prop::collection::vec(0.1f64..100.0, 1..10)) {
        let g = ninja_gap::model::geomean(&values);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(0.0, f64::max);
        prop_assert!(g >= min * 0.999 && g <= max * 1.001);
    }
}
