//! Consistency between host measurements and the paper's claims, at sizes
//! big enough for timing to be meaningful.
//!
//! These tests use the `Quick` preset for a few strongly-vectorizable
//! kernels and assert *performance* relationships, which only hold with
//! optimized codegen — they are `#[ignore]`d in debug builds (run them
//! with `cargo test --release`).

use ninja_gap::prelude::*;

fn quick_report(names: &[&str]) -> ninja_gap::harness::SuiteReport {
    Harness::new()
        .size(ProblemSize::Quick)
        .repetitions(2)
        .run_kernels(names)
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "performance assertions require --release codegen"
)]
fn ninja_beats_naive_on_vector_friendly_kernels() {
    // On any x86-64 host the explicit-SIMD + algorithmic tiers must beat
    // the naive tier for the compute-bound, fully vectorizable kernels —
    // this is the measurable (single-core) slice of the Ninja gap.
    let suite = quick_report(&["conv1d", "blackscholes"]);
    for k in &suite.kernels {
        let gap = k.measured_gap().unwrap();
        assert!(gap > 1.2, "{}: measured gap only {gap:.2}X", k.kernel);
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "performance assertions require --release codegen"
)]
fn low_effort_tier_lands_near_ninja() {
    // The paper's core claim, measured: the algorithmic+compiler tier is
    // within a small factor of hand-written SIMD.
    let suite = quick_report(&["conv1d", "nbody"]);
    for k in &suite.kernels {
        let residual = k.measured_residual().unwrap();
        assert!(
            residual < 4.0,
            "{}: residual {residual:.2}X too large for a restructured kernel",
            k.kernel
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "performance assertions require --release codegen"
)]
fn model_and_measurement_agree_on_direction() {
    // Wherever the Westmere model predicts a benefit from the algorithmic
    // tier over naive (per core), the host should too (direction, not
    // magnitude — the host is a different microarchitecture).
    let suite = quick_report(&["blackscholes"]);
    let k = suite.kernel("blackscholes").unwrap();
    let measured = k.speedup_over_naive(Variant::Algorithmic).unwrap();
    assert!(
        measured > 1.0,
        "blackscholes low-effort tier should beat naive per core (got {measured:.2}X)"
    );
}
