//! Cross-crate integration: every kernel × variant must validate against
//! its reference implementation across seeds and pool widths.

use ninja_gap::prelude::*;

#[test]
fn every_variant_validates_on_two_seeds() {
    let pool = ThreadPool::with_threads(2);
    for seed in [1u64, 99] {
        for spec in registry() {
            let mut instance = (spec.make)(ProblemSize::Test, seed);
            for v in Variant::ALL {
                instance
                    .validate(v, &pool)
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            }
        }
    }
}

#[test]
fn validation_is_pool_width_independent() {
    for threads in [1usize, 3] {
        let pool = ThreadPool::with_threads(threads);
        for spec in registry() {
            let mut instance = (spec.make)(ProblemSize::Test, 7);
            instance
                .validate(Variant::Ninja, &pool)
                .unwrap_or_else(|e| panic!("{threads} threads: {e}"));
            instance
                .validate(Variant::Algorithmic, &pool)
                .unwrap_or_else(|e| panic!("{threads} threads: {e}"));
        }
    }
}

#[test]
fn checksums_are_deterministic_for_fixed_seed() {
    let pool = ThreadPool::with_threads(1);
    for spec in registry() {
        let mut a = (spec.make)(ProblemSize::Test, 5);
        let mut b = (spec.make)(ProblemSize::Test, 5);
        // Serial variants must be bit-deterministic.
        for v in [Variant::Naive, Variant::Simd] {
            assert_eq!(
                a.run(v, &pool),
                b.run(v, &pool),
                "{} {} not deterministic",
                spec.name,
                v
            );
        }
    }
}

#[test]
fn work_accounting_is_positive_and_size_monotone() {
    for spec in registry() {
        let small = (spec.make)(ProblemSize::Test, 1).work();
        let big = (spec.make)(ProblemSize::Quick, 1).work();
        assert!(small.flops > 0.0 && small.bytes > 0.0, "{}", spec.name);
        assert!(
            big.flops > small.flops,
            "{} flops must grow with size",
            spec.name
        );
        assert!(
            big.elems > small.elems,
            "{} elems must grow with size",
            spec.name
        );
    }
}
