//! Fault-isolation end-to-end: a suite seeded with every chaos failure mode
//! still completes, records structured outcomes, keeps healthy kernels'
//! measurements, and serializes cleanly.

use std::time::Duration;

use ninja_gap::harness::{Harness, VariantResult};
use ninja_gap::kernels::chaos::{self, FailureMode};
use ninja_gap::prelude::*;

/// Seed 0 makes the `naive` variant the chaos victim in every mode, so the
/// other four variants of each chaos kernel must still measure cleanly.
fn chaotic_suite() -> SuiteReport {
    let mut specs = vec![registry().into_iter().find(|s| s.name == "conv1d").unwrap()];
    specs.extend(chaos::all_specs());
    Harness::new()
        .size(ProblemSize::Test)
        .threads(2)
        .repetitions(1)
        .seed(0)
        .timeout(Duration::from_millis(250))
        .run_specs(&specs)
}

#[test]
fn suite_records_every_failure_kind_and_keeps_going() {
    let suite = chaotic_suite();
    assert_eq!(suite.kernels.len(), 1 + FailureMode::ALL.len());

    // The healthy kernel is untouched by its chaotic neighbors.
    let conv = suite.kernel("conv1d").expect("conv1d present");
    assert!(conv.variants.iter().all(VariantResult::is_ok));
    assert!(conv.measured_gap().is_some());

    // Each chaos kernel fails exactly its victim variant, with the
    // structured outcome matching the injected failure mode.
    for (kernel, kind) in [
        ("chaos-panic", "panicked"),
        ("chaos-hang", "timed_out"),
        ("chaos-nan", "non_finite"),
        ("chaos-wrong", "validation_failed"),
    ] {
        let k = suite
            .kernel(kernel)
            .unwrap_or_else(|| panic!("{kernel} missing"));
        let failed: Vec<_> = k.variants.iter().filter(|v| !v.is_ok()).collect();
        assert_eq!(failed.len(), 1, "{kernel} should fail only its victim");
        assert_eq!(failed[0].variant, "naive", "{kernel}");
        assert_eq!(failed[0].outcome.kind(), kind, "{kernel}");
        assert!(
            failed[0].timing.is_none(),
            "{kernel} failure must not carry timing"
        );
    }

    let failures = suite.failures();
    assert_eq!(failures.len(), FailureMode::ALL.len());
    assert!(suite.has_failures());
    let summary = suite.failure_summary();
    for kernel in ["chaos-panic", "chaos-hang", "chaos-nan", "chaos-wrong"] {
        assert!(
            summary.contains(kernel),
            "summary missing {kernel}:\n{summary}"
        );
    }
}

#[test]
fn panic_outcome_preserves_the_payload_message() {
    let suite = chaotic_suite();
    let k = suite.kernel("chaos-panic").unwrap();
    let failed = k.variants.iter().find(|v| !v.is_ok()).unwrap();
    match &failed.outcome {
        VariantOutcome::Panicked { message } => {
            assert!(
                message.contains("chaos: injected panic"),
                "payload lost: {message:?}"
            );
        }
        other => panic!("expected Panicked, got {other}"),
    }
}

#[test]
fn partial_report_roundtrips_through_json_and_csv() {
    let suite = chaotic_suite();
    let back = SuiteReport::from_json(&suite.to_json()).expect("parse own JSON");
    assert_eq!(suite, back);

    let csv = suite.to_csv();
    assert_eq!(csv.lines().count(), 1 + suite.kernels.len() * 5);
    // Failed rows keep their line but leave timing columns empty.
    let hang_row = csv
        .lines()
        .find(|l| l.starts_with("chaos-hang,naive"))
        .expect("failed row present in CSV");
    assert!(hang_row.contains("timed_out"), "{hang_row}");
}

#[test]
fn fail_fast_stops_the_suite_at_the_first_failure() {
    let mut specs = vec![chaos::spec(FailureMode::Panic)];
    specs.push(registry().into_iter().find(|s| s.name == "conv1d").unwrap());
    let suite = Harness::new()
        .size(ProblemSize::Test)
        .threads(2)
        .repetitions(1)
        .seed(0)
        .fail_fast(true)
        .run_specs(&specs);
    assert_eq!(suite.kernels.len(), 1, "fail-fast must not reach conv1d");
    assert!(suite.has_failures());
}
