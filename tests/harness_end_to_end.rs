//! End-to-end harness runs: measurement, report invariants, serialization,
//! and the rendered experiment artifacts.

use ninja_gap::harness::{experiments, render, Harness, SuiteReport};
use ninja_gap::prelude::*;

fn tiny_suite() -> SuiteReport {
    Harness::new()
        .size(ProblemSize::Test)
        .threads(2)
        .repetitions(1)
        .seed(11)
        .run_suite()
}

#[test]
fn full_suite_runs_and_reports_every_kernel() {
    let suite = tiny_suite();
    assert_eq!(suite.kernels.len(), registry().len());
    for k in &suite.kernels {
        assert_eq!(k.variants.len(), 5, "{}", k.kernel);
        for v in &k.variants {
            assert!(v.validated, "{}/{}", k.kernel, v.variant);
            assert!(v.is_ok(), "{}/{}: {}", k.kernel, v.variant, v.outcome);
            let timing = v.timing.as_ref().expect("ok variants carry timing");
            assert!(timing.median_s > 0.0, "{}/{}", k.kernel, v.variant);
            assert!(v.gflops > 0.0, "{}/{}", k.kernel, v.variant);
        }
        assert!(k.measured_gap().unwrap() > 0.0);
        assert!(k.measured_residual().unwrap() > 0.0);
    }
    assert!(suite.average_gap() > 0.0);
}

#[test]
fn report_serialization_roundtrips() {
    let suite = tiny_suite();
    let back = SuiteReport::from_json(&suite.to_json()).expect("parse own JSON");
    assert_eq!(suite, back);
    let csv = suite.to_csv();
    // Header + one row per (kernel, variant).
    assert_eq!(csv.lines().count(), 1 + suite.kernels.len() * 5);
}

#[test]
fn rendered_artifacts_mention_every_kernel() {
    let suite = tiny_suite();
    for artifact in [
        experiments::fig4_residual(&suite),
        experiments::measured_ladder(&suite),
        render::suite_table(&suite),
    ] {
        for spec in registry() {
            assert!(artifact.contains(spec.name), "{} missing", spec.name);
        }
    }
}

#[test]
fn model_only_figures_render() {
    for artifact in [
        experiments::table1_suite(),
        experiments::table2_platforms(),
        experiments::fig1_gap_growth(),
        experiments::fig_breakdown(&machines::westmere()),
        experiments::fig_breakdown(&machines::mic()),
        experiments::fig5_mic_residual(),
        experiments::fig6_effort(),
        experiments::fig7_hardware_gather(),
    ] {
        assert!(
            artifact.lines().count() >= 3,
            "artifact too short:\n{artifact}"
        );
    }
}

#[test]
fn seeds_change_inputs_but_not_validity() {
    let a = Harness::new()
        .size(ProblemSize::Test)
        .threads(1)
        .repetitions(1)
        .seed(1)
        .run_kernels(&["conv1d"]);
    let b = Harness::new()
        .size(ProblemSize::Test)
        .threads(1)
        .repetitions(1)
        .seed(2)
        .run_kernels(&["conv1d"]);
    let ca = a.kernels[0].variants[0].checksum;
    let cb = b.kernels[0].variants[0].checksum;
    assert_ne!(ca, cb, "different seeds must give different workloads");
}
