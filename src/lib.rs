//! # ninja-gap
//!
//! A full reproduction of *"Can traditional programming bridge the Ninja
//! performance gap for parallel computing applications?"* (Satish et al.,
//! ISCA 2012) as a Rust workspace.
//!
//! The **Ninja gap** is the performance distance between naively written,
//! parallelism-unaware code and the best hand-optimized ("Ninja")
//! implementation of the same computation. The paper measured an average
//! gap of 24X on a 6-core Westmere, showed it grows with every hardware
//! generation if unaddressed, and demonstrated that a small set of
//! well-known algorithmic changes plus compiler technology shrinks it to
//! ~1.3X.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`simd`] — explicit SIMD vectors and vector math (the intrinsics
//!   substrate),
//! * [`parallel`] — the OpenMP-style thread pool,
//! * [`kernels`] — the ten throughput benchmarks, each at five
//!   optimization tiers,
//! * [`model`] — the roofline machine model for cross-architecture
//!   projection,
//! * [`harness`] — measurement, validation, gap analysis, and the
//!   per-figure experiment entry points,
//! * [`probe`] — span tracing, pool utilization metrics, and the trace
//!   export behind `reproduce --trace` / `--probe-metrics`.
//!
//! ## Quickstart
//!
//! ```
//! use ninja_gap::harness::Harness;
//! use ninja_gap::kernels::ProblemSize;
//!
//! let harness = Harness::new().size(ProblemSize::Test).threads(1).repetitions(1);
//! let suite = harness.run_kernels(&["nbody"]);
//! let nbody = suite.kernel("nbody").unwrap();
//! println!("nbody Ninja gap on this host: {:.1}X", nbody.measured_gap().unwrap());
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub use ninja_core as harness;
pub use ninja_kernels as kernels;
pub use ninja_model as model;
pub use ninja_parallel as parallel;
pub use ninja_probe as probe;
pub use ninja_simd as simd;

/// Convenience re-exports of the most used types.
pub mod prelude {
    pub use ninja_core::{Harness, KernelReport, SuiteReport, VariantOutcome};
    pub use ninja_kernels::{registry, ProblemSize, Variant};
    pub use ninja_model::{machines, predicted_gap, predicted_residual, Machine};
    pub use ninja_parallel::ThreadPool;
    pub use ninja_simd::{F32x4, F32x8, F64x2, F64x4, I32x4, Mask32x4};
}
