//! Offline stand-in for `serde`: `Serialize`/`Deserialize` expressed over
//! a small JSON value model instead of upstream's generic data model.
//!
//! The workspace only ever serializes to and from JSON (suite reports,
//! machine descriptions), so the generic serializer indirection is
//! unnecessary: types convert to/from [`Value`], and `serde_json` renders
//! and parses that. `#[derive(Serialize, Deserialize)]` comes from the
//! sibling `serde_derive` stand-in and targets the same traits.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON value.
///
/// Numbers keep their literal text (see [`Number`]) so `u64` seeds and
/// shortest-roundtrip `f64` timings survive a serialize/parse cycle
/// exactly.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number literal.
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

/// A JSON number kept as its literal text.
#[derive(Clone, Debug, PartialEq)]
pub struct Number {
    /// The literal, e.g. `"42"` or `"1.5e-3"`.
    pub raw: String,
}

impl Value {
    /// Looks up a field of an object value.
    ///
    /// # Errors
    ///
    /// Returns an error naming the field if `self` is not an object or the
    /// field is absent.
    pub fn field<'a>(&'a self, name: &str) -> Result<&'a Value, DeError> {
        match self {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::new(format!("missing field `{name}`"))),
            other => Err(DeError::new(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A deserialization error message.
#[derive(Clone, Debug)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the JSON value model.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion from the JSON value model.
pub trait Deserialize: Sized {
    /// Builds `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] describing the first shape or type mismatch.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number { raw: self.to_string() })
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => n.raw.parse().map_err(|e| {
                        DeError::new(format!("invalid {}: {e}", stringify!($t)))
                    }),
                    other => Err(DeError::new(format!(
                        "expected number, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if self.is_finite() {
                    // Rust's Display prints the shortest string that parses
                    // back to the same value, so the roundtrip is exact.
                    Value::Num(Number { raw: self.to_string() })
                } else {
                    // JSON has no literal for NaN/inf; `null` mirrors what
                    // upstream serde_json emits for them.
                    Value::Null
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => n.raw.parse().map_err(|e| {
                        DeError::new(format!("invalid {}: {e}", stringify!($t)))
                    }),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::new(format!(
                        "expected number, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// `Value` round-trips through itself, mirroring upstream
// `serde_json::Value`'s own `Serialize`/`Deserialize` impls. This lets
// callers parse arbitrary JSON (`from_str::<Value>`) and inspect it.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(
            u64::from_value(&18_446_744_073_709_551_615u64.to_value()).unwrap(),
            u64::MAX
        );
        assert_eq!(f64::from_value(&0.1f64.to_value()).unwrap(), 0.1);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Vec<u32> = Deserialize::from_value(&vec![1u32, 2, 3].to_value()).unwrap();
        assert_eq!(v, [1, 2, 3]);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn type_mismatches_error() {
        assert!(u32::from_value(&Value::Bool(true)).is_err());
        assert!(u32::from_value(&Value::Num(Number { raw: "1.5".into() })).is_err());
        assert!(Value::Null.field("x").is_err());
        let obj = Value::Object(vec![("a".into(), Value::Null)]);
        assert!(obj.field("a").is_ok());
        assert!(obj.field("b").is_err());
    }
}
