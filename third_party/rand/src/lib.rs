//! Offline stand-in for `rand`: the `SmallRng` + `gen_range` slice the
//! kernels use for deterministic input generation.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction upstream `SmallRng` uses on 64-bit targets. Streams are
//! deterministic for a given seed, which is all the suite relies on
//! (inputs are regenerated from recorded seeds, never stored).

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// An RNG that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open, `start < end`).
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range needs a non-empty range");
        T::sample_in(self, range.start, range.end)
    }
}

impl<R: RngCore> Rng for R {}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[lo, hi)`.
    fn sample_in<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// `[0, 1)` with 53 random mantissa bits.
fn unit_f64<R: RngCore>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_in<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + unit_f64(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (unit_f64(rng) as f32) * (hi - lo)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // Modulo sampling: the bias over a 64-bit draw is far below
                // anything the deterministic test inputs can observe.
                let span = (hi as i128 - lo as i128) as u128;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — upstream `SmallRng`'s algorithm on 64-bit targets.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.5f32..7.5);
            assert!((-2.5..7.5).contains(&f));
            let x = rng.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn floats_cover_the_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..512).map(|_| rng.gen_range(0.0f64..1.0)).collect();
        assert!(samples.iter().any(|&x| x < 0.25));
        assert!(samples.iter().any(|&x| x > 0.75));
    }

    #[test]
    #[should_panic(expected = "non-empty range")]
    fn empty_range_rejected() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = rng.gen_range(5u32..5);
    }
}
