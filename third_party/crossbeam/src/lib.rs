//! Offline stand-in for the `crossbeam` facade: only the
//! `deque::{Injector, Steal}` API used by `ninja-parallel`.

/// Work-stealing deque module (here: a mutex-backed FIFO injector).
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// The result of a steal attempt.
    pub enum Steal<T> {
        /// The queue was observed empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The operation lost a race and should be retried.
        Retry,
    }

    /// A FIFO queue that any thread can push to and steal from.
    ///
    /// Upstream crossbeam uses a lock-free segmented queue; this stand-in
    /// trades peak throughput for simplicity with a `Mutex<VecDeque>`. The
    /// pool amortizes queue traffic over chunked loops, so scheduling
    /// overhead stays off the measured path.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Self {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task onto the back of the queue.
        pub fn push(&self, task: T) {
            self.lock().push_back(task);
        }

        /// Steals the task at the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.lock().pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Whether the queue was empty at the time of the call.
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            // A panic while holding this internal lock cannot leave the
            // queue in a broken state; ignore std's poisoning.
            self.queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal};

    #[test]
    fn fifo_order_and_empty() {
        let q = Injector::new();
        assert!(q.is_empty());
        q.push(1);
        q.push(2);
        assert!(!q.is_empty());
        assert!(matches!(q.steal(), Steal::Success(1)));
        assert!(matches!(q.steal(), Steal::Success(2)));
        assert!(matches!(q.steal(), Steal::Empty));
    }
}
