//! Offline stand-in for the `crossbeam` facade: the `deque` module used
//! by `ninja-parallel`.
//!
//! Two queue flavours live here:
//!
//! * [`deque::Injector`] — the original mutex-backed FIFO, kept for
//!   overflow/external submission where contention is rare by design.
//! * [`deque::Worker`]/[`deque::Stealer`] — a real lock-free Chase–Lev
//!   work-stealing deque (Chase & Lev, SPAA '05) with the weak-memory
//!   orderings of Lê et al. (PPoPP '13). The owner pushes and pops LIFO
//!   at the bottom; any number of stealers take FIFO from the top.
//!
//! The deque is the part that matters for the measured USL contention
//! term κ: the owner's fast path is two relaxed loads and a release
//! store, and thieves only ever contend on a single CAS per steal.

/// Work-stealing deque module: `Worker`/`Stealer` (Chase–Lev) plus the
/// mutex-backed FIFO `Injector`.
pub mod deque {
    use std::cell::UnsafeCell;
    use std::collections::VecDeque;
    use std::marker::PhantomData;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
    use std::sync::{Arc, Mutex};

    /// Initial (and minimum) deque capacity. A power of two so index
    /// wraparound is a mask; large enough that the common case never
    /// grows.
    const MIN_CAP: usize = 64;

    /// The result of a steal attempt.
    #[derive(Debug)]
    pub enum Steal<T> {
        /// The queue was observed empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The operation lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// Whether this is `Steal::Success`.
        pub fn is_success(&self) -> bool {
            matches!(self, Steal::Success(_))
        }

        /// Whether this is `Steal::Retry` (lost a race; try again).
        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }
    }

    /// A fixed-capacity ring of task slots.
    ///
    /// Slots are raw `MaybeUninit` storage: liveness is tracked solely by
    /// the deque's `top`/`bottom` indices, never by the buffer itself.
    /// Capacity is a power of two, so an index maps to a slot with a mask
    /// and monotonically growing indices wrap for free.
    struct Buffer<T> {
        slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    }

    impl<T> Buffer<T> {
        /// Heap-allocates a buffer of `cap` uninitialized slots and leaks
        /// it to a raw pointer (freed in `Inner::drop`).
        fn alloc(cap: usize) -> *mut Buffer<T> {
            debug_assert!(cap.is_power_of_two());
            let mut slots = Vec::with_capacity(cap);
            slots.resize_with(cap, || UnsafeCell::new(MaybeUninit::uninit()));
            Box::into_raw(Box::new(Buffer {
                slots: slots.into_boxed_slice(),
            }))
        }

        fn cap(&self) -> usize {
            self.slots.len()
        }

        /// The raw slot for deque index `index` (mask-wrapped).
        fn slot(&self, index: isize) -> *mut MaybeUninit<T> {
            self.slots[(index as usize) & (self.cap() - 1)].get()
        }

        /// Reads the value at `index` out of the ring.
        ///
        /// # Safety
        ///
        /// The caller must either own index `index` exclusively (owner pop
        /// after winning any race, or `Inner::drop`), or be reading
        /// speculatively with the duplicate forgotten on a lost CAS (the
        /// steal path). `read_volatile` keeps the compiler from tearing or
        /// replaying the racy speculative read.
        unsafe fn read(&self, index: isize) -> T {
            // SAFETY: `slot` is in-bounds by the mask; the liveness
            // argument is the caller's contract above.
            unsafe { self.slot(index).cast::<T>().read_volatile() }
        }

        /// Writes `value` into slot `index`.
        ///
        /// # Safety
        ///
        /// Only the owner may write, and only to an index outside the live
        /// window `[top, bottom)` — the slot must not be concurrently read.
        unsafe fn write(&self, index: isize, value: T) {
            // SAFETY: in-bounds by the mask; exclusivity is the caller's
            // contract above.
            unsafe { self.slot(index).write(MaybeUninit::new(value)) }
        }
    }

    /// State shared between one [`Worker`] and its [`Stealer`]s.
    struct Inner<T> {
        /// First live index; stealers claim it upward with a CAS.
        top: AtomicIsize,
        /// One past the last live index; written only by the owner.
        bottom: AtomicIsize,
        /// Current ring buffer; swapped only by the owner (in `grow`).
        buffer: AtomicPtr<Buffer<T>>,
        /// Buffers replaced by growth, kept alive until the deque drops: a
        /// racing stealer may still be speculatively reading a slot of an
        /// old buffer, so freeing it early would be a use-after-free.
        /// Memory stays bounded — the doubling series retires < 1x the
        /// live buffer's size in total.
        retired: Mutex<Vec<*mut Buffer<T>>>,
    }

    // SAFETY: the deque moves `T` values across threads (pushed by the
    // owner, taken by a stealer), which is exactly `T: Send`. The raw
    // buffer pointers are owned by `Inner` (allocated in `Buffer::alloc`,
    // freed exactly once in `Inner::drop`), and all concurrent access to
    // the slots is coordinated by the `top`/`bottom`/`buffer` atomics per
    // the Chase–Lev protocol proved in the method-level comments.
    unsafe impl<T: Send> Send for Inner<T> {}
    unsafe impl<T: Send> Sync for Inner<T> {}

    impl<T> Drop for Inner<T> {
        fn drop(&mut self) {
            // `&mut self`: no owner or stealer is left, so plain accesses
            // via `get_mut` are race-free.
            let t = *self.top.get_mut();
            let b = *self.bottom.get_mut();
            let buf = *self.buffer.get_mut();
            for i in t..b {
                // SAFETY: exclusive access; `[t, b)` is exactly the set of
                // initialized slots, each read (and so dropped) once.
                drop(unsafe { (*buf).read(i) });
            }
            // SAFETY: `buf` came from `Box::into_raw` in `Buffer::alloc`
            // and is freed exactly once, here.
            drop(unsafe { Box::from_raw(buf) });
            let retired = self
                .retired
                .get_mut()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for p in retired.drain(..) {
                // SAFETY: retired buffers also came from `Box::into_raw`,
                // appear in this list exactly once, and hold no live values
                // (their windows were copied into the successor on growth).
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }

    /// The owner handle of a Chase–Lev deque: LIFO `push`/`pop` at the
    /// bottom, no locks, no CAS on the fast path.
    ///
    /// `Worker` is `Send` (a pool can hand it to its thread) but not
    /// `Sync` — exactly one thread may own it at a time.
    pub struct Worker<T> {
        inner: Arc<Inner<T>>,
        /// Blocks auto-`Sync`: push/pop assume a single owner thread.
        _not_sync: PhantomData<UnsafeCell<()>>,
    }

    impl<T> Worker<T> {
        /// Creates an empty deque and returns its owner handle.
        pub fn new() -> Self {
            Worker {
                inner: Arc::new(Inner {
                    top: AtomicIsize::new(0),
                    bottom: AtomicIsize::new(0),
                    buffer: AtomicPtr::new(Buffer::alloc(MIN_CAP)),
                    retired: Mutex::new(Vec::new()),
                }),
                _not_sync: PhantomData,
            }
        }

        /// Creates a thief handle; clone one per thief thread.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }

        /// Pushes `value` onto the bottom (LIFO end) of the deque.
        pub fn push(&self, value: T) {
            // ORDERING: `bottom` and `buffer` are written only by this
            // owner thread, so relaxed loads see the latest values; `top`
            // is acquired so the capacity check below cannot run ahead of
            // a thief's in-flight claim (over-estimating occupancy is the
            // safe direction, but the acquire also orders the slot reuse).
            let b = self.inner.bottom.load(Ordering::Relaxed);
            let t = self.inner.top.load(Ordering::Acquire);
            // ORDERING: `buffer` is replaced only by this owner thread
            // (in `grow`), so a relaxed load sees the current pointer.
            let mut buf = self.inner.buffer.load(Ordering::Relaxed);
            // SAFETY: `buffer` always points at a live allocation — freed
            // only in `Inner::drop`, which cannot run while `self` exists.
            let cap = unsafe { (*buf).cap() };
            if b - t >= cap as isize {
                buf = self.grow(b, t);
            }
            // SAFETY: slot `b` is outside the live window `[t, b)`, so no
            // stealer reads it until the release store below publishes it.
            unsafe { (*buf).write(b, value) };
            // ORDERING: release publishes the slot write to any thief whose
            // `steal` acquires `bottom` and observes `b < bottom`.
            self.inner.bottom.store(b + 1, Ordering::Release);
        }

        /// Pops from the bottom (the most recently pushed element —
        /// depth-first order, the cache-warm end).
        pub fn pop(&self) -> Option<T> {
            // ORDERING: owner-only values (`bottom`, `buffer`) → relaxed.
            let b = self.inner.bottom.load(Ordering::Relaxed) - 1;
            let buf = self.inner.buffer.load(Ordering::Relaxed);
            // ORDERING: speculatively reserve slot `b` with a relaxed store
            // — the SeqCst fence below is what makes it visible before the
            // `top` read (the Dekker store-load pattern of Chase–Lev).
            self.inner.bottom.store(b, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            // ORDERING: the fence orders this load after the store above;
            // any thief that could race for slot `b` either sees our
            // reservation or its CAS lands before this read.
            let t = self.inner.top.load(Ordering::Relaxed);
            if t > b {
                // Deque was empty; undo the reservation.
                // ORDERING: owner-only write; thieves see empty either way.
                self.inner.bottom.store(b + 1, Ordering::Relaxed);
                return None;
            }
            if t == b {
                // Last element: race any thief for it with a CAS on `top`.
                // ORDERING: SeqCst success joins the single total order
                // with the steal-side CAS; relaxed failure is fine — losing
                // means a thief owns the value and we touch nothing.
                let won = self
                    .inner
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                // ORDERING: owner-only write restoring the canonical empty
                // shape `top == bottom` whether we won or lost.
                self.inner.bottom.store(b + 1, Ordering::Relaxed);
                if won {
                    // SAFETY: the CAS claimed index `b` exclusively; no
                    // thief can read it again (top moved past it).
                    return Some(unsafe { (*buf).read(b) });
                }
                return None;
            }
            // More than one element left: slot `b` is unreachable by
            // thieves (they claim from `top`, and `top < b` held after the
            // fence), so the reservation alone owns it.
            // SAFETY: exclusive by the argument above.
            Some(unsafe { (*buf).read(b) })
        }

        /// Number of elements observed in the deque (racy, advisory).
        pub fn len(&self) -> usize {
            // ORDERING: advisory snapshot — relaxed loads are fine, the
            // value is stale the moment it is computed.
            let b = self.inner.bottom.load(Ordering::Relaxed);
            let t = self.inner.top.load(Ordering::Relaxed);
            (b - t).max(0) as usize
        }

        /// Whether the deque was empty at the time of the call.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Doubles capacity: copies the live window into a fresh buffer,
        /// publishes it, and retires the old buffer (kept allocated until
        /// drop — a thief may still be reading it speculatively).
        fn grow(&self, b: isize, t: isize) -> *mut Buffer<T> {
            // ORDERING: `buffer` is owner-written; relaxed re-read is ours.
            let old = self.inner.buffer.load(Ordering::Relaxed);
            // SAFETY: live until `Inner::drop` (see `push`).
            let old_ref = unsafe { &*old };
            let new = Buffer::alloc(old_ref.cap() * 2);
            for i in t..b {
                // SAFETY: bitwise duplication into a buffer no thief can
                // see yet. Ownership of each value stays index-based: once
                // `top` passes an index, neither copy of it is read again,
                // so no value is ever dropped twice.
                unsafe { (*new).write(i, old_ref.read(i)) };
            }
            // ORDERING: release pairs with the acquire `buffer` load in
            // `steal`, so a thief that sees the new pointer also sees the
            // copied slots.
            self.inner.buffer.store(new, Ordering::Release);
            self.inner
                .retired
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(old);
            new
        }
    }

    impl<T> Default for Worker<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    /// A thief handle: `steal` takes the oldest element (FIFO end) with a
    /// single CAS. Clone freely; all clones share the same deque.
    pub struct Stealer<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Attempts to steal the element at the top of the deque.
        ///
        /// Returns [`Steal::Retry`] when the CAS on `top` loses a race
        /// against the owner's last-element pop or another thief — the
        /// caller should back off briefly and may try again.
        pub fn steal(&self) -> Steal<T> {
            // ORDERING: acquire `top` so the speculative slot read below
            // happens-after the steal that previously advanced it (the
            // owner's matching slot overwrite is ordered by `push`'s
            // acquire of `top` before reusing the slot).
            let t = self.inner.top.load(Ordering::Acquire);
            // The SeqCst fence pairs with the one in `pop`: either we see
            // the owner's reserved `bottom`, or the owner's `top` read sees
            // our CAS — never both missing (Dekker).
            fence(Ordering::SeqCst);
            let b = self.inner.bottom.load(Ordering::Acquire);
            if t >= b {
                return Steal::Empty;
            }
            // ORDERING: acquire pairs with the release store in `grow` so
            // the copied slots are visible, and with `push`'s release of
            // `bottom` via the load above for freshly pushed slots.
            let buf = self.inner.buffer.load(Ordering::Acquire);
            // SAFETY: speculative read — the slot may concurrently be won
            // by the owner's pop. The CAS below detects exactly that race;
            // on failure the duplicate is forgotten (never dropped), so
            // there is no double drop, and `read_volatile` (see
            // `Buffer::read`) keeps the racy read from being torn apart or
            // replayed by the compiler.
            let value = unsafe { (*buf).read(t) };
            // ORDERING: SeqCst success makes the claim visible in the
            // single total order `pop`'s fence participates in; relaxed
            // failure is fine — we forget the duplicate and report Retry.
            if self
                .inner
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                std::mem::forget(value);
                return Steal::Retry;
            }
            Steal::Success(value)
        }

        /// Whether the deque was empty at the time of the call (racy).
        pub fn is_empty(&self) -> bool {
            // ORDERING: advisory snapshot; relaxed is fine (see
            // `Worker::len`).
            let t = self.inner.top.load(Ordering::Relaxed);
            let b = self.inner.bottom.load(Ordering::Relaxed);
            t >= b
        }
    }

    /// A FIFO queue that any thread can push to and steal from.
    ///
    /// Upstream crossbeam uses a lock-free segmented queue; this stand-in
    /// trades peak throughput for simplicity with a `Mutex<VecDeque>`. In
    /// the work-stealing pool the injector only carries overflow and
    /// external submissions — the hot path lives on the per-worker
    /// [`Worker`] deques — so the lock stays uncontended by construction.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Self {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task onto the back of the queue.
        pub fn push(&self, task: T) {
            self.lock().push_back(task);
        }

        /// Steals the task at the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.lock().pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Whether the queue was empty at the time of the call.
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            // A panic while holding this internal lock cannot leave the
            // queue in a broken state; ignore std's poisoning.
            self.queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_empty() {
        let q = Injector::new();
        assert!(q.is_empty());
        q.push(1);
        q.push(2);
        assert!(!q.is_empty());
        assert!(matches!(q.steal(), Steal::Success(1)));
        assert!(matches!(q.steal(), Steal::Success(2)));
        assert!(matches!(q.steal(), Steal::Empty));
    }

    #[test]
    fn worker_pops_lifo() {
        let w = Worker::new();
        assert!(w.is_empty());
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.len(), 3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn stealer_takes_fifo_from_top() {
        let w = Worker::new();
        let s = w.stealer();
        assert!(matches!(s.steal(), Steal::Empty));
        w.push(10);
        w.push(20);
        w.push(30);
        // Thief takes the oldest; owner keeps the newest.
        assert!(matches!(s.steal(), Steal::Success(10)));
        assert_eq!(w.pop(), Some(30));
        assert!(matches!(s.steal(), Steal::Success(20)));
        assert!(matches!(s.steal(), Steal::Empty));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn growth_past_min_cap_preserves_all_values() {
        let w = Worker::new();
        // Far beyond MIN_CAP=64, forcing several doublings.
        for i in 0..1000 {
            w.push(i);
        }
        assert_eq!(w.len(), 1000);
        for i in (0..1000).rev() {
            assert_eq!(w.pop(), Some(i));
        }
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_steal_with_growth() {
        let w = Worker::new();
        let s = w.stealer();
        let mut seen = Vec::new();
        for round in 0..200 {
            w.push(round * 2);
            w.push(round * 2 + 1);
            if round % 3 == 0 {
                if let Steal::Success(v) = s.steal() {
                    seen.push(v);
                }
            }
            if round % 2 == 0 {
                if let Some(v) = w.pop() {
                    seen.push(v);
                }
            }
        }
        while let Some(v) = w.pop() {
            seen.push(v);
        }
        seen.sort_unstable();
        let expected: Vec<i32> = (0..400).collect();
        assert_eq!(seen, expected, "every pushed value surfaces exactly once");
    }

    #[test]
    fn dropping_nonempty_deque_drops_each_value_once() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                // ORDERING: test counter; asserted after the deque drops.
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let w = Worker::new();
        for _ in 0..100 {
            w.push(Counted);
        }
        // Pop a few (dropped here), steal a few (dropped here), growth has
        // occurred at 64 — the rest must drop exactly once in Inner::drop.
        let s = w.stealer();
        for _ in 0..10 {
            drop(w.pop());
            let _ = matches!(s.steal(), Steal::Success(_));
        }
        drop(s);
        drop(w);
        // ORDERING: single-threaded test; everything already dropped.
        assert_eq!(DROPS.load(Ordering::Relaxed), 100);
    }

    /// The ISSUE's conservation stress test: N stealers vs 1 owner, every
    /// pushed token surfaces exactly once, and the per-side tallies add
    /// back up to the number pushed.
    #[test]
    fn stress_n_stealers_vs_owner_conserves_tokens() {
        const TOKENS: usize = 100_000;
        const THIEVES: usize = 4;

        let w = Worker::new();
        let done = Arc::new(AtomicBool::new(false));
        let retries = Arc::new(AtomicUsize::new(0));

        let handles: Vec<_> = (0..THIEVES)
            .map(|_| {
                let s = w.stealer();
                let done = Arc::clone(&done);
                let retries = Arc::clone(&retries);
                std::thread::spawn(move || {
                    let mut got: Vec<usize> = Vec::new();
                    loop {
                        match s.steal() {
                            Steal::Success(v) => got.push(v),
                            Steal::Retry => {
                                // ORDERING: tally only; summed after join.
                                retries.fetch_add(1, Ordering::Relaxed);
                                std::hint::spin_loop();
                            }
                            Steal::Empty => {
                                // ORDERING: `done` is a plain quit flag —
                                // set after the last push, checked only
                                // when the deque reads empty.
                                if done.load(Ordering::Acquire) && s.is_empty() {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    got
                })
            })
            .collect();

        // Owner: push every token, popping a burst every so often so the
        // bottom end stays hot and the single-element race gets exercised.
        let mut owner_got: Vec<usize> = Vec::new();
        for v in 0..TOKENS {
            w.push(v);
            if v % 7 == 0 {
                if let Some(x) = w.pop() {
                    owner_got.push(x);
                }
            }
        }
        done.store(true, Ordering::Release);
        while let Some(x) = w.pop() {
            owner_got.push(x);
        }

        let mut all = owner_got;
        let mut stolen_total = 0usize;
        for h in handles {
            let got = h.join().expect("stealer thread panicked");
            stolen_total += got.len();
            all.extend(got);
        }
        // Conservation: exactly-once delivery of every token.
        assert_eq!(all.len(), TOKENS, "popped + stolen must equal pushed");
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), TOKENS, "no token may be delivered twice");
        assert_eq!(*all.first().unwrap(), 0);
        assert_eq!(*all.last().unwrap(), TOKENS - 1);
        // The tallies balance by construction; keep the counters visible
        // so a regression shows the split, not just "length differed".
        assert_eq!(stolen_total + (TOKENS - stolen_total), TOKENS);
    }
}
