//! Offline stand-in for `serde_json`: renders and parses the JSON value
//! model of the sibling `serde` stand-in.
//!
//! Supports the full JSON grammar the suite reports use: objects, arrays,
//! strings with escapes, numbers (kept as literal text so `u64` and
//! shortest-roundtrip `f64` survive exactly), booleans, and `null`.

use serde::{Number, Value};

/// A serialization or parse error.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Self::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Infallible for the value model (the `Result` mirrors upstream's API).
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible for the value model (the `Result` mirrors upstream's API).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error, or
/// the first shape mismatch while building `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    Ok(T::from_value(&value)?)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => out.push_str(&n.raw),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            write_seq(out, indent, depth, items.is_empty(), '[', ']', |out| {
                for (i, item) in items.iter().enumerate() {
                    seq_sep(out, indent, depth + 1, i == 0);
                    write_value(item, out, indent, depth + 1);
                }
            });
        }
        Value::Object(pairs) => {
            write_seq(out, indent, depth, pairs.is_empty(), '{', '}', |out| {
                for (i, (key, val)) in pairs.iter().enumerate() {
                    seq_sep(out, indent, depth + 1, i == 0);
                    write_string(key, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(val, out, indent, depth + 1);
                }
            });
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    empty: bool,
    open: char,
    close: char,
    body: impl FnOnce(&mut String),
) {
    out.push(open);
    if empty {
        out.push(close);
        return;
    }
    body(out);
    if let Some(n) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(n * depth));
    }
    out.push(close);
}

fn seq_sep(out: &mut String, indent: Option<usize>, depth: usize, first: bool) {
    if !first {
        out.push(',');
    }
    if let Some(n) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(n * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn err(&self, what: &str) -> Error {
        Error::new(format!("{what} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(&format!("unexpected `{}`", b as char))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key string"));
            }
            let key = self.string()?;
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut saw_digit = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => {
                    saw_digit = true;
                    self.pos += 1;
                }
                b'.' | b'e' | b'E' | b'+' | b'-' => self.pos += 1,
                _ => break,
            }
        }
        if !saw_digit {
            return Err(self.err("invalid number"));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII")
            .to_owned();
        // Validate the literal eagerly so parse errors surface here with a
        // position instead of later during field conversion.
        if raw.parse::<f64>().is_err() {
            return Err(self.err("invalid number"));
        }
        Ok(Value::Num(Number { raw }))
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    fn parse(s: &str) -> Value {
        parse_value_complete(s).unwrap()
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null"), Value::Null);
        assert_eq!(parse(" true "), Value::Bool(true));
        assert_eq!(parse("\"a\\nb\""), Value::Str("a\nb".into()));
        assert_eq!(
            parse("-1.5e3"),
            Value::Num(Number {
                raw: "-1.5e3".into()
            })
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}], "c": null}"#);
        let a = v.field("a").unwrap();
        match a {
            Value::Array(items) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[1].field("b").unwrap(), &Value::Str("x".into()));
            }
            _ => panic!("expected array"),
        }
        assert_eq!(v.field("c").unwrap(), &Value::Null);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value_complete("{").is_err());
        assert!(parse_value_complete("[1,]").is_err());
        assert!(parse_value_complete("nul").is_err());
        assert!(parse_value_complete("1 2").is_err());
        assert!(parse_value_complete("\"unterminated").is_err());
        assert!(parse_value_complete("{\"a\" 1}").is_err());
    }

    #[test]
    fn compact_and_pretty_roundtrip() {
        let v = Value::Object(vec![
            ("s".into(), Value::Str("q\"\\\u{1}".into())),
            ("n".into(), Value::Num(Number { raw: "42".into() })),
            (
                "a".into(),
                Value::Array(vec![Value::Bool(false), Value::Null]),
            ),
            ("e".into(), Value::Array(vec![])),
            ("o".into(), Value::Object(vec![])),
        ]);
        for pretty in [false, true] {
            let mut out = String::new();
            write_value(&v, &mut out, if pretty { Some(2) } else { None }, 0);
            assert_eq!(parse(&out), v, "pretty={pretty}: {out}");
        }
    }

    #[test]
    fn unicode_survives() {
        let v = Value::Str("héllo ☃".into());
        let mut out = String::new();
        write_value(&v, &mut out, None, 0);
        assert_eq!(parse(&out), v);
        assert_eq!(parse("\"\\u2603\""), Value::Str("☃".into()));
    }
}
