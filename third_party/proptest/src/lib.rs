//! Offline stand-in for `proptest`: deterministic randomized property
//! testing covering the strategy combinators this workspace uses.
//!
//! Differences from upstream, by design: no shrinking (a failing case
//! panics with its assertion message directly), no persistence of failing
//! seeds (`.proptest-regressions` files are ignored), and a fixed
//! per-case seed schedule so failures reproduce across runs.

/// Test-runner configuration.
pub mod test_runner {
    /// Configuration for a `proptest!` block.
    #[derive(Copy, Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; this stand-in runs on small CI
            // hosts, so trade a little coverage for wall-clock.
            Self { cases: 64 }
        }
    }

    /// Deterministic per-case RNG (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the RNG for one test case.
        pub fn new(case: u64) -> Self {
            Self {
                state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Strategies: value generators composable with `prop_map`/`prop_filter`.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Rejects values failing `pred`, resampling (up to a cap).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter `{}` rejected 1000 consecutive samples",
                self.reason
            );
        }
    }

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Marker returned by [`crate::arbitrary::any`].
    pub struct Any<T> {
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Any;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Collection strategies (`prop::collection`, `prop::array`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `Vec` of values from `elem` with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    macro_rules! uniform_array {
        ($name:ident, $strat:ident, $n:literal) => {
            /// Array of $n values drawn from one strategy.
            pub struct $strat<S> {
                elem: S,
            }

            /// `[T; $n]` with every element drawn from `elem`.
            pub fn $name<S: Strategy>(elem: S) -> $strat<S> {
                $strat { elem }
            }

            impl<S: Strategy> Strategy for $strat<S> {
                type Value = [S::Value; $n];

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    std::array::from_fn(|_| self.elem.sample(rng))
                }
            }
        };
    }

    uniform_array!(uniform2, Uniform2, 2);
    uniform_array!(uniform3, Uniform3, 3);
    uniform_array!(uniform4, Uniform4, 4);
    uniform_array!(uniform8, Uniform8, 8);
}

/// The glob-import surface used by test files.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident,) => {};
    ($rng:ident, $pat:pat in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident, $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
}

/// Declares property tests: each `fn` runs its body over many sampled
/// inputs. Supports an optional leading
/// `#![proptest_config(ProptestConfig::with_cases(N))]`.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident ($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases as u64 {
                    let mut __proptest_rng = $crate::test_runner::TestRng::new(case);
                    $crate::__proptest_bind!(__proptest_rng, $($params)*);
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @run ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_sample_in_bounds(x in 10u32..20, f in -1.5f32..2.5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-1.5..2.5).contains(&f));
        }

        #[test]
        fn vec_and_map_compose(v in prop::collection::vec(0u64..100, 2..10).prop_map(|mut v| { v.sort_unstable(); v })) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn arrays_and_any(a in prop::array::uniform4(any::<bool>()), b in prop::array::uniform2(0i32..5)) {
            prop_assert_eq!(a.len(), 4);
            prop_assert!(b.iter().all(|&x| (0..5).contains(&x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        #[test]
        fn config_and_filter_apply(x in (0u32..100).prop_filter("even", |x| x % 2 == 0)) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn mut_bindings_work(mut v in prop::collection::vec(0u8..10, 0..5)) {
            v.push(1);
            prop_assert_ne!(v.len(), 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::new(7);
        let mut b = crate::test_runner::TestRng::new(7);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
