//! Offline stand-in for `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! for non-generic structs with named fields, targeting the value-model
//! traits of the sibling `serde` stand-in.
//!
//! Written against `proc_macro` alone (no `syn`/`quote`) so it builds in
//! hermetic environments. Enums and generic or tuple structs are rejected
//! with a compile error — hand-implement the traits for those (see
//! `VariantOutcome` in `ninja-core` for the pattern).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of a derive input we support: a named-field struct.
struct StructDef {
    name: String,
    fields: Vec<String>,
}

/// Extracts the struct name and field names from a derive input stream.
///
/// Panics (surfacing as a compile error) on enums, tuple structs, unions,
/// and generic structs.
fn parse_struct(input: TokenStream, trait_name: &str) -> StructDef {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility before the `struct` keyword.
    let name = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Consume the bracketed attribute body.
                tokens.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // `pub(crate)` and friends carry a parenthesized group.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => match tokens.next() {
                Some(TokenTree::Ident(name)) => break name.to_string(),
                other => panic!("derive({trait_name}): expected struct name, got {other:?}"),
            },
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" || id.to_string() == "union" => {
                panic!(
                    "derive({trait_name}) stand-in supports only structs with named \
                     fields; implement the trait by hand for `{}`s",
                    id
                );
            }
            Some(_) => continue,
            None => panic!("derive({trait_name}): no struct found in input"),
        }
    };
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("derive({trait_name}) stand-in does not support generic structs")
        }
        other => {
            panic!("derive({trait_name}) stand-in needs named fields (brace body), got {other:?}")
        }
    };
    StructDef {
        name,
        fields: parse_field_names(body, trait_name),
    }
}

/// Walks a brace-delimited struct body and collects the field names.
fn parse_field_names(body: TokenStream, trait_name: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Field attributes.
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next(); // the `[...]` group
            } else {
                break;
            }
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = tokens.peek() {
            if id.to_string() == "pub" {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
        }
        match tokens.next() {
            Some(TokenTree::Ident(field)) => fields.push(field.to_string()),
            None => break,
            other => panic!("derive({trait_name}): expected field name, got {other:?}"),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("derive({trait_name}): expected `:`, got {other:?}"),
        }
        // Consume the type up to the next top-level comma. Commas inside
        // angle brackets (e.g. `HashMap<K, V>`) are not separators; bracketed
        // groups arrive as single opaque tokens and need no tracking.
        let mut angle_depth = 0i32;
        loop {
            match tokens.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    match p.as_char() {
                        '<' => angle_depth += 1,
                        '>' => angle_depth -= 1,
                        ',' if angle_depth == 0 => {
                            tokens.next();
                            break;
                        }
                        _ => {}
                    }
                    tokens.next();
                }
                Some(_) => {
                    tokens.next();
                }
            }
        }
    }
    fields
}

/// `#[derive(Serialize)]` — named-field structs only.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_struct(input, "Serialize");
    let pairs: Vec<String> = def
        .fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
        .collect();
    let code = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(vec![{pairs}])\n\
             }}\n\
         }}",
        name = def.name,
        pairs = pairs.join(", ")
    );
    code.parse().expect("generated Serialize impl parses")
}

/// `#[derive(Deserialize)]` — named-field structs only.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_struct(input, "Deserialize");
    let inits: Vec<String> = def
        .fields
        .iter()
        .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?"))
        .collect();
    let code = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 Ok(Self {{ {inits} }})\n\
             }}\n\
         }}",
        name = def.name,
        inits = inits.join(", ")
    );
    code.parse().expect("generated Deserialize impl parses")
}
