//! Offline stand-in for `criterion`: the API surface the bench targets
//! use (`benchmark_group`, chained group config, `bench_function`,
//! `Bencher::iter`, `criterion_group!`/`criterion_main!`).
//!
//! Instead of criterion's statistical analysis it runs a short
//! warm-up, then times `measurement_time`'s worth of iterations and
//! prints mean/min per-iteration wall time. Good enough to exercise
//! the bench code paths and give ballpark numbers offline.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Measurement marker types (only wall time is supported).
pub mod measurement {
    /// Wall-clock measurement marker.
    pub struct WallTime;
}

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Honor a trailing CLI filter argument like criterion does, so
        // `cargo bench -- <name>` narrows which benchmarks run.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self { filter }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(1),
            _measurement: std::marker::PhantomData,
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let filter = self.filter.clone();
        let mut group = self.benchmark_group("");
        group.name.clear();
        let _ = filter;
        group.run_one(id.to_string(), f);
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(f) => full_name.contains(f.as_str()),
            None => true,
        }
    }
}

/// A named set of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a, M> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Times one benchmark body.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run_one(id.into(), f);
        self
    }

    /// Ends the group (kept for API parity; analysis happens inline).
    pub fn finish(self) {}

    fn run_one(&mut self, id: String, mut f: impl FnMut(&mut Bencher)) {
        let full_name = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };
        if !self.criterion.matches(&full_name) {
            return;
        }
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Warm-up: run single iterations until the warm-up budget is
        // spent, tracking the per-iteration cost to size real samples.
        let warm_start = Instant::now();
        let mut per_iter = Duration::from_micros(1);
        while warm_start.elapsed() < self.warm_up_time {
            bencher.iters = 1;
            f(&mut bencher);
            per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        }
        // Measure: split the budget across `sample_size` samples.
        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters_per_sample =
            (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iters = iters_per_sample;
            f(&mut bencher);
            samples.push(bencher.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "{full_name:<40} mean {:>12}  min {:>12}  ({} samples x {} iters)",
            format_time(mean),
            format_time(min),
            samples.len(),
            iters_per_sample
        );
    }
}

/// Passed to each benchmark body; times the closure under `iter`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it the harness-chosen number of times.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut ran = false;
        group.bench_function("sum", |b| {
            ran = true;
            b.iter(|| (0..100u64).sum::<u64>())
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let c = Criterion {
            filter: Some("wanted".into()),
        };
        assert!(c.matches("group/wanted_bench"));
        assert!(!c.matches("group/other"));
    }
}
