//! Offline stand-in for `parking_lot`: `Mutex` and `Condvar` with the
//! upstream non-poisoning API, implemented over `std::sync`.
//!
//! Key behavioral property preserved from upstream: **no lock poisoning**.
//! A panic while a lock is held must not wedge the thread pool — the
//! fault-isolation layer in `ninja-core` relies on locks staying usable
//! after a captured panic.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock that does not poison on panic.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(std::sync::TryLockError::Poisoned(p)) => f
                .debug_struct("Mutex")
                .field("data", &&*p.into_inner())
                .finish(),
            Err(std::sync::TryLockError::WouldBlock) => {
                f.debug_struct("Mutex").field("data", &"<locked>").finish()
            }
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner std guard lives in an `Option` so [`Condvar::wait`] can hand
/// it to `std::sync::Condvar` (which consumes and returns guards) without
/// exposing that dance to callers.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard present outside of a condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard present outside of a condvar wait")
    }
}

/// Whether a [`Condvar::wait_for`] returned because the timeout elapsed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Atomically releases the lock and blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present before wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// [`Condvar::wait`] with a timeout.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present before wait");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult(result.timed_out())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_guards_data() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn no_poisoning_after_panic_with_lock_held() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() = 7; // must not deadlock or panic
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = m.lock();
        let r = cv.wait_for(&mut guard, Duration::from_millis(5));
        assert!(r.timed_out());
        drop(guard);
    }

    #[test]
    fn notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
