//! Domain example: a database-flavoured pipeline built from two kernels —
//! bulk-sort a column with the Ninja merge sort, build the linearized
//! search index, and answer a large batch of range-count queries with the
//! SIMD tree search.
//!
//! ```sh
//! cargo run --release --example index_analytics
//! ```

use ninja_gap::kernels::merge_sort::MergeSort;
use ninja_gap::kernels::tree_search::TreeSearch;
use ninja_gap::kernels::ProblemSize;
use ninja_gap::parallel::ThreadPool;
use std::time::Instant;

fn main() {
    let pool = ThreadPool::new();

    // 1. Sort the "column" (the ingest step).
    let column = MergeSort::generate(ProblemSize::Quick, 7);
    println!("sorting a {}-row column...", column.len());
    let start = Instant::now();
    let naive_sorted = column.run_naive();
    let t_naive = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let sorted = column.run_ninja(&pool);
    let t_ninja = start.elapsed().as_secs_f64();
    assert_eq!(naive_sorted, sorted, "both sorts must agree");
    println!(
        "  textbook merge sort: {:.3}s   ninja SIMD merge sort: {:.3}s   ({:.2}X)",
        t_naive,
        t_ninja,
        t_naive / t_ninja
    );
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]));

    // 2. Probe the index (the query step) with the tree-search kernel.
    let index = TreeSearch::generate(ProblemSize::Quick, 9);
    println!(
        "\nanswering {} lower-bound queries against a {}-key index...",
        index.num_queries(),
        index.num_keys()
    );
    let start = Instant::now();
    let baseline = index.run_naive();
    let t_bst = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let answers = index.run_ninja(&pool);
    let t_simd = start.elapsed().as_secs_f64();
    assert_eq!(baseline, answers, "SIMD search must agree with the BST");
    println!(
        "  pointer BST: {:.3}s   SIMD-blocked Eytzinger: {:.3}s   ({:.2}X)",
        t_bst,
        t_simd,
        t_bst / t_simd
    );

    // 3. Use the answers: a tiny range-count "query plan".
    let hits_below_median = answers
        .iter()
        .filter(|&&rank| (rank as usize) < index.num_keys() / 2)
        .count();
    println!(
        "\nquery-plan result: {hits_below_median} of {} probes land in the lower half of the index",
        answers.len()
    );
}
