//! Domain example: pricing a real option book with the BlackScholes kernel
//! at each optimization tier, verifying put-call parity, and reporting
//! throughput in options/second.
//!
//! ```sh
//! cargo run --release --example option_pricing
//! ```

use ninja_gap::kernels::black_scholes::BlackScholes;
use ninja_gap::kernels::ProblemSize;
use ninja_gap::parallel::ThreadPool;
use std::time::Instant;

fn main() {
    let book = BlackScholes::generate(ProblemSize::Quick, 2024);
    let pool = ThreadPool::new();
    let n = book.len();
    println!("pricing {n} European options (call + put each)...\n");

    let mut last: Option<Vec<f32>> = None;
    for (label, run) in [
        (
            "naive (serial f64 libm)",
            Box::new(|| book.run_naive()) as Box<dyn Fn() -> Vec<f32>>,
        ),
        (
            "low-effort (SoA + poly + threads)",
            Box::new(|| book.run_algorithmic(&pool)),
        ),
        ("ninja (hand SIMD)", Box::new(|| book.run_ninja(&pool))),
    ] {
        let start = Instant::now();
        let prices = run();
        let secs = start.elapsed().as_secs_f64();
        println!(
            "{label:<36} {:>8.1} M options/s   (first call: {:.4})",
            n as f64 / secs / 1e6,
            prices[0]
        );
        if let Some(prev) = &last {
            let worst = prices
                .iter()
                .zip(prev.iter())
                .map(|(&a, &b)| (a - b).abs() as f64 / (b.abs() as f64).max(1.0))
                .fold(0.0f64, f64::max);
            println!("{:>36}   worst deviation vs previous tier: {worst:.2e}", "");
        }
        last = Some(prices);
    }

    // Sanity: call - put == S - K*exp(-rT) must hold for every contract.
    let prices = last.expect("priced at least once");
    let mut worst_parity = 0.0f64;
    for (i, c) in book.contracts().iter().enumerate() {
        let lhs = (prices[2 * i] - prices[2 * i + 1]) as f64;
        let rhs = c.spot as f64 - c.strike as f64 * (-(c.rate as f64) * c.years as f64).exp();
        worst_parity = worst_parity.max((lhs - rhs).abs() / (c.spot as f64));
    }
    println!("\nput-call parity worst relative violation: {worst_parity:.2e}");
    assert!(worst_parity < 1e-2, "parity must hold");
}
