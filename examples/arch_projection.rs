//! Architecture-projection example: the paper's forward-looking argument.
//!
//! Uses the roofline model to sweep the Ninja gap and the low-effort
//! residual across past, present, and hypothetical future machines —
//! showing that the gap keeps growing for naive code while restructured
//! code tracks the hardware.
//!
//! ```sh
//! cargo run --release --example arch_projection
//! ```

use ninja_gap::harness::render;
use ninja_gap::model::{geomean, machines, predicted_gap, predicted_residual};
use ninja_gap::prelude::*;

fn main() {
    let specs = registry();
    let mut timeline = machines::cpu_generations();
    timeline.push(machines::mic());
    for gens in 1..=3 {
        timeline.push(machines::future(gens));
    }

    println!("== Ninja gap vs architecture timeline (model projection) ==\n");
    let mut rows = Vec::new();
    for m in &timeline {
        let gaps: Vec<f64> = specs
            .iter()
            .map(|s| predicted_gap(&s.character, m))
            .collect();
        let residuals: Vec<f64> = specs
            .iter()
            .map(|s| predicted_residual(&s.character, m))
            .collect();
        rows.push(vec![
            m.name.clone(),
            m.year.to_string(),
            format!("{}C x {}w", m.cores, m.simd_f32_lanes),
            format!("{:.0}", m.peak_gflops()),
            format!("{:.1}X", geomean(&gaps)),
            format!("{:.2}X", geomean(&residuals)),
        ]);
    }
    println!(
        "{}",
        render::table(
            &[
                "platform",
                "year",
                "shape",
                "peak GF/s",
                "avg naive gap",
                "avg low-effort residual"
            ],
            &rows,
        )
    );
    println!(
        "The naive gap grows with every generation (the paper's warning);\n\
         the low-effort residual stays flat near the paper's 1.3X — i.e.\n\
         traditional programming keeps up once the code is restructured."
    );

    // Per-kernel view on the widest future machine.
    let future = machines::future(3);
    println!("\n== per-kernel projection on {} ==\n", future.name);
    let mut rows = Vec::new();
    for s in &specs {
        rows.push(vec![
            s.name.to_owned(),
            format!("{:.1}X", predicted_gap(&s.character, &future)),
            format!("{:.2}X", predicted_residual(&s.character, &future)),
        ]);
    }
    println!(
        "{}",
        render::table(&["kernel", "naive gap", "low-effort residual"], &rows)
    );
}
