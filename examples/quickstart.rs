//! Quickstart: measure the Ninja gap for one kernel on this machine and
//! compare it with the model's Westmere projection.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ninja_gap::prelude::*;

fn main() {
    // Pick the flagship kernel.
    let spec_name = "nbody";
    println!("== Ninja gap quickstart: {spec_name} ==\n");

    // 1. Measure every optimization tier on this host.
    let harness = Harness::new().size(ProblemSize::Quick).repetitions(3);
    println!(
        "measuring on this host ({} thread(s), {} backend)...\n",
        harness.num_threads(),
        ninja_gap::simd::backend_name()
    );
    let suite = harness.run_kernels(&[spec_name]);
    let report = suite.kernel(spec_name).expect("kernel ran");

    println!("{}", ninja_gap::harness::render::suite_table(&suite));
    println!(
        "measured Ninja gap (naive/ninja):        {:.2}X",
        report.measured_gap().expect("both variants ran")
    );
    println!(
        "measured residual (low-effort/ninja):    {:.2}X",
        report.measured_residual().expect("both variants ran")
    );

    // 2. Project onto the paper's 6-core Westmere and the MIC part.
    let spec = registry()
        .into_iter()
        .find(|s| s.name == spec_name)
        .expect("in registry");
    for m in [machines::westmere(), machines::mic()] {
        println!(
            "projected on {:<28} gap {:5.1}X, residual {:.2}X",
            m.name,
            predicted_gap(&spec.character, &m),
            predicted_residual(&spec.character, &m)
        );
    }
    println!("\n(The paper reports an average gap of 24X and residual of ~1.3X on Westmere.)");
}
