//! Domain example: a medical-imaging-flavoured pipeline — reconstruct a
//! slice from projections with the backprojection kernel, denoise it with
//! the 5×5 convolution, and render a volume built from slices.
//!
//! ```sh
//! cargo run --release --example image_pipeline
//! ```

use ninja_gap::kernels::backprojection::BackProjection;
use ninja_gap::kernels::conv2d::Conv2d;
use ninja_gap::kernels::volume_render::VolumeRender;
use ninja_gap::kernels::ProblemSize;
use ninja_gap::parallel::ThreadPool;
use std::time::Instant;

fn stage<T>(label: &str, f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    let secs = start.elapsed().as_secs_f64();
    println!("  {label:<44} {secs:>8.3}s");
    (out, secs)
}

fn main() {
    let pool = ThreadPool::new();
    println!("== imaging pipeline (naive vs ninja per stage) ==\n");

    // Stage 1: CT reconstruction.
    let bp = BackProjection::generate(ProblemSize::Quick, 3);
    println!(
        "backprojection ({0}x{0} image, {1} angles):",
        bp.image_dim(),
        bp.angles()
    );
    let (slice_naive, t1n) = stage("naive", || bp.run_naive());
    let (slice, t1j) = stage("ninja", || bp.run_ninja(&pool));
    let worst = slice
        .iter()
        .zip(slice_naive.iter())
        .map(|(&a, &b)| ((a - b).abs() / b.abs().max(1.0)) as f64)
        .fold(0.0f64, f64::max);
    println!("  speedup {:.2}X, worst deviation {worst:.2e}\n", t1n / t1j);

    // Stage 2: denoise the reconstructed slice.
    let conv = Conv2d::generate(ProblemSize::Quick, 4);
    println!("5x5 denoise convolution ({0}x{0}):", conv.width());
    let (_, t2n) = stage("naive", || conv.run_naive());
    let (_, t2j) = stage("ninja", || conv.run_ninja(&pool));
    println!("  speedup {:.2}X\n", t2n / t2j);

    // Stage 3: volume render a stack of slices.
    let vr = VolumeRender::generate(ProblemSize::Quick, 5);
    println!("volume rendering ({0}^3 volume):", vr.dim());
    let (img_naive, t3n) = stage("naive", || vr.run_naive());
    let (img, t3j) = stage("ninja ray packets", || vr.run_ninja(&pool));
    let worst = img
        .iter()
        .zip(img_naive.iter())
        .map(|(&a, &b)| ((a - b).abs() / b.abs().max(1.0)) as f64)
        .fold(0.0f64, f64::max);
    println!("  speedup {:.2}X, worst deviation {worst:.2e}\n", t3n / t3j);

    println!(
        "pipeline total: naive {:.3}s -> ninja {:.3}s ({:.2}X end to end)",
        t1n + t2n + t3n,
        t1j + t2j + t3j,
        (t1n + t2n + t3n) / (t1j + t2j + t3j)
    );
}
