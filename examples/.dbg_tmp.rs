use ninja_kernels::scalar_math::cnd_poly;
use ninja_simd::{F32x4, math::norm_cdf_v4, math::exp_v4};
fn main() {
    let x = 0.0f32;
    println!("scalar {:?}", cnd_poly(x));
    println!("vector {:?}", norm_cdf_v4(F32x4::splat(x)).lane(0));
    // components
    let ax = x.abs();
    let k = 1.0f32 / (ax * 0.231_641_9 + 1.0);
    println!("k scalar {k:?}");
    let kv = F32x4::splat(1.0) / F32x4::splat(ax).mul_add(F32x4::splat(0.231_641_9), F32x4::splat(1.0));
    println!("k vector {:?}", kv.lane(0));
    let e_s = {
        let arg = -(ax*ax)*0.5;
        println!("arg scalar {arg:?} bits {:x}", arg.to_bits());
        ninja_kernels::scalar_math::exp_poly(arg)
    };
    let argv = -(F32x4::splat(ax)*F32x4::splat(ax)) * F32x4::splat(0.5);
    println!("arg vector {:?} bits {:x}", argv.lane(0), argv.lane(0).to_bits());
    let e_v = exp_v4(argv).lane(0);
    println!("exp scalar {e_s:?} vector {e_v:?}");
}
