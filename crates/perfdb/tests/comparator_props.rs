//! Properties of the statistical comparator, over randomized but
//! internally consistent run records:
//!
//! 1. comparing a record against itself is always all-noise (no false
//!    regressions, no false improvements);
//! 2. a uniform 2x slowdown with bounded measurement spread is always a
//!    confirmed regression on every cell;
//! 3. verdicts are deterministic — repeated invocations produce an
//!    identical report, byte for byte.

use ninja_perfdb::{
    compare_records, CellRecord, CompareConfig, RecordMeta, RunRecord, Sample, Verdict,
    SCHEMA_VERSION,
};
use proptest::prelude::*;

/// Builds an internally consistent sample from a median and a relative
/// spread (the same dimensionless contract as `Sample::spread()`).
fn sample(median_s: f64, rel_spread: f64, runs: u32) -> Sample {
    let half = median_s * rel_spread / 2.0;
    Sample {
        median_s,
        mean_s: median_s,
        stddev_s: half / 2.0,
        min_s: median_s - half,
        max_s: median_s + half,
        runs,
    }
}

/// A record with one kernel ladder per entry of `cells`.
fn record(id: &str, cells: &[(String, String, Sample)]) -> RunRecord {
    let meta = RecordMeta::synthetic(id, "scalar");
    RunRecord {
        schema_version: SCHEMA_VERSION,
        id: id.to_owned(),
        timestamp_unix_s: meta.timestamp_unix_s,
        git_commit: meta.git_commit,
        machine: meta.machine,
        size: "quick".to_owned(),
        seed: 42,
        threads: 4,
        isa: String::new(),
        excluded: Vec::new(),
        cells: cells
            .iter()
            .map(|(kernel, variant, s)| CellRecord {
                kernel: kernel.clone(),
                variant: variant.clone(),
                outcome: "ok".to_owned(),
                sample: Some(*s),
                attribution: None,
                counters: None,
            })
            .collect(),
        vec_profiles: Vec::new(),
    }
}

const VARIANTS: [&str; 3] = ["naive", "optimized", "ninja"];

/// Random cell set: `n` kernels, three variants each, medians spanning
/// microseconds to seconds, spreads up to 30 % relative.
fn random_cells(
    n: usize,
    medians: &[f64],
    spreads: &[f64],
    runs: u32,
) -> Vec<(String, String, Sample)> {
    let mut cells = Vec::new();
    for k in 0..n {
        for (v, variant) in VARIANTS.iter().enumerate() {
            let i = (k * VARIANTS.len() + v) % medians.len();
            cells.push((
                format!("kernel-{k}"),
                (*variant).to_owned(),
                sample(medians[i], spreads[i % spreads.len()], runs),
            ));
        }
    }
    cells
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Self-comparison never reports a regression or improvement, for any
    /// sane record: every cell must come back `Noise`.
    #[test]
    fn self_compare_is_always_noise(
        n in 1usize..5,
        medians in prop::collection::vec(1e-6f64..2.0, 3..16),
        spreads in prop::collection::vec(0.0f64..0.3, 3..8),
        runs in 1u32..12,
    ) {
        let cells = random_cells(n, &medians, &spreads, runs);
        let rec = record("run-self", &cells);
        let report = compare_records(&rec, &rec, &CompareConfig::default());
        prop_assert_eq!(report.cells.len(), cells.len());
        prop_assert!(!report.has_regressions());
        for cell in &report.cells {
            prop_assert_eq!(cell.verdict, Verdict::Noise);
        }
        prop_assert_eq!(report.overall(), Verdict::Noise);
    }

    /// A uniform 2x slowdown on every cell is always confirmed as a
    /// regression on every cell (spreads bounded well below 2x keep the
    /// noise floor from swallowing the signal).
    #[test]
    fn doubled_medians_always_regress(
        n in 1usize..4,
        medians in prop::collection::vec(1e-6f64..2.0, 3..12),
        spreads in prop::collection::vec(0.0f64..0.3, 3..8),
        runs in 1u32..12,
    ) {
        let cells = random_cells(n, &medians, &spreads, runs);
        let slowed: Vec<_> = cells
            .iter()
            .map(|(k, v, s)| (k.clone(), v.clone(), s.scaled(2.0)))
            .collect();
        let baseline = record("run-base", &cells);
        let candidate = record("run-slow", &slowed);
        let report = compare_records(&baseline, &candidate, &CompareConfig::default());
        prop_assert!(report.has_regressions());
        for cell in &report.cells {
            prop_assert_eq!(cell.verdict, Verdict::Regressed);
        }
        prop_assert_eq!(report.overall(), Verdict::Regressed);
        // And the mirror image is a uniform improvement, never a regression.
        let mirrored = compare_records(&candidate, &baseline, &CompareConfig::default());
        prop_assert!(!mirrored.has_regressions());
        for cell in &mirrored.cells {
            prop_assert_eq!(cell.verdict, Verdict::Improved);
        }
    }

    /// The comparator is fully deterministic: the same pair of records
    /// yields a byte-identical report every time (the bootstrap PRNG is
    /// seeded from record and cell identity, never wall-clock).
    #[test]
    fn verdicts_are_deterministic(
        n in 1usize..4,
        medians in prop::collection::vec(1e-6f64..2.0, 3..12),
        spreads in prop::collection::vec(0.0f64..0.3, 3..8),
        factor in 0.5f64..2.0,
        runs in 1u32..12,
    ) {
        let cells = random_cells(n, &medians, &spreads, runs);
        let scaled: Vec<_> = cells
            .iter()
            .map(|(k, v, s)| (k.clone(), v.clone(), s.scaled(factor)))
            .collect();
        let baseline = record("run-a", &cells);
        let candidate = record("run-b", &scaled);
        let cfg = CompareConfig::default();
        let first = compare_records(&baseline, &candidate, &cfg);
        let second = compare_records(&baseline, &candidate, &cfg);
        prop_assert_eq!(first.to_json(), second.to_json());
        for (a, b) in first.cells.iter().zip(&second.cells) {
            prop_assert_eq!(a.verdict, b.verdict);
            prop_assert!((a.ci_lo - b.ci_lo).abs() < 1e-15);
            prop_assert!((a.ci_hi - b.ci_hi).abs() < 1e-15);
        }
    }
}
