//! End-to-end tests of the `perfdb` binary against the checked-in
//! fixture store (`tests/fixtures/runs.jsonl`).
//!
//! The fixture holds three runs of a two-kernel, five-variant suite:
//! `run-0001` and `run-0002` differ only by sub-noise jitter, while
//! `run-0003` carries a synthetic 2x slowdown on the `nbody`/`ninja`
//! cell. Regenerate with:
//!
//! ```text
//! REGEN_FIXTURES=1 cargo test -p ninja-perfdb --test cli_integration
//! ```

use ninja_perfdb::{CellRecord, MachineFingerprint, RunRecord, Sample, SCHEMA_VERSION};
use std::path::{Path, PathBuf};
use std::process::Command;

const KERNELS: [&str; 2] = ["blackscholes", "nbody"];
const VARIANTS: [&str; 5] = ["naive", "parallel", "simd", "algorithmic", "ninja"];

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn sample(median_s: f64) -> Sample {
    // 5 % relative spread, symmetric around the median.
    let half = median_s * 0.025;
    Sample {
        median_s,
        mean_s: median_s,
        stddev_s: half / 2.0,
        min_s: median_s - half,
        max_s: median_s + half,
        runs: 5,
    }
}

/// Deterministic per-cell base median: distinct, positive, stable.
fn base_median(kernel_idx: usize, variant_idx: usize) -> f64 {
    0.100 / (1.0 + kernel_idx as f64) / (1.0 + variant_idx as f64)
}

fn fixture_record(
    id: &str,
    timestamp: u64,
    scale: f64,
    slow_cell: Option<(&str, &str)>,
) -> RunRecord {
    let mut cells = Vec::new();
    for (ki, kernel) in KERNELS.iter().enumerate() {
        for (vi, variant) in VARIANTS.iter().enumerate() {
            let mut s = sample(base_median(ki, vi)).scaled(scale);
            if slow_cell == Some((kernel, variant)) {
                s = s.scaled(2.0);
            }
            cells.push(CellRecord {
                kernel: (*kernel).to_owned(),
                variant: (*variant).to_owned(),
                outcome: "ok".to_owned(),
                sample: Some(s),
                attribution: None,
                counters: None,
            });
        }
    }
    RunRecord {
        schema_version: SCHEMA_VERSION,
        id: id.to_owned(),
        timestamp_unix_s: timestamp,
        git_commit: "fixture".to_owned(),
        machine: MachineFingerprint::synthetic("scalar"),
        size: "test".to_owned(),
        seed: 42,
        threads: 2,
        isa: String::new(),
        excluded: vec!["chaos-panic".to_owned()],
        cells,
        vec_profiles: Vec::new(),
    }
}

/// The three fixture runs, oldest first.
fn fixture_records() -> Vec<RunRecord> {
    vec![
        fixture_record("run-0001", 1_700_000_000, 1.0, None),
        fixture_record("run-0002", 1_700_086_400, 1.005, None),
        fixture_record("run-0003", 1_700_172_800, 1.005, Some(("nbody", "ninja"))),
    ]
}

#[test]
fn fixture_store_is_in_sync_with_generator() {
    let path = fixture_dir().join("runs.jsonl");
    let expected: String = fixture_records()
        .iter()
        .map(|r| r.to_jsonl_line() + "\n")
        .collect();
    if std::env::var("REGEN_FIXTURES").is_ok() {
        std::fs::create_dir_all(fixture_dir()).unwrap();
        std::fs::write(&path, &expected).unwrap();
    }
    let on_disk = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    assert_eq!(
        on_disk, expected,
        "checked-in fixture drifted from its generator; \
         regenerate with REGEN_FIXTURES=1"
    );
    // And every line round-trips through the schema.
    for (i, line) in on_disk.lines().enumerate() {
        let rec = RunRecord::from_jsonl_line(line)
            .unwrap_or_else(|e| panic!("fixture line {}: {e}", i + 1));
        assert_eq!(rec, fixture_records()[i]);
    }
}

fn perfdb(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_perfdb"))
        .args(args)
        .args(["--store", fixture_dir().to_str().unwrap()])
        .output()
        .expect("spawn perfdb")
}

#[test]
fn compare_flags_the_synthetic_slowdown_with_machine_readable_output() {
    let out = perfdb(&[
        "compare",
        "latest~1",
        "--candidate",
        "latest",
        "--json",
        "-",
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "a confirmed regression must exit 1\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    // The JSON names the regressed cell.
    let json_start = stdout.find('{').expect("JSON report on stdout");
    let json = &stdout[json_start..];
    assert!(json.contains("\"kernel\": \"nbody\""), "json: {json}");
    assert!(json.contains("\"variant\": \"ninja\""), "json: {json}");
    assert!(json.contains("\"verdict\": \"regressed\""), "json: {json}");
    // Only that one cell regressed; the other nine are noise.
    assert_eq!(json.matches("\"verdict\": \"regressed\"").count(), 1);
    assert_eq!(json.matches("\"verdict\": \"noise\"").count(), 9);
}

#[test]
fn self_compare_is_noise_and_exits_zero() {
    let out = perfdb(&["compare", "latest", "--candidate", "latest"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "self-comparison must exit 0\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("verdict: noise"), "stdout: {stdout}");
    assert!(stdout.contains("0 regressed"), "stdout: {stdout}");
}

#[test]
fn quiet_neighbors_compare_as_noise() {
    // run-0001 vs run-0002 differ by 0.5 % — inside the 5 % spread floor.
    let out = perfdb(&["compare", "latest~2", "--candidate", "latest~1"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn min_of_k_window_still_catches_the_slowdown() {
    let out = perfdb(&[
        "compare",
        "latest~1",
        "--window",
        "2",
        "--candidate",
        "latest",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("min-of-"), "stdout: {stdout}");
}

#[test]
fn trend_renders_the_recorded_trajectory() {
    let out = perfdb(&["trend", "nbody"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("run-0001"), "stdout: {stdout}");
    assert!(stdout.contains("run-0003"), "stdout: {stdout}");
}

#[test]
fn unknown_reference_is_a_usage_error() {
    let out = perfdb(&["compare", "no-such-run"]);
    assert_eq!(out.status.code(), Some(2));
}
