//! Sweep-record wire tests: the checked-in `tests/fixtures/sweeps.jsonl`
//! fixture with its generator-sync test (same pattern as the `RunRecord`
//! fixture in `cli_integration.rs`), plus end-to-end `perfdb record
//! --sweep` / `trend` round-trips through the binary.
//!
//! Regenerate the fixture after an intentional schema change with:
//!
//! ```text
//! REGEN_FIXTURES=1 cargo test -p ninja-perfdb --test sweep_records
//! ```

use ninja_perfdb::{
    MachineFingerprint, Sample, Store, SweepCellRecord, SweepFitRecord, SweepRecord, SCHEMA_VERSION,
};
use std::path::{Path, PathBuf};
use std::process::Command;

const KERNELS: [(&str, &str); 2] = [("blackscholes", "compute"), ("nbody", "compute")];
const VARIANTS: [&str; 5] = ["naive", "parallel", "simd", "algorithmic", "ninja"];
const THREADS: [usize; 2] = [1, 2];

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn sample(median_s: f64) -> Sample {
    let half = median_s * 0.025;
    Sample {
        median_s,
        mean_s: median_s,
        stddev_s: half / 2.0,
        min_s: median_s - half,
        max_s: median_s + half,
        runs: 3,
    }
}

/// Deterministic per-cell 1-thread median (same shape as the run
/// fixture generator).
fn base_median(kernel_idx: usize, variant_idx: usize) -> f64 {
    0.100 / (1.0 + kernel_idx as f64) / (1.0 + variant_idx as f64)
}

/// One fixture sweep: a 2-kernel × 5-rung × {1,2}-thread grid whose
/// parallel/ninja rungs scale with serial fraction `sigma`.
fn fixture_sweep(id: &str, timestamp: u64, sigma: f64) -> SweepRecord {
    let mut cells = Vec::new();
    let mut fits = Vec::new();
    for (ki, &(kernel, bound)) in KERNELS.iter().enumerate() {
        for (vi, &variant) in VARIANTS.iter().enumerate() {
            let scales = matches!(variant, "parallel" | "ninja");
            for &threads in &THREADS {
                let speedup = if scales && threads > 1 {
                    threads as f64 / (1.0 + sigma * (threads as f64 - 1.0))
                } else {
                    1.0
                };
                cells.push(SweepCellRecord {
                    kernel: kernel.to_owned(),
                    variant: variant.to_owned(),
                    size: "test".to_owned(),
                    threads,
                    outcome: "ok".to_owned(),
                    sample: Some(sample(base_median(ki, vi) / speedup)),
                });
            }
            fits.push(SweepFitRecord {
                kernel: kernel.to_owned(),
                variant: variant.to_owned(),
                size: "test".to_owned(),
                bound: bound.to_owned(),
                serial_fraction: if scales { sigma } else { 1.0 },
                contention: if scales { sigma } else { 1.0 },
                coherency: 0.0,
                r_squared: 1.0,
                knee_threads: if scales { None } else { Some(2) },
            });
        }
    }
    SweepRecord {
        schema_version: SCHEMA_VERSION,
        id: id.to_owned(),
        timestamp_unix_s: timestamp,
        git_commit: "fixture".to_owned(),
        machine: MachineFingerprint::synthetic("scalar"),
        seed: 42,
        reps: 3,
        sizes: vec!["test".to_owned()],
        threads: THREADS.to_vec(),
        knee_threshold: 0.5,
        excluded: vec!["chaos-panic".to_owned()],
        cells,
        fits,
    }
}

/// The two fixture sweeps, oldest first: the serial fraction drifts
/// from 0.05 to 0.12 between commits — exactly the drift `perfdb trend`
/// exists to show.
fn fixture_sweeps() -> Vec<SweepRecord> {
    vec![
        fixture_sweep("sweep-0001", 1_700_000_000, 0.05),
        fixture_sweep("sweep-0002", 1_700_086_400, 0.12),
    ]
}

#[test]
fn sweep_fixture_is_in_sync_with_generator() {
    let path = fixture_dir().join("sweeps.jsonl");
    let expected: String = fixture_sweeps()
        .iter()
        .map(|r| r.to_jsonl_line() + "\n")
        .collect();
    if std::env::var("REGEN_FIXTURES").is_ok() {
        std::fs::create_dir_all(fixture_dir()).unwrap();
        std::fs::write(&path, &expected).unwrap();
    }
    let on_disk = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    assert_eq!(
        on_disk, expected,
        "checked-in sweep fixture drifted from its generator; \
         regenerate with REGEN_FIXTURES=1"
    );
    // And every line round-trips through the schema.
    for (i, line) in on_disk.lines().enumerate() {
        let rec = SweepRecord::from_jsonl_line(line)
            .unwrap_or_else(|e| panic!("fixture line {}: {e}", i + 1));
        assert_eq!(rec, fixture_sweeps()[i]);
    }
}

#[test]
fn store_loads_the_fixture_sweeps() {
    let store = Store::open(fixture_dir());
    let (sweeps, skipped) = store.load_sweeps_lossy().unwrap();
    assert_eq!(skipped, 0);
    assert_eq!(sweeps.len(), 2);
    let f0 = sweeps[0].fit("nbody", "parallel", "test").unwrap();
    let f1 = sweeps[1].fit("nbody", "parallel", "test").unwrap();
    assert!((f0.serial_fraction - 0.05).abs() < 1e-12);
    assert!((f1.serial_fraction - 0.12).abs() < 1e-12, "drift visible");
}

fn perfdb_in(store: &Path, args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_perfdb"))
        .args(args)
        .args(["--store", store.to_str().unwrap()])
        .output()
        .expect("spawn perfdb")
}

#[test]
fn trend_on_fixture_store_shows_serial_fraction_drift() {
    let out = perfdb_in(&fixture_dir(), &["trend", "nbody"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("serial-fraction drift"), "stdout: {stdout}");
    assert!(stdout.contains("sweep-0001"), "stdout: {stdout}");
    assert!(stdout.contains("sweep-0002"), "stdout: {stdout}");
    assert!(stdout.contains("0.050"), "stdout: {stdout}");
    assert!(stdout.contains("0.120"), "stdout: {stdout}");
}

#[test]
fn record_sweep_round_trips_through_the_binary() {
    let dir = std::env::temp_dir().join(format!("perfdb-sweep-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // A minimal sweep_report.json as `reproduce --scale` writes it.
    let report = r#"{
      "seed": 7, "reps": 1, "simd_backend": "scalar",
      "sizes": ["test"], "threads": [1, 2], "knee_threshold": 0.5,
      "cells": [
        {"kernel": "conv1d", "variant": "ninja", "size": "test", "threads": 1,
         "timing": {"median_s": 0.2, "mean_s": 0.2, "stddev_s": 0.0,
                    "min_s": 0.2, "max_s": 0.2, "runs": 1},
         "outcome": {"kind": "ok"}},
        {"kernel": "conv1d", "variant": "ninja", "size": "test", "threads": 2,
         "timing": {"median_s": 0.11, "mean_s": 0.11, "stddev_s": 0.0,
                    "min_s": 0.11, "max_s": 0.11, "runs": 1},
         "outcome": {"kind": "ok"}}
      ],
      "fits": [
        {"kernel": "conv1d", "variant": "ninja", "size": "test", "bound": "compute",
         "serial_fraction": 0.1, "contention": 0.1, "coherency": 0.0,
         "r_squared": 1.0, "knee_threads": null}
      ]
    }"#;
    let report_path = dir.join("sweep_report.json");
    std::fs::write(&report_path, report).unwrap();

    let store = dir.join("store");
    let out = perfdb_in(
        &store,
        &[
            "record",
            "--sweep",
            report_path.to_str().unwrap(),
            "--id",
            "sweep-cli",
            "--commit",
            "abc123",
            "--timestamp",
            "1700000000",
        ],
    );
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("recorded sweep sweep-cli"), "{stdout}");

    // The recorded sweep comes back out through `trend`.
    let out = perfdb_in(&store, &["trend", "conv1d"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("serial-fraction drift"), "{stdout}");
    assert!(stdout.contains("sweep-cli"), "{stdout}");
    assert!(stdout.contains("abc123"), "{stdout}");

    // And in machine-readable form.
    let out = perfdb_in(&store, &["trend", "conv1d", "--json", "-"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"sweeps\""), "{stdout}");
    assert!(stdout.contains("\"serial_fraction\""), "{stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_kernel_still_errors_with_sweeps_present() {
    let out = perfdb_in(&fixture_dir(), &["trend", "no-such-kernel"]);
    assert_eq!(out.status.code(), Some(2));
}
