//! Serve-record wire tests: the checked-in `tests/fixtures/serves.jsonl`
//! fixture with its generator-sync test (same pattern as the sweep
//! fixture in `sweep_records.rs`), plus end-to-end `perfdb record
//! --serve` / `trend` round-trips through the binary.
//!
//! Regenerate the fixture after an intentional schema change with:
//!
//! ```text
//! REGEN_FIXTURES=1 cargo test -p ninja-perfdb --test serve_records
//! ```

use ninja_perfdb::{MachineFingerprint, ServePointRecord, ServeRecord, Store, SCHEMA_VERSION};
use std::path::{Path, PathBuf};
use std::process::Command;

const RATES: [f64; 3] = [500.0, 2_000.0, 8_000.0];

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// One fixture serve run: a 3-rate SLO curve whose tail latency and
/// shed fraction grow with offered load, scaled by `tail` (the knob the
/// two fixture records drift on).
fn fixture_serve(id: &str, timestamp: u64, tail: f64) -> ServeRecord {
    let points = RATES
        .iter()
        .enumerate()
        .map(|(i, &rps)| {
            let pressure = i as u64;
            let ok = 500 - 60 * pressure;
            ServePointRecord {
                offered_rps: rps,
                sent: 500,
                ok,
                rejected: 40 * pressure,
                expired: 20 * pressure,
                incorrect: 0,
                degraded: 25 * pressure,
                p50_us: Some(400.0 * (1.0 + i as f64)),
                p99_us: Some(tail * (1.0 + 2.0 * i as f64)),
                trips: pressure,
                recoveries: pressure,
            }
        })
        .collect();
    ServeRecord {
        schema_version: SCHEMA_VERSION,
        id: id.to_owned(),
        timestamp_unix_s: timestamp,
        git_commit: "fixture".to_owned(),
        machine: MachineFingerprint::synthetic("scalar"),
        kernel: "blackscholes".to_owned(),
        threads: 4,
        chaos_seed: Some(2012),
        chaos_rate: Some(0.15),
        deadline_us: 50_000,
        points,
    }
}

/// The two fixture serve runs, oldest first: the p99 tail drifts from
/// 5ms to 9ms between commits — exactly the drift the serve section of
/// `perfdb trend` exists to show.
fn fixture_serves() -> Vec<ServeRecord> {
    vec![
        fixture_serve("serve-0001", 1_700_000_000, 5_000.0),
        fixture_serve("serve-0002", 1_700_086_400, 9_000.0),
    ]
}

#[test]
fn serve_fixture_is_in_sync_with_generator() {
    let path = fixture_dir().join("serves.jsonl");
    let expected: String = fixture_serves()
        .iter()
        .map(|r| r.to_jsonl_line() + "\n")
        .collect();
    if std::env::var("REGEN_FIXTURES").is_ok() {
        std::fs::create_dir_all(fixture_dir()).unwrap();
        std::fs::write(&path, &expected).unwrap();
    }
    let on_disk = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    assert_eq!(
        on_disk, expected,
        "checked-in serve fixture drifted from its generator; \
         regenerate with REGEN_FIXTURES=1"
    );
    // And every line round-trips through the schema.
    for (i, line) in on_disk.lines().enumerate() {
        let rec = ServeRecord::from_jsonl_line(line)
            .unwrap_or_else(|e| panic!("fixture line {}: {e}", i + 1));
        assert_eq!(rec, fixture_serves()[i]);
    }
}

#[test]
fn store_loads_the_fixture_serves() {
    let store = Store::open(fixture_dir());
    let (serves, skipped) = store.load_serves_lossy().unwrap();
    assert_eq!(skipped, 0);
    assert_eq!(serves.len(), 2);
    let p0 = serves[0].point(8_000.0).unwrap();
    let p1 = serves[1].point(8_000.0).unwrap();
    assert_eq!(p0.p99_us, Some(25_000.0));
    assert_eq!(p1.p99_us, Some(45_000.0), "tail drift visible");
    assert_eq!(serves[0].total_shed_or_expired(), 180);
}

fn perfdb_in(store: &Path, args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_perfdb"))
        .args(args)
        .args(["--store", store.to_str().unwrap()])
        .output()
        .expect("spawn perfdb")
}

#[test]
fn trend_on_fixture_store_shows_serving_slo_drift() {
    let out = perfdb_in(&fixture_dir(), &["trend", "blackscholes"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("serving SLO drift"), "stdout: {stdout}");
    assert!(stdout.contains("serve-0001"), "stdout: {stdout}");
    assert!(stdout.contains("serve-0002"), "stdout: {stdout}");
    assert!(stdout.contains("25000"), "stdout: {stdout}");
    assert!(stdout.contains("45000"), "stdout: {stdout}");
}

#[test]
fn record_serve_round_trips_through_the_binary() {
    let dir = std::env::temp_dir().join(format!("perfdb-serve-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // A minimal serve_report.json as `reproduce --serve` writes it.
    let report = r#"{
      "kernel": "libor", "threads": 2,
      "chaos_seed": null, "chaos_rate": null, "deadline_us": 50000,
      "points": [
        {"offered_rps": 1000.0, "sent": 200, "ok": 200, "rejected": 0,
         "expired": 0, "unresolved": 0, "incorrect": 0, "degraded": 0,
         "p50_us": 350.0, "p99_us": 2200.0, "trips": 0, "recoveries": 0}
      ]
    }"#;
    let report_path = dir.join("serve_report.json");
    std::fs::write(&report_path, report).unwrap();

    let store = dir.join("store");
    let out = perfdb_in(
        &store,
        &[
            "record",
            "--serve",
            report_path.to_str().unwrap(),
            "--id",
            "serve-cli",
            "--commit",
            "abc123",
            "--timestamp",
            "1700000000",
        ],
    );
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("recorded serve serve-cli"), "{stdout}");

    // The recorded serve run comes back out through `trend`.
    let out = perfdb_in(&store, &["trend", "libor"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("serving SLO drift"), "{stdout}");
    assert!(stdout.contains("serve-cli"), "{stdout}");
    assert!(stdout.contains("abc123"), "{stdout}");
    assert!(stdout.contains("off"), "chaos off renders: {stdout}");

    // And in machine-readable form.
    let out = perfdb_in(&store, &["trend", "libor", "--json", "-"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"serves\""), "{stdout}");
    assert!(stdout.contains("\"p99_us\""), "{stdout}");

    // --sweep and --serve together are a usage error.
    let out = perfdb_in(
        &store,
        &[
            "record",
            "--serve",
            report_path.to_str().unwrap(),
            "--sweep",
            report_path.to_str().unwrap(),
        ],
    );
    assert_eq!(out.status.code(), Some(2));

    let _ = std::fs::remove_dir_all(&dir);
}
