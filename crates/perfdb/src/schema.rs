//! The schema-versioned run record: one JSONL line per suite run.
//!
//! A [`RunRecord`] is a point-in-time snapshot of a measurement run —
//! machine fingerprint, git commit, timestamp, and the per-(kernel,
//! variant) timing summaries — stored append-only so the perf history of
//! the repository survives across commits and machines. Records are
//! ingested from the `suite_report.json` the harness already writes (the
//! store never re-runs kernels), and test-only `chaos-*` kernels are
//! excluded at ingestion time so fault-injection runs can never pollute
//! the history.

use serde::{DeError, Deserialize, Serialize, Value};

/// Version stamped into every record; bump on breaking schema changes.
pub const SCHEMA_VERSION: u32 = 1;

/// Kernel-name prefix of the fault-injection kernels that must never be
/// recorded (`chaos-panic`, `chaos-hang`, ...).
pub const EXCLUDED_KERNEL_PREFIX: &str = "chaos";

/// Whether a kernel is excluded from recorded runs and trend aggregates.
///
/// The `chaos` family exists to test the harness's failure handling; its
/// timings are meaningless, so the store refuses to ingest them.
pub fn kernel_is_excluded(name: &str) -> bool {
    name == EXCLUDED_KERNEL_PREFIX
        || name
            .strip_prefix(EXCLUDED_KERNEL_PREFIX)
            .is_some_and(|rest| rest.starts_with('-'))
}

/// Timing summary of one measured cell — a mirror of the harness's
/// `Measurement` (median-of-N wall-clock repetitions).
///
/// All time fields are in seconds.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Median wall-clock seconds across repetitions.
    pub median_s: f64,
    /// Arithmetic mean across repetitions.
    pub mean_s: f64,
    /// Sample standard deviation across repetitions.
    pub stddev_s: f64,
    /// Fastest repetition.
    pub min_s: f64,
    /// Slowest repetition.
    pub max_s: f64,
    /// Number of timed repetitions.
    pub runs: u32,
}

impl Sample {
    /// Relative spread `(max − min) / median`: dimensionless, in units of
    /// the median — the same contract as `Measurement::spread()` in
    /// `ninja-core`, and the default per-cell noise floor of the
    /// comparator.
    pub fn spread(&self) -> f64 {
        if self.median_s == 0.0 {
            0.0
        } else {
            (self.max_s - self.min_s) / self.median_s
        }
    }

    /// Whether the summary is internally consistent (finite, ordered,
    /// positive median). The comparator skips cells that fail this.
    pub fn is_sane(&self) -> bool {
        self.median_s.is_finite()
            && self.min_s.is_finite()
            && self.max_s.is_finite()
            && self.median_s > 0.0
            && self.min_s <= self.median_s
            && self.median_s <= self.max_s
            && self.runs > 0
    }

    /// The sample scaled by `factor` (used by tests and fixtures to build
    /// synthetic slowdowns with the same relative spread).
    pub fn scaled(&self, factor: f64) -> Sample {
        Sample {
            median_s: self.median_s * factor,
            mean_s: self.mean_s * factor,
            stddev_s: self.stddev_s * factor,
            min_s: self.min_s * factor,
            max_s: self.max_s * factor,
            runs: self.runs,
        }
    }
}

/// Roofline attribution of one measured cell — a mirror of
/// `ninja_model::Attribution` (this crate stays a std + serde-stand-in
/// leaf, so it names the fields rather than importing the type).
///
/// `pool_imbalance`/`pool_idle_pct` are zero when the run had probe
/// metrics off (no pool window was recorded).
#[derive(Clone, Debug, PartialEq)]
pub struct CellAttribution {
    /// Achieved arithmetic throughput, GFLOP/s.
    pub achieved_gflops: f64,
    /// Achieved memory traffic, GB/s.
    pub achieved_gbs: f64,
    /// Percent of the machine roofline the cell reached (0-100).
    pub roofline_pct: f64,
    /// Bound classification: `compute`, `bandwidth`, or `poorly-utilized`.
    pub bound: String,
    /// Thread-pool imbalance ratio over the cell's window (1.0 = even).
    pub pool_imbalance: f64,
    /// Percent of the pool's thread-time spent idle over the window.
    pub pool_idle_pct: f64,
    /// Stolen share of the pool jobs executed over the window (0.0 when
    /// not collected, or when the region scheduled purely through
    /// `parallel_for` chunk claiming).
    pub pool_steal_ratio: f64,
}

// Hand-written (not derived) so records written before `pool_steal_ratio`
// existed — including the checked-in CLI fixtures — keep their exact
// bytes: the field is omitted when zero on write and defaulted on read.
impl Serialize for CellAttribution {
    fn to_value(&self) -> Value {
        let mut pairs = vec![
            (
                "achieved_gflops".to_owned(),
                self.achieved_gflops.to_value(),
            ),
            ("achieved_gbs".to_owned(), self.achieved_gbs.to_value()),
            ("roofline_pct".to_owned(), self.roofline_pct.to_value()),
            ("bound".to_owned(), self.bound.to_value()),
            ("pool_imbalance".to_owned(), self.pool_imbalance.to_value()),
            ("pool_idle_pct".to_owned(), self.pool_idle_pct.to_value()),
        ];
        if self.pool_steal_ratio != 0.0 {
            pairs.push((
                "pool_steal_ratio".to_owned(),
                self.pool_steal_ratio.to_value(),
            ));
        }
        Value::Object(pairs)
    }
}

impl Deserialize for CellAttribution {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Self {
            achieved_gflops: f64::from_value(v.field("achieved_gflops")?)?,
            achieved_gbs: f64::from_value(v.field("achieved_gbs")?)?,
            roofline_pct: f64::from_value(v.field("roofline_pct")?)?,
            bound: String::from_value(v.field("bound")?)?,
            pool_imbalance: f64::from_value(v.field("pool_imbalance")?)?,
            pool_idle_pct: f64::from_value(v.field("pool_idle_pct")?)?,
            pool_steal_ratio: match v.field("pool_steal_ratio") {
                Ok(val) => f64::from_value(val)?,
                Err(_) => 0.0,
            },
        })
    }
}

impl CellAttribution {
    /// Whether a thread-pool utilization window was recorded for the cell.
    pub fn has_pool_data(&self) -> bool {
        self.pool_imbalance > 0.0
    }
}

/// Hardware-counter metrics measured for one cell — a mirror of the
/// measured subset of `ninja_model::Attribution`, recorded only for runs
/// where `perf_event_open` was available. Every field is optional: a
/// partially-admitted counter group reports what it saw.
#[derive(Clone, Debug, PartialEq)]
pub struct CellCounters {
    /// Measured instructions per cycle over the timed reps.
    pub ipc: Option<f64>,
    /// Measured LLC miss rate in `[0, 1]`.
    pub llc_miss_rate: Option<f64>,
    /// DRAM traffic estimated from LLC miss traffic, GB/s.
    pub dram_gbs: Option<f64>,
    /// Bound classification the hardware measured (`compute` /
    /// `bandwidth` / `poorly-utilized`).
    pub measured_bound: Option<String>,
    /// Whether the measured bound agreed with the modeled one.
    pub agreement: Option<bool>,
}

// Hand-written (not derived): each field is omitted when `None` on write
// and defaulted on read, so the struct itself follows the same tolerant
// wire contract as the `counters` key that carries it.
impl Serialize for CellCounters {
    fn to_value(&self) -> Value {
        let mut pairs = Vec::new();
        if let Some(v) = self.ipc {
            pairs.push(("ipc".to_owned(), v.to_value()));
        }
        if let Some(v) = self.llc_miss_rate {
            pairs.push(("llc_miss_rate".to_owned(), v.to_value()));
        }
        if let Some(v) = self.dram_gbs {
            pairs.push(("dram_gbs".to_owned(), v.to_value()));
        }
        if let Some(v) = &self.measured_bound {
            pairs.push(("measured_bound".to_owned(), v.to_value()));
        }
        if let Some(v) = self.agreement {
            pairs.push(("agreement".to_owned(), v.to_value()));
        }
        Value::Object(pairs)
    }
}

impl Deserialize for CellCounters {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        fn opt<T: Deserialize>(v: &Value, name: &str) -> Result<Option<T>, DeError> {
            match v.field(name) {
                Ok(val) => Ok(Some(T::from_value(val)?)),
                Err(_) => Ok(None),
            }
        }
        Ok(Self {
            ipc: opt(v, "ipc")?,
            llc_miss_rate: opt(v, "llc_miss_rate")?,
            dram_gbs: opt(v, "dram_gbs")?,
            measured_bound: opt(v, "measured_bound")?,
            agreement: opt(v, "agreement")?,
        })
    }
}

impl CellCounters {
    /// Extracts the measured-counter subset from a serialized
    /// `Attribution` value (the suite report inlines the measured fields
    /// in the attribution object). `None` when the run carried no
    /// counter data for the cell.
    fn from_attribution_value(v: &Value) -> Option<Self> {
        let f64_field = |name: &str| v.field(name).ok().and_then(|x| f64::from_value(x).ok());
        let counters = Self {
            ipc: f64_field("measured_ipc"),
            llc_miss_rate: f64_field("measured_llc_miss_rate"),
            dram_gbs: f64_field("measured_dram_gbs"),
            measured_bound: v
                .field("measured_bound")
                .ok()
                .and_then(|x| String::from_value(x).ok()),
            agreement: v
                .field("agreement")
                .ok()
                .and_then(|x| bool::from_value(x).ok()),
        };
        counters.any_present().then_some(counters)
    }

    /// Whether any measured field is populated.
    pub fn any_present(&self) -> bool {
        self.ipc.is_some()
            || self.llc_miss_rate.is_some()
            || self.dram_gbs.is_some()
            || self.measured_bound.is_some()
            || self.agreement.is_some()
    }
}

/// One recorded (kernel, variant) cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CellRecord {
    /// Kernel name (as in the suite registry).
    pub kernel: String,
    /// Variant rung (`naive`..`ninja`).
    pub variant: String,
    /// Outcome tag (`ok|validation_failed|panicked|timed_out|non_finite`).
    pub outcome: String,
    /// Timing summary; `None` when the variant failed before measuring.
    pub sample: Option<Sample>,
    /// Roofline attribution; `None` for failed cells and for records
    /// written before the field existed.
    pub attribution: Option<CellAttribution>,
    /// Hardware-counter metrics; `None` for failed cells, for runs
    /// measured without (or denied) `perf_event_open`, and for records
    /// written before the field existed.
    pub counters: Option<CellCounters>,
}

// Hand-written (not derived) so records written before `attribution` or
// `counters` existed — including the checked-in CLI fixtures — keep
// their exact bytes: both fields are omitted when `None` on write and
// defaulted on read. `sample` stays `null` for failed cells, as it
// always was.
impl Serialize for CellRecord {
    fn to_value(&self) -> Value {
        let mut pairs = vec![
            ("kernel".to_owned(), self.kernel.to_value()),
            ("variant".to_owned(), self.variant.to_value()),
            ("outcome".to_owned(), self.outcome.to_value()),
            ("sample".to_owned(), self.sample.to_value()),
        ];
        if let Some(a) = &self.attribution {
            pairs.push(("attribution".to_owned(), a.to_value()));
        }
        if let Some(c) = &self.counters {
            pairs.push(("counters".to_owned(), c.to_value()));
        }
        Value::Object(pairs)
    }
}

impl Deserialize for CellRecord {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Self {
            kernel: String::from_value(v.field("kernel")?)?,
            variant: String::from_value(v.field("variant")?)?,
            outcome: String::from_value(v.field("outcome")?)?,
            sample: Option::from_value(v.field("sample")?)?,
            attribution: match v.field("attribution") {
                Ok(val) => Option::from_value(val)?,
                Err(_) => None,
            },
            counters: match v.field("counters") {
                Ok(val) => Option::from_value(val)?,
                Err(_) => None,
            },
        })
    }
}

impl CellRecord {
    /// Whether this cell holds a trustworthy, comparable measurement.
    pub fn is_ok(&self) -> bool {
        self.outcome == "ok" && self.sample.as_ref().is_some_and(Sample::is_sane)
    }
}

/// Assembly-level vectorization evidence for one (kernel, rung) cell — a
/// mirror of the suite report's `vec_profiles` entries (this crate stays
/// a std + serde-stand-in leaf, so it names the fields rather than
/// importing `ninja-core`). Recorded by `ninja-lint --asm` and carried
/// through `reproduce --record` so `perfdb compare` can attribute a
/// timing shift to a codegen change ("vector width changed 256 → 128").
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VecProfileRecord {
    /// Kernel module name.
    pub kernel: String,
    /// Rung name (`naive`/`parallel`/`simd`/`algorithmic`/`ninja`).
    pub rung: String,
    /// Widest vector register observed (bits); 0 for scalar code.
    pub width_bits: u32,
    /// Whether fused multiply-add instructions appeared.
    pub fma: bool,
    /// Whether vector gather loads appeared.
    pub gather: bool,
    /// Whether vector scatter stores appeared.
    pub scatter: bool,
    /// Packed floating-point arithmetic instruction count.
    pub vector_fp_ops: u32,
    /// Scalar floating-point arithmetic instruction count.
    pub scalar_fp_ops: u32,
    /// Integer vector arithmetic/shuffle instruction count.
    pub vector_int_ops: u32,
    /// Listing symbols attributed to this rung's entry points.
    pub matched_symbols: u32,
    /// Summary tag: `no-evidence`, `scalar`, `vec64` … `vec512`.
    pub classification: String,
}

/// Where a run was measured: enough to tell apples from oranges when
/// comparing records, without pretending two hosts are interchangeable.
///
/// The `calibrated_*` fields reuse the calibratable subset of
/// `ninja_model::machines::Machine` (frequency from the measured scalar
/// rate, effective SIMD lanes, streaming bandwidth); they are optional
/// because calibration costs ~1 s and quick CI runs skip it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineFingerprint {
    /// Host name (from `/proc/sys/kernel/hostname` or `$HOSTNAME`).
    pub hostname: String,
    /// Logical cores visible to the process.
    pub logical_cores: u32,
    /// Active SIMD backend (from `ninja_simd::backend_name` via the
    /// suite report).
    pub simd_backend: String,
    /// Calibrated core frequency proxy in GHz (scalar GFLOP/s ÷ 2),
    /// `None` when calibration was skipped.
    pub calibrated_freq_ghz: Option<f64>,
    /// Calibrated effective SIMD width in `f32` lanes.
    pub calibrated_simd_f32_lanes: Option<u32>,
    /// Calibrated single-core streaming bandwidth, GB/s.
    pub calibrated_core_bandwidth_gbs: Option<f64>,
}

impl MachineFingerprint {
    /// Detects hostname and core count from the environment; calibrated
    /// fields start empty (fill them from `ninja_model::calibrate` when
    /// the ~1 s cost is acceptable).
    pub fn detect(simd_backend: &str) -> Self {
        Self {
            hostname: detect_hostname(),
            logical_cores: std::thread::available_parallelism()
                .map(|n| n.get() as u32)
                .unwrap_or(1),
            simd_backend: simd_backend.to_owned(),
            calibrated_freq_ghz: None,
            calibrated_simd_f32_lanes: None,
            calibrated_core_bandwidth_gbs: None,
        }
    }

    /// A fixed fingerprint for in-memory conversions and tests: no I/O,
    /// fully deterministic.
    pub fn synthetic(simd_backend: &str) -> Self {
        Self {
            hostname: "in-memory".to_owned(),
            logical_cores: 1,
            simd_backend: simd_backend.to_owned(),
            calibrated_freq_ghz: None,
            calibrated_simd_f32_lanes: None,
            calibrated_core_bandwidth_gbs: None,
        }
    }
}

fn detect_hostname() -> String {
    if let Ok(s) = std::fs::read_to_string("/proc/sys/kernel/hostname") {
        let s = s.trim();
        if !s.is_empty() {
            return s.to_owned();
        }
    }
    std::env::var("HOSTNAME").unwrap_or_else(|_| "unknown-host".to_owned())
}

/// Metadata attached to a record at ingestion time (everything the suite
/// report itself does not know).
#[derive(Clone, Debug)]
pub struct RecordMeta {
    /// Record id; `None` derives a content-based id.
    pub id: Option<String>,
    /// Unix timestamp (seconds) of the run.
    pub timestamp_unix_s: u64,
    /// Git commit the run measured (short hash, or `unknown`).
    pub git_commit: String,
    /// Where the run was measured.
    pub machine: MachineFingerprint,
}

impl RecordMeta {
    /// Detects timestamp, commit, and machine from the environment.
    pub fn detect(simd_backend: &str) -> Self {
        Self {
            id: None,
            timestamp_unix_s: now_unix(),
            git_commit: detect_git_commit(),
            machine: MachineFingerprint::detect(simd_backend),
        }
    }

    /// A deterministic meta for in-memory conversions: fixed id, zero
    /// timestamp, no environment probes.
    pub fn synthetic(id: &str, simd_backend: &str) -> Self {
        Self {
            id: Some(id.to_owned()),
            timestamp_unix_s: 0,
            git_commit: "unknown".to_owned(),
            machine: MachineFingerprint::synthetic(simd_backend),
        }
    }
}

/// Current Unix time in seconds (0 if the clock is before the epoch).
pub fn now_unix() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Short hash of `HEAD`, or `"unknown"` outside a git checkout.
pub fn detect_git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// One suite run, as stored (one JSONL line per record).
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Schema version ([`SCHEMA_VERSION`] at write time).
    pub schema_version: u32,
    /// Unique record id (content-derived unless supplied).
    pub id: String,
    /// Unix timestamp (seconds) of the run.
    pub timestamp_unix_s: u64,
    /// Git commit measured.
    pub git_commit: String,
    /// Where the run was measured.
    pub machine: MachineFingerprint,
    /// Problem-size preset of the run.
    pub size: String,
    /// Input-generation seed.
    pub seed: u64,
    /// Pool threads used by parallel variants.
    pub threads: usize,
    /// Resolved ISA dispatch backend the ninja rungs ran on (`scalar`,
    /// `sse2`, `avx2`, `neon`); empty for records written before the
    /// width-generic dispatcher existed.
    pub isa: String,
    /// Kernels present in the suite report but excluded from the record
    /// (currently: the `chaos-*` fault-injection family).
    pub excluded: Vec<String>,
    /// Recorded cells, suite order.
    pub cells: Vec<CellRecord>,
    /// Vectorization evidence per (kernel, rung); empty for runs recorded
    /// without the asm oracle (and for every record written before the
    /// field existed).
    pub vec_profiles: Vec<VecProfileRecord>,
}

// Hand-written (not derived) so records written before `vec_profiles`
// existed — including the checked-in CLI fixtures — keep their exact
// bytes: the field is omitted when empty on write and defaulted on read.
// Same pattern as `CellRecord::attribution` above.
impl Serialize for RunRecord {
    fn to_value(&self) -> Value {
        let mut pairs = vec![
            ("schema_version".to_owned(), self.schema_version.to_value()),
            ("id".to_owned(), self.id.to_value()),
            (
                "timestamp_unix_s".to_owned(),
                self.timestamp_unix_s.to_value(),
            ),
            ("git_commit".to_owned(), self.git_commit.to_value()),
            ("machine".to_owned(), self.machine.to_value()),
            ("size".to_owned(), self.size.to_value()),
            ("seed".to_owned(), self.seed.to_value()),
            ("threads".to_owned(), self.threads.to_value()),
            ("excluded".to_owned(), self.excluded.to_value()),
            ("cells".to_owned(), self.cells.to_value()),
        ];
        if !self.isa.is_empty() {
            pairs.push(("isa".to_owned(), self.isa.to_value()));
        }
        if !self.vec_profiles.is_empty() {
            pairs.push(("vec_profiles".to_owned(), self.vec_profiles.to_value()));
        }
        Value::Object(pairs)
    }
}

impl Deserialize for RunRecord {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Self {
            schema_version: u32::from_value(v.field("schema_version")?)?,
            id: String::from_value(v.field("id")?)?,
            timestamp_unix_s: u64::from_value(v.field("timestamp_unix_s")?)?,
            git_commit: String::from_value(v.field("git_commit")?)?,
            machine: MachineFingerprint::from_value(v.field("machine")?)?,
            size: String::from_value(v.field("size")?)?,
            seed: u64::from_value(v.field("seed")?)?,
            threads: usize::from_value(v.field("threads")?)?,
            isa: match v.field("isa") {
                Ok(val) => String::from_value(val)?,
                Err(_) => String::new(),
            },
            excluded: Vec::from_value(v.field("excluded")?)?,
            cells: Vec::from_value(v.field("cells")?)?,
            vec_profiles: match v.field("vec_profiles") {
                Ok(val) => Vec::from_value(val)?,
                Err(_) => Vec::new(),
            },
        })
    }
}

// ---- suite_report.json wire mirror -------------------------------------
//
// The store ingests the JSON the harness already writes instead of
// depending on `ninja-core` (this crate stays a std + serde-stand-in
// leaf, like `ninja-lint`). The mirror structs name only the fields the
// record needs; extra fields in the JSON are ignored by the value-model
// deserializer.

#[derive(Deserialize)]
struct OutcomeWire {
    kind: String,
}

struct VariantWire {
    variant: String,
    timing: Option<Sample>,
    outcome: OutcomeWire,
    attribution: Option<CellAttribution>,
    /// The measured-counter subset, split out of the same attribution
    /// object (the suite report inlines `measured_*` fields there).
    counters: Option<CellCounters>,
}

// Hand-written so suite reports written before `attribution` existed
// still ingest (the derive stand-in errors on any missing field).
impl Deserialize for VariantWire {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let (attribution, counters) = match v.field("attribution") {
            Ok(val) => (
                Option::from_value(val)?,
                CellCounters::from_attribution_value(val),
            ),
            Err(_) => (None, None),
        };
        Ok(Self {
            variant: String::from_value(v.field("variant")?)?,
            timing: Option::from_value(v.field("timing")?)?,
            outcome: OutcomeWire::from_value(v.field("outcome")?)?,
            attribution,
            counters,
        })
    }
}

#[derive(Deserialize)]
struct KernelWire {
    kernel: String,
    variants: Vec<VariantWire>,
}

struct SuiteWire {
    size: String,
    seed: u64,
    threads: usize,
    simd_backend: String,
    isa: String,
    kernels: Vec<KernelWire>,
    vec_profiles: Vec<VecProfileRecord>,
}

// Hand-written so suite reports written before `vec_profiles` or `isa`
// existed still ingest.
impl Deserialize for SuiteWire {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Self {
            size: String::from_value(v.field("size")?)?,
            seed: u64::from_value(v.field("seed")?)?,
            threads: usize::from_value(v.field("threads")?)?,
            simd_backend: String::from_value(v.field("simd_backend")?)?,
            isa: match v.field("isa") {
                Ok(val) => String::from_value(val)?,
                Err(_) => String::new(),
            },
            kernels: Vec::from_value(v.field("kernels")?)?,
            vec_profiles: match v.field("vec_profiles") {
                Ok(val) => Vec::from_value(val)?,
                Err(_) => Vec::new(),
            },
        })
    }
}

impl RunRecord {
    /// Builds a record from a serialized `SuiteReport` (the
    /// `suite_report.json` the `reproduce` binary writes).
    ///
    /// `chaos-*` kernels are dropped and listed in
    /// [`excluded`](RunRecord::excluded); failed cells of real kernels
    /// are kept with their outcome tag and no sample.
    ///
    /// # Errors
    ///
    /// Returns a message when the JSON does not parse as a suite report.
    pub fn from_suite_json(json: &str, meta: &RecordMeta) -> Result<Self, String> {
        let suite: SuiteWire =
            serde_json::from_str(json).map_err(|e| format!("not a suite report: {e}"))?;
        let mut excluded = Vec::new();
        let mut cells = Vec::new();
        for k in &suite.kernels {
            if kernel_is_excluded(&k.kernel) {
                excluded.push(k.kernel.clone());
                continue;
            }
            for v in &k.variants {
                let ok = v.outcome.kind == "ok";
                cells.push(CellRecord {
                    kernel: k.kernel.clone(),
                    variant: v.variant.clone(),
                    outcome: v.outcome.kind.clone(),
                    sample: if ok { v.timing } else { None },
                    attribution: if ok { v.attribution.clone() } else { None },
                    counters: if ok { v.counters.clone() } else { None },
                });
            }
        }
        let vec_profiles = suite
            .vec_profiles
            .into_iter()
            .filter(|p| !kernel_is_excluded(&p.kernel))
            .collect();
        let mut record = RunRecord {
            schema_version: SCHEMA_VERSION,
            id: String::new(),
            timestamp_unix_s: meta.timestamp_unix_s,
            git_commit: meta.git_commit.clone(),
            machine: meta.machine.clone(),
            size: suite.size,
            seed: suite.seed,
            threads: suite.threads,
            isa: suite.isa,
            excluded,
            cells,
            vec_profiles,
        };
        // The suite report carries the authoritative backend name.
        record.machine.simd_backend = suite.simd_backend;
        record.id = match &meta.id {
            Some(id) => id.clone(),
            None => record.derive_id(),
        };
        Ok(record)
    }

    /// Content-derived id: `run-<fnv64 of the identifying fields>`.
    pub fn derive_id(&self) -> String {
        let mut h = fnv1a64(b"ninja-perfdb");
        for part in [
            self.git_commit.as_str(),
            self.machine.hostname.as_str(),
            self.size.as_str(),
            self.isa.as_str(),
        ] {
            h = fnv1a64_continue(h, part.as_bytes());
        }
        h = fnv1a64_continue(h, &self.timestamp_unix_s.to_le_bytes());
        h = fnv1a64_continue(h, &self.seed.to_le_bytes());
        h = fnv1a64_continue(h, &(self.cells.len() as u64).to_le_bytes());
        format!("run-{h:016x}")
    }

    /// Looks up one cell.
    pub fn cell(&self, kernel: &str, variant: &str) -> Option<&CellRecord> {
        self.cells
            .iter()
            .find(|c| c.kernel == kernel && c.variant == variant)
    }

    /// Looks up the vectorization evidence recorded for one (kernel,
    /// rung) cell, when the run carried the asm oracle's profiles.
    pub fn vec_profile(&self, kernel: &str, variant: &str) -> Option<&VecProfileRecord> {
        self.vec_profiles
            .iter()
            .find(|p| p.kernel == kernel && p.rung == variant)
    }

    /// Kernel names present in the record, in first-seen order.
    pub fn kernels(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for c in &self.cells {
            if !names.contains(&c.kernel.as_str()) {
                names.push(&c.kernel);
            }
        }
        names
    }

    /// Median seconds of one cell, when it measured cleanly.
    pub fn median_s(&self, kernel: &str, variant: &str) -> Option<f64> {
        let c = self.cell(kernel, variant)?;
        if c.is_ok() {
            c.sample.map(|s| s.median_s)
        } else {
            None
        }
    }

    /// Measured Ninja gap of one kernel: `time(naive) / time(ninja)`.
    pub fn measured_gap(&self, kernel: &str) -> Option<f64> {
        Some(self.median_s(kernel, "naive")? / self.median_s(kernel, "ninja")?)
    }

    /// Measured residual of one kernel: `time(algorithmic) / time(ninja)`.
    pub fn measured_residual(&self, kernel: &str) -> Option<f64> {
        Some(self.median_s(kernel, "algorithmic")? / self.median_s(kernel, "ninja")?)
    }

    /// Serializes the record as one compact JSON line.
    pub fn to_jsonl_line(&self) -> String {
        serde_json::to_string(self).expect("run records are serializable")
    }

    /// Parses one JSONL line, checking the schema version.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON or a foreign schema version.
    pub fn from_jsonl_line(line: &str) -> Result<Self, String> {
        let rec: RunRecord = serde_json::from_str(line).map_err(|e| e.to_string())?;
        if rec.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "record {} has schema v{}, this build reads v{}",
                rec.id, rec.schema_version, SCHEMA_VERSION
            ));
        }
        Ok(rec)
    }
}

/// FNV-1a over one buffer.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_continue(0xcbf2_9ce4_8422_2325, bytes)
}

/// Continues an FNV-1a hash over more bytes.
pub(crate) fn fnv1a64_continue(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample(median: f64, rel_spread: f64) -> Sample {
        Sample {
            median_s: median,
            mean_s: median,
            stddev_s: median * rel_spread / 4.0,
            min_s: median * (1.0 - rel_spread / 2.0),
            max_s: median * (1.0 + rel_spread / 2.0),
            runs: 5,
        }
    }

    fn suite_json() -> String {
        // Hand-built fragment of a suite_report.json: one real kernel, one
        // chaos kernel, one failed cell.
        r#"{
          "size": "test", "seed": 42, "threads": 2, "simd_backend": "sse-intrinsics",
          "kernels": [
            {"kernel": "nbody", "bound": "compute", "variants": [
              {"variant": "naive", "timing": {"median_s": 8.0, "mean_s": 8.0, "stddev_s": 0.1,
               "min_s": 7.9, "max_s": 8.2, "runs": 3}, "checksum": 1.0, "gflops": 1.0,
               "gbs": 1.0, "validated": true, "outcome": {"kind": "ok"},
               "attribution": {"achieved_gflops": 1.0, "achieved_gbs": 1.0,
                "roofline_pct": 4.2, "bound": "compute",
                "pool_imbalance": 1.1, "pool_idle_pct": 12.0}},
              {"variant": "ninja", "timing": null, "checksum": 0.0, "gflops": 0.0,
               "gbs": 0.0, "validated": true, "outcome": {"kind": "panicked", "message": "boom"}}
            ]},
            {"kernel": "chaos-panic", "bound": "compute", "variants": [
              {"variant": "naive", "timing": {"median_s": 1.0, "mean_s": 1.0, "stddev_s": 0.0,
               "min_s": 1.0, "max_s": 1.0, "runs": 1}, "checksum": 1.0, "gflops": 1.0,
               "gbs": 1.0, "validated": true, "outcome": {"kind": "ok"}}
            ]}
          ]
        }"#
        .to_owned()
    }

    #[test]
    fn ingestion_excludes_chaos_and_keeps_failures() {
        let meta = RecordMeta::synthetic("r1", "scalar");
        let rec = RunRecord::from_suite_json(&suite_json(), &meta).unwrap();
        assert_eq!(rec.id, "r1");
        assert_eq!(rec.excluded, ["chaos-panic"]);
        assert_eq!(rec.kernels(), ["nbody"]);
        assert_eq!(rec.cells.len(), 2);
        let naive = rec.cell("nbody", "naive").unwrap();
        assert!(naive.is_ok());
        let attr = naive.attribution.as_ref().expect("attribution ingested");
        assert_eq!(attr.bound, "compute");
        assert!((attr.roofline_pct - 4.2).abs() < 1e-12);
        assert!(attr.has_pool_data());
        let failed = rec.cell("nbody", "ninja").unwrap();
        assert_eq!(failed.outcome, "panicked");
        assert!(failed.sample.is_none());
        assert!(failed.attribution.is_none());
        assert!(!failed.is_ok());
        // The report's backend wins over the meta placeholder.
        assert_eq!(rec.machine.simd_backend, "sse-intrinsics");
    }

    #[test]
    fn chaos_name_matching_is_exact_prefix() {
        assert!(kernel_is_excluded("chaos"));
        assert!(kernel_is_excluded("chaos-panic"));
        assert!(kernel_is_excluded("chaos-hang"));
        assert!(!kernel_is_excluded("chaotic_flow"));
        assert!(!kernel_is_excluded("nbody"));
    }

    #[test]
    fn jsonl_roundtrip_and_schema_check() {
        let meta = RecordMeta::synthetic("r2", "scalar");
        let rec = RunRecord::from_suite_json(&suite_json(), &meta).unwrap();
        let back = RunRecord::from_jsonl_line(&rec.to_jsonl_line()).unwrap();
        assert_eq!(rec, back);

        let mut foreign = rec.clone();
        foreign.schema_version = SCHEMA_VERSION + 1;
        let err = RunRecord::from_jsonl_line(&foreign.to_jsonl_line()).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn derived_ids_are_stable_and_content_sensitive() {
        let meta = RecordMeta {
            id: None,
            ..RecordMeta::synthetic("unused", "scalar")
        };
        let a = RunRecord::from_suite_json(&suite_json(), &meta).unwrap();
        let b = RunRecord::from_suite_json(&suite_json(), &meta).unwrap();
        assert_eq!(a.id, b.id, "same content, same id");
        assert!(a.id.starts_with("run-"));
        let other_meta = RecordMeta {
            id: None,
            timestamp_unix_s: 12345,
            ..meta
        };
        let c = RunRecord::from_suite_json(&suite_json(), &other_meta).unwrap();
        assert_ne!(a.id, c.id, "different timestamp, different id");
    }

    #[test]
    fn gap_and_residual_from_cells() {
        let rec = RunRecord {
            schema_version: SCHEMA_VERSION,
            id: "r".into(),
            timestamp_unix_s: 0,
            git_commit: "unknown".into(),
            machine: MachineFingerprint::synthetic("scalar"),
            size: "test".into(),
            seed: 1,
            threads: 1,
            isa: String::new(),
            excluded: Vec::new(),
            cells: vec![
                CellRecord {
                    kernel: "k".into(),
                    variant: "naive".into(),
                    outcome: "ok".into(),
                    sample: Some(sample(8.0, 0.05)),
                    attribution: None,
                    counters: None,
                },
                CellRecord {
                    kernel: "k".into(),
                    variant: "algorithmic".into(),
                    outcome: "ok".into(),
                    sample: Some(sample(1.3, 0.05)),
                    attribution: None,
                    counters: None,
                },
                CellRecord {
                    kernel: "k".into(),
                    variant: "ninja".into(),
                    outcome: "ok".into(),
                    sample: Some(sample(1.0, 0.05)),
                    attribution: None,
                    counters: None,
                },
            ],
            vec_profiles: Vec::new(),
        };
        assert!((rec.measured_gap("k").unwrap() - 8.0).abs() < 1e-12);
        assert!((rec.measured_residual("k").unwrap() - 1.3).abs() < 1e-12);
        assert_eq!(rec.measured_gap("missing"), None);
    }

    #[test]
    fn attribution_is_omitted_when_absent_and_tolerated_on_read() {
        let bare = CellRecord {
            kernel: "k".into(),
            variant: "naive".into(),
            outcome: "ok".into(),
            sample: Some(sample(1.0, 0.05)),
            attribution: None,
            counters: None,
        };
        let json = serde_json::to_string(&bare).unwrap();
        assert!(
            !json.contains("attribution"),
            "absent attribution must stay off the wire: {json}"
        );
        // A pre-`attribution` cell (exactly what old stores contain).
        let legacy = r#"{"kernel":"k","variant":"naive","outcome":"ok","sample":null}"#;
        let cell: CellRecord = serde_json::from_str(legacy).unwrap();
        assert!(cell.attribution.is_none());
        // And a populated one round-trips.
        let attributed = CellRecord {
            attribution: Some(CellAttribution {
                achieved_gflops: 3.5,
                achieved_gbs: 12.0,
                roofline_pct: 40.0,
                bound: "bandwidth".into(),
                pool_imbalance: 1.3,
                pool_idle_pct: 22.0,
                pool_steal_ratio: 0.25,
            }),
            ..bare
        };
        let back: CellRecord =
            serde_json::from_str(&serde_json::to_string(&attributed).unwrap()).unwrap();
        assert_eq!(attributed, back);
    }

    #[test]
    fn counters_are_omitted_when_absent_and_roundtrip_when_present() {
        let bare = CellRecord {
            kernel: "k".into(),
            variant: "ninja".into(),
            outcome: "ok".into(),
            sample: Some(sample(1.0, 0.05)),
            attribution: None,
            counters: None,
        };
        let json = serde_json::to_string(&bare).unwrap();
        assert!(
            !json.contains("counters"),
            "absent counters must stay off the wire: {json}"
        );
        // A pre-`counters` cell (exactly what old stores contain) parses
        // with the field defaulted.
        let legacy = r#"{"kernel":"k","variant":"ninja","outcome":"ok","sample":null}"#;
        let cell: CellRecord = serde_json::from_str(legacy).unwrap();
        assert!(cell.counters.is_none());
        // A populated cell round-trips, including partial counter groups.
        let counted = CellRecord {
            counters: Some(CellCounters {
                ipc: Some(1.42),
                llc_miss_rate: Some(0.12),
                dram_gbs: Some(21.5),
                measured_bound: Some("bandwidth".into()),
                agreement: Some(true),
            }),
            ..bare.clone()
        };
        let line = serde_json::to_string(&counted).unwrap();
        let back: CellRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(counted, back);
        let partial = CellRecord {
            counters: Some(CellCounters {
                ipc: Some(0.8),
                llc_miss_rate: None,
                dram_gbs: None,
                measured_bound: None,
                agreement: None,
            }),
            ..bare
        };
        let line = serde_json::to_string(&partial).unwrap();
        assert!(!line.contains("llc_miss_rate"), "{line}");
        let back: CellRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(partial, back);
    }

    #[test]
    fn suite_ingestion_splits_measured_fields_into_cell_counters() {
        // A suite report whose attribution carries the measured-counter
        // fields: the record keeps the modeled attribution and splits the
        // measured subset into `counters`.
        let json = suite_json().replacen(
            r#""pool_imbalance": 1.1, "pool_idle_pct": 12.0"#,
            r#""pool_imbalance": 1.1, "pool_idle_pct": 12.0,
               "measured_ipc": 1.7, "measured_llc_miss_rate": 0.08,
               "measured_dram_gbs": 24.5, "measured_bound": "bandwidth",
               "agreement": false"#,
            1,
        );
        let meta = RecordMeta::synthetic("r6", "scalar");
        let rec = RunRecord::from_suite_json(&json, &meta).unwrap();
        let naive = rec.cell("nbody", "naive").unwrap();
        let c = naive.counters.as_ref().expect("counters ingested");
        assert_eq!(c.ipc, Some(1.7));
        assert_eq!(c.measured_bound.as_deref(), Some("bandwidth"));
        assert_eq!(c.agreement, Some(false));
        // The counter-free cell in the same report stays counter-free,
        // and the whole record round-trips through JSONL.
        assert!(rec.cell("nbody", "ninja").unwrap().counters.is_none());
        let back = RunRecord::from_jsonl_line(&rec.to_jsonl_line()).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn steal_ratio_is_omitted_when_zero_and_defaulted_on_read() {
        let mut attr = CellAttribution {
            achieved_gflops: 3.5,
            achieved_gbs: 12.0,
            roofline_pct: 40.0,
            bound: "bandwidth".into(),
            pool_imbalance: 1.3,
            pool_idle_pct: 22.0,
            pool_steal_ratio: 0.0,
        };
        let json = serde_json::to_string(&attr).unwrap();
        assert!(
            !json.contains("pool_steal_ratio"),
            "zero steal ratio must stay off the wire: {json}"
        );
        // A pre-`pool_steal_ratio` record (exactly what old stores contain)
        // reads back with the field defaulted.
        let back: CellAttribution = serde_json::from_str(&json).unwrap();
        assert_eq!(back, attr);
        // And a nonzero ratio round-trips.
        attr.pool_steal_ratio = 0.4;
        let back: CellAttribution =
            serde_json::from_str(&serde_json::to_string(&attr).unwrap()).unwrap();
        assert_eq!(back, attr);
    }

    pub(crate) fn profile(kernel: &str, rung: &str, width: u32, fma: bool) -> VecProfileRecord {
        VecProfileRecord {
            kernel: kernel.into(),
            rung: rung.into(),
            width_bits: width,
            fma,
            gather: false,
            scatter: false,
            vector_fp_ops: if width > 0 { 40 } else { 0 },
            scalar_fp_ops: 4,
            vector_int_ops: 0,
            matched_symbols: 1,
            classification: match width {
                0 => "scalar".into(),
                w => format!("vec{w}"),
            },
        }
    }

    #[test]
    fn vec_profiles_are_omitted_when_empty_and_tolerated_on_read() {
        let meta = RecordMeta::synthetic("r4", "scalar");
        let bare = RunRecord::from_suite_json(&suite_json(), &meta).unwrap();
        let line = bare.to_jsonl_line();
        assert!(
            !line.contains("vec_profiles"),
            "empty profiles must stay off the wire: {line}"
        );
        // A pre-`vec_profiles` record (exactly what old stores contain)
        // parses with the field defaulted.
        let back = RunRecord::from_jsonl_line(&line).unwrap();
        assert!(back.vec_profiles.is_empty());
        assert_eq!(bare, back);
        // A populated record round-trips and the lookup helper finds it.
        let mut with = bare.clone();
        with.vec_profiles.push(profile("nbody", "ninja", 256, true));
        let back = RunRecord::from_jsonl_line(&with.to_jsonl_line()).unwrap();
        assert_eq!(with, back);
        let p = back.vec_profile("nbody", "ninja").expect("profile found");
        assert_eq!(p.width_bits, 256);
        assert!(back.vec_profile("nbody", "naive").is_none());
    }

    #[test]
    fn isa_is_omitted_when_empty_and_tolerated_on_read() {
        // A suite report written before the width-generic dispatcher has
        // no `isa` key: ingestion defaults it, and the empty value stays
        // off the JSONL wire (exactly what old stores contain).
        let meta = RecordMeta::synthetic("r7", "scalar");
        let bare = RunRecord::from_suite_json(&suite_json(), &meta).unwrap();
        assert!(bare.isa.is_empty());
        let line = bare.to_jsonl_line();
        assert!(
            !line.contains("\"isa\""),
            "empty isa must stay off the wire: {line}"
        );
        let back = RunRecord::from_jsonl_line(&line).unwrap();
        assert_eq!(bare, back);
        // A suite report that names its backend propagates it, and the
        // populated record round-trips.
        let json = suite_json().replacen(
            r#""simd_backend": "sse-intrinsics","#,
            r#""simd_backend": "sse-intrinsics", "isa": "avx2","#,
            1,
        );
        let rec = RunRecord::from_suite_json(&json, &meta).unwrap();
        assert_eq!(rec.isa, "avx2");
        let line = rec.to_jsonl_line();
        assert!(line.contains("\"isa\"") && line.contains("avx2"), "{line}");
        let back = RunRecord::from_jsonl_line(&line).unwrap();
        assert_eq!(rec, back);
        assert_eq!(back.isa, "avx2");
    }

    #[test]
    fn derived_ids_distinguish_forced_isa_backends() {
        // Two runs identical except for the resolved backend (the
        // forced-backend CI matrix produces exactly this) must not
        // collide on a content-derived id.
        let meta = RecordMeta {
            id: None,
            ..RecordMeta::synthetic("unused", "scalar")
        };
        let a = RunRecord::from_suite_json(&suite_json(), &meta).unwrap();
        let forced = suite_json().replacen(
            r#""simd_backend": "sse-intrinsics","#,
            r#""simd_backend": "sse-intrinsics", "isa": "sse2","#,
            1,
        );
        let b = RunRecord::from_suite_json(&forced, &meta).unwrap();
        assert_ne!(a.id, b.id, "different isa, different id");
    }

    #[test]
    fn suite_ingestion_carries_profiles_and_drops_chaos() {
        // Splice a vec_profiles array (one real kernel, one chaos) into
        // the suite JSON the harness writes.
        let json = suite_json().replacen(
            "\"kernels\":",
            r#""vec_profiles": [
              {"kernel": "nbody", "rung": "ninja", "width_bits": 128, "fma": false,
               "gather": false, "scatter": false, "vector_fp_ops": 12, "scalar_fp_ops": 0,
               "vector_int_ops": 0, "matched_symbols": 1, "classification": "vec128"},
              {"kernel": "chaos-panic", "rung": "naive", "width_bits": 0, "fma": false,
               "gather": false, "scatter": false, "vector_fp_ops": 0, "scalar_fp_ops": 4,
               "vector_int_ops": 0, "matched_symbols": 1, "classification": "scalar"}
            ],
            "kernels":"#,
            1,
        );
        let meta = RecordMeta::synthetic("r5", "scalar");
        let rec = RunRecord::from_suite_json(&json, &meta).unwrap();
        assert_eq!(rec.vec_profiles.len(), 1, "chaos profiles are dropped");
        assert_eq!(rec.vec_profile("nbody", "ninja").unwrap().width_bits, 128);
    }

    #[test]
    fn sample_sanity_and_spread() {
        let s = sample(2.0, 0.2);
        assert!(s.is_sane());
        assert!((s.spread() - 0.2).abs() < 1e-12);
        let zero = Sample {
            median_s: 0.0,
            mean_s: 0.0,
            stddev_s: 0.0,
            min_s: 0.0,
            max_s: 0.0,
            runs: 1,
        };
        assert_eq!(zero.spread(), 0.0);
        assert!(!zero.is_sane());
        let doubled = s.scaled(2.0);
        assert!((doubled.median_s - 4.0).abs() < 1e-12);
        assert!(
            (doubled.spread() - 0.2).abs() < 1e-12,
            "spread is scale-free"
        );
    }
}
