//! The `perfdb` binary: CLI over the persistent run store.
//!
//! ```text
//! perfdb record  [--store DIR] [--from PATH] [--sweep PATH] [--serve PATH]
//!                [--commit SHA] [--id ID] [--timestamp SECS]
//! perfdb compare BASELINE [--store DIR] [--candidate REF|PATH] [--window K]
//!                [--noise-floor F] [--iters N] [--json PATH|-]
//! perfdb trend   KERNEL [--store DIR] [--json]
//! perfdb history [--store DIR] [--out PATH]
//! perfdb gc      [--store DIR] [--keep N]
//! ```
//!
//! `BASELINE` and `--candidate` accept `latest`, `latest~N`, a record id
//! (or unambiguous prefix), or a filesystem path (a store JSONL or a raw
//! `suite_report.json`). `record --sweep PATH` ingests a
//! `sweep_report.json` (written by `reproduce --scale`) into the sweep
//! log instead of the run log, and `record --serve PATH` ingests a
//! `serve_report.json` (written by `reproduce --serve`) into the serve
//! log; `trend` then appends the kernel's serial-fraction drift across
//! recorded sweeps and its serving-SLO drift across recorded serve runs
//! (its `--json` output is a `{"runs": [...], "sweeps": [...],
//! "serves": [...]}` object). Exit status: 0 when the
//! comparison verdict is `noise`/`improved` (and for every other
//! successful subcommand), 1 on a confirmed regression, 2 on usage or
//! I/O errors.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use ninja_perfdb::{
    compare_records, resolve_reference, CompareConfig, RecordMeta, RunRecord, ServeRecord, Store,
    SweepRecord, DEFAULT_DIR, HISTORY_FILE,
};
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = concat!(
    "usage: perfdb <record|compare|trend|history|gc> [options]\n",
    "  record  [--store DIR] [--from PATH] [--sweep PATH] [--serve PATH]\n",
    "          [--commit SHA] [--id ID] [--timestamp SECS]\n",
    "  compare BASELINE [--store DIR] [--candidate REF|PATH] [--window K]\n",
    "          [--noise-floor F] [--iters N] [--json PATH|-]\n",
    "  trend   KERNEL [--store DIR] [--json]\n",
    "  history [--store DIR] [--out PATH]\n",
    "  gc      [--store DIR] [--keep N]\n",
    "refs: latest | latest~N | record id (prefix ok) | file path\n",
    "record --sweep ingests a sweep_report.json (from `reproduce --scale`)\n",
    "into the sweep log; record --serve ingests a serve_report.json (from\n",
    "`reproduce --serve`) into the serve log; trend then shows\n",
    "serial-fraction and serving-SLO drift"
);

/// Everything the subcommands need from the argument list.
struct Args {
    store: Store,
    positional: Vec<String>,
    from: String,
    sweep: Option<String>,
    serve: Option<String>,
    commit: Option<String>,
    id: Option<String>,
    timestamp: Option<u64>,
    candidate: Option<String>,
    window: usize,
    noise_floor: Option<f64>,
    iters: Option<u32>,
    json: Option<String>,
    out: String,
    keep: usize,
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        store: Store::open(DEFAULT_DIR),
        positional: Vec::new(),
        from: "suite_report.json".into(),
        sweep: None,
        serve: None,
        commit: None,
        id: None,
        timestamp: None,
        candidate: None,
        window: 1,
        noise_floor: None,
        iters: None,
        json: None,
        out: HISTORY_FILE.into(),
        keep: 50,
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--store" => args.store = Store::open(value("--store")?),
            "--from" => args.from = value("--from")?,
            "--sweep" => args.sweep = Some(value("--sweep")?),
            "--serve" => args.serve = Some(value("--serve")?),
            "--commit" => args.commit = Some(value("--commit")?),
            "--id" => args.id = Some(value("--id")?),
            "--timestamp" => {
                args.timestamp = Some(
                    value("--timestamp")?
                        .parse()
                        .map_err(|e| format!("--timestamp: {e}"))?,
                )
            }
            "--candidate" => args.candidate = Some(value("--candidate")?),
            "--window" => {
                args.window = value("--window")?
                    .parse()
                    .map_err(|e| format!("--window: {e}"))?;
                if args.window == 0 {
                    return Err("--window must be positive".into());
                }
            }
            "--noise-floor" => {
                args.noise_floor = Some(
                    value("--noise-floor")?
                        .parse()
                        .map_err(|e| format!("--noise-floor: {e}"))?,
                )
            }
            "--iters" => {
                args.iters = Some(
                    value("--iters")?
                        .parse()
                        .map_err(|e| format!("--iters: {e}"))?,
                )
            }
            "--json" => args.json = Some(value("--json")?),
            "--out" => args.out = value("--out")?,
            "--keep" => {
                args.keep = value("--keep")?
                    .parse()
                    .map_err(|e| format!("--keep: {e}"))?
            }
            "--help" | "-h" => return Err(USAGE.into()),
            other if other.starts_with('-') => return Err(format!("unknown flag '{other}'")),
            positional => args.positional.push(positional.to_owned()),
        }
    }
    Ok(args)
}

fn record_meta(args: &Args) -> RecordMeta {
    let mut meta = RecordMeta::detect("unknown");
    meta.id = args.id.clone();
    if let Some(commit) = &args.commit {
        meta.git_commit = commit.clone();
    }
    if let Some(ts) = args.timestamp {
        meta.timestamp_unix_s = ts;
    }
    meta
}

/// `record --sweep PATH`: ingest a sweep report into the sweep log.
fn cmd_record_sweep(args: &Args, path: &str) -> Result<(), String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let record = SweepRecord::from_sweep_json(&json, &record_meta(args))?;
    args.store.append_sweep(&record)?;
    if !record.excluded.is_empty() {
        eprintln!(
            "perfdb: excluded {} fault-injection kernel(s): {}",
            record.excluded.len(),
            record.excluded.join(", ")
        );
    }
    println!(
        "recorded sweep {} ({} cell(s), {} fit(s), commit {}) to {}",
        record.id,
        record.cells.len(),
        record.fits.len(),
        record.git_commit,
        args.store.sweeps_path().display()
    );
    Ok(())
}

/// `record --serve PATH`: ingest a serve report into the serve log.
fn cmd_record_serve(args: &Args, path: &str) -> Result<(), String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let record = ServeRecord::from_serve_json(&json, &record_meta(args))?;
    args.store.append_serve(&record)?;
    println!(
        "recorded serve {} (kernel {}, {} point(s), commit {}) to {}",
        record.id,
        record.kernel,
        record.points.len(),
        record.git_commit,
        args.store.serves_path().display()
    );
    Ok(())
}

fn cmd_record(args: &Args) -> Result<(), String> {
    if args.sweep.is_some() && args.serve.is_some() {
        return Err("--sweep and --serve are mutually exclusive".into());
    }
    if let Some(path) = &args.sweep {
        return cmd_record_sweep(args, path);
    }
    if let Some(path) = &args.serve {
        return cmd_record_serve(args, path);
    }
    let json = std::fs::read_to_string(&args.from)
        .map_err(|e| format!("cannot read {}: {e}", args.from))?;
    let meta = record_meta(args);
    let record = RunRecord::from_suite_json(&json, &meta)?;
    args.store.append(&record)?;
    if !record.excluded.is_empty() {
        eprintln!(
            "perfdb: excluded {} fault-injection kernel(s): {}",
            record.excluded.len(),
            record.excluded.join(", ")
        );
    }
    println!(
        "recorded {} ({} cell(s), commit {}) to {}",
        record.id,
        record.cells.len(),
        record.git_commit,
        args.store.runs_path().display()
    );
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<bool, String> {
    let baseline_ref = args
        .positional
        .first()
        .ok_or("compare needs a BASELINE reference")?;
    let baseline = resolve_reference(&args.store, baseline_ref, args.window)?;
    let candidate = match &args.candidate {
        Some(r) => resolve_reference(&args.store, r, 1)?,
        None => args
            .store
            .latest()?
            .ok_or_else(|| "store is empty; nothing to compare".to_owned())?,
    };
    let mut cfg = CompareConfig::default();
    if let Some(floor) = args.noise_floor {
        cfg.noise_floor = floor;
    }
    if let Some(iters) = args.iters {
        cfg.bootstrap_iters = iters;
    }
    let report = compare_records(&baseline, &candidate, &cfg);
    print!("{}", report.render_text());
    if let Some(dest) = &args.json {
        let json = report.to_json();
        if dest == "-" {
            println!("{json}");
        } else {
            std::fs::write(dest, json).map_err(|e| format!("cannot write {dest}: {e}"))?;
        }
    }
    Ok(report.has_regressions())
}

fn cmd_trend(args: &Args) -> Result<(), String> {
    let kernel = args.positional.first().ok_or("trend needs a KERNEL name")?;
    let (records, skipped) = args.store.load_lossy()?;
    if skipped > 0 {
        eprintln!("perfdb: warning: skipped {skipped} malformed record line(s)");
    }
    let (sweeps, sweeps_skipped) = args.store.load_sweeps_lossy()?;
    if sweeps_skipped > 0 {
        eprintln!("perfdb: warning: skipped {sweeps_skipped} malformed sweep line(s)");
    }
    let (serves, serves_skipped) = args.store.load_serves_lossy()?;
    if serves_skipped > 0 {
        eprintln!("perfdb: warning: skipped {serves_skipped} malformed serve line(s)");
    }
    let points = ninja_perfdb::trend::kernel_trend(&records, kernel);
    let sweep_points = ninja_perfdb::trend::sweep_trend(&sweeps, kernel);
    let serve_points = ninja_perfdb::trend::serve_trend(&serves, kernel);
    if points.is_empty() && sweep_points.is_empty() && serve_points.is_empty() {
        return Err(format!(
            "no recorded run, sweep, or serve measures kernel `{kernel}` (store {})",
            args.store.dir().display()
        ));
    }
    if args.json.is_some() {
        use serde::Serialize;
        #[derive(Serialize)]
        struct TrendJson {
            runs: Vec<ninja_perfdb::TrendPoint>,
            sweeps: Vec<ninja_perfdb::SweepTrendPoint>,
            serves: Vec<ninja_perfdb::ServeTrendPoint>,
        }
        let all = TrendJson {
            runs: points,
            sweeps: sweep_points,
            serves: serve_points,
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&all).expect("trend points serialize")
        );
        return Ok(());
    }
    let mut sections = 0;
    if !points.is_empty() {
        print!("{}", ninja_perfdb::trend::render_trend(kernel, &points));
        sections += 1;
    }
    if !sweep_points.is_empty() {
        if sections > 0 {
            println!();
        }
        print!(
            "{}",
            ninja_perfdb::trend::render_sweep_trend(kernel, &sweep_points)
        );
        sections += 1;
    }
    if !serve_points.is_empty() {
        if sections > 0 {
            println!();
        }
        print!(
            "{}",
            ninja_perfdb::trend::render_serve_trend(kernel, &serve_points)
        );
    }
    Ok(())
}

fn cmd_history(args: &Args) -> Result<(), String> {
    let history = ninja_perfdb::write_history(&args.store, Path::new(&args.out))?;
    println!(
        "wrote {} ({} run(s), {} kernel(s))",
        args.out,
        history.runs,
        history.kernels.len()
    );
    Ok(())
}

fn cmd_gc(args: &Args) -> Result<(), String> {
    let removed = args.store.gc(args.keep)?;
    println!(
        "gc: removed {removed} record(s), kept at most {} in {}",
        args.keep,
        args.store.runs_path().display()
    );
    Ok(())
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(subcommand) = argv.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let args = match parse_args(argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let result = match subcommand.as_str() {
        "record" => cmd_record(&args).map(|()| false),
        "compare" => cmd_compare(&args),
        "trend" => cmd_trend(&args).map(|()| false),
        "history" => cmd_history(&args).map(|()| false),
        "gc" => cmd_gc(&args).map(|()| false),
        other => {
            eprintln!("unknown subcommand '{other}'\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(true) => {
            eprintln!("perfdb: confirmed regression(s); failing");
            ExitCode::FAILURE
        }
        Ok(false) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("perfdb: {msg}");
            ExitCode::from(2)
        }
    }
}
