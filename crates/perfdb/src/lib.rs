//! `ninja-perfdb` — the persistent perf-run store behind the suite.
//!
//! The measurement harness produces one suite report per run and used to
//! throw it away; this crate keeps them. Runs append to a JSONL store
//! (one schema-versioned
//! [`RunRecord`] per line) carrying a machine fingerprint, git commit,
//! timestamp, and every (kernel, variant) timing summary. On top of the
//! store sit:
//!
//! - a **statistical comparator** ([`compare_records`]) that decides
//!   *regressed / improved / noise* per cell using min-of-k medians and a
//!   deterministic bootstrap confidence interval, with a noise floor
//!   defaulting to the harness's measured `spread()`;
//! - **trend reporting** ([`trend`]) that turns the store into the
//!   per-kernel gap/residual trajectory exported as `BENCH_history.json`;
//! - **sweep records** ([`sweep`]): scaling-sweep grids with their
//!   Amdahl/USL fits, appended to `sweeps.jsonl` so `perfdb trend` can
//!   show each rung's serial-fraction drift across commits;
//! - **serve records** ([`serve`]): serving-layer SLO curves from
//!   `ninja-serve` (offered load, p50/p99, shed/expired/degraded
//!   counts), appended to `serves.jsonl` so `perfdb trend` can show
//!   tail-latency drift across commits;
//! - the **`perfdb` binary** (`record` / `compare` / `trend` / `history`
//!   / `gc`) and the `reproduce --record` / `--baseline` integration in
//!   `ninja-bench`.
//!
//! Like `ninja-lint`, this crate is a leaf: std plus the in-tree
//! `serde`/`serde_json` stand-ins only, so every other layer (including
//! `ninja-core`) can depend on it without cycles. Suite reports are
//! ingested from their JSON form rather than from `ninja-core` types for
//! the same reason.
//!
//! Test-only `chaos-*` kernels are excluded at ingestion
//! ([`schema::kernel_is_excluded`]) so fault-injection runs can never
//! pollute the perf history.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compare;
pub mod schema;
pub mod serve;
pub mod store;
pub mod sweep;
pub mod trend;

pub use compare::{
    compare_records, min_of_k_baseline, CellComparison, CompareConfig, ComparisonReport, Verdict,
};
pub use schema::{
    kernel_is_excluded, CellRecord, MachineFingerprint, RecordMeta, RunRecord, Sample,
    SCHEMA_VERSION,
};
pub use serve::{ServePointRecord, ServeRecord};
pub use store::{record_from_path, resolve_reference, Store, DEFAULT_DIR};
pub use sweep::{SweepCellRecord, SweepFitRecord, SweepRecord};
pub use trend::{History, KernelHistory, ServeTrendPoint, SweepTrendPoint, TrendPoint};

/// Default file name of the exported trajectory artifact.
pub const HISTORY_FILE: &str = "BENCH_history.json";

/// Writes the aggregated trajectory artifact for a store.
///
/// # Errors
///
/// Returns a message when the store cannot be read or the artifact
/// cannot be written.
pub fn write_history(store: &Store, out_path: &std::path::Path) -> Result<History, String> {
    let (records, skipped) = store.load_lossy()?;
    if skipped > 0 {
        eprintln!("perfdb: warning: skipped {skipped} malformed record line(s)");
    }
    let history = History::from_records(&records);
    std::fs::write(out_path, history.to_json())
        .map_err(|e| format!("cannot write {}: {e}", out_path.display()))?;
    Ok(history)
}
