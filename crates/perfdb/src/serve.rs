//! Serve records: SLO-curve results from `ninja-serve` on the
//! persistent wire.
//!
//! A [`ServeRecord`] is the stored form of one serving-layer load run
//! (the `serve_report.json` that `reproduce --serve` writes): one SLO
//! point per offered rate — delivered p50/p99 latency plus the
//! shed/expired/degraded outcome counts — under an optional seeded
//! chaos schedule. Records append to `serves.jsonl` next to
//! `runs.jsonl` and `sweeps.jsonl`, so `perfdb trend` can show how
//! tail latency and degradation behaviour drift across commits.
//!
//! Like [`SweepRecord`](crate::SweepRecord), ingestion parses the
//! report JSON through a tolerant mirror (extra fields ignored) so
//! this crate stays a std + serde-stand-in leaf.

use crate::schema::{
    fnv1a64, fnv1a64_continue, kernel_is_excluded, MachineFingerprint, RecordMeta, SCHEMA_VERSION,
};
use serde::{Deserialize, Serialize};

/// One stored SLO point: a fixed offered load and the delivered
/// latency/outcome distribution.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServePointRecord {
    /// Offered arrival rate, requests per second.
    pub offered_rps: f64,
    /// Requests submitted at this rate.
    pub sent: u64,
    /// Requests resolved `Ok` (validated).
    pub ok: u64,
    /// Requests shed at admission (backpressure).
    pub rejected: u64,
    /// Requests that ran out of deadline.
    pub expired: u64,
    /// `Ok` responses whose value disagreed with the client-side
    /// expectation (0 in any healthy run — validation guarantees it).
    pub incorrect: u64,
    /// `Ok` responses served below the ninja rung.
    pub degraded: u64,
    /// Median end-to-end latency of `Ok` responses in microseconds
    /// (`None` when no request resolved `Ok`).
    pub p50_us: Option<f64>,
    /// 99th-percentile end-to-end latency of `Ok` responses.
    pub p99_us: Option<f64>,
    /// Breaker trips observed engine-wide by the end of the point.
    pub trips: u64,
    /// Breaker recoveries observed engine-wide by the end of the point.
    pub recoveries: u64,
}

/// One stored serving-layer load run (one JSONL line in
/// `serves.jsonl`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServeRecord {
    /// Schema version ([`SCHEMA_VERSION`] at write time).
    pub schema_version: u32,
    /// Unique record id (content-derived unless supplied).
    pub id: String,
    /// Unix timestamp (seconds) of the run.
    pub timestamp_unix_s: u64,
    /// Git commit measured.
    pub git_commit: String,
    /// Where the run ran.
    pub machine: MachineFingerprint,
    /// Served kernel name.
    pub kernel: String,
    /// Worker threads in the serving pool.
    pub threads: usize,
    /// Chaos schedule seed, when fault injection was active.
    pub chaos_seed: Option<u64>,
    /// Chaos per-attempt fault rate, when fault injection was active.
    pub chaos_rate: Option<f64>,
    /// Request deadline in microseconds.
    pub deadline_us: u64,
    /// One point per offered rate, sweep order.
    pub points: Vec<ServePointRecord>,
}

// ---- serve_report.json wire mirror -------------------------------------

#[derive(Deserialize)]
struct ServePointWire {
    offered_rps: f64,
    sent: u64,
    ok: u64,
    rejected: u64,
    expired: u64,
    incorrect: u64,
    degraded: u64,
    p50_us: Option<f64>,
    p99_us: Option<f64>,
    trips: u64,
    recoveries: u64,
}

#[derive(Deserialize)]
struct ServeWire {
    kernel: String,
    threads: usize,
    chaos_seed: Option<u64>,
    chaos_rate: Option<f64>,
    deadline_us: u64,
    points: Vec<ServePointWire>,
}

impl ServeRecord {
    /// Builds a record from a serialized `ServeReport` (the
    /// `serve_report.json` that `reproduce --serve` writes).
    ///
    /// Non-finite percentile values are stored as `None` (an SLO point
    /// where nothing resolved `Ok` has no percentile).
    ///
    /// # Errors
    ///
    /// Returns a message when the JSON does not parse as a serve
    /// report, or when the report serves an excluded `chaos-*` kernel.
    pub fn from_serve_json(json: &str, meta: &RecordMeta) -> Result<Self, String> {
        let serve: ServeWire =
            serde_json::from_str(json).map_err(|e| format!("not a serve report: {e}"))?;
        if kernel_is_excluded(&serve.kernel) {
            return Err(format!(
                "refusing to record fault-injection kernel `{}`",
                serve.kernel
            ));
        }
        let finite = |v: Option<f64>| v.filter(|x| x.is_finite());
        let points = serve
            .points
            .into_iter()
            .map(|p| ServePointRecord {
                offered_rps: p.offered_rps,
                sent: p.sent,
                ok: p.ok,
                rejected: p.rejected,
                expired: p.expired,
                incorrect: p.incorrect,
                degraded: p.degraded,
                p50_us: finite(p.p50_us),
                p99_us: finite(p.p99_us),
                trips: p.trips,
                recoveries: p.recoveries,
            })
            .collect();
        let mut record = ServeRecord {
            schema_version: SCHEMA_VERSION,
            id: String::new(),
            timestamp_unix_s: meta.timestamp_unix_s,
            git_commit: meta.git_commit.clone(),
            machine: meta.machine.clone(),
            kernel: serve.kernel,
            threads: serve.threads,
            chaos_seed: serve.chaos_seed,
            chaos_rate: serve.chaos_rate,
            deadline_us: serve.deadline_us,
            points,
        };
        record.id = match &meta.id {
            Some(id) => id.clone(),
            None => record.derive_id(),
        };
        Ok(record)
    }

    /// Content-derived id: `serve-<fnv64 of the identifying fields>`.
    pub fn derive_id(&self) -> String {
        let mut h = fnv1a64(b"ninja-perfdb-serve");
        for part in [
            self.git_commit.as_str(),
            self.machine.hostname.as_str(),
            self.kernel.as_str(),
        ] {
            h = fnv1a64_continue(h, part.as_bytes());
        }
        h = fnv1a64_continue(h, &self.timestamp_unix_s.to_le_bytes());
        h = fnv1a64_continue(h, &(self.threads as u64).to_le_bytes());
        h = fnv1a64_continue(h, &(self.points.len() as u64).to_le_bytes());
        format!("serve-{h:016x}")
    }

    /// The point measured at `offered_rps` (exact match).
    pub fn point(&self, offered_rps: f64) -> Option<&ServePointRecord> {
        self.points.iter().find(|p| p.offered_rps == offered_rps)
    }

    /// Total requests shed or expired across the whole curve.
    pub fn total_shed_or_expired(&self) -> u64 {
        self.points.iter().map(|p| p.rejected + p.expired).sum()
    }

    /// Serializes the record as one compact JSON line.
    pub fn to_jsonl_line(&self) -> String {
        serde_json::to_string(self).expect("serve records are serializable")
    }

    /// Parses one JSONL line, checking the schema version.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON or a foreign schema version.
    pub fn from_jsonl_line(line: &str) -> Result<Self, String> {
        let rec: ServeRecord = serde_json::from_str(line).map_err(|e| e.to_string())?;
        if rec.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "serve record {} has schema v{}, this build reads v{}",
                rec.id, rec.schema_version, SCHEMA_VERSION
            ));
        }
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serve_json() -> String {
        r#"{
          "kernel": "blackscholes",
          "threads": 4,
          "chaos_seed": 2012,
          "chaos_rate": 0.15,
          "deadline_us": 50000,
          "points": [
            {"offered_rps": 1000.0, "sent": 500, "ok": 480, "rejected": 12,
             "expired": 8, "unresolved": 0, "incorrect": 0, "degraded": 40,
             "p50_us": 800.0, "p99_us": 9500.0, "trips": 3, "recoveries": 3},
            {"offered_rps": 5000.0, "sent": 500, "ok": 0, "rejected": 500,
             "expired": 0, "unresolved": 0, "incorrect": 0, "degraded": 0,
             "p50_us": null, "p99_us": null, "trips": 3, "recoveries": 3}
          ]
        }"#
        .to_owned()
    }

    #[test]
    fn ingests_serve_report() {
        let meta = RecordMeta::synthetic("serve-test", "scalar");
        let rec = ServeRecord::from_serve_json(&serve_json(), &meta).unwrap();
        assert_eq!(rec.id, "serve-test");
        assert_eq!(rec.kernel, "blackscholes");
        assert_eq!(rec.threads, 4);
        assert_eq!(rec.chaos_seed, Some(2012));
        assert_eq!(rec.deadline_us, 50_000);
        assert_eq!(rec.points.len(), 2);
        let p = rec.point(1000.0).unwrap();
        assert_eq!((p.ok, p.rejected, p.expired, p.degraded), (480, 12, 8, 40));
        assert_eq!(p.p99_us, Some(9500.0));
        // A point where nothing resolved Ok has no percentiles.
        let saturated = rec.point(5000.0).unwrap();
        assert_eq!(saturated.p50_us, None);
        assert_eq!(rec.total_shed_or_expired(), 520);
    }

    #[test]
    fn chaos_kernel_reports_are_refused() {
        let meta = RecordMeta::synthetic("x", "scalar");
        let json = serve_json().replace("blackscholes", "chaos-panic");
        let err = ServeRecord::from_serve_json(&json, &meta).unwrap_err();
        assert!(err.contains("fault-injection"), "{err}");
    }

    #[test]
    fn derived_id_is_content_based() {
        let meta = RecordMeta::synthetic("x", "scalar");
        let mut rec = ServeRecord::from_serve_json(&serve_json(), &meta).unwrap();
        rec.id = rec.derive_id();
        assert!(rec.id.starts_with("serve-"), "{}", rec.id);
        let again = rec.derive_id();
        assert_eq!(rec.id, again, "derivation is deterministic");
        rec.kernel = "libor".into();
        assert_ne!(rec.derive_id(), again);
    }

    #[test]
    fn jsonl_roundtrip_preserves_record() {
        let meta = RecordMeta::synthetic("serve-rt", "scalar");
        let rec = ServeRecord::from_serve_json(&serve_json(), &meta).unwrap();
        let line = rec.to_jsonl_line();
        assert!(!line.contains('\n'));
        let back = ServeRecord::from_jsonl_line(&line).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn foreign_schema_version_is_rejected() {
        let meta = RecordMeta::synthetic("serve-v", "scalar");
        let mut rec = ServeRecord::from_serve_json(&serve_json(), &meta).unwrap();
        rec.schema_version = SCHEMA_VERSION + 1;
        let err = ServeRecord::from_jsonl_line(&rec.to_jsonl_line()).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn non_serve_json_is_rejected() {
        let meta = RecordMeta::synthetic("x", "scalar");
        assert!(ServeRecord::from_serve_json("{}", &meta).is_err());
        assert!(ServeRecord::from_serve_json("not json", &meta).is_err());
    }
}
