//! Sweep records: scaling-sweep results on the persistent wire.
//!
//! A [`SweepRecord`] is the stored form of one `ninja-scale` run (the
//! `sweep_report.json` the `reproduce --scale` binary writes): the grid
//! of kernel×variant×size×threads cells plus the fitted scaling models
//! per curve. Records append to `sweeps.jsonl` next to `runs.jsonl`, so
//! `perfdb trend` can show how each rung's **serial fraction** drifts
//! across commits — the longitudinal axis of the paper's "the gap grows
//! with cores" warning.
//!
//! Like [`RunRecord`](crate::RunRecord), ingestion parses the harness's
//! JSON through a tolerant mirror (extra fields ignored, `chaos-*`
//! kernels excluded) so this crate stays a std + serde-stand-in leaf.

use crate::schema::{
    fnv1a64, fnv1a64_continue, kernel_is_excluded, MachineFingerprint, RecordMeta, Sample,
    SCHEMA_VERSION,
};
use serde::{Deserialize, Serialize};

/// One grid point of a stored sweep: a kernel×variant cell at one
/// problem size and thread count.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepCellRecord {
    /// Kernel name.
    pub kernel: String,
    /// Variant rung name (`naive` … `ninja`).
    pub variant: String,
    /// Problem-size preset name.
    pub size: String,
    /// Pool thread count of the grid point.
    pub threads: usize,
    /// Outcome tag (`ok`, `panicked`, `timed_out`, …).
    pub outcome: String,
    /// Timing summary; `None` when the cell failed.
    pub sample: Option<Sample>,
}

impl SweepCellRecord {
    /// Whether the cell measured cleanly.
    pub fn is_ok(&self) -> bool {
        self.outcome == "ok"
    }
}

/// Fitted scaling models for one stored kernel×variant×size curve.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepFitRecord {
    /// Kernel name.
    pub kernel: String,
    /// Variant rung name.
    pub variant: String,
    /// Problem-size preset name.
    pub size: String,
    /// Static roofline classification of the kernel (`compute` /
    /// `memory`).
    pub bound: String,
    /// Amdahl serial fraction (κ pinned to 0).
    pub serial_fraction: f64,
    /// USL contention σ.
    pub contention: f64,
    /// USL coherency κ.
    pub coherency: f64,
    /// Coefficient of determination of the USL fit.
    pub r_squared: f64,
    /// Detected scaling knee (thread count), `None` when the curve
    /// never flattened inside the measured grid.
    pub knee_threads: Option<usize>,
}

/// One stored scaling sweep (one JSONL line in `sweeps.jsonl`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepRecord {
    /// Schema version ([`SCHEMA_VERSION`] at write time).
    pub schema_version: u32,
    /// Unique record id (content-derived unless supplied).
    pub id: String,
    /// Unix timestamp (seconds) of the sweep.
    pub timestamp_unix_s: u64,
    /// Git commit measured.
    pub git_commit: String,
    /// Where the sweep ran.
    pub machine: MachineFingerprint,
    /// Input-generation seed shared by all grid points.
    pub seed: u64,
    /// Timed repetitions per cell.
    pub reps: u32,
    /// Size-preset names swept.
    pub sizes: Vec<String>,
    /// Thread counts swept.
    pub threads: Vec<usize>,
    /// Marginal-speedup threshold used for knee detection.
    pub knee_threshold: f64,
    /// Kernels present in the sweep report but excluded from the record
    /// (the `chaos-*` fault-injection family).
    pub excluded: Vec<String>,
    /// Recorded grid cells, sweep order.
    pub cells: Vec<SweepCellRecord>,
    /// Per-curve model fits, sweep order.
    pub fits: Vec<SweepFitRecord>,
}

// ---- sweep_report.json wire mirror -------------------------------------

#[derive(Deserialize)]
struct OutcomeWire {
    kind: String,
}

#[derive(Deserialize)]
struct SweepCellWire {
    kernel: String,
    variant: String,
    size: String,
    threads: usize,
    timing: Option<Sample>,
    outcome: OutcomeWire,
}

#[derive(Deserialize)]
struct SweepWire {
    seed: u64,
    reps: u32,
    simd_backend: String,
    sizes: Vec<String>,
    threads: Vec<usize>,
    knee_threshold: f64,
    cells: Vec<SweepCellWire>,
    fits: Vec<SweepFitRecord>,
}

impl SweepRecord {
    /// Builds a record from a serialized `SweepReport` (the
    /// `sweep_report.json` that `reproduce --scale` writes).
    ///
    /// `chaos-*` kernels are dropped from cells and fits and listed in
    /// [`excluded`](SweepRecord::excluded); failed cells of real
    /// kernels keep their outcome tag with no sample.
    ///
    /// # Errors
    ///
    /// Returns a message when the JSON does not parse as a sweep report.
    pub fn from_sweep_json(json: &str, meta: &RecordMeta) -> Result<Self, String> {
        let sweep: SweepWire =
            serde_json::from_str(json).map_err(|e| format!("not a sweep report: {e}"))?;
        let mut excluded = Vec::new();
        let mut cells = Vec::new();
        for c in &sweep.cells {
            if kernel_is_excluded(&c.kernel) {
                if !excluded.contains(&c.kernel) {
                    excluded.push(c.kernel.clone());
                }
                continue;
            }
            let ok = c.outcome.kind == "ok";
            cells.push(SweepCellRecord {
                kernel: c.kernel.clone(),
                variant: c.variant.clone(),
                size: c.size.clone(),
                threads: c.threads,
                outcome: c.outcome.kind.clone(),
                sample: if ok { c.timing } else { None },
            });
        }
        let fits = sweep
            .fits
            .into_iter()
            .filter(|f| !kernel_is_excluded(&f.kernel))
            .collect();
        let mut record = SweepRecord {
            schema_version: SCHEMA_VERSION,
            id: String::new(),
            timestamp_unix_s: meta.timestamp_unix_s,
            git_commit: meta.git_commit.clone(),
            machine: meta.machine.clone(),
            seed: sweep.seed,
            reps: sweep.reps,
            sizes: sweep.sizes,
            threads: sweep.threads,
            knee_threshold: sweep.knee_threshold,
            excluded,
            cells,
            fits,
        };
        // The sweep report carries the authoritative backend name.
        record.machine.simd_backend = sweep.simd_backend;
        record.id = match &meta.id {
            Some(id) => id.clone(),
            None => record.derive_id(),
        };
        Ok(record)
    }

    /// Content-derived id: `sweep-<fnv64 of the identifying fields>`.
    pub fn derive_id(&self) -> String {
        let mut h = fnv1a64(b"ninja-perfdb-sweep");
        for part in [self.git_commit.as_str(), self.machine.hostname.as_str()] {
            h = fnv1a64_continue(h, part.as_bytes());
        }
        h = fnv1a64_continue(h, &self.timestamp_unix_s.to_le_bytes());
        h = fnv1a64_continue(h, &self.seed.to_le_bytes());
        h = fnv1a64_continue(h, &(self.cells.len() as u64).to_le_bytes());
        format!("sweep-{h:016x}")
    }

    /// Looks up one grid cell.
    pub fn cell(
        &self,
        kernel: &str,
        variant: &str,
        size: &str,
        threads: usize,
    ) -> Option<&SweepCellRecord> {
        self.cells.iter().find(|c| {
            c.kernel == kernel && c.variant == variant && c.size == size && c.threads == threads
        })
    }

    /// Looks up one curve's fit.
    pub fn fit(&self, kernel: &str, variant: &str, size: &str) -> Option<&SweepFitRecord> {
        self.fits
            .iter()
            .find(|f| f.kernel == kernel && f.variant == variant && f.size == size)
    }

    /// Kernel names present in the record, in first-seen order.
    pub fn kernels(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for c in &self.cells {
            if !names.contains(&c.kernel.as_str()) {
                names.push(&c.kernel);
            }
        }
        names
    }

    /// Serializes the record as one compact JSON line.
    pub fn to_jsonl_line(&self) -> String {
        serde_json::to_string(self).expect("sweep records are serializable")
    }

    /// Parses one JSONL line, checking the schema version.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON or a foreign schema version.
    pub fn from_jsonl_line(line: &str) -> Result<Self, String> {
        let rec: SweepRecord = serde_json::from_str(line).map_err(|e| e.to_string())?;
        if rec.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "sweep record {} has schema v{}, this build reads v{}",
                rec.id, rec.schema_version, SCHEMA_VERSION
            ));
        }
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep_json() -> String {
        r#"{
          "seed": 42,
          "reps": 1,
          "simd_backend": "avx2",
          "sizes": ["test"],
          "threads": [1, 2],
          "knee_threshold": 0.5,
          "cells": [
            {"kernel": "nbody", "variant": "parallel", "size": "test", "threads": 1,
             "timing": {"median_s": 0.1, "mean_s": 0.1, "stddev_s": 0.0,
                        "min_s": 0.1, "max_s": 0.1, "runs": 1},
             "outcome": {"kind": "ok"}},
            {"kernel": "nbody", "variant": "parallel", "size": "test", "threads": 2,
             "timing": {"median_s": 0.052, "mean_s": 0.052, "stddev_s": 0.0,
                        "min_s": 0.052, "max_s": 0.052, "runs": 1},
             "outcome": {"kind": "ok"}},
            {"kernel": "chaos-panic", "variant": "naive", "size": "test", "threads": 1,
             "timing": null, "outcome": {"kind": "panicked", "message": "boom"}},
            {"kernel": "nbody", "variant": "ninja", "size": "test", "threads": 2,
             "timing": null, "outcome": {"kind": "timed_out", "budget_s": 5.0}}
          ],
          "fits": [
            {"kernel": "nbody", "variant": "parallel", "size": "test", "bound": "compute",
             "serial_fraction": 0.04, "contention": 0.04, "coherency": 0.0,
             "r_squared": 1.0, "knee_threads": null},
            {"kernel": "chaos-panic", "variant": "parallel", "size": "test", "bound": "compute",
             "serial_fraction": 0.5, "contention": 0.5, "coherency": 0.0,
             "r_squared": 1.0, "knee_threads": 2}
          ]
        }"#
        .to_owned()
    }

    #[test]
    fn ingests_sweep_report_and_excludes_chaos() {
        let meta = RecordMeta::synthetic("sweep-test", "scalar");
        let rec = SweepRecord::from_sweep_json(&sweep_json(), &meta).unwrap();
        assert_eq!(rec.id, "sweep-test");
        assert_eq!(rec.machine.simd_backend, "avx2", "report backend wins");
        assert_eq!(rec.excluded, ["chaos-panic"]);
        assert_eq!(rec.cells.len(), 3);
        assert_eq!(rec.fits.len(), 1, "chaos fit dropped");
        assert_eq!(rec.kernels(), ["nbody"]);
        let cell = rec.cell("nbody", "parallel", "test", 2).unwrap();
        assert!(cell.is_ok());
        assert!((cell.sample.unwrap().median_s - 0.052).abs() < 1e-12);
        // The failed cell keeps its outcome and no sample.
        let failed = rec.cell("nbody", "ninja", "test", 2).unwrap();
        assert_eq!(failed.outcome, "timed_out");
        assert!(failed.sample.is_none());
        let fit = rec.fit("nbody", "parallel", "test").unwrap();
        assert!((fit.serial_fraction - 0.04).abs() < 1e-12);
        assert_eq!(fit.knee_threads, None);
    }

    #[test]
    fn derived_id_is_content_based() {
        let meta = RecordMeta::synthetic("x", "scalar");
        let mut rec = SweepRecord::from_sweep_json(&sweep_json(), &meta).unwrap();
        rec.id = rec.derive_id();
        assert!(rec.id.starts_with("sweep-"), "{}", rec.id);
        let again = rec.derive_id();
        assert_eq!(rec.id, again, "derivation is deterministic");
        rec.git_commit = "different".into();
        assert_ne!(rec.derive_id(), again);
    }

    #[test]
    fn jsonl_roundtrip_preserves_record() {
        let meta = RecordMeta::synthetic("sweep-rt", "scalar");
        let rec = SweepRecord::from_sweep_json(&sweep_json(), &meta).unwrap();
        let line = rec.to_jsonl_line();
        assert!(!line.contains('\n'));
        let back = SweepRecord::from_jsonl_line(&line).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn foreign_schema_version_is_rejected() {
        let meta = RecordMeta::synthetic("sweep-v", "scalar");
        let mut rec = SweepRecord::from_sweep_json(&sweep_json(), &meta).unwrap();
        rec.schema_version = SCHEMA_VERSION + 1;
        let err = SweepRecord::from_jsonl_line(&rec.to_jsonl_line()).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn non_sweep_json_is_rejected() {
        let meta = RecordMeta::synthetic("x", "scalar");
        assert!(SweepRecord::from_sweep_json("{}", &meta).is_err());
        assert!(SweepRecord::from_sweep_json("not json", &meta).is_err());
    }
}
