//! Statistical regression detection between run records.
//!
//! Single timings lie: schedulers hiccup, turbo states drift, and a naive
//! `new/old` ratio flags noise as regression (or hides a real one). The
//! comparator here decides **regressed / improved / noise** per (kernel,
//! variant) cell with three guards:
//!
//! 1. **Min-of-k medians** — when a baseline window of `k` records is
//!    available, each cell's baseline is the record with the *smallest*
//!    median (the least-interfered-with run); one slow baseline run
//!    cannot manufacture a phantom improvement.
//! 2. **Bootstrap confidence interval** — the reported ratio carries a
//!    resampling CI; a verdict other than `noise` requires the whole CI
//!    to clear the noise floor, not just the point estimate.
//! 3. **Noise floor from measured spread** — the floor defaults to the
//!    harness's own `Measurement::spread()` (relative `(max−min)/median`)
//!    of both sides, so noisy cells need proportionally larger deltas.
//!
//! Verdicts must be reproducible across invocations (CI gates re-run
//! them), so the bootstrap PRNG is seeded deterministically from the two
//! record ids and the cell name — never from the wall clock.

use crate::schema::{
    fnv1a64, fnv1a64_continue, CellAttribution, CellCounters, RunRecord, Sample, VecProfileRecord,
};
use serde::{DeError, Deserialize, Serialize, Value};

/// Deterministic 64-bit PRNG (SplitMix64): tiny, seedable, and good
/// enough for bootstrap resampling indices.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `[0, n)`.
    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Comparator configuration.
#[derive(Copy, Clone, Debug)]
pub struct CompareConfig {
    /// Minimum relative noise floor. The effective per-cell floor is
    /// `max(noise_floor, baseline.spread(), candidate.spread())`, i.e.
    /// the configured value only tightens cells whose measured spread is
    /// already smaller.
    pub noise_floor: f64,
    /// Bootstrap resampling iterations per cell.
    pub bootstrap_iters: u32,
    /// Two-sided confidence level of the ratio interval (e.g. `0.95`).
    pub confidence: f64,
    /// Absolute timing slack in seconds, folded into the per-cell floor
    /// as `absolute_slack_s / baseline_median`. A single scheduler
    /// hiccup shifts a 100 µs cell by 50 % but a 1 s cell by 0.01 %, so
    /// relative floors alone cannot protect micro-cells; the slack term
    /// makes the floor grow as cells shrink while leaving long-running
    /// cells fully gated.
    pub absolute_slack_s: f64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        Self {
            noise_floor: 0.02,
            bootstrap_iters: 256,
            confidence: 0.95,
            absolute_slack_s: 0.0,
        }
    }
}

impl CompareConfig {
    /// Configuration for CI gating on shared, noisy hosts.
    ///
    /// Run-to-run drift on virtualized CI runners (frequency scaling,
    /// neighbor interference, cold caches) routinely moves medians by
    /// 10–25 % in ways within-run spread cannot see, so the gate floor
    /// is far laxer than [`CompareConfig::default`]: only slowdowns
    /// whose whole confidence interval clears 25 % fail the gate, and
    /// two milliseconds of absolute slack absorb scheduler hiccups on
    /// millisecond-scale cells (observed run-to-run excursions on
    /// containerized runners reach 40 % at 3 ms). A genuine 2x
    /// regression on any cell worth gating still fails decisively;
    /// tighten with `--noise-floor` when measuring on a quiet dedicated
    /// machine.
    pub fn gate() -> Self {
        Self {
            noise_floor: 0.25,
            absolute_slack_s: 2e-3,
            ..Self::default()
        }
    }
}

/// The three-way decision for one cell (or a whole comparison).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The candidate is slower beyond the noise floor, with the whole
    /// confidence interval above it.
    Regressed,
    /// The candidate is faster beyond the noise floor, with the whole
    /// confidence interval below it.
    Improved,
    /// The difference is within the noise floor or the interval
    /// straddles it.
    Noise,
}

impl Verdict {
    /// Stable machine-readable tag.
    pub fn as_str(&self) -> &'static str {
        match self {
            Verdict::Regressed => "regressed",
            Verdict::Improved => "improved",
            Verdict::Noise => "noise",
        }
    }

    /// Parses the machine-readable tag.
    pub fn from_str_tag(s: &str) -> Option<Self> {
        match s {
            "regressed" => Some(Verdict::Regressed),
            "improved" => Some(Verdict::Improved),
            "noise" => Some(Verdict::Noise),
            _ => None,
        }
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

// The derive stand-in only handles structs; a verdict serializes as its
// tag string.
impl Serialize for Verdict {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_owned())
    }
}

impl Deserialize for Verdict {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_value(v)?;
        Verdict::from_str_tag(&s).ok_or_else(|| DeError::new(format!("unknown verdict `{s}`")))
    }
}

/// The comparison of one (kernel, variant) cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellComparison {
    /// Kernel name.
    pub kernel: String,
    /// Variant rung.
    pub variant: String,
    /// Baseline median seconds (after min-of-k selection).
    pub baseline_median_s: f64,
    /// Candidate median seconds.
    pub candidate_median_s: f64,
    /// Point estimate `candidate / baseline` (>1 ⇒ slower).
    pub ratio: f64,
    /// Lower bound of the bootstrap ratio interval.
    pub ci_lo: f64,
    /// Upper bound of the bootstrap ratio interval.
    pub ci_hi: f64,
    /// Effective relative noise floor applied to this cell.
    pub noise_floor: f64,
    /// The decision.
    pub verdict: Verdict,
    /// *Why* the cell shifted, when both records carry roofline/pool
    /// attribution and it changed meaningfully (e.g. "pool idle fraction
    /// rose 8%→41%"). `None` for noise verdicts and unattributed records.
    pub explain: Option<String>,
}

/// A full record-vs-record comparison.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ComparisonReport {
    /// Baseline record id (or the synthetic min-of-k id).
    pub baseline_id: String,
    /// Candidate record id.
    pub candidate_id: String,
    /// Per-cell comparisons, candidate order.
    pub cells: Vec<CellComparison>,
    /// Cells present in only one record or without a clean measurement,
    /// as `kernel/variant: reason` lines.
    pub skipped: Vec<String>,
}

impl ComparisonReport {
    /// Cells that regressed.
    pub fn regressions(&self) -> impl Iterator<Item = &CellComparison> {
        self.cells
            .iter()
            .filter(|c| c.verdict == Verdict::Regressed)
    }

    /// Whether any cell regressed (the CI gate condition).
    pub fn has_regressions(&self) -> bool {
        self.regressions().next().is_some()
    }

    /// The overall verdict: `Regressed` dominates, then `Improved`, then
    /// `Noise`.
    pub fn overall(&self) -> Verdict {
        if self.has_regressions() {
            Verdict::Regressed
        } else if self.cells.iter().any(|c| c.verdict == Verdict::Improved) {
            Verdict::Improved
        } else {
            Verdict::Noise
        }
    }

    /// Machine-readable JSON (the `perfdb compare --json` payload).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("comparison reports are serializable")
    }

    /// Human-readable table with one row per cell and a verdict summary.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "candidate {} vs baseline {}\n{:<16} {:<12} {:>11} {:>11} {:>8} {:>7}  verdict\n",
            self.candidate_id,
            self.baseline_id,
            "kernel",
            "variant",
            "base s",
            "cand s",
            "speedup",
            "floor"
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{:<16} {:<12} {:>11.4e} {:>11.4e} {:>7.2}X {:>6.1}%  {}{}\n",
                c.kernel,
                c.variant,
                c.baseline_median_s,
                c.candidate_median_s,
                c.baseline_median_s / c.candidate_median_s,
                c.noise_floor * 100.0,
                c.verdict,
                match &c.explain {
                    Some(why) => format!(" — {why}"),
                    None => String::new(),
                }
            ));
        }
        let (mut reg, mut imp, mut noise) = (0usize, 0usize, 0usize);
        for c in &self.cells {
            match c.verdict {
                Verdict::Regressed => reg += 1,
                Verdict::Improved => imp += 1,
                Verdict::Noise => noise += 1,
            }
        }
        out.push_str(&format!(
            "verdict: {} — {reg} regressed / {imp} improved / {noise} noise ({} skipped)\n",
            self.overall(),
            self.skipped.len()
        ));
        out
    }
}

/// Builds the human-readable "why did this cell shift" hint from the two
/// sides' attribution, when both carry it. Each clause fires only on a
/// meaningful change (bound flip, ≥5-point roofline or idle shift, ≥0.25
/// imbalance-ratio shift, ≥0.1 steal-ratio shift) so noise in the
/// attribution itself stays quiet.
fn explain_shift(base: Option<&CellAttribution>, cand: Option<&CellAttribution>) -> Option<String> {
    let (b, c) = (base?, cand?);
    let mut clauses = Vec::new();
    if b.bound != c.bound {
        clauses.push(format!("bound flipped {}→{}", b.bound, c.bound));
    }
    let roof_shift = c.roofline_pct - b.roofline_pct;
    if roof_shift.abs() >= 5.0 {
        clauses.push(format!(
            "roofline utilization {} {:.0}%→{:.0}%",
            if roof_shift < 0.0 { "fell" } else { "rose" },
            b.roofline_pct,
            c.roofline_pct
        ));
    }
    if b.has_pool_data() && c.has_pool_data() {
        let idle_shift = c.pool_idle_pct - b.pool_idle_pct;
        if idle_shift.abs() >= 5.0 {
            clauses.push(format!(
                "pool idle fraction {} {:.0}%→{:.0}%",
                if idle_shift < 0.0 { "fell" } else { "rose" },
                b.pool_idle_pct,
                c.pool_idle_pct
            ));
        }
        let imbalance_shift = c.pool_imbalance - b.pool_imbalance;
        if imbalance_shift.abs() >= 0.25 {
            clauses.push(format!(
                "pool imbalance {} {:.2}→{:.2}",
                if imbalance_shift < 0.0 {
                    "fell"
                } else {
                    "rose"
                },
                b.pool_imbalance,
                c.pool_imbalance
            ));
        }
        let steal_shift = c.pool_steal_ratio - b.pool_steal_ratio;
        if steal_shift.abs() >= 0.1 {
            clauses.push(format!(
                "steal ratio {} {:.2}→{:.2}",
                if steal_shift < 0.0 { "fell" } else { "rose" },
                b.pool_steal_ratio,
                c.pool_steal_ratio
            ));
        }
    }
    if clauses.is_empty() {
        None
    } else {
        Some(clauses.join("; "))
    }
}

/// Builds the hardware-counter side of the "why did this cell shift"
/// hint, when both records measured this cell with counters on. The
/// modeled clauses above say *where the cell sits* on the roofline; the
/// counter clauses say *what the core was doing* — an IPC collapse with
/// a flat instruction mix is stalls, a rising LLC miss rate is a working
/// set falling out of cache. Thresholds (≥0.15 IPC, ≥3-point miss rate,
/// ≥25 % relative DRAM traffic) keep multiplexing jitter quiet.
fn explain_counter_shift(
    base: Option<&CellCounters>,
    cand: Option<&CellCounters>,
) -> Option<String> {
    let (b, c) = (base?, cand?);
    let mut clauses = Vec::new();
    if let (Some(bi), Some(ci)) = (b.ipc, c.ipc) {
        if (ci - bi).abs() >= 0.15 {
            clauses.push(format!(
                "IPC {} {bi:.2}→{ci:.2}",
                if ci < bi { "fell" } else { "rose" }
            ));
        }
    }
    if let (Some(bm), Some(cm)) = (b.llc_miss_rate, c.llc_miss_rate) {
        if (cm - bm).abs() >= 0.03 {
            clauses.push(format!(
                "LLC miss rate {} {:.0}%→{:.0}%",
                if cm < bm { "fell" } else { "rose" },
                bm * 100.0,
                cm * 100.0
            ));
        }
    }
    if let (Some(bd), Some(cd)) = (b.dram_gbs, c.dram_gbs) {
        if bd > 0.0 && ((cd - bd) / bd).abs() >= 0.25 {
            clauses.push(format!(
                "DRAM traffic {} {bd:.1}→{cd:.1} GB/s",
                if cd < bd { "fell" } else { "rose" }
            ));
        }
    }
    if let (Some(bb), Some(cb)) = (&b.measured_bound, &c.measured_bound) {
        if bb != cb {
            clauses.push(format!("measured bound flipped {bb}→{cb}"));
        }
    }
    if clauses.is_empty() {
        None
    } else {
        Some(clauses.join("; "))
    }
}

/// Builds the codegen side of the "why did this cell shift" hint from
/// the two runs' vectorization profiles, when both recorded evidence for
/// this cell. Fires on a vector-width change or FMA appearing or
/// disappearing — the codegen shifts that move kernel timings on their
/// own, e.g. after a source change that defeats the auto-vectorizer.
fn explain_vec_shift(
    base: Option<&VecProfileRecord>,
    cand: Option<&VecProfileRecord>,
) -> Option<String> {
    let (b, c) = (base?, cand?);
    // A side with no matched symbols saw no evidence (inlined away);
    // silence beats a spurious "width changed N→0".
    if b.matched_symbols == 0 || c.matched_symbols == 0 {
        return None;
    }
    let mut clauses = Vec::new();
    if b.width_bits != c.width_bits {
        clauses.push(format!(
            "vector width changed {}→{}",
            b.width_bits, c.width_bits
        ));
    }
    if b.fma != c.fma {
        clauses.push(format!(
            "fma {}",
            if c.fma { "appeared" } else { "disappeared" }
        ));
    }
    if clauses.is_empty() {
        None
    } else {
        Some(clauses.join("; "))
    }
}

/// Explains a dispatch-level shift between two runs: the resolved ISA
/// backend changed (e.g. a forced `NINJA_ISA=sse2` run compared against
/// an AVX2 baseline). Unlike [`explain_vec_shift`], which reads codegen
/// evidence per cell, this reads the run-level dispatcher decision and
/// therefore applies to every flagged cell of the pair. Records written
/// before the width-generic dispatcher existed carry an empty `isa`;
/// those stay silent rather than claiming "isa changed →sse2".
fn explain_isa_shift(base: &str, cand: &str) -> Option<String> {
    if base.is_empty() || cand.is_empty() || base == cand {
        None
    } else {
        Some(format!("isa changed {base}→{cand}"))
    }
}

/// Reconstructs a plausible repetition sample set from a summary: `runs`
/// points spanning `[min, max]` with the median preserved at the center.
/// The harness stores summaries, not raw repetitions, so the bootstrap
/// resamples this parametric reconstruction.
fn pseudo_samples(s: &Sample) -> Vec<f64> {
    let n = (s.runs as usize).max(3);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let t = i as f64 / (n - 1) as f64;
        let v = if t <= 0.5 {
            s.min_s + (s.median_s - s.min_s) * (t * 2.0)
        } else {
            s.median_s + (s.max_s - s.median_s) * ((t - 0.5) * 2.0)
        };
        out.push(v);
    }
    out
}

/// Median of a non-empty slice of resampled values (scratch is sorted).
fn median_of(scratch: &mut [f64]) -> f64 {
    scratch.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    scratch[scratch.len() / 2]
}

/// The result of comparing one candidate sample against one baseline
/// sample (before packaging into a [`CellComparison`]).
struct CellStats {
    ratio: f64,
    ci_lo: f64,
    ci_hi: f64,
    floor: f64,
    verdict: Verdict,
}

/// Bootstrap comparison of two summaries. `seed` must be derived from
/// stable identifiers so verdicts reproduce across invocations.
fn compare_samples(base: &Sample, cand: &Sample, seed: u64, cfg: &CompareConfig) -> CellStats {
    let slack = if base.median_s > 0.0 {
        cfg.absolute_slack_s / base.median_s
    } else {
        0.0
    };
    let floor = cfg
        .noise_floor
        .max(base.spread())
        .max(cand.spread())
        .max(slack);
    let ratio = cand.median_s / base.median_s;

    let base_pool = pseudo_samples(base);
    let cand_pool = pseudo_samples(cand);
    let mut rng = SplitMix64::new(seed);
    let iters = cfg.bootstrap_iters.max(1) as usize;
    let mut ratios = Vec::with_capacity(iters);
    let mut base_scratch = vec![0.0; base_pool.len()];
    let mut cand_scratch = vec![0.0; cand_pool.len()];
    for _ in 0..iters {
        for slot in base_scratch.iter_mut() {
            *slot = base_pool[rng.index(base_pool.len())];
        }
        for slot in cand_scratch.iter_mut() {
            *slot = cand_pool[rng.index(cand_pool.len())];
        }
        ratios.push(median_of(&mut cand_scratch) / median_of(&mut base_scratch));
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let tail = ((1.0 - cfg.confidence.clamp(0.0, 1.0)) / 2.0 * iters as f64) as usize;
    let tail = tail.min(iters.saturating_sub(1) / 2);
    let (ci_lo, ci_hi) = (ratios[tail], ratios[iters - 1 - tail]);

    let verdict = if ci_lo > 1.0 + floor {
        Verdict::Regressed
    } else if ci_hi < 1.0 / (1.0 + floor) {
        Verdict::Improved
    } else {
        Verdict::Noise
    };
    CellStats {
        ratio,
        ci_lo,
        ci_hi,
        floor,
        verdict,
    }
}

/// Per-cell seed: order-independent mix of the two record ids and the
/// cell name, so shuffling kernels (or comparing a subset) never changes
/// a verdict.
fn cell_seed(baseline_id: &str, candidate_id: &str, kernel: &str, variant: &str) -> u64 {
    let mut h = fnv1a64(baseline_id.as_bytes());
    h = fnv1a64_continue(h, b"|");
    h = fnv1a64_continue(h, candidate_id.as_bytes());
    h ^ fnv1a64(kernel.as_bytes()).rotate_left(17) ^ fnv1a64(variant.as_bytes()).rotate_left(43)
}

/// Compares `candidate` against `baseline`, cell by cell.
///
/// Cells missing from either record, failed cells, and cells with
/// inconsistent summaries are skipped (listed in
/// [`ComparisonReport::skipped`]) — a kernel that *failed* is the fault
/// harness's jurisdiction, not the regression gate's.
pub fn compare_records(
    baseline: &RunRecord,
    candidate: &RunRecord,
    cfg: &CompareConfig,
) -> ComparisonReport {
    let mut cells = Vec::new();
    let mut skipped = Vec::new();
    for c in &candidate.cells {
        let name = format!("{}/{}", c.kernel, c.variant);
        if !c.is_ok() {
            skipped.push(format!("{name}: candidate cell is {}", c.outcome));
            continue;
        }
        let cand = c.sample.expect("ok cells have samples");
        let Some(b) = baseline.cell(&c.kernel, &c.variant) else {
            skipped.push(format!("{name}: not in baseline"));
            continue;
        };
        if !b.is_ok() {
            skipped.push(format!("{name}: baseline cell is {}", b.outcome));
            continue;
        }
        let base = b.sample.expect("ok cells have samples");
        let seed = cell_seed(&baseline.id, &candidate.id, &c.kernel, &c.variant);
        let stats = compare_samples(&base, &cand, seed, cfg);
        // An attribution shift on a noise cell is itself noise — only
        // explain cells the comparator actually flagged. Roofline and
        // codegen clauses are joined into one hint.
        let explain = if stats.verdict == Verdict::Noise {
            None
        } else {
            let clauses: Vec<String> =
                explain_shift(b.attribution.as_ref(), c.attribution.as_ref())
                    .into_iter()
                    .chain(explain_counter_shift(
                        b.counters.as_ref(),
                        c.counters.as_ref(),
                    ))
                    .chain(explain_vec_shift(
                        baseline.vec_profile(&c.kernel, &c.variant),
                        candidate.vec_profile(&c.kernel, &c.variant),
                    ))
                    .chain(explain_isa_shift(&baseline.isa, &candidate.isa))
                    .collect();
            if clauses.is_empty() {
                None
            } else {
                Some(clauses.join("; "))
            }
        };
        cells.push(CellComparison {
            kernel: c.kernel.clone(),
            variant: c.variant.clone(),
            baseline_median_s: base.median_s,
            candidate_median_s: cand.median_s,
            ratio: stats.ratio,
            ci_lo: stats.ci_lo,
            ci_hi: stats.ci_hi,
            noise_floor: stats.floor,
            verdict: stats.verdict,
            explain,
        });
    }
    ComparisonReport {
        baseline_id: baseline.id.clone(),
        candidate_id: candidate.id.clone(),
        cells,
        skipped,
    }
}

/// Builds the min-of-k baseline from a window of records (most recent
/// last, as stored): per cell, the sample with the smallest median across
/// the window. The synthetic record id names the members so comparisons
/// against it stay reproducible.
///
/// Returns `None` for an empty window.
pub fn min_of_k_baseline(window: &[RunRecord]) -> Option<RunRecord> {
    let last = window.last()?;
    if window.len() == 1 {
        return Some(last.clone());
    }
    let mut merged = last.clone();
    for cell in merged.cells.iter_mut() {
        if !cell.is_ok() {
            continue;
        }
        for earlier in &window[..window.len() - 1] {
            if let Some(other) = earlier.cell(&cell.kernel, &cell.variant) {
                if other.is_ok() {
                    let o = other.sample.expect("ok cells have samples");
                    if o.median_s < cell.sample.expect("ok cells have samples").median_s {
                        cell.sample = Some(o);
                        // Attribution and counters travel with the sample
                        // they describe.
                        cell.attribution = other.attribution.clone();
                        cell.counters = other.counters.clone();
                    }
                }
            }
        }
    }
    let ids: Vec<&str> = window.iter().map(|r| r.id.as_str()).collect();
    merged.id = format!("min-of-{}({})", window.len(), ids.join(","));
    Some(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{CellRecord, MachineFingerprint, SCHEMA_VERSION};

    fn sample(median: f64, rel_spread: f64) -> Sample {
        Sample {
            median_s: median,
            mean_s: median,
            stddev_s: median * rel_spread / 4.0,
            min_s: median * (1.0 - rel_spread / 2.0),
            max_s: median * (1.0 + rel_spread / 2.0),
            runs: 5,
        }
    }

    fn record(id: &str, cells: Vec<(&str, &str, Option<Sample>)>) -> RunRecord {
        RunRecord {
            schema_version: SCHEMA_VERSION,
            id: id.into(),
            timestamp_unix_s: 0,
            git_commit: "unknown".into(),
            machine: MachineFingerprint::synthetic("scalar"),
            size: "test".into(),
            seed: 1,
            threads: 1,
            isa: String::new(),
            excluded: Vec::new(),
            cells: cells
                .into_iter()
                .map(|(k, v, s)| CellRecord {
                    kernel: k.into(),
                    variant: v.into(),
                    outcome: if s.is_some() { "ok" } else { "panicked" }.into(),
                    sample: s,
                    attribution: None,
                    counters: None,
                })
                .collect(),
            vec_profiles: Vec::new(),
        }
    }

    #[test]
    fn self_comparison_is_noise() {
        let r = record(
            "a",
            vec![
                ("k", "naive", Some(sample(8.0, 0.1))),
                ("k", "ninja", Some(sample(1.0, 0.1))),
            ],
        );
        let report = compare_records(&r, &r, &CompareConfig::default());
        assert_eq!(report.cells.len(), 2);
        assert!(report.cells.iter().all(|c| c.verdict == Verdict::Noise));
        assert_eq!(report.overall(), Verdict::Noise);
        assert!(!report.has_regressions());
    }

    #[test]
    fn doubled_time_is_regressed_and_halved_is_improved() {
        let base = record("base", vec![("k", "ninja", Some(sample(1.0, 0.1)))]);
        let slow = record("slow", vec![("k", "ninja", Some(sample(2.0, 0.1)))]);
        let fast = record("fast", vec![("k", "ninja", Some(sample(0.5, 0.1)))]);

        let r = compare_records(&base, &slow, &CompareConfig::default());
        assert_eq!(r.cells[0].verdict, Verdict::Regressed);
        assert!(r.has_regressions());
        assert!(r.cells[0].ratio > 1.9 && r.cells[0].ratio < 2.1);
        assert!(r.cells[0].ci_lo > 1.0, "{:?}", r.cells[0]);

        let r = compare_records(&base, &fast, &CompareConfig::default());
        assert_eq!(r.cells[0].verdict, Verdict::Improved);
        assert_eq!(r.overall(), Verdict::Improved);
    }

    #[test]
    fn gate_slack_shields_micro_cells_but_not_long_ones() {
        // A 60 % excursion on a 150 µs cell is one scheduler hiccup; the
        // same ratio on a 150 ms cell is a real regression.
        let base = record(
            "base",
            vec![
                ("k", "simd", Some(sample(150e-6, 0.05))),
                ("k", "ninja", Some(sample(150e-3, 0.05))),
            ],
        );
        let cand = record(
            "cand",
            vec![
                ("k", "simd", Some(sample(240e-6, 0.05))),
                ("k", "ninja", Some(sample(240e-3, 0.05))),
            ],
        );
        let gate = compare_records(&base, &cand, &CompareConfig::gate());
        assert_eq!(gate.cells[0].verdict, Verdict::Noise, "{:?}", gate.cells[0]);
        assert_eq!(
            gate.cells[1].verdict,
            Verdict::Regressed,
            "{:?}",
            gate.cells[1]
        );
        // The strict default config flags both.
        let strict = compare_records(&base, &cand, &CompareConfig::default());
        assert!(strict.cells.iter().all(|c| c.verdict == Verdict::Regressed));
    }

    #[test]
    fn verdicts_are_deterministic() {
        let base = record("base", vec![("k", "ninja", Some(sample(1.0, 0.25)))]);
        let cand = record("cand", vec![("k", "ninja", Some(sample(1.2, 0.25)))]);
        let a = compare_records(&base, &cand, &CompareConfig::default());
        let b = compare_records(&base, &cand, &CompareConfig::default());
        assert_eq!(a, b, "identical inputs must produce identical reports");
    }

    #[test]
    fn noisy_cells_get_wider_floors() {
        // 40% measured spread swallows a 20% delta that a quiet cell
        // would flag.
        let base_noisy = record("bn", vec![("k", "ninja", Some(sample(1.0, 0.4)))]);
        let cand_noisy = record("cn", vec![("k", "ninja", Some(sample(1.2, 0.4)))]);
        let r = compare_records(&base_noisy, &cand_noisy, &CompareConfig::default());
        assert_eq!(r.cells[0].verdict, Verdict::Noise, "{:?}", r.cells[0]);
        assert!(r.cells[0].noise_floor >= 0.4);

        let base_quiet = record("bq", vec![("k", "ninja", Some(sample(1.0, 0.01)))]);
        let cand_quiet = record("cq", vec![("k", "ninja", Some(sample(1.2, 0.01)))]);
        let r = compare_records(&base_quiet, &cand_quiet, &CompareConfig::default());
        assert_eq!(r.cells[0].verdict, Verdict::Regressed, "{:?}", r.cells[0]);
    }

    #[test]
    fn failed_and_missing_cells_are_skipped_not_judged() {
        let base = record(
            "base",
            vec![("k", "naive", Some(sample(8.0, 0.1))), ("k", "ninja", None)],
        );
        let cand = record(
            "cand",
            vec![
                ("k", "naive", Some(sample(8.0, 0.1))),
                ("k", "ninja", Some(sample(1.0, 0.1))),
                ("k", "simd", Some(sample(2.0, 0.1))),
                ("k", "parallel", None),
            ],
        );
        let r = compare_records(&base, &cand, &CompareConfig::default());
        assert_eq!(r.cells.len(), 1, "{r:?}");
        assert_eq!(r.cells[0].variant, "naive");
        assert_eq!(r.skipped.len(), 3);
        assert!(r.skipped.iter().any(|s| s.contains("k/ninja")));
        assert!(r.skipped.iter().any(|s| s.contains("not in baseline")));
        assert!(r.skipped.iter().any(|s| s.contains("panicked")));
    }

    #[test]
    fn min_of_k_picks_fastest_baseline_per_cell() {
        let r1 = record(
            "r1",
            vec![
                ("k", "naive", Some(sample(7.0, 0.1))),
                ("k", "ninja", Some(sample(1.2, 0.1))),
            ],
        );
        let r2 = record(
            "r2",
            vec![
                ("k", "naive", Some(sample(8.0, 0.1))),
                ("k", "ninja", Some(sample(1.0, 0.1))),
            ],
        );
        let merged = min_of_k_baseline(&[r1, r2]).unwrap();
        assert!(merged.id.starts_with("min-of-2"));
        assert!((merged.median_s("k", "naive").unwrap() - 7.0).abs() < 1e-12);
        assert!((merged.median_s("k", "ninja").unwrap() - 1.0).abs() < 1e-12);
        assert!(min_of_k_baseline(&[]).is_none());
    }

    #[test]
    fn report_renders_and_roundtrips() {
        let base = record("base", vec![("k", "ninja", Some(sample(1.0, 0.05)))]);
        let cand = record("cand", vec![("k", "ninja", Some(sample(2.0, 0.05)))]);
        let r = compare_records(&base, &cand, &CompareConfig::default());
        let text = r.render_text();
        assert!(text.contains("regressed"), "{text}");
        assert!(text.contains("0.50X"), "{text}");
        let back: ComparisonReport = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(r, back);
    }

    fn attribution(
        bound: &str,
        roofline_pct: f64,
        idle_pct: f64,
        imbalance: f64,
    ) -> CellAttribution {
        CellAttribution {
            achieved_gflops: 1.0,
            achieved_gbs: 1.0,
            roofline_pct,
            bound: bound.into(),
            pool_imbalance: imbalance,
            pool_idle_pct: idle_pct,
            pool_steal_ratio: 0.0,
        }
    }

    #[test]
    fn regressions_explain_why_when_attribution_shifted() {
        let mut base = record("base", vec![("k", "parallel", Some(sample(1.0, 0.05)))]);
        base.cells[0].attribution = Some(attribution("compute", 40.0, 8.0, 1.1));
        let mut slow = record("slow", vec![("k", "parallel", Some(sample(2.1, 0.05)))]);
        slow.cells[0].attribution = Some(attribution("poorly-utilized", 19.0, 41.0, 2.4));

        let r = compare_records(&base, &slow, &CompareConfig::default());
        assert_eq!(r.cells[0].verdict, Verdict::Regressed);
        let why = r.cells[0].explain.as_deref().expect("explained");
        assert!(
            why.contains("bound flipped compute→poorly-utilized"),
            "{why}"
        );
        assert!(why.contains("roofline utilization fell 40%→19%"), "{why}");
        assert!(why.contains("pool idle fraction rose 8%→41%"), "{why}");
        assert!(why.contains("pool imbalance rose 1.10→2.40"), "{why}");
        let text = r.render_text();
        assert!(text.contains("regressed — "), "{text}");
        assert!(text.contains("idle fraction rose"), "{text}");
    }

    #[test]
    fn regressions_explain_steal_ratio_shifts() {
        let mut base = record("base", vec![("k", "parallel", Some(sample(1.0, 0.05)))]);
        let mut a = attribution("compute", 40.0, 8.0, 1.1);
        a.pool_steal_ratio = 0.05;
        base.cells[0].attribution = Some(a);
        let mut slow = record("slow", vec![("k", "parallel", Some(sample(2.1, 0.05)))]);
        let mut a = attribution("compute", 38.0, 9.0, 1.15);
        a.pool_steal_ratio = 0.40;
        slow.cells[0].attribution = Some(a);

        let r = compare_records(&base, &slow, &CompareConfig::default());
        assert_eq!(r.cells[0].verdict, Verdict::Regressed);
        let why = r.cells[0].explain.as_deref().expect("explained");
        assert!(why.contains("steal ratio rose 0.05→0.40"), "{why}");

        // Sub-threshold steal drift stays quiet.
        let mut calm = record("calm", vec![("k", "parallel", Some(sample(2.1, 0.05)))]);
        let mut a = attribution("compute", 40.0, 8.0, 1.1);
        a.pool_steal_ratio = 0.09;
        calm.cells[0].attribution = Some(a);
        let mut base2 = base.clone();
        base2.cells[0]
            .attribution
            .as_mut()
            .unwrap()
            .pool_steal_ratio = 0.0;
        // has_pool_data needs imbalance > 0 on both sides, which holds.
        let r = compare_records(&base2, &calm, &CompareConfig::default());
        assert!(
            r.cells[0]
                .explain
                .as_deref()
                .is_none_or(|w| !w.contains("steal")),
            "{:?}",
            r.cells[0].explain
        );
    }

    fn counters(ipc: f64, miss_rate: f64, dram: f64, bound: &str) -> CellCounters {
        CellCounters {
            ipc: Some(ipc),
            llc_miss_rate: Some(miss_rate),
            dram_gbs: Some(dram),
            measured_bound: Some(bound.into()),
            agreement: Some(true),
        }
    }

    #[test]
    fn regressions_explain_counter_shifts() {
        let mut base = record("base", vec![("k", "ninja", Some(sample(1.0, 0.05)))]);
        base.cells[0].counters = Some(counters(2.1, 0.04, 8.0, "compute"));
        let mut slow = record("slow", vec![("k", "ninja", Some(sample(2.1, 0.05)))]);
        slow.cells[0].counters = Some(counters(1.4, 0.12, 24.0, "bandwidth"));

        let r = compare_records(&base, &slow, &CompareConfig::default());
        assert_eq!(r.cells[0].verdict, Verdict::Regressed);
        let why = r.cells[0].explain.as_deref().expect("explained");
        assert!(why.contains("IPC fell 2.10→1.40"), "{why}");
        assert!(why.contains("LLC miss rate rose 4%→12%"), "{why}");
        assert!(why.contains("DRAM traffic rose 8.0→24.0 GB/s"), "{why}");
        assert!(
            why.contains("measured bound flipped compute→bandwidth"),
            "{why}"
        );

        // Sub-threshold counter jitter on a real regression stays quiet.
        let mut calm = record("calm", vec![("k", "ninja", Some(sample(2.1, 0.05)))]);
        calm.cells[0].counters = Some(counters(2.05, 0.05, 8.5, "compute"));
        let r = compare_records(&base, &calm, &CompareConfig::default());
        assert_eq!(r.cells[0].verdict, Verdict::Regressed);
        assert!(r.cells[0].explain.is_none(), "{:?}", r.cells[0].explain);

        // One counterless side (e.g. the baseline predates counters, or
        // ran without PMU access): no counter clause, no panic.
        let r = compare_records(
            &record("bare", vec![("k", "ninja", Some(sample(1.0, 0.05)))]),
            &slow,
            &CompareConfig::default(),
        );
        assert_eq!(r.cells[0].verdict, Verdict::Regressed);
        assert!(r.cells[0].explain.is_none());
    }

    #[test]
    fn counter_clauses_chain_after_modeled_attribution() {
        let mut base = record("base", vec![("k", "ninja", Some(sample(1.0, 0.05)))]);
        base.cells[0].attribution = Some(attribution("compute", 40.0, 0.0, 0.0));
        base.cells[0].counters = Some(counters(2.1, 0.04, 8.0, "compute"));
        let mut slow = record("slow", vec![("k", "ninja", Some(sample(2.1, 0.05)))]);
        slow.cells[0].attribution = Some(attribution("bandwidth", 20.0, 0.0, 0.0));
        slow.cells[0].counters = Some(counters(1.4, 0.12, 24.0, "bandwidth"));

        let r = compare_records(&base, &slow, &CompareConfig::default());
        let why = r.cells[0].explain.as_deref().expect("explained");
        let modeled = why.find("bound flipped compute→bandwidth").unwrap();
        let measured = why.find("IPC fell").unwrap();
        assert!(modeled < measured, "modeled clause leads: {why}");
        let text = r.render_text();
        assert!(text.contains("IPC fell"), "{text}");
    }

    #[test]
    fn min_of_k_carries_counters_with_the_chosen_sample() {
        let mut r1 = record("r1", vec![("k", "ninja", Some(sample(1.0, 0.05)))]);
        r1.cells[0].counters = Some(counters(2.2, 0.03, 7.0, "compute"));
        let mut r2 = record("r2", vec![("k", "ninja", Some(sample(1.5, 0.05)))]);
        r2.cells[0].counters = Some(counters(1.1, 0.30, 25.0, "bandwidth"));
        let merged = min_of_k_baseline(&[r1, r2]).unwrap();
        // r1's faster sample won, so r1's counters must describe it.
        let c = merged.cells[0].counters.as_ref().unwrap();
        assert_eq!(c.ipc, Some(2.2));
        assert_eq!(c.measured_bound.as_deref(), Some("compute"));
    }

    fn profile(kernel: &str, rung: &str, width: u32, fma: bool) -> VecProfileRecord {
        VecProfileRecord {
            kernel: kernel.into(),
            rung: rung.into(),
            width_bits: width,
            fma,
            gather: false,
            scatter: false,
            vector_fp_ops: if width > 0 { 40 } else { 0 },
            scalar_fp_ops: 4,
            vector_int_ops: 0,
            matched_symbols: 1,
            classification: match width {
                0 => "scalar".into(),
                w => format!("vec{w}"),
            },
        }
    }

    #[test]
    fn regressions_explain_vector_width_and_fma_changes() {
        let mut base = record("base", vec![("k", "ninja", Some(sample(1.0, 0.05)))]);
        base.vec_profiles.push(profile("k", "ninja", 256, true));
        let mut slow = record("slow", vec![("k", "ninja", Some(sample(2.1, 0.05)))]);
        slow.vec_profiles.push(profile("k", "ninja", 128, false));

        let r = compare_records(&base, &slow, &CompareConfig::default());
        assert_eq!(r.cells[0].verdict, Verdict::Regressed);
        let why = r.cells[0].explain.as_deref().expect("explained");
        assert!(why.contains("vector width changed 256→128"), "{why}");
        assert!(why.contains("fma disappeared"), "{why}");

        // No profile on one side, or no matched symbols: stay quiet.
        let r = compare_records(
            &base,
            &{
                let mut s = record("slow2", vec![("k", "ninja", Some(sample(2.1, 0.05)))]);
                s.vec_profiles.push({
                    let mut p = profile("k", "ninja", 0, false);
                    p.matched_symbols = 0;
                    p
                });
                s
            },
            &CompareConfig::default(),
        );
        assert_eq!(r.cells[0].verdict, Verdict::Regressed);
        assert!(r.cells[0].explain.is_none(), "{:?}", r.cells[0].explain);

        // An identical profile adds no clause.
        let mut same = record("same", vec![("k", "ninja", Some(sample(2.1, 0.05)))]);
        same.vec_profiles.push(profile("k", "ninja", 256, true));
        let r = compare_records(&base, &same, &CompareConfig::default());
        assert!(r.cells[0].explain.is_none());
    }

    #[test]
    fn regressions_explain_isa_backend_changes() {
        let mut base = record("base", vec![("k", "ninja", Some(sample(1.0, 0.05)))]);
        base.isa = "avx2".into();
        let mut slow = record("slow", vec![("k", "ninja", Some(sample(2.1, 0.05)))]);
        slow.isa = "sse2".into();

        let r = compare_records(&base, &slow, &CompareConfig::default());
        assert_eq!(r.cells[0].verdict, Verdict::Regressed);
        let why = r.cells[0].explain.as_deref().expect("explained");
        assert!(why.contains("isa changed avx2→sse2"), "{why}");

        // Same backend on both sides: no clause.
        let mut same = record("same", vec![("k", "ninja", Some(sample(2.1, 0.05)))]);
        same.isa = "avx2".into();
        let r = compare_records(&base, &same, &CompareConfig::default());
        assert!(r.cells[0].explain.is_none(), "{:?}", r.cells[0].explain);

        // A pre-dispatcher record (empty isa) on either side stays quiet
        // instead of claiming "isa changed →sse2".
        let old = record("old", vec![("k", "ninja", Some(sample(1.0, 0.05)))]);
        let r = compare_records(&old, &slow, &CompareConfig::default());
        assert_eq!(r.cells[0].verdict, Verdict::Regressed);
        assert!(r.cells[0].explain.is_none(), "{:?}", r.cells[0].explain);

        // The isa clause chains after per-cell codegen clauses.
        base.vec_profiles.push(profile("k", "ninja", 256, true));
        slow.vec_profiles.push(profile("k", "ninja", 128, true));
        let r = compare_records(&base, &slow, &CompareConfig::default());
        let why = r.cells[0].explain.as_deref().expect("explained");
        let vec_pos = why.find("vector width changed 256→128").unwrap();
        let isa_pos = why.find("isa changed avx2→sse2").unwrap();
        assert!(vec_pos < isa_pos, "codegen clause leads: {why}");
    }

    #[test]
    fn noise_and_unattributed_cells_stay_unexplained() {
        // A regression without attribution on both sides: no hint.
        let base = record("base", vec![("k", "ninja", Some(sample(1.0, 0.05)))]);
        let slow = record("slow", vec![("k", "ninja", Some(sample(2.0, 0.05)))]);
        let r = compare_records(&base, &slow, &CompareConfig::default());
        assert_eq!(r.cells[0].verdict, Verdict::Regressed);
        assert!(r.cells[0].explain.is_none());

        // A noise cell with a (noisy) attribution shift: still no hint.
        let mut a = record("a", vec![("k", "ninja", Some(sample(1.0, 0.3)))]);
        a.cells[0].attribution = Some(attribution("compute", 40.0, 5.0, 1.0));
        let mut b = record("b", vec![("k", "ninja", Some(sample(1.05, 0.3)))]);
        b.cells[0].attribution = Some(attribution("bandwidth", 30.0, 15.0, 1.5));
        let r = compare_records(&a, &b, &CompareConfig::default());
        assert_eq!(r.cells[0].verdict, Verdict::Noise);
        assert!(r.cells[0].explain.is_none());

        // Sub-threshold shifts on a real regression: clauses stay quiet.
        let mut base = record("base", vec![("k", "ninja", Some(sample(1.0, 0.05)))]);
        base.cells[0].attribution = Some(attribution("compute", 40.0, 8.0, 1.1));
        let mut slow = record("slow", vec![("k", "ninja", Some(sample(2.0, 0.05)))]);
        slow.cells[0].attribution = Some(attribution("compute", 41.0, 9.0, 1.2));
        let r = compare_records(&base, &slow, &CompareConfig::default());
        assert_eq!(r.cells[0].verdict, Verdict::Regressed);
        assert!(r.cells[0].explain.is_none(), "{:?}", r.cells[0].explain);
    }

    #[test]
    fn min_of_k_carries_attribution_with_the_chosen_sample() {
        let mut r1 = record("r1", vec![("k", "ninja", Some(sample(1.0, 0.05)))]);
        r1.cells[0].attribution = Some(attribution("compute", 50.0, 5.0, 1.05));
        let mut r2 = record("r2", vec![("k", "ninja", Some(sample(1.5, 0.05)))]);
        r2.cells[0].attribution = Some(attribution("poorly-utilized", 9.0, 60.0, 3.0));
        let merged = min_of_k_baseline(&[r1, r2]).unwrap();
        // r1's faster sample won, so r1's attribution must describe it.
        let attr = merged.cells[0].attribution.as_ref().unwrap();
        assert_eq!(attr.bound, "compute");
        assert!((attr.roofline_pct - 50.0).abs() < 1e-12);
    }

    #[test]
    fn splitmix_is_reproducible() {
        let a: Vec<u64> = {
            let mut rng = SplitMix64::new(7);
            (0..4).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = SplitMix64::new(7);
            (0..4).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut rng = SplitMix64::new(8);
        assert_ne!(a[0], rng.next_u64());
    }
}
