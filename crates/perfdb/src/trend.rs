//! Trend reporting: the per-kernel gap/residual trajectory over recorded
//! runs, and the aggregated `BENCH_history.json` artifact.
//!
//! The paper's headline claim is longitudinal — the Ninja gap *grows*
//! across processor generations unless the code keeps up — so the repo
//! needs its own longitudinal axis: every recorded run contributes one
//! point of measured gap (`naive/ninja`) and residual
//! (`algorithmic/ninja`) per kernel, and the history report strings those
//! points into a trajectory that future perf PRs are judged against.

use crate::schema::RunRecord;
use crate::serve::ServeRecord;
use crate::sweep::SweepRecord;
use serde::{Deserialize, Serialize};

/// One run's contribution to a kernel's trajectory.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct TrendPoint {
    /// Record id the point comes from.
    pub run_id: String,
    /// Unix timestamp (seconds) of the run.
    pub timestamp_unix_s: u64,
    /// Git commit measured.
    pub git_commit: String,
    /// Median seconds of the `ninja` variant (`None` when it failed).
    pub ninja_median_s: Option<f64>,
    /// Measured Ninja gap `naive/ninja` (`None` when either failed).
    pub gap: Option<f64>,
    /// Measured residual `algorithmic/ninja`.
    pub residual: Option<f64>,
    /// Vector width (bits) of the ninja rung's recorded codegen evidence;
    /// `None` when the run carried no asm profile for this kernel. Lets a
    /// trajectory show *when* a rung's vectorization changed, not just
    /// when its timing did.
    pub ninja_vec_width_bits: Option<u32>,
    /// Measured instructions-per-cycle of the ninja rung, from the run's
    /// hardware counters; `None` when the run carried none (counters off,
    /// PMU unavailable, or a pre-counter record). IPC drift localizes a
    /// regression the timing column can only date: a slower run at flat
    /// IPC grew work, a slower run at fallen IPC grew stalls.
    pub ninja_ipc: Option<f64>,
}

// Deserialize is written by hand (Serialize stays derived) so history
// artifacts written before `ninja_vec_width_bits` / `ninja_ipc` existed
// still parse.
impl serde::Deserialize for TrendPoint {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(Self {
            run_id: String::from_value(v.field("run_id")?)?,
            timestamp_unix_s: u64::from_value(v.field("timestamp_unix_s")?)?,
            git_commit: String::from_value(v.field("git_commit")?)?,
            ninja_median_s: Option::from_value(v.field("ninja_median_s")?)?,
            gap: Option::from_value(v.field("gap")?)?,
            residual: Option::from_value(v.field("residual")?)?,
            ninja_vec_width_bits: match v.field("ninja_vec_width_bits") {
                Ok(val) => Option::from_value(val)?,
                Err(_) => None,
            },
            ninja_ipc: match v.field("ninja_ipc") {
                Ok(val) => Option::from_value(val)?,
                Err(_) => None,
            },
        })
    }
}

/// One kernel's trajectory, oldest run first.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelHistory {
    /// Kernel name.
    pub kernel: String,
    /// Points in store order.
    pub points: Vec<TrendPoint>,
}

/// The aggregated trajectory artifact (`BENCH_history.json`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct History {
    /// Schema version (shared with run records).
    pub schema_version: u32,
    /// Number of records the history was built from.
    pub runs: usize,
    /// Per-kernel trajectories, first-seen order.
    pub kernels: Vec<KernelHistory>,
}

impl History {
    /// Builds the history from records, oldest first (store order).
    pub fn from_records(records: &[RunRecord]) -> Self {
        let mut kernels: Vec<KernelHistory> = Vec::new();
        for rec in records {
            for name in rec.kernels() {
                if !kernels.iter().any(|k| k.kernel == name) {
                    kernels.push(KernelHistory {
                        kernel: name.to_owned(),
                        points: Vec::new(),
                    });
                }
            }
        }
        for k in kernels.iter_mut() {
            for rec in records {
                if rec.kernels().contains(&k.kernel.as_str()) {
                    k.points.push(trend_point(rec, &k.kernel));
                }
            }
        }
        History {
            schema_version: crate::schema::SCHEMA_VERSION,
            runs: records.len(),
            kernels,
        }
    }

    /// One kernel's trajectory, if recorded.
    pub fn kernel(&self, name: &str) -> Option<&KernelHistory> {
        self.kernels.iter().find(|k| k.kernel == name)
    }

    /// Serializes the artifact as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("histories are serializable")
    }
}

/// Extracts one kernel's point from one record.
fn trend_point(rec: &RunRecord, kernel: &str) -> TrendPoint {
    TrendPoint {
        run_id: rec.id.clone(),
        timestamp_unix_s: rec.timestamp_unix_s,
        git_commit: rec.git_commit.clone(),
        ninja_median_s: rec.median_s(kernel, "ninja"),
        gap: rec.measured_gap(kernel),
        residual: rec.measured_residual(kernel),
        ninja_vec_width_bits: rec.vec_profile(kernel, "ninja").map(|p| p.width_bits),
        ninja_ipc: rec
            .cell(kernel, "ninja")
            .and_then(|c| c.counters.as_ref())
            .and_then(|c| c.ipc),
    }
}

/// One kernel's trajectory straight from records (the `perfdb trend`
/// subcommand). Records that never measured the kernel are skipped.
pub fn kernel_trend(records: &[RunRecord], kernel: &str) -> Vec<TrendPoint> {
    records
        .iter()
        .filter(|r| r.kernels().contains(&kernel))
        .map(|r| trend_point(r, kernel))
        .collect()
}

/// Renders a kernel trajectory as an aligned text table.
pub fn render_trend(kernel: &str, points: &[TrendPoint]) -> String {
    let mut out = format!(
        "trend for {kernel} ({} run(s))\n{:<22} {:<13} {:>12} {:>8} {:>9} {:>6}\n",
        points.len(),
        "run",
        "commit",
        "ninja s",
        "gap",
        "residual",
        "ipc"
    );
    for p in points {
        let fmt_opt = |v: Option<f64>, precision: usize| match v {
            Some(x) => format!("{x:.precision$}"),
            None => "-".to_owned(),
        };
        let ninja = match p.ninja_median_s {
            Some(x) => format!("{x:.4e}"),
            None => "-".to_owned(),
        };
        out.push_str(&format!(
            "{:<22} {:<13} {:>12} {:>8} {:>9} {:>6}\n",
            p.run_id,
            p.git_commit,
            ninja,
            fmt_opt(p.gap, 2),
            fmt_opt(p.residual, 2),
            fmt_opt(p.ninja_ipc, 2)
        ));
    }
    out
}

/// One sweep's contribution to a kernel's scaling trajectory: the
/// fitted parameters of one rung's curve at one size.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepTrendPoint {
    /// Sweep record id the point comes from.
    pub run_id: String,
    /// Unix timestamp (seconds) of the sweep.
    pub timestamp_unix_s: u64,
    /// Git commit measured.
    pub git_commit: String,
    /// Variant rung name.
    pub variant: String,
    /// Problem-size preset name.
    pub size: String,
    /// Amdahl serial fraction of the curve.
    pub serial_fraction: f64,
    /// USL contention σ.
    pub contention: f64,
    /// USL coherency κ.
    pub coherency: f64,
    /// Fit quality (r² in speedup space).
    pub r_squared: f64,
    /// Detected scaling knee, `None` when the curve never flattened.
    pub knee_threads: Option<usize>,
}

/// One kernel's serial-fraction trajectory straight from sweep records
/// (the sweep section of `perfdb trend`): every fitted rung×size curve
/// of every sweep that measured the kernel, in store order.
pub fn sweep_trend(records: &[SweepRecord], kernel: &str) -> Vec<SweepTrendPoint> {
    let mut points = Vec::new();
    for rec in records {
        for f in rec.fits.iter().filter(|f| f.kernel == kernel) {
            points.push(SweepTrendPoint {
                run_id: rec.id.clone(),
                timestamp_unix_s: rec.timestamp_unix_s,
                git_commit: rec.git_commit.clone(),
                variant: f.variant.clone(),
                size: f.size.clone(),
                serial_fraction: f.serial_fraction,
                contention: f.contention,
                coherency: f.coherency,
                r_squared: f.r_squared,
                knee_threads: f.knee_threads,
            });
        }
    }
    points
}

/// Renders a kernel's serial-fraction drift as an aligned text table.
pub fn render_sweep_trend(kernel: &str, points: &[SweepTrendPoint]) -> String {
    let mut out = format!(
        "serial-fraction drift for {kernel} ({} fitted curve(s))\n\
         {:<24} {:<13} {:<12} {:<6} {:>7} {:>7} {:>8} {:>7} {:>5}\n",
        points.len(),
        "sweep",
        "commit",
        "rung",
        "size",
        "serial",
        "sigma",
        "kappa",
        "r2",
        "knee"
    );
    for p in points {
        out.push_str(&format!(
            "{:<24} {:<13} {:<12} {:<6} {:>7.3} {:>7.3} {:>8.4} {:>7.3} {:>5}\n",
            p.run_id,
            p.git_commit,
            p.variant,
            p.size,
            p.serial_fraction,
            p.contention,
            p.coherency,
            p.r_squared,
            p.knee_threads
                .map(|k| k.to_string())
                .unwrap_or_else(|| "-".to_owned())
        ));
    }
    out
}

/// One serve run's contribution to a kernel's SLO trajectory: the tail
/// latency and outcome mix measured at one offered rate.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServeTrendPoint {
    /// Serve record id the point comes from.
    pub run_id: String,
    /// Unix timestamp (seconds) of the run.
    pub timestamp_unix_s: u64,
    /// Git commit measured.
    pub git_commit: String,
    /// Offered arrival rate, requests per second.
    pub offered_rps: f64,
    /// Requests resolved `Ok` (validated).
    pub ok: u64,
    /// Requests shed at admission.
    pub rejected: u64,
    /// Requests that ran out of deadline.
    pub expired: u64,
    /// `Ok` responses served below the ninja rung.
    pub degraded: u64,
    /// Median end-to-end `Ok` latency in microseconds, when measured.
    pub p50_us: Option<f64>,
    /// 99th-percentile end-to-end `Ok` latency in microseconds.
    pub p99_us: Option<f64>,
    /// Breaker trips over the run.
    pub trips: u64,
    /// Chaos per-attempt fault rate, when injection was active.
    pub chaos_rate: Option<f64>,
}

/// One kernel's SLO trajectory straight from serve records (the serve
/// section of `perfdb trend`): every measured offered-rate point of
/// every serve run of the kernel, in store order.
pub fn serve_trend(records: &[ServeRecord], kernel: &str) -> Vec<ServeTrendPoint> {
    let mut points = Vec::new();
    for rec in records.iter().filter(|r| r.kernel == kernel) {
        for p in &rec.points {
            points.push(ServeTrendPoint {
                run_id: rec.id.clone(),
                timestamp_unix_s: rec.timestamp_unix_s,
                git_commit: rec.git_commit.clone(),
                offered_rps: p.offered_rps,
                ok: p.ok,
                rejected: p.rejected,
                expired: p.expired,
                degraded: p.degraded,
                p50_us: p.p50_us,
                p99_us: p.p99_us,
                trips: p.trips,
                chaos_rate: rec.chaos_rate,
            });
        }
    }
    points
}

/// Renders a kernel's serving-SLO drift as an aligned text table.
pub fn render_serve_trend(kernel: &str, points: &[ServeTrendPoint]) -> String {
    let mut out = format!(
        "serving SLO drift for {kernel} ({} measured point(s))\n\
         {:<24} {:<13} {:>10} {:>7} {:>6} {:>7} {:>6} {:>10} {:>10} {:>5} {:>6}\n",
        points.len(),
        "serve",
        "commit",
        "offered/s",
        "ok",
        "shed",
        "expired",
        "degr",
        "p50(us)",
        "p99(us)",
        "trips",
        "chaos"
    );
    for p in points {
        let fmt_us = |v: Option<f64>| match v {
            Some(x) => format!("{x:.0}"),
            None => "-".to_owned(),
        };
        out.push_str(&format!(
            "{:<24} {:<13} {:>10.0} {:>7} {:>6} {:>7} {:>6} {:>10} {:>10} {:>5} {:>6}\n",
            p.run_id,
            p.git_commit,
            p.offered_rps,
            p.ok,
            p.rejected,
            p.expired,
            p.degraded,
            fmt_us(p.p50_us),
            fmt_us(p.p99_us),
            p.trips,
            p.chaos_rate
                .map(|r| format!("{r:.2}"))
                .unwrap_or_else(|| "off".to_owned())
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{CellRecord, MachineFingerprint, Sample, SCHEMA_VERSION};
    use crate::serve::ServePointRecord;
    use crate::sweep::SweepFitRecord;

    fn sample(median: f64) -> Option<Sample> {
        Some(Sample {
            median_s: median,
            mean_s: median,
            stddev_s: 0.0,
            min_s: median,
            max_s: median,
            runs: 3,
        })
    }

    fn record(id: &str, ts: u64, naive: f64, algo: f64, ninja: f64) -> RunRecord {
        let cell = |variant: &str, s: Option<Sample>| CellRecord {
            kernel: "nbody".into(),
            variant: variant.into(),
            outcome: if s.is_some() { "ok" } else { "panicked" }.into(),
            sample: s,
            attribution: None,
            counters: None,
        };
        RunRecord {
            schema_version: SCHEMA_VERSION,
            id: id.into(),
            timestamp_unix_s: ts,
            git_commit: format!("c-{id}"),
            machine: MachineFingerprint::synthetic("scalar"),
            size: "test".into(),
            seed: 1,
            threads: 1,
            isa: String::new(),
            excluded: Vec::new(),
            cells: vec![
                cell("naive", sample(naive)),
                cell("algorithmic", sample(algo)),
                cell("ninja", sample(ninja)),
            ],
            vec_profiles: Vec::new(),
        }
    }

    #[test]
    fn history_tracks_gap_over_runs() {
        let records = vec![
            record("r0", 10, 8.0, 1.3, 1.0),
            record("r1", 20, 8.0, 1.3, 0.8),
        ];
        let h = History::from_records(&records);
        assert_eq!(h.runs, 2);
        let k = h.kernel("nbody").unwrap();
        assert_eq!(k.points.len(), 2);
        assert!((k.points[0].gap.unwrap() - 8.0).abs() < 1e-12);
        assert!((k.points[1].gap.unwrap() - 10.0).abs() < 1e-12, "gap grew");
        assert!((k.points[1].residual.unwrap() - 1.625).abs() < 1e-12);
        assert_eq!(k.points[1].git_commit, "c-r1");
        assert!(h.kernel("missing").is_none());
    }

    #[test]
    fn failed_ninja_yields_gapless_point() {
        let mut rec = record("r0", 10, 8.0, 1.3, 1.0);
        rec.cells[2].outcome = "timed_out".into();
        rec.cells[2].sample = None;
        let points = kernel_trend(&[rec], "nbody");
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].gap, None);
        assert_eq!(points[0].ninja_median_s, None);
        let text = render_trend("nbody", &points);
        assert!(text.contains('-'), "{text}");
    }

    #[test]
    fn trend_charts_ipc_drift_and_tolerates_counterless_records() {
        let mut newer = record("r1", 20, 8.0, 1.3, 0.9);
        newer.cells[2].counters = Some(crate::schema::CellCounters {
            ipc: Some(2.31),
            llc_miss_rate: Some(0.04),
            dram_gbs: None,
            measured_bound: Some("compute".into()),
            agreement: Some(true),
        });
        let records = vec![record("r0", 10, 8.0, 1.3, 1.0), newer];
        let points = kernel_trend(&records, "nbody");
        assert_eq!(points[0].ninja_ipc, None, "pre-counter record stays bare");
        assert_eq!(points[1].ninja_ipc, Some(2.31));
        let text = render_trend("nbody", &points);
        assert!(text.contains("ipc"), "{text}");
        assert!(text.contains("2.31"), "{text}");
        // A history point written before `ninja_ipc` existed still parses.
        let legacy = r#"{"run_id":"r0","timestamp_unix_s":10,"git_commit":"c",
            "ninja_median_s":1.0,"gap":8.0,"residual":1.3}"#;
        let p: TrendPoint = serde_json::from_str(legacy).unwrap();
        assert_eq!(p.ninja_ipc, None);
        assert_eq!(p.ninja_vec_width_bits, None);
    }

    #[test]
    fn history_json_roundtrips() {
        let h = History::from_records(&[record("r0", 10, 8.0, 1.3, 1.0)]);
        let back: History = serde_json::from_str(&h.to_json()).unwrap();
        assert_eq!(h, back);
    }

    fn sweep_record(id: &str, ts: u64, serial: f64) -> SweepRecord {
        SweepRecord {
            schema_version: SCHEMA_VERSION,
            id: id.into(),
            timestamp_unix_s: ts,
            git_commit: format!("c-{id}"),
            machine: MachineFingerprint::synthetic("scalar"),
            seed: 1,
            reps: 1,
            sizes: vec!["test".into()],
            threads: vec![1, 2],
            knee_threshold: 0.5,
            excluded: Vec::new(),
            cells: Vec::new(),
            fits: vec![SweepFitRecord {
                kernel: "nbody".into(),
                variant: "parallel".into(),
                size: "test".into(),
                bound: "compute".into(),
                serial_fraction: serial,
                contention: serial,
                coherency: 0.0,
                r_squared: 1.0,
                knee_threads: None,
            }],
        }
    }

    #[test]
    fn sweep_trend_tracks_serial_fraction_across_records() {
        let records = vec![sweep_record("s0", 10, 0.05), sweep_record("s1", 20, 0.12)];
        let points = sweep_trend(&records, "nbody");
        assert_eq!(points.len(), 2);
        assert!((points[0].serial_fraction - 0.05).abs() < 1e-12);
        assert!((points[1].serial_fraction - 0.12).abs() < 1e-12, "drifted");
        assert_eq!(points[1].git_commit, "c-s1");
        assert!(sweep_trend(&records, "lbm").is_empty());
        let text = render_sweep_trend("nbody", &points);
        assert!(text.contains("serial-fraction drift"), "{text}");
        assert!(text.contains("0.120"), "{text}");
        assert!(text.contains('-'), "no-knee renders as dash: {text}");
    }

    fn serve_record(id: &str, ts: u64, p99: f64) -> ServeRecord {
        ServeRecord {
            schema_version: SCHEMA_VERSION,
            id: id.into(),
            timestamp_unix_s: ts,
            git_commit: format!("c-{id}"),
            machine: MachineFingerprint::synthetic("scalar"),
            kernel: "blackscholes".into(),
            threads: 4,
            chaos_seed: Some(2012),
            chaos_rate: Some(0.15),
            deadline_us: 50_000,
            points: vec![ServePointRecord {
                offered_rps: 1000.0,
                sent: 500,
                ok: 480,
                rejected: 12,
                expired: 8,
                incorrect: 0,
                degraded: 40,
                p50_us: Some(800.0),
                p99_us: Some(p99),
                trips: 3,
                recoveries: 3,
            }],
        }
    }

    #[test]
    fn serve_trend_tracks_tail_latency_across_records() {
        let records = vec![
            serve_record("v0", 10, 9_500.0),
            serve_record("v1", 20, 14_000.0),
        ];
        let points = serve_trend(&records, "blackscholes");
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].p99_us, Some(9_500.0));
        assert_eq!(points[1].p99_us, Some(14_000.0), "tail drifted");
        assert_eq!(points[1].git_commit, "c-v1");
        assert!(serve_trend(&records, "libor").is_empty());
        let text = render_serve_trend("blackscholes", &points);
        assert!(text.contains("serving SLO drift"), "{text}");
        assert!(text.contains("14000"), "{text}");
        assert!(text.contains("0.15"), "{text}");
    }

    #[test]
    fn trend_skips_records_without_the_kernel() {
        let mut other = record("r1", 20, 1.0, 1.0, 1.0);
        for c in other.cells.iter_mut() {
            c.kernel = "conv1d".into();
        }
        let records = vec![record("r0", 10, 8.0, 1.3, 1.0), other];
        assert_eq!(kernel_trend(&records, "nbody").len(), 1);
        assert_eq!(kernel_trend(&records, "conv1d").len(), 1);
        assert!(kernel_trend(&records, "lbm").is_empty());
    }
}
