//! The append-only JSONL store: `<dir>/runs.jsonl`, one record per line.
//!
//! Append-only is deliberate: a perf history is an audit trail, and the
//! cheapest way to never corrupt history is to never rewrite it (the one
//! exception, [`Store::gc`], rewrites atomically via a temp file).
//! Records append as single lines, so a crashed writer can at worst leave
//! one truncated trailing line — which [`Store::load_lossy`] skips while
//! counting it.

use crate::compare::min_of_k_baseline;
use crate::schema::{RecordMeta, RunRecord};
use crate::serve::ServeRecord;
use crate::sweep::SweepRecord;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Default store directory, relative to the invocation directory.
pub const DEFAULT_DIR: &str = "perfdb";

/// File name of the run log inside the store directory.
pub const RUNS_FILE: &str = "runs.jsonl";

/// File name of the scaling-sweep log inside the store directory.
pub const SWEEPS_FILE: &str = "sweeps.jsonl";

/// File name of the serving-layer SLO log inside the store directory.
pub const SERVES_FILE: &str = "serves.jsonl";

/// `(line number, parse error)` for one unparseable store line.
type MalformedLine = (usize, String);

/// Handle to one store directory.
#[derive(Clone, Debug)]
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// Opens (without creating) the store at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the JSONL run log.
    pub fn runs_path(&self) -> PathBuf {
        self.dir.join(RUNS_FILE)
    }

    /// Appends one record (creating the directory and log on first use).
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure.
    pub fn append(&self, record: &RunRecord) -> Result<(), String> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| format!("cannot create {}: {e}", self.dir.display()))?;
        let path = self.runs_path();
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
        writeln!(file, "{}", record.to_jsonl_line())
            .map_err(|e| format!("cannot append to {}: {e}", path.display()))
    }

    /// Loads every record, oldest first. A missing log is an empty store.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line (use
    /// [`load_lossy`](Store::load_lossy) to skip instead).
    pub fn load(&self) -> Result<Vec<RunRecord>, String> {
        let (records, bad) = self.load_inner()?;
        if let Some((line_no, err)) = bad.first() {
            return Err(format!(
                "{}:{line_no}: malformed record: {err}",
                self.runs_path().display()
            ));
        }
        Ok(records)
    }

    /// Loads every parseable record, returning the number of malformed
    /// lines skipped (0 for a healthy store).
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure only.
    pub fn load_lossy(&self) -> Result<(Vec<RunRecord>, usize), String> {
        let (records, bad) = self.load_inner()?;
        Ok((records, bad.len()))
    }

    fn load_inner(&self) -> Result<(Vec<RunRecord>, Vec<MalformedLine>), String> {
        let path = self.runs_path();
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        let mut records = Vec::new();
        let mut bad = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match RunRecord::from_jsonl_line(line) {
                Ok(r) => records.push(r),
                Err(e) => bad.push((i + 1, e)),
            }
        }
        Ok((records, bad))
    }

    /// The most recent record, if any.
    ///
    /// # Errors
    ///
    /// Propagates [`load`](Store::load) errors.
    pub fn latest(&self) -> Result<Option<RunRecord>, String> {
        Ok(self.load()?.pop())
    }

    /// Path of the JSONL sweep log.
    pub fn sweeps_path(&self) -> PathBuf {
        self.dir.join(SWEEPS_FILE)
    }

    /// Appends one sweep record (creating the directory and log on
    /// first use). Sweeps live in their own log — they are grids, not
    /// single-point runs, so the run comparator never sees them.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure.
    pub fn append_sweep(&self, record: &SweepRecord) -> Result<(), String> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| format!("cannot create {}: {e}", self.dir.display()))?;
        let path = self.sweeps_path();
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
        writeln!(file, "{}", record.to_jsonl_line())
            .map_err(|e| format!("cannot append to {}: {e}", path.display()))
    }

    /// Loads every parseable sweep record, oldest first, returning the
    /// number of malformed lines skipped (0 for a healthy store; a
    /// missing log is an empty store).
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure only.
    pub fn load_sweeps_lossy(&self) -> Result<(Vec<SweepRecord>, usize), String> {
        let path = self.sweeps_path();
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        let mut records = Vec::new();
        let mut skipped = 0;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match SweepRecord::from_jsonl_line(line) {
                Ok(r) => records.push(r),
                Err(_) => skipped += 1,
            }
        }
        Ok((records, skipped))
    }

    /// Path of the JSONL serve log.
    pub fn serves_path(&self) -> PathBuf {
        self.dir.join(SERVES_FILE)
    }

    /// Appends one serve record (creating the directory and log on
    /// first use). Serve runs live in their own log — they are SLO
    /// curves, not single-point runs, so the run comparator never sees
    /// them.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure.
    pub fn append_serve(&self, record: &ServeRecord) -> Result<(), String> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| format!("cannot create {}: {e}", self.dir.display()))?;
        let path = self.serves_path();
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
        writeln!(file, "{}", record.to_jsonl_line())
            .map_err(|e| format!("cannot append to {}: {e}", path.display()))
    }

    /// Loads every parseable serve record, oldest first, returning the
    /// number of malformed lines skipped (0 for a healthy store; a
    /// missing log is an empty store).
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure only.
    pub fn load_serves_lossy(&self) -> Result<(Vec<ServeRecord>, usize), String> {
        let path = self.serves_path();
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        let mut records = Vec::new();
        let mut skipped = 0;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match ServeRecord::from_jsonl_line(line) {
                Ok(r) => records.push(r),
                Err(_) => skipped += 1,
            }
        }
        Ok((records, skipped))
    }

    /// Resolves a baseline reference against the store:
    ///
    /// - `latest` — the most recent record;
    /// - `latest~N` — the Nth record before the most recent;
    /// - anything else — a record id, or an unambiguous id prefix.
    ///
    /// # Errors
    ///
    /// Returns a message for an empty store, an out-of-range `latest~N`,
    /// an unknown id, or an ambiguous prefix.
    pub fn resolve(&self, reference: &str) -> Result<RunRecord, String> {
        let records = self.load()?;
        if records.is_empty() {
            return Err(format!(
                "store {} is empty; run `reproduce --record` (or `perfdb record`) first",
                self.dir.display()
            ));
        }
        if let Some(back) = parse_latest_ref(reference) {
            let idx = records.len().checked_sub(1 + back).ok_or_else(|| {
                format!(
                    "`{reference}`: store only holds {} record(s)",
                    records.len()
                )
            })?;
            return Ok(records[idx].clone());
        }
        let matches: Vec<&RunRecord> = records
            .iter()
            .filter(|r| r.id == reference || r.id.starts_with(reference))
            .collect();
        match matches.len() {
            0 => Err(format!("no record matches `{reference}`")),
            1 => Ok(matches[0].clone()),
            n => Err(format!("`{reference}` is ambiguous ({n} records match)")),
        }
    }

    /// Builds the min-of-k-medians baseline over the `k` most recent
    /// records ending at (and including) the record `reference` resolves
    /// to. With `k == 1` this is just the resolved record.
    ///
    /// # Errors
    ///
    /// Propagates [`resolve`](Store::resolve) errors.
    pub fn baseline(&self, reference: &str, k: usize) -> Result<RunRecord, String> {
        let anchor = self.resolve(reference)?;
        if k <= 1 {
            return Ok(anchor);
        }
        let records = self.load()?;
        let end = records
            .iter()
            .position(|r| r.id == anchor.id)
            .expect("resolved record comes from the store");
        let start = (end + 1).saturating_sub(k);
        Ok(min_of_k_baseline(&records[start..=end]).expect("window holds the anchor"))
    }

    /// Drops all but the most recent `keep` records, rewriting the log
    /// atomically. Returns how many records were removed.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure or a malformed store.
    pub fn gc(&self, keep: usize) -> Result<usize, String> {
        let records = self.load()?;
        if records.len() <= keep {
            return Ok(0);
        }
        let removed = records.len() - keep;
        let kept = &records[removed..];
        let mut text = String::new();
        for r in kept {
            text.push_str(&r.to_jsonl_line());
            text.push('\n');
        }
        let path = self.runs_path();
        let tmp = self.dir.join(format!("{RUNS_FILE}.tmp"));
        std::fs::write(&tmp, text).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| format!("cannot replace {}: {e}", path.display()))?;
        Ok(removed)
    }
}

/// Parses `latest` / `latest~N` into the number of records to step back.
fn parse_latest_ref(reference: &str) -> Option<usize> {
    if reference == "latest" {
        return Some(0);
    }
    reference
        .strip_prefix("latest~")
        .and_then(|n| n.parse().ok())
}

/// Resolves a baseline/candidate reference the way every CLI entry point
/// (`perfdb`, `reproduce --baseline`) does: a filesystem path wins (store
/// JSONL or raw suite report via [`record_from_path`]), otherwise the
/// reference is resolved against the store (`latest`, `latest~N`, id
/// prefix) with min-of-k-medians applied when `window > 1`.
///
/// # Errors
///
/// Propagates the underlying path/store resolution errors.
pub fn resolve_reference(
    store: &Store,
    reference: &str,
    window: usize,
) -> Result<RunRecord, String> {
    let path = Path::new(reference);
    if path.is_file() {
        record_from_path(path)
    } else {
        store.baseline(reference, window)
    }
}

/// Loads a baseline record from a filesystem path: either a store-format
/// JSONL file (its most recent record wins) or a single `suite_report.json`
/// (ingested with a synthetic, path-derived id).
///
/// # Errors
///
/// Returns a message when the file reads or parses in neither format.
pub fn record_from_path(path: &Path) -> Result<RunRecord, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    // Store format first: every non-empty line a record.
    let mut last = None;
    let mut jsonl_err = None;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match RunRecord::from_jsonl_line(line) {
            Ok(r) => last = Some(r),
            Err(e) => {
                jsonl_err = Some(e);
                last = None;
                break;
            }
        }
    }
    if let Some(r) = last {
        return Ok(r);
    }
    // Fall back to a raw suite report.
    let meta = RecordMeta::synthetic(&format!("file:{}", path.display()), "unknown");
    RunRecord::from_suite_json(&text, &meta).map_err(|suite_err| {
        format!(
            "{} is neither a perfdb JSONL store ({}) nor a suite report ({suite_err})",
            path.display(),
            jsonl_err.unwrap_or_else(|| "empty file".to_owned()),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{CellRecord, MachineFingerprint, Sample, SCHEMA_VERSION};

    fn record(id: &str, ts: u64, median: f64) -> RunRecord {
        RunRecord {
            schema_version: SCHEMA_VERSION,
            id: id.into(),
            timestamp_unix_s: ts,
            git_commit: "unknown".into(),
            machine: MachineFingerprint::synthetic("scalar"),
            size: "test".into(),
            seed: 1,
            threads: 1,
            isa: String::new(),
            excluded: Vec::new(),
            cells: vec![CellRecord {
                kernel: "k".into(),
                variant: "ninja".into(),
                outcome: "ok".into(),
                sample: Some(Sample {
                    median_s: median,
                    mean_s: median,
                    stddev_s: 0.0,
                    min_s: median * 0.98,
                    max_s: median * 1.02,
                    runs: 3,
                }),
                attribution: None,
                counters: None,
            }],
            vec_profiles: Vec::new(),
        }
    }

    fn temp_store(name: &str) -> Store {
        let dir =
            std::env::temp_dir().join(format!("perfdb-store-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Store::open(dir)
    }

    #[test]
    fn empty_store_loads_empty_and_resolve_explains() {
        let s = temp_store("empty");
        assert_eq!(s.load().unwrap(), Vec::new());
        assert!(s.latest().unwrap().is_none());
        let err = s.resolve("latest").unwrap_err();
        assert!(err.contains("empty"), "{err}");
    }

    #[test]
    fn append_load_resolve_roundtrip() {
        let s = temp_store("roundtrip");
        for (i, m) in [1.0, 1.1, 0.9].iter().enumerate() {
            s.append(&record(&format!("run-{i}"), i as u64, *m))
                .unwrap();
        }
        let all = s.load().unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(s.latest().unwrap().unwrap().id, "run-2");
        assert_eq!(s.resolve("latest").unwrap().id, "run-2");
        assert_eq!(s.resolve("latest~1").unwrap().id, "run-1");
        assert_eq!(s.resolve("latest~2").unwrap().id, "run-0");
        assert!(s.resolve("latest~3").unwrap_err().contains("3 record(s)"));
        assert_eq!(s.resolve("run-1").unwrap().id, "run-1");
        assert!(s.resolve("run-").unwrap_err().contains("ambiguous"));
        assert!(s.resolve("nope").unwrap_err().contains("no record"));
        let _ = std::fs::remove_dir_all(s.dir());
    }

    #[test]
    fn lossy_load_skips_corrupt_lines_strict_load_names_them() {
        let s = temp_store("corrupt");
        s.append(&record("run-a", 0, 1.0)).unwrap();
        // Simulate a crashed writer: truncated trailing line.
        let mut text = std::fs::read_to_string(s.runs_path()).unwrap();
        text.push_str("{\"schema_version\":1,\"id\":\"run-tr");
        std::fs::write(s.runs_path(), text).unwrap();

        let (records, skipped) = s.load_lossy().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(skipped, 1);
        let err = s.load().unwrap_err();
        assert!(err.contains(":2:"), "{err}");
        let _ = std::fs::remove_dir_all(s.dir());
    }

    #[test]
    fn gc_keeps_the_most_recent_records() {
        let s = temp_store("gc");
        for i in 0..5 {
            s.append(&record(&format!("run-{i}"), i, 1.0)).unwrap();
        }
        assert_eq!(s.gc(2).unwrap(), 3);
        let left = s.load().unwrap();
        assert_eq!(
            left.iter().map(|r| r.id.as_str()).collect::<Vec<_>>(),
            ["run-3", "run-4"]
        );
        assert_eq!(s.gc(10).unwrap(), 0);
        let _ = std::fs::remove_dir_all(s.dir());
    }

    #[test]
    fn windowed_baseline_takes_min_of_medians() {
        let s = temp_store("window");
        s.append(&record("run-0", 0, 0.9)).unwrap();
        s.append(&record("run-1", 1, 1.2)).unwrap();
        s.append(&record("run-2", 2, 1.0)).unwrap();
        let b = s.baseline("latest", 3).unwrap();
        assert!(b.id.starts_with("min-of-3"));
        assert!((b.median_s("k", "ninja").unwrap() - 0.9).abs() < 1e-12);
        // k=1 degenerates to plain resolve.
        assert_eq!(s.baseline("latest", 1).unwrap().id, "run-2");
        // Window larger than the store clamps.
        assert!(s.baseline("latest~2", 5).unwrap().id.starts_with("run-0"));
        let _ = std::fs::remove_dir_all(s.dir());
    }

    #[test]
    fn sweep_log_appends_and_loads_independently() {
        let s = temp_store("sweeps");
        let sweep = SweepRecord {
            schema_version: SCHEMA_VERSION,
            id: "sweep-0".into(),
            timestamp_unix_s: 0,
            git_commit: "unknown".into(),
            machine: MachineFingerprint::synthetic("scalar"),
            seed: 1,
            reps: 1,
            sizes: vec!["test".into()],
            threads: vec![1, 2],
            knee_threshold: 0.5,
            excluded: Vec::new(),
            cells: Vec::new(),
            fits: Vec::new(),
        };
        s.append_sweep(&sweep).unwrap();
        let mut second = sweep.clone();
        second.id = "sweep-1".into();
        s.append_sweep(&second).unwrap();

        let (sweeps, skipped) = s.load_sweeps_lossy().unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(
            sweeps.iter().map(|r| r.id.as_str()).collect::<Vec<_>>(),
            ["sweep-0", "sweep-1"]
        );
        // Sweeps do not leak into the run log (and vice versa).
        assert_eq!(s.load().unwrap(), Vec::new());
        s.append(&record("run-0", 0, 1.0)).unwrap();
        assert_eq!(s.load_sweeps_lossy().unwrap().0.len(), 2);

        // A truncated trailing sweep line is skipped, not fatal.
        let mut text = std::fs::read_to_string(s.sweeps_path()).unwrap();
        text.push_str("{\"schema_version\":1,\"id\":\"sweep-tr");
        std::fs::write(s.sweeps_path(), text).unwrap();
        let (sweeps, skipped) = s.load_sweeps_lossy().unwrap();
        assert_eq!((sweeps.len(), skipped), (2, 1));
        let _ = std::fs::remove_dir_all(s.dir());
    }

    #[test]
    fn serve_log_appends_and_loads_independently() {
        let s = temp_store("serves");
        let serve = ServeRecord {
            schema_version: SCHEMA_VERSION,
            id: "serve-0".into(),
            timestamp_unix_s: 0,
            git_commit: "unknown".into(),
            machine: MachineFingerprint::synthetic("scalar"),
            kernel: "blackscholes".into(),
            threads: 4,
            chaos_seed: None,
            chaos_rate: None,
            deadline_us: 50_000,
            points: Vec::new(),
        };
        s.append_serve(&serve).unwrap();
        let mut second = serve.clone();
        second.id = "serve-1".into();
        s.append_serve(&second).unwrap();

        let (serves, skipped) = s.load_serves_lossy().unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(
            serves.iter().map(|r| r.id.as_str()).collect::<Vec<_>>(),
            ["serve-0", "serve-1"]
        );
        // Serve runs leak into neither the run log nor the sweep log.
        assert_eq!(s.load().unwrap(), Vec::new());
        assert_eq!(s.load_sweeps_lossy().unwrap().0.len(), 0);

        // A truncated trailing serve line is skipped, not fatal.
        let mut text = std::fs::read_to_string(s.serves_path()).unwrap();
        text.push_str("{\"schema_version\":1,\"id\":\"serve-tr");
        std::fs::write(s.serves_path(), text).unwrap();
        let (serves, skipped) = s.load_serves_lossy().unwrap();
        assert_eq!((serves.len(), skipped), (2, 1));
        let _ = std::fs::remove_dir_all(s.dir());
    }

    #[test]
    fn record_from_path_reads_both_formats() {
        let s = temp_store("paths");
        s.append(&record("run-x", 0, 1.0)).unwrap();
        s.append(&record("run-y", 1, 2.0)).unwrap();
        let r = record_from_path(&s.runs_path()).unwrap();
        assert_eq!(r.id, "run-y", "most recent record of a JSONL file wins");

        let suite = s.dir().join("suite.json");
        std::fs::write(
            &suite,
            r#"{"size":"test","seed":1,"threads":1,"simd_backend":"scalar","kernels":[]}"#,
        )
        .unwrap();
        let r = record_from_path(&suite).unwrap();
        assert!(r.id.starts_with("file:"), "{}", r.id);

        let garbage = s.dir().join("garbage.txt");
        std::fs::write(&garbage, "not json at all").unwrap();
        assert!(record_from_path(&garbage).is_err());
        let _ = std::fs::remove_dir_all(s.dir());
    }
}
