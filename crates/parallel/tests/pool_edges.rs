//! Edge-of-the-envelope scheduling tests for `ThreadPool::parallel_for`
//! and `parallel_reduce`: degenerate grains, ranges smaller than one
//! chunk, more threads than chunks, and single-thread pools. These are
//! the corners the scaling sweep (`reproduce --scale`) actually hits
//! when it shrinks sizes and widens the thread grid.

use ninja_parallel::ThreadPool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `parallel_for` over `0..n` and returns per-index visit counts.
fn visit_counts(pool: &ThreadPool, n: usize, grain: usize) -> Vec<usize> {
    let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
    pool.parallel_for(0..n, grain, |r| {
        for i in r {
            counts[i].fetch_add(1, Ordering::Relaxed);
        }
    });
    counts.into_iter().map(|c| c.into_inner()).collect()
}

#[test]
fn n_smaller_than_grain_runs_as_one_chunk() {
    let pool = ThreadPool::with_threads(4);
    let chunks = Mutex::new(Vec::new());
    pool.parallel_for(0..3, 100, |r| chunks.lock().unwrap().push(r));
    let chunks = chunks.into_inner().unwrap();
    assert_eq!(chunks, vec![0..3], "one undersized chunk, never padded");
}

#[test]
fn more_threads_than_chunks_still_covers_every_index_once() {
    // 8 participants, 3 chunks: the surplus threads must find no work
    // and the range must still be covered exactly once.
    let pool = ThreadPool::with_threads(8);
    assert!(visit_counts(&pool, 3, 1).iter().all(|&c| c == 1));
}

#[test]
fn grain_zero_is_clamped_to_one_everywhere() {
    let pool = ThreadPool::with_threads(3);
    assert!(visit_counts(&pool, 17, 0).iter().all(|&c| c == 1));
    let total = pool.parallel_reduce(0..17, 0, 0usize, |r| r.sum(), |a, b| a + b);
    assert_eq!(total, (0..17).sum());
}

#[test]
fn single_thread_pool_reduces_inline() {
    let pool = ThreadPool::with_threads(1);
    let total = pool.parallel_reduce(
        0..1_000,
        8,
        0u64,
        |r| r.map(|i| i as u64).sum(),
        |a, b| a + b,
    );
    assert_eq!(total, (0..1_000u64).sum());
}

#[test]
fn reduce_with_more_threads_than_chunks() {
    let pool = ThreadPool::with_threads(8);
    let total = pool.parallel_reduce(0..2, 1, 0usize, |r| r.sum(), |a, b| a + b);
    assert_eq!(total, 1);
}

#[test]
fn reduce_single_element_range_applies_identity_once() {
    // identity ⊕ map(0..1): a non-neutral "identity" must be folded in
    // exactly once, not once per participating thread.
    let pool = ThreadPool::with_threads(4);
    let total = pool.parallel_reduce(0..1, 5, 100usize, |r| r.sum(), |a, b| a + b);
    assert_eq!(total, 100);
}

#[test]
fn huge_grain_does_not_overflow_chunk_arithmetic() {
    let pool = ThreadPool::with_threads(2);
    assert!(visit_counts(&pool, 5, usize::MAX).iter().all(|&c| c == 1));
}

#[test]
fn empty_range_with_nonzero_start_is_a_noop() {
    let pool = ThreadPool::with_threads(2);
    pool.parallel_for(10..10, 3, |_| panic!("must not run"));
    let v = pool.parallel_reduce(10..10, 3, 7i32, |_| panic!("no chunks"), |a, b| a + b);
    assert_eq!(v, 7);
}

#[test]
fn for_each_with_grain_larger_than_slice() {
    let pool = ThreadPool::with_threads(4);
    let items = [10u32, 11, 12];
    let hits: Vec<AtomicUsize> = items.iter().map(|_| AtomicUsize::new(0)).collect();
    pool.parallel_for_each(&items, 1_000, |i, &v| {
        assert_eq!(v as usize, i + 10);
        hits[i].fetch_add(1, Ordering::Relaxed);
    });
    assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
}

#[test]
fn exact_chunk_division_has_no_ragged_tail() {
    let pool = ThreadPool::with_threads(4);
    let chunks = Mutex::new(Vec::new());
    pool.parallel_for(0..12, 4, |r| chunks.lock().unwrap().push(r));
    let mut chunks = chunks.into_inner().unwrap();
    chunks.sort_by_key(|r| r.start);
    assert_eq!(chunks, vec![0..4, 4..8, 8..12]);
}
