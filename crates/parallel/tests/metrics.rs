//! Pool instrumentation tests: imbalance detection, counter semantics,
//! per-lane trace spans, and the disabled-path overhead contract.
//!
//! These tests flip the process-global probe flags, so every test takes
//! `FLAG_LOCK` and restores the flags before releasing it.

use ninja_parallel::ThreadPool;
use std::sync::Mutex;
use std::time::{Duration, Instant};

static FLAG_LOCK: Mutex<()> = Mutex::new(());

/// Burn wall-clock time without sleeping, so a lane's busy_ns reflects
/// genuinely occupied time even under scheduler jitter.
fn spin_for(d: Duration) {
    let t0 = Instant::now();
    while t0.elapsed() < d {
        std::hint::spin_loop();
    }
}

struct MetricsOn;

impl MetricsOn {
    fn enable() -> Self {
        ninja_probe::set_metrics(true);
        MetricsOn
    }
}

impl Drop for MetricsOn {
    fn drop(&mut self) {
        ninja_probe::set_metrics(false);
    }
}

#[test]
fn balanced_parallel_for_reports_near_unit_imbalance() {
    let _guard = FLAG_LOCK.lock().unwrap();
    let pool = ThreadPool::with_threads(4);
    let before = {
        let _on = MetricsOn::enable();
        let before = pool.metrics();
        // 64 equal 2 ms chunks over 4 lanes: dynamic scheduling should
        // keep every lane busy until the range is exhausted.
        pool.parallel_for(0..64, 1, |_r| spin_for(Duration::from_millis(2)));
        let after = pool.metrics();
        after.delta(&before)
    };
    let d = before;
    assert_eq!(d.regions, 1);
    assert_eq!(d.total_chunks(), 64);
    let ratio = d.imbalance_ratio();
    assert!(
        ratio < 1.35,
        "balanced loop should be ~1.0, got {ratio} ({d:?})"
    );
}

#[test]
fn straggler_parallel_for_reports_high_imbalance() {
    let _guard = FLAG_LOCK.lock().unwrap();
    let pool = ThreadPool::with_threads(4);
    let _on = MetricsOn::enable();
    let before = pool.metrics();
    // Chunk 0 is 100x heavier than the other 19: whichever lane claims
    // it becomes a straggler that dominates the region.
    let unit = Duration::from_millis(1);
    pool.parallel_for(0..20, 1, |r| {
        spin_for(if r.start == 0 { 100 * unit } else { unit });
    });
    let d = pool.metrics().delta(&before);
    let ratio = d.imbalance_ratio();
    assert!(
        ratio > 1.5,
        "one 100x grain must show up as imbalance, got {ratio} ({d:?})"
    );
}

#[test]
fn counters_track_joins_and_inline_regions() {
    let _guard = FLAG_LOCK.lock().unwrap();
    let pool = ThreadPool::with_threads(2);
    let _on = MetricsOn::enable();
    let before = pool.metrics();
    let (a, b) = pool.join(|| 2, || 3);
    assert_eq!((a, b), (2, 3));
    // A single-chunk range runs inline but still counts as a region.
    pool.parallel_for(0..4, 8, |r| {
        std::hint::black_box(r.len());
    });
    let d = pool.metrics().delta(&before);
    assert_eq!(d.joins, 1);
    assert_eq!(d.regions, 1);
    assert_eq!(d.total_chunks(), 1);
}

#[test]
fn disabled_pool_records_nothing() {
    let _guard = FLAG_LOCK.lock().unwrap();
    ninja_probe::set_metrics(false);
    let pool = ThreadPool::with_threads(3);
    pool.parallel_for(0..1000, 10, |r| {
        std::hint::black_box(r.len());
    });
    let (_, _) = pool.join(|| 1, || 2);
    let m = pool.metrics();
    assert_eq!(m.regions, 0);
    assert_eq!(m.joins, 0);
    assert_eq!(m.total_chunks(), 0);
    assert_eq!(m.total_busy_ns(), 0);
}

#[test]
fn parallel_for_participants_emit_per_lane_spans() {
    let _guard = FLAG_LOCK.lock().unwrap();
    ninja_probe::clear_events();
    ninja_probe::set_tracing(true);
    let pool = ThreadPool::with_threads(4);
    // Enough sustained chunks that every lane joins in before exhaustion.
    pool.parallel_for(0..32, 1, |_r| spin_for(Duration::from_millis(1)));
    ninja_probe::set_tracing(false);
    let events = ninja_probe::take_events();
    ninja_probe::validate_events(&events).expect("spans must nest cleanly");
    let begins: Vec<_> = events
        .iter()
        .filter(|e| e.ph == ninja_probe::Phase::Begin && e.name == "parallel_for")
        .collect();
    assert!(
        begins.len() >= 2,
        "expected several participants, got {}",
        begins.len()
    );
    let mut tids: Vec<u32> = begins.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    assert!(
        tids.len() >= 2,
        "participants must trace on distinct lanes, got {tids:?}"
    );
}

/// The overhead contract from the DESIGN "Observability" section: an
/// instrumented-but-disabled `parallel_for` costs one relaxed boolean
/// load per region, so it must not be measurably slower than the same
/// loop with metrics enabled (whose extra clock reads and atomics bound
/// the noise floor from above), and its absolute per-region cost must
/// stay in scheduling-overhead territory.
#[test]
fn overhead_of_disabled_instrumentation_is_negligible() {
    let _guard = FLAG_LOCK.lock().unwrap();
    let pool = ThreadPool::with_threads(4);

    fn regions(pool: &ThreadPool, iters: u32) -> Duration {
        let t0 = Instant::now();
        for _ in 0..iters {
            pool.parallel_for(0..1024, 32, |r| {
                std::hint::black_box(r.len());
            });
        }
        t0.elapsed()
    }

    // Warm the pool and code paths.
    regions(&pool, 50);

    const ITERS: u32 = 200;
    let mut best_off = Duration::MAX;
    let mut best_on = Duration::MAX;
    // Interleave trials so frequency scaling and background load hit
    // both configurations symmetrically; compare best-of-5.
    for _ in 0..5 {
        ninja_probe::set_metrics(false);
        best_off = best_off.min(regions(&pool, ITERS));
        ninja_probe::set_metrics(true);
        best_on = best_on.min(regions(&pool, ITERS));
    }
    ninja_probe::set_metrics(false);

    let per_region_off = best_off / ITERS;
    assert!(
        per_region_off < Duration::from_millis(2),
        "disabled parallel_for costs {per_region_off:?} per region"
    );
    let budget = best_on.mul_f64(1.5) + Duration::from_millis(5);
    assert!(
        best_off <= budget,
        "disabled path ({best_off:?}) slower than enabled path ({best_on:?}) beyond noise"
    );
}
