//! Property: a `ThreadPool` survives an injected job panic — the panic
//! payload surfaces on the caller, the pool's workers stay alive, and the
//! very next dispatch on the same pool computes correct results.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use ninja_parallel::ThreadPool;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Panic in a random chunk of a random-sized `parallel_for`, on a pool
    /// with a random thread count: the caller observes the panic, and the
    /// same pool immediately afterwards runs a full dispatch correctly.
    #[test]
    fn pool_stays_usable_after_injected_panic(
        threads in 1usize..5,
        len in 1usize..400,
        grain in 1usize..64,
        victim_salt in 0usize..1000,
    ) {
        let pool = ThreadPool::with_threads(threads);
        let victim = victim_salt % len;

        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(0..len, grain, |chunk| {
                if chunk.contains(&victim) {
                    panic!("injected panic at index {victim}");
                }
            });
        }));
        let payload = caught.expect_err("victim index must panic the dispatch");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&'static str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            message.contains(&format!("injected panic at index {victim}")),
            "panic payload lost: {message:?}"
        );

        // The same pool must still dispatch every index exactly once.
        let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(0..len, grain, |chunk| {
            for i in chunk {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        for (i, hit) in hits.iter().enumerate() {
            assert_eq!(hit.load(Ordering::Relaxed), 1, "index {i} after recovery");
        }

        // `join` on the recovered pool still returns both results.
        let (a, b) = pool.join(|| 6 * 7, || "ok");
        assert_eq!((a, b), (42, "ok"));
    }
}
