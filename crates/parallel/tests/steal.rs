//! A/B test of the work-stealing scheduler against the legacy
//! shared-injector FIFO mode (`ThreadPoolBuilder::steal(false)`) on a
//! skewed task mix.
//!
//! The workload is the classic LIFO-vs-FIFO discriminator: a task running
//! on a pool worker spawns many tiny tasks and then one huge one. Under
//! FIFO the huge task sits behind every tiny task in the shared injector
//! and starts only after they drain — it runs alone at the end and its
//! lane dominates the region (a straggler). Under the work-stealing
//! scheduler the spawns land on the spawning worker's own deque: the
//! owner pops LIFO and starts the huge task immediately, while idle peers
//! steal the tiny tasks FIFO from the top — the huge task overlaps with
//! the tiny drain and the busy-time spread stays flat.
//!
//! Tasks occupy their lane by *sleeping*, not spinning: sleeping lanes
//! overlap even when the host has a single hardware thread (CI containers
//! often do), so per-lane busy time reflects the scheduler's placement
//! decisions rather than OS timeslicing noise.
//!
//! These tests flip the process-global probe metrics flag, so every test
//! takes `FLAG_LOCK` and restores the flag before releasing it.

use ninja_parallel::ThreadPoolBuilder;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

static FLAG_LOCK: Mutex<()> = Mutex::new(());

struct MetricsOn;

impl MetricsOn {
    fn enable() -> Self {
        ninja_probe::set_metrics(true);
        MetricsOn
    }
}

impl Drop for MetricsOn {
    fn drop(&mut self) {
        ninja_probe::set_metrics(false);
    }
}

const TINY_TASKS: u64 = 48;
const TINY: Duration = Duration::from_millis(2);
// Sized near one lane's fair share of the tiny work, so a scheduler that
// overlaps it with the tiny drain can be near-perfectly balanced while
// the FIFO ordering — tiny drain first, huge alone at the end — leaves
// one lane with roughly double everyone else's busy time.
const HUGE: Duration = Duration::from_millis(24);

/// Runs the skewed spawn burst on a 4-lane pool with or without stealing.
/// Returns the region's metrics delta plus how many tiny tasks had
/// already started when the huge task began. The caller must hold
/// `FLAG_LOCK` with metrics enabled.
fn skewed_burst(steal: bool) -> (ninja_probe::PoolMetrics, u64) {
    let pool = ThreadPoolBuilder::new().num_threads(4).steal(steal).build();
    let started = AtomicU64::new(0);
    let huge_started_after = AtomicU64::new(0);
    let before = pool.metrics();
    pool.scope(|s| {
        let (started, huge_started_after) = (&started, &huge_started_after);
        // The burst must come from a pool worker (external spawns go to
        // the injector in both modes): nest it in a root task, and park
        // the scope caller in `body` long enough that a freshly-spawned,
        // actively-scanning worker claims the root — not the caller's own
        // post-body drain loop.
        s.spawn_nested(move |s| {
            for _ in 0..TINY_TASKS {
                s.spawn(move || {
                    // ORDERING: a monotonic progress counter; the order
                    // probe below tolerates increments still in flight.
                    started.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(TINY);
                });
            }
            s.spawn(move || {
                // ORDERING: a snapshot for a coarse order assertion;
                // exactness doesn't matter, only FIFO-vs-LIFO scale.
                huge_started_after.store(started.load(Ordering::Relaxed), Ordering::Relaxed);
                std::thread::sleep(HUGE);
            });
        });
        std::thread::sleep(Duration::from_millis(2));
    });
    let after = pool.metrics().delta(&before);
    // ORDERING: read after the scope drained; no writers left.
    (after, huge_started_after.load(Ordering::Relaxed))
}

#[test]
fn stealing_flattens_a_skewed_task_burst() {
    let _guard = FLAG_LOCK.lock().unwrap();
    let _on = MetricsOn::enable();

    let (fifo, fifo_order) = skewed_burst(false);
    let (steal, steal_order) = skewed_burst(true);

    // Every task executed and is accounted in both modes: the root, the
    // tiny burst, and the huge task.
    assert_eq!(fifo.total_tasks(), TINY_TASKS + 2, "{fifo:?}");
    assert_eq!(steal.total_tasks(), TINY_TASKS + 2, "{steal:?}");

    // Mode wiring: a steal-disabled pool funnels everything through the
    // injector and never touches a deque; the stealing pool's burst is
    // served from the spawning worker's deque by its peers.
    assert_eq!(fifo.steals, 0, "{fifo:?}");
    let injector_pops: u64 = fifo.workers.iter().map(|w| w.injector_pops).sum();
    assert!(injector_pops >= TINY_TASKS, "{fifo:?}");
    assert!(steal.steals > 0, "peers must steal the burst: {steal:?}");
    assert!(steal.steal_ratio() > 0.0, "{steal:?}");

    // Scheduling order, the deterministic discriminator. FIFO: the huge
    // task was pushed to the injector after all 48 tiny tasks, so it can
    // only be popped after them (at most the 3 other lanes hold a popped
    // tiny task whose counter increment is still in flight). LIFO: the
    // owner pops the huge task right after the spawn loop, while peers
    // have stolen at most a handful of tiny tasks off the top.
    assert!(
        fifo_order >= TINY_TASKS - 3,
        "FIFO must drain the injector before the huge task: \
         started={fifo_order}\n{fifo:?}"
    );
    assert!(
        steal_order <= TINY_TASKS / 2,
        "LIFO pop must start the huge task while the tiny drain is young: \
         started={steal_order}\n{steal:?}"
    );

    // The headline claim: LIFO-pop + steal-FIFO overlaps the huge task
    // with the tiny drain, so the busy-time spread is measurably flatter
    // than the seed FIFO behavior, which serializes the huge task after
    // the drain and leaves its lane with roughly double the mean.
    let (fr, sr) = (fifo.imbalance_ratio(), steal.imbalance_ratio());
    assert!(
        sr + 0.2 < fr,
        "stealing should flatten the skewed burst: steal={sr:.3} fifo={fr:.3}\n\
         steal mode: {steal:?}\nfifo mode: {fifo:?}"
    );
}
