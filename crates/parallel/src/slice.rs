//! Parallel iteration over disjoint mutable chunks of slices.
//!
//! These helpers express the ubiquitous throughput-computing pattern "each
//! thread owns a contiguous tile of the output array" without requiring
//! callers to write unsafe code.

use crate::ThreadPool;

/// A raw pointer that may cross thread boundaries.
///
/// Safety rests on the chunk arithmetic below handing each thread a
/// disjoint region.
struct SendPtr<T>(*mut T);
// SAFETY: the pointer is only dereferenced through disjoint [lo, hi) chunk
// windows computed below, so concurrent access never aliases.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor method (rather than field access) so closures capture the
    /// whole `SendPtr` — edition-2021 disjoint capture would otherwise grab
    /// the raw pointer field, which is not `Sync`.
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Calls `body(chunk_index, chunk)` for every `chunk_len`-sized chunk of
/// `data`, in parallel. The final chunk may be shorter.
///
/// Chunks are disjoint, so each invocation gets exclusive access to its
/// piece — the safe equivalent of OpenMP's canonical
/// `parallel for` over an output array.
///
/// ```
/// use ninja_parallel::{par_chunks_mut, ThreadPool};
///
/// let pool = ThreadPool::with_threads(2);
/// let mut data = vec![0usize; 100];
/// par_chunks_mut(&pool, &mut data, 16, |idx, chunk| {
///     for x in chunk.iter_mut() {
///         *x = idx;
///     }
/// });
/// assert_eq!(data[0], 0);
/// assert_eq!(data[99], 6);
/// ```
pub fn par_chunks_mut<T, F>(pool: &ThreadPool, data: &mut [T], chunk_len: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = data.len();
    if len == 0 {
        return;
    }
    let chunk_len = chunk_len.max(1);
    let n_chunks = len.div_ceil(chunk_len);
    let base = SendPtr(data.as_mut_ptr());
    pool.parallel_for(0..n_chunks, 1, move |r| {
        for i in r {
            let lo = i * chunk_len;
            let hi = (lo + chunk_len).min(len);
            // SAFETY: [lo, hi) ranges for distinct i are disjoint and within
            // `data`, which outlives this call (parallel_for blocks).
            let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(lo), hi - lo) };
            body(i, chunk);
        }
    });
}

/// Like [`par_chunks_mut`] but walks two equal-length slices in lockstep,
/// handing `body` matching mutable chunks of both.
///
/// Used by SoA kernels that update several parallel arrays per element
/// (e.g. positions and velocities in the N-body integrator).
///
/// # Panics
///
/// Panics if `a.len() != b.len()`.
pub fn par_zip_chunks_mut<T, U, F>(
    pool: &ThreadPool,
    a: &mut [T],
    b: &mut [U],
    chunk_len: usize,
    body: F,
) where
    T: Send,
    U: Send,
    F: Fn(usize, &mut [T], &mut [U]) + Sync,
{
    assert_eq!(a.len(), b.len(), "par_zip_chunks_mut needs equal lengths");
    let len = a.len();
    if len == 0 {
        return;
    }
    let chunk_len = chunk_len.max(1);
    let n_chunks = len.div_ceil(chunk_len);
    let pa = SendPtr(a.as_mut_ptr());
    let pb = SendPtr(b.as_mut_ptr());
    pool.parallel_for(0..n_chunks, 1, move |r| {
        for i in r {
            let lo = i * chunk_len;
            let hi = (lo + chunk_len).min(len);
            // SAFETY: disjoint ranges per i; both slices outlive the call.
            let ca = unsafe { std::slice::from_raw_parts_mut(pa.get().add(lo), hi - lo) };
            // SAFETY: same disjointness argument, on the second slice.
            let cb = unsafe { std::slice::from_raw_parts_mut(pb.get().add(lo), hi - lo) };
            body(i, ca, cb);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_whole_slice() {
        let pool = ThreadPool::with_threads(4);
        let mut data = vec![0u32; 1003];
        par_chunks_mut(&pool, &mut data, 64, |_, chunk| {
            for x in chunk.iter_mut() {
                *x += 1;
            }
        });
        assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    fn chunk_indices_match_offsets() {
        let pool = ThreadPool::with_threads(3);
        let mut data = vec![usize::MAX; 100];
        par_chunks_mut(&pool, &mut data, 9, |idx, chunk| {
            for x in chunk.iter_mut() {
                *x = idx;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i / 9);
        }
    }

    #[test]
    fn empty_slice_is_noop() {
        let pool = ThreadPool::with_threads(2);
        let mut data: Vec<u8> = Vec::new();
        par_chunks_mut(&pool, &mut data, 8, |_, _| panic!("must not run"));
    }

    #[test]
    fn last_chunk_may_be_short() {
        let pool = ThreadPool::with_threads(2);
        let mut data = vec![0usize; 10];
        par_chunks_mut(&pool, &mut data, 4, |idx, chunk| {
            if idx == 2 {
                assert_eq!(chunk.len(), 2);
            } else {
                assert_eq!(chunk.len(), 4);
            }
        });
    }

    #[test]
    fn zip_updates_both_slices() {
        let pool = ThreadPool::with_threads(4);
        let mut a = vec![1i64; 500];
        let mut b = vec![2i64; 500];
        par_zip_chunks_mut(&pool, &mut a, &mut b, 33, |_, ca, cb| {
            for (x, y) in ca.iter_mut().zip(cb.iter_mut()) {
                std::mem::swap(x, y);
            }
        });
        assert!(a.iter().all(|&x| x == 2));
        assert!(b.iter().all(|&y| y == 1));
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn zip_length_mismatch_panics() {
        let pool = ThreadPool::with_threads(1);
        let mut a = vec![0u8; 3];
        let mut b = vec![0u8; 4];
        par_zip_chunks_mut(&pool, &mut a, &mut b, 2, |_, _, _| {});
    }
}
