//! Data-parallel runtime for the Ninja-gap reproduction.
//!
//! The paper's "low effort" parallel tier annotates loops with OpenMP
//! `parallel for` pragmas; its Ninja tier hand-partitions work across
//! threads. This crate provides the equivalent substrate in Rust:
//!
//! * [`ThreadPool`] — a persistent pool of worker threads scheduled by a
//!   work-stealing runtime: each worker owns a lock-free Chase–Lev deque
//!   (LIFO pop, randomized FIFO theft by idle peers), with a shared
//!   injector demoted to overflow/external submission,
//! * [`ThreadPoolBuilder`] — scheduling knobs: thread count, round-robin
//!   core affinity, and a legacy shared-FIFO mode (`steal(false)`) kept
//!   for A/B measurements against the old single-queue behavior,
//! * [`ThreadPool::parallel_for`] — OpenMP-style loop parallelism with
//!   dynamic chunk scheduling,
//! * [`ThreadPool::parallel_reduce`] — parallel map-reduce over an index
//!   range,
//! * [`ThreadPool::join`] — binary fork-join (used by the recursive
//!   merge-sort variants),
//! * [`par_chunks_mut`] — parallel iteration over disjoint mutable chunks of
//!   a slice, the idiom behind "each thread owns a tile of the output".
//!
//! On a single-core host the pool degrades gracefully: a pool with one
//! thread runs everything inline with no queue traffic, so the *naive vs.
//! parallel* comparison measures only scheduling overhead (the multi-core
//! speedup itself is projected by `ninja-model`).
//!
//! The pool is instrumented with `ninja-probe`: when
//! [`ninja_probe::set_metrics`] is on, relaxed-atomic per-lane counters
//! record tasks, chunks, busy nanoseconds, and the scheduler's own
//! traffic (local pops, injector pops, steals, parked time), snapshotted
//! via [`ThreadPool::metrics`]; when tracing is on, each `parallel_for`
//! participant records a span on its own lane. With both flags off (the
//! default) the cost is one relaxed boolean load per region.
//!
//! # Example
//!
//! ```
//! use ninja_parallel::ThreadPool;
//!
//! let pool = ThreadPool::with_threads(2);
//! let total = pool.parallel_reduce(0..1000, 64, 0u64, |r| r.map(|i| i as u64).sum(), |a, b| a + b);
//! assert_eq!(total, 499_500);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod latch;
mod pool;
mod scope;
mod slice;

pub use pool::{ThreadPool, ThreadPoolBuilder};
pub use scope::Scope;
pub use slice::{par_chunks_mut, par_zip_chunks_mut};

/// Returns the number of hardware threads available to this process.
///
/// Falls back to 1 if the operating system cannot report it.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    #[test]
    fn hardware_threads_is_positive() {
        assert!(super::hardware_threads() >= 1);
    }
}
