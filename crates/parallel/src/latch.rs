//! Countdown latch used to wait for stack-borrowed jobs to finish.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A counter that threads decrement as they finish; `wait` blocks until it
/// reaches zero.
///
/// Used to guarantee that every job referencing stack data has completed
/// before the frame owning that data returns.
pub(crate) struct CountLatch {
    remaining: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl CountLatch {
    pub(crate) fn new(count: usize) -> Self {
        Self {
            remaining: AtomicUsize::new(count),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Decrements the counter, waking waiters when it hits zero.
    pub(crate) fn count_down(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.lock.lock();
            self.cv.notify_all();
        }
    }

    /// Blocks until the counter reaches zero.
    pub(crate) fn wait(&self) {
        if self.remaining.load(Ordering::Acquire) == 0 {
            return;
        }
        let mut guard = self.lock.lock();
        while self.remaining.load(Ordering::Acquire) != 0 {
            self.cv.wait(&mut guard);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn zero_count_returns_immediately() {
        CountLatch::new(0).wait();
    }

    #[test]
    fn wait_blocks_until_all_count_down() {
        let latch = Arc::new(CountLatch::new(3));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let l = Arc::clone(&latch);
            handles.push(std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                l.count_down();
            }));
        }
        latch.wait();
        for h in handles {
            h.join().unwrap();
        }
    }
}
