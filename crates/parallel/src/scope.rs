//! Structured task scopes: spawn a dynamic number of borrow-scoped tasks
//! and wait for all of them.
//!
//! [`ThreadPool::scope`] complements the fixed-shape primitives
//! (`parallel_for`, `join`) for irregular task graphs — e.g. walking a
//! directory tree or processing a work queue whose length is discovered on
//! the fly.

use crate::latch::CountLatch;
use crate::pool::ThreadPool;
use parking_lot::{Condvar, Mutex};
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Counts outstanding scope tasks; `wait_zero` blocks until all complete.
pub(crate) struct ScopeLatch {
    outstanding: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl ScopeLatch {
    fn new() -> Self {
        Self {
            outstanding: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    fn add_task(&self) {
        self.outstanding.fetch_add(1, Ordering::AcqRel);
    }

    fn task_done(&self) {
        if self.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.lock.lock();
            self.cv.notify_all();
        }
    }

    fn is_idle(&self) -> bool {
        self.outstanding.load(Ordering::Acquire) == 0
    }
}

/// A scope handed to the closure passed to [`ThreadPool::scope`].
///
/// Tasks spawned on the scope may borrow anything that outlives the
/// `scope` call; the call does not return until every task finished.
pub struct Scope<'scope> {
    pool: &'scope ThreadPool,
    latch: ScopeLatch,
    panicked: AtomicBool,
    // Invariant over 'scope, like std::thread::scope.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Queues `task` for execution on the pool (or inline on a 1-thread
    /// pool when the scope drains).
    ///
    /// Tasks run in no particular order. A panicking task is reported when
    /// the scope closes.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.latch.add_task();
        let boxed: Box<dyn FnOnce() + Send + 'scope> = Box::new(task);
        // This lifetime erasure (audited, kept deliberately) is the one
        // place `'scope` leaves the type system: the pool's job queue is
        // type-erased (`*const ()` + fn pointer), so the closure's borrow
        // lifetime cannot be carried through it — an `UnsafeCell` would not
        // help, and a transmute-free variant merely moves the same erasure
        // into the `Box::into_raw(..) as *const ()` cast below.
        // SAFETY: `ThreadPool::scope` does not return (even on unwind — see
        // `DrainGuard`) until the latch hits zero, so the task and all it
        // borrows (which outlives 'scope) stay valid for as long as the
        // queue may hold the job. The `scope` pointer cast in `ScopeJob`
        // below rides the same argument.
        let boxed: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(boxed) };
        let job = Box::new(ScopeJob {
            task: Some(boxed),
            scope: (self as *const Scope<'scope>).cast::<Scope<'static>>(),
        });
        self.pool
            .push_heap_job(Box::into_raw(job) as *const (), exec_scope_job);
    }

    /// Like [`spawn`](Self::spawn), but hands the task a reference to its
    /// scope so it can spawn further tasks — the shape of recursive or
    /// discovered-on-the-fly work (tree walks, frontier expansions).
    ///
    /// Under the work-stealing scheduler, tasks a pool worker spawns land
    /// on that worker's own deque (idle peers steal them), so nested
    /// spawning is also how a task graph grown from inside the pool gets
    /// the locality-preserving LIFO/steal-FIFO discipline rather than
    /// funnelling every task through the shared injector.
    pub fn spawn_nested<F>(&self, task: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        let scope_ptr = self as *const Scope<'scope> as usize;
        self.spawn(move || {
            // SAFETY: `ThreadPool::scope` holds the `Scope` frame open
            // until the latch drains (even on unwind), so the pointer is
            // valid for this task's whole run; every field reachable
            // through it is Sync.
            let scope = unsafe { &*(scope_ptr as *const Scope<'scope>) };
            task(scope);
        });
    }
}

struct ScopeJob {
    task: Option<Box<dyn FnOnce() + Send + 'static>>,
    scope: *const Scope<'static>,
}

/// # Safety
///
/// `ptr` must be a `ScopeJob` from `Box::into_raw`, executed exactly once,
/// whose scope is kept alive by `wait_zero` until the job completes.
unsafe fn exec_scope_job(ptr: *const ()) {
    // SAFETY: created by Box::into_raw in `spawn`, executed exactly once.
    let mut job = unsafe { Box::from_raw(ptr as *mut ScopeJob) };
    let task = job.task.take().expect("scope job executed twice");
    // SAFETY: the scope outlives all its jobs (wait_zero before return).
    let scope = unsafe { &*job.scope };
    if catch_unwind(AssertUnwindSafe(task)).is_err() {
        scope.panicked.store(true, Ordering::Release);
    }
    scope.latch.task_done();
}

impl ThreadPool {
    /// Creates a task scope: `body` may spawn any number of tasks that
    /// borrow from the enclosing frame; `scope` returns once all of them
    /// (and `body`) finished.
    ///
    /// The calling thread helps execute queued work while waiting, so
    /// scopes make progress even on a single-thread pool.
    ///
    /// # Panics
    ///
    /// Panics after all tasks complete if any spawned task panicked.
    ///
    /// ```
    /// use ninja_parallel::ThreadPool;
    /// use std::sync::atomic::{AtomicU32, Ordering};
    ///
    /// let pool = ThreadPool::with_threads(2);
    /// let total = AtomicU32::new(0);
    /// pool.scope(|s| {
    ///     let total = &total;
    ///     for i in 1..=10 {
    ///         s.spawn(move || {
    ///             total.fetch_add(i, Ordering::Relaxed);
    ///         });
    ///     }
    /// });
    /// assert_eq!(total.load(Ordering::Relaxed), 55);
    /// ```
    pub fn scope<'scope, F, R>(&'scope self, body: F) -> R
    where
        F: FnOnce(&Scope<'scope>) -> R,
    {
        let scope = Scope {
            pool: self,
            latch: ScopeLatch::new(),
            panicked: AtomicBool::new(false),
            _marker: PhantomData,
        };
        // Drain-on-unwind guard: even if `body` panics, every already
        // spawned task must finish before the frame dies.
        struct DrainGuard<'a, 'scope>(&'a Scope<'scope>);
        impl Drop for DrainGuard<'_, '_> {
            fn drop(&mut self) {
                while !self.0.latch.is_idle() {
                    if !self.0.pool.help_one() {
                        std::thread::yield_now();
                    }
                }
            }
        }
        let result = {
            let _guard = DrainGuard(&scope);
            body(&scope)
        };
        if scope.panicked.load(Ordering::Acquire) {
            panic!("a task spawned in ThreadPool::scope panicked");
        }
        result
    }
}

// Re-exported latch pieces used by the pool internals live in `latch.rs`;
// keep the unused import linter honest about the shared type.
#[allow(unused)]
fn _uses_count_latch(_: &CountLatch) {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scope_runs_all_tasks_with_borrows() {
        let pool = ThreadPool::with_threads(3);
        let data: Vec<usize> = (0..100).collect();
        let sum = AtomicUsize::new(0);
        pool.scope(|s| {
            for chunk in data.chunks(7) {
                s.spawn(|| {
                    // ORDERING: the scope's drain barrier orders this.
                    sum.fetch_add(chunk.iter().sum::<usize>(), Ordering::Relaxed);
                });
            }
        });
        // ORDERING: read after the scope drained; no writers left.
        assert_eq!(sum.load(Ordering::Relaxed), (0..100).sum());
    }

    #[test]
    fn scope_on_single_thread_pool_drains_inline() {
        let pool = ThreadPool::with_threads(1);
        let hits = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..25 {
                s.spawn(|| {
                    // ORDERING: the scope's drain barrier orders this.
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        // ORDERING: read after the scope drained; no writers left.
        assert_eq!(hits.load(Ordering::Relaxed), 25);
    }

    #[test]
    fn scope_returns_body_value() {
        let pool = ThreadPool::with_threads(2);
        let v = pool.scope(|_| 42);
        assert_eq!(v, 42);
    }

    #[test]
    fn empty_scope_is_fine() {
        let pool = ThreadPool::with_threads(2);
        pool.scope(|_| {});
    }

    #[test]
    fn scope_task_panic_propagates_after_drain() {
        let pool = ThreadPool::with_threads(2);
        let completed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                let completed = &completed;
                for i in 0..10 {
                    s.spawn(move || {
                        if i == 3 {
                            panic!("boom");
                        }
                        // ORDERING: the scope's drain barrier orders this.
                        completed.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err());
        // ORDERING: read after the scope drained; no writers left.
        assert_eq!(
            completed.load(Ordering::Relaxed),
            9,
            "other tasks still ran"
        );
    }

    #[test]
    fn nested_spawns_grow_the_task_graph_from_inside_tasks() {
        let pool = ThreadPool::with_threads(3);
        let hits = AtomicUsize::new(0);
        pool.scope(|s| {
            let hits = &hits;
            // A three-level tree discovered on the fly: 1 root task spawns
            // 4 children, each child spawns 4 leaves.
            s.spawn_nested(move |s| {
                for _ in 0..4 {
                    s.spawn_nested(move |s| {
                        for _ in 0..4 {
                            s.spawn(move || {
                                // ORDERING: the scope's drain barrier
                                // orders this.
                                hits.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                }
            });
        });
        // ORDERING: read after the scope drained; no writers left.
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn nested_scopes_work() {
        let pool = ThreadPool::with_threads(2);
        let n = AtomicUsize::new(0);
        pool.scope(|outer| {
            outer.spawn(|| {
                // ORDERING: the scope's drain barrier orders this.
                n.fetch_add(1, Ordering::Relaxed);
            });
            // A fresh inner scope on the same pool.
            pool.scope(|inner| {
                inner.spawn(|| {
                    // ORDERING: the scope's drain barrier orders this.
                    n.fetch_add(10, Ordering::Relaxed);
                });
            });
        });
        // ORDERING: read after both scopes drained; no writers left.
        assert_eq!(n.load(Ordering::Relaxed), 11);
    }
}
