//! The thread pool and its scheduling primitives.
//!
//! Scheduling architecture (the "runtime scheduler" of DESIGN.md): each
//! worker owns a lock-free Chase–Lev deque and pops it LIFO (depth-first,
//! cache-warm); idle workers steal FIFO from randomized victims; the
//! mutex-backed injector is demoted to overflow/external submission. A
//! bounded spin→yield→park backoff keeps idle workers cheap, and a
//! Dekker-style sleeper handshake makes the park/notify race lossless.

use crate::latch::CountLatch;
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A captured panic payload in transit between a worker and the caller
/// that will re-raise it.
type PanicPayload = Box<dyn Any + Send + 'static>;

/// Stores `payload` unless a previous panic already claimed the slot
/// (the first panic wins; later ones are dropped, mirroring what a
/// sequential loop would have surfaced).
fn store_first_panic(slot: &Mutex<Option<PanicPayload>>, payload: PanicPayload) {
    let mut guard = slot.lock();
    if guard.is_none() {
        *guard = Some(payload);
    }
}

/// A type-erased pointer to a job living on some waiting caller's stack.
///
/// Safety protocol: the frame that created the job blocks (via
/// [`CountLatch`] or a state flag) until every pushed `JobRef` has been
/// executed, so the pointer never dangles.
struct JobRef {
    data: *const (),
    exec: unsafe fn(*const ()),
    /// Whether the executor should account this job's runtime to the
    /// executing lane's `busy_ns`. Heap jobs (join/scope tasks) are timed
    /// at the execution boundary; `parallel_for` helper jobs are not —
    /// their harness accounts its own busy time per participant, and
    /// timing them again here would double-count every worker.
    timed: bool,
}

// SAFETY: the pointed-to job types are Sync (shared-call jobs) or carry
// Send payloads (once jobs); the lifetime protocol above keeps them alive.
unsafe impl Send for JobRef {}

impl JobRef {
    /// # Safety
    ///
    /// `data` must still point at the live job it was created from; the
    /// frame-blocking protocol in the struct docs guarantees this.
    #[inline]
    unsafe fn execute(self) {
        (self.exec)(self.data)
    }
}

/// A job executed by several threads concurrently through a shared `Fn`.
struct SharedJob<'a> {
    func: &'a (dyn Fn() + Sync),
    latch: &'a CountLatch,
    panic: &'a Mutex<Option<PanicPayload>>,
}

/// # Safety
///
/// `ptr` must come from a `JobRef` built over a live `SharedJob`.
unsafe fn exec_shared(ptr: *const ()) {
    // SAFETY: ptr was created from a live SharedJob per the JobRef protocol.
    let job = unsafe { &*(ptr as *const SharedJob<'_>) };
    if let Err(payload) = catch_unwind(AssertUnwindSafe(job.func)) {
        store_first_panic(job.panic, payload);
    }
    job.latch.count_down();
}

const ONCE_PENDING: u8 = 0;
const ONCE_RUNNING: u8 = 1;
const ONCE_DONE: u8 = 2;

/// A run-exactly-once job with a return value, used by [`ThreadPool::join`].
struct OnceJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<R>>,
    state: AtomicU8,
    panic: UnsafeCell<Option<PanicPayload>>,
}

// SAFETY: access to func/result is serialized by the `state` machine:
// exactly one thread wins the PENDING->RUNNING transition and touches the
// cells; readers wait for DONE (Acquire) before reading `result`.
unsafe impl<F: Send, R: Send> Sync for OnceJob<F, R> {}

impl<F: FnOnce() -> R, R> OnceJob<F, R> {
    fn new(func: F) -> Self {
        Self {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
            state: AtomicU8::new(ONCE_PENDING),
            panic: UnsafeCell::new(None),
        }
    }

    /// Attempts to claim and run the job; returns false if already claimed.
    fn try_run(&self) -> bool {
        if self
            .state
            .compare_exchange(
                ONCE_PENDING,
                ONCE_RUNNING,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_err()
        {
            return false;
        }
        // SAFETY: we won the CAS, so we are the only thread touching the cells.
        let func = unsafe { (*self.func.get()).take().expect("once job claimed twice") };
        match catch_unwind(AssertUnwindSafe(func)) {
            // SAFETY: still the sole owner of the cells until the DONE store.
            Ok(r) => unsafe { *self.result.get() = Some(r) },
            // SAFETY: same exclusive access as `result` above; readers wait
            // for the DONE store (Release/Acquire pair) before looking.
            Err(payload) => unsafe { *self.panic.get() = Some(payload) },
        }
        self.state.store(ONCE_DONE, Ordering::Release);
        true
    }

    fn is_done(&self) -> bool {
        self.state.load(Ordering::Acquire) == ONCE_DONE
    }

    /// Takes the result after `is_done` returned true.
    ///
    /// # Panics
    ///
    /// Re-raises the job's own panic payload if the job panicked, so
    /// callers of [`ThreadPool::join`] observe the original message.
    fn take_result(&self) -> R {
        assert!(self.is_done());
        // SAFETY: state is DONE, the runner has released the cells.
        if let Some(payload) = unsafe { (*self.panic.get()).take() } {
            resume_unwind(payload);
        }
        // SAFETY: as above.
        unsafe {
            (*self.result.get())
                .take()
                .expect("once job result taken twice")
        }
    }
}

/// A heap-allocated `OnceJob` shared between the queue entry and the
/// waiting caller.
///
/// Two owners exist after `join` pushes the job: the queued [`JobRef`] and
/// the caller. Either may run the job (exactly one wins the state CAS);
/// **both** must release their reference, and the last one frees the
/// allocation. Keeping the queue entry as a real owner is what makes
/// claim-back sound: a stale queued `JobRef` popped after the `join`
/// returned still points at live memory and its `try_run` is a no-op.
struct SharedOnce<F, R> {
    job: OnceJob<F, R>,
    refs: AtomicUsize,
}

/// Drops one reference to a `SharedOnce`, freeing it when it was the last.
///
/// # Safety
///
/// `ptr` must be a `SharedOnce<F, R>` allocation on which the caller holds
/// one outstanding reference, surrendered by this call.
unsafe fn release_shared_once<F: FnOnce() -> R + Send, R: Send>(ptr: *const ()) {
    let shared = ptr as *mut SharedOnce<F, R>;
    // SAFETY: caller holds one of the outstanding references.
    if unsafe { (*shared).refs.fetch_sub(1, Ordering::AcqRel) } == 1 {
        // SAFETY: last reference; no other thread can touch the job now.
        drop(unsafe { Box::from_raw(shared) });
    }
}

/// # Safety
///
/// `ptr` must be a live `SharedOnce<F, R>` for which the queue entry holds
/// the reference this call releases.
unsafe fn exec_once<F: FnOnce() -> R + Send, R: Send>(ptr: *const ()) {
    {
        // SAFETY: the queue entry owns a reference (released below).
        let shared = unsafe { &*(ptr as *const SharedOnce<F, R>) };
        shared.job.try_run();
    }
    // SAFETY: releasing the queue entry's reference.
    unsafe { release_shared_once::<F, R>(ptr) };
}

/// Per-participant instrumentation counters, cache-line padded so relaxed
/// increments from different lanes never contend on the same line.
#[derive(Default)]
#[repr(align(64))]
struct Lane {
    /// Jobs executed by this lane, from any source (own deque, injector,
    /// or theft).
    tasks: AtomicU64,
    /// `parallel_for` chunks claimed and run by this lane.
    chunks: AtomicU64,
    /// Nanoseconds spent inside pool work by this lane.
    busy_ns: AtomicU64,
    /// Jobs popped from this lane's own deque (LIFO fast path).
    local_pops: AtomicU64,
    /// Jobs taken from the shared overflow injector.
    injector_pops: AtomicU64,
    /// Jobs stolen from another worker's deque.
    steals: AtomicU64,
    /// Nanoseconds this lane spent parked on the idle condvar.
    parked_ns: AtomicU64,
    /// Hardware-counter totals over jobs by work source: `[0]` = popped
    /// from this lane's own deque, `[1]` = stolen from another worker.
    /// Written only while `ninja_probe::counters_enabled()` and a counter
    /// group is open on the executing thread; injector-sourced jobs are
    /// counted by neither bucket (they carry no locality story).
    windows: [LaneWindow; 2],
}

/// Relaxed-atomic accumulator for one work source's counter deltas.
#[derive(Default)]
struct LaneWindow {
    cycles: AtomicU64,
    instructions: AtomicU64,
    llc_refs: AtomicU64,
    llc_misses: AtomicU64,
}

impl LaneWindow {
    /// Folds one job's counter delta in. Saturation is not needed here:
    /// the deltas are small per-job windows and a snapshot reader only
    /// ever diffs monotonic totals.
    fn accumulate(&self, d: &ninja_probe::counters::CounterSample) {
        // ORDERING: monotonic stats counters, same racy-snapshot contract
        // as the rest of the lane's instrumentation.
        self.cycles.fetch_add(d.cycles, Ordering::Relaxed);
        self.instructions
            .fetch_add(d.instructions, Ordering::Relaxed);
        self.llc_refs.fetch_add(d.llc_refs, Ordering::Relaxed);
        self.llc_misses.fetch_add(d.llc_misses, Ordering::Relaxed);
    }

    /// Renders the totals as a snapshot sample (event counts only; the
    /// time fields stay zero by design — see `WorkerStats::local_window`).
    fn snapshot(&self) -> ninja_probe::counters::CounterSample {
        ninja_probe::counters::CounterSample {
            // ORDERING: racy snapshot by design, as in `ThreadPool::metrics`.
            cycles: self.cycles.load(Ordering::Relaxed),
            instructions: self.instructions.load(Ordering::Relaxed),
            llc_refs: self.llc_refs.load(Ordering::Relaxed),
            llc_misses: self.llc_misses.load(Ordering::Relaxed),
            ..Default::default()
        }
    }
}

/// All instrumentation state for one pool. Counters are only written while
/// `ninja_probe::metrics_enabled()` is on; the disabled path performs a
/// single relaxed boolean load per region (see the overhead test in
/// `tests/metrics.rs`).
struct Counters {
    /// Lane 0 is the calling thread; lanes `1..` are the pool's workers.
    lanes: Vec<Lane>,
    regions: AtomicU64,
    joins: AtomicU64,
    epoch: Instant,
}

impl Counters {
    fn new(num_threads: usize) -> Self {
        Self {
            lanes: (0..num_threads).map(|_| Lane::default()).collect(),
            regions: AtomicU64::new(0),
            joins: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }
}

/// Where `find_work` got a job from, for per-lane accounting.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum WorkSource {
    /// Popped from the executing worker's own deque.
    Local,
    /// Taken from the shared overflow injector.
    Injector,
    /// Stolen from another worker's deque.
    Stolen,
}

/// The calling worker's identity, registered in TLS by `worker_loop` so
/// `Shared::push` can route jobs to the worker's own deque.
#[derive(Clone, Copy)]
struct WorkerCtx {
    /// The pool this worker belongs to (identity-compared, never deref'd
    /// through — methods are called on the pool's own `&Shared`).
    shared: *const Shared,
    /// The worker's own deque, owned by its `worker_loop` stack frame.
    deque: *const Worker<JobRef>,
}

thread_local! {
    /// This thread's lane index in the pool it belongs to. Worker threads
    /// set their index at startup; every other thread (in particular the
    /// caller driving `parallel_for`) reports on lane 0.
    static LANE: Cell<usize> = const { Cell::new(0) };

    /// This thread's `perf_event_open` counter group, opened lazily on the
    /// first counted job and reused for the thread's lifetime (fds close
    /// when the thread exits). The `RefCell` doubles as the re-entrancy
    /// guard: a job that nests pool work (`join` claim-back) finds the
    /// cell already borrowed by the enclosing window and executes
    /// unwindowed, so nested work is counted exactly once — by the
    /// outermost window.
    static THREAD_COUNTERS: std::cell::RefCell<Option<ninja_probe::counters::ThreadCounters>> =
        const { std::cell::RefCell::new(None) };

    /// Set for pool worker threads only: the worker's pool + own deque,
    /// consulted by `Shared::push` for local routing.
    static WORKER_CTX: Cell<Option<WorkerCtx>> = const { Cell::new(None) };
}

fn current_lane(num_lanes: usize) -> usize {
    LANE.with(|l| l.get()).min(num_lanes.saturating_sub(1))
}

/// Consecutive empty scans a worker burns in `spin_loop` before yielding.
const SPIN_ROUNDS: u32 = 32;
/// Consecutive `yield_now` rounds after spinning, before parking.
const YIELD_ROUNDS: u32 = 4;
/// `Steal::Retry` attempts per queue per scan before moving on.
const RETRY_BUDGET: u32 = 4;

/// Drives one steal source to a verdict: `Success` yields the value,
/// `Empty` yields `None`, and `Retry` (a lost CAS race) is retried with a
/// `spin_loop` pause up to `budget` times before giving up for this scan.
///
/// This is the pool's entire retry/backoff policy in one testable place —
/// the Chase–Lev deque really does return [`Steal::Retry`] under
/// contention, unlike the old mutex stand-in that made this path dead
/// code.
fn retry_loop<T>(mut attempt: impl FnMut() -> Steal<T>, budget: u32) -> Option<T> {
    let mut retries = 0u32;
    loop {
        match attempt() {
            Steal::Success(value) => return Some(value),
            Steal::Empty => return None,
            Steal::Retry => {
                retries += 1;
                if retries > budget {
                    return None;
                }
                std::hint::spin_loop();
            }
        }
    }
}

/// One step of xorshift64*; `state` must be nonzero.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

struct Shared {
    /// Overflow/external submission queue; the slow path.
    injector: Injector<JobRef>,
    /// Thief handles onto the workers' deques, indexed by `lane - 1`.
    /// Empty when stealing is disabled (legacy shared-FIFO mode).
    stealers: Vec<Stealer<JobRef>>,
    /// Whether jobs pushed by workers go to their own deques (and idle
    /// workers raid each other). Off = the seed's injector-only behavior.
    steal_enabled: bool,
    /// Number of workers currently inside `park` — the pusher side of the
    /// Dekker handshake reads this to decide whether to notify.
    sleepers: AtomicUsize,
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
    shutdown: AtomicBool,
    counters: Counters,
}

impl Shared {
    /// Queues `job`: onto the calling worker's own deque when the caller
    /// is one of this pool's workers (and stealing is on), else onto the
    /// shared injector.
    fn push(&self, job: JobRef) {
        if let Err(job) = self.try_push_local(job) {
            self.injector.push(job);
        }
        self.notify_sleepers();
    }

    /// Queues `job` on the shared injector unconditionally. Used for
    /// `parallel_for` helper jobs: every idle participant must be able to
    /// discover the region, and a nested region's helpers stranded on one
    /// blocked worker's deque could deadlock the region's latch wait.
    fn push_external(&self, job: JobRef) {
        self.injector.push(job);
        self.notify_sleepers();
    }

    /// Routes `job` to the calling worker's own deque, or hands it back.
    fn try_push_local(&self, job: JobRef) -> Result<(), JobRef> {
        if !self.steal_enabled {
            return Err(job);
        }
        WORKER_CTX.with(|c| match c.get() {
            Some(ctx) if std::ptr::eq(ctx.shared, self) => {
                // SAFETY: the deque pointer was registered by this very
                // thread's `worker_loop` frame, which is alive beneath us
                // (we are running on that thread), and only the owner
                // thread ever calls `push`/`pop` on it.
                unsafe { (*ctx.deque).push(job) };
                Ok(())
            }
            _ => Err(job),
        })
    }

    /// Pops from the calling worker's own deque, if the caller is one of
    /// this pool's workers. Lets `help_one` drain self-spawned work.
    fn pop_local(&self) -> Option<JobRef> {
        if !self.steal_enabled {
            return None;
        }
        WORKER_CTX.with(|c| match c.get() {
            Some(ctx) if std::ptr::eq(ctx.shared, self) => {
                // SAFETY: as in `try_push_local` — owner thread, live frame.
                unsafe { (*ctx.deque).pop() }
            }
            _ => None,
        })
    }

    /// The pusher side of the park handshake. The caller has already made
    /// work visible (deque bottom store / injector push); the SeqCst fence
    /// orders that publication before the `sleepers` read, pairing with
    /// `park`'s increment-then-recheck. Either we observe the sleeper and
    /// notify under the lock, or the sleeper's recheck observes our work —
    /// a push can never slip between a worker's last scan and its wait.
    fn notify_sleepers(&self) {
        fence(Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.sleep_lock.lock();
            self.sleep_cv.notify_all();
        }
    }

    fn notify_all(&self) {
        let _guard = self.sleep_lock.lock();
        self.sleep_cv.notify_all();
    }

    /// Whether any queue in the pool has visible work.
    fn any_work_visible(&self) -> bool {
        !self.injector.is_empty() || self.stealers.iter().any(|s| !s.is_empty())
    }

    /// Executes `job`, accounting it to `lane` with its `source` and (for
    /// timed jobs) its runtime, plus — when hardware-counter windows are
    /// requested — the job's counter delta in the lane's per-source
    /// bucket. The all-flags-off path is two relaxed loads.
    fn execute_counted(&self, lane: usize, job: JobRef, source: WorkSource) {
        let l = &self.counters.lanes[lane];
        let t0 = if ninja_probe::metrics_enabled() {
            // ORDERING: monotonic stats counters; snapshots tolerate skew
            // and no control flow depends on them.
            l.tasks.fetch_add(1, Ordering::Relaxed);
            match source {
                // ORDERING: monotonic stats counters, same contract as
                // the `tasks` increment above.
                WorkSource::Local => l.local_pops.fetch_add(1, Ordering::Relaxed),
                WorkSource::Injector => l.injector_pops.fetch_add(1, Ordering::Relaxed),
                WorkSource::Stolen => l.steals.fetch_add(1, Ordering::Relaxed),
            };
            job.timed.then(Instant::now)
        } else {
            None
        };
        if ninja_probe::counters_enabled() {
            Self::execute_windowed(l, job, source);
        } else {
            // SAFETY: per the JobRef protocol the job outlives its queue
            // entry.
            unsafe { job.execute() };
        }
        if let Some(t0) = t0 {
            // ORDERING: per-lane stats counter, as above. With counter
            // windows on, busy time includes the window's ioctls — the
            // per-job cost of asking the PMU.
            l.busy_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Executes `job` inside this thread's counter window, folding the
    /// delta into `lane`'s bucket for `source`.
    fn execute_windowed(lane: &Lane, job: JobRef, source: WorkSource) {
        THREAD_COUNTERS.with(|tc| match tc.try_borrow_mut() {
            Ok(mut slot) => {
                let counters = slot.get_or_insert_with(ninja_probe::counters::ThreadCounters::open);
                // SAFETY: per the JobRef protocol the job outlives its
                // queue entry.
                let ((), delta) = counters.window(|| unsafe { job.execute() });
                if let Some(d) = delta {
                    match source {
                        WorkSource::Local => lane.windows[0].accumulate(&d),
                        WorkSource::Stolen => lane.windows[1].accumulate(&d),
                        WorkSource::Injector => {}
                    }
                    if ninja_probe::tracing_enabled() {
                        if let Some(ipc) = d.ipc() {
                            ninja_probe::counter("worker ipc", &[("ipc", ipc)]);
                        }
                    }
                }
            }
            // The cell is borrowed by an enclosing window on this thread
            // (a job that nested pool work): execute plain, the outer
            // window already counts this work.
            // SAFETY: as above — the job outlives its queue entry.
            Err(_) => unsafe { job.execute() },
        });
    }

    /// Scans for one job: own deque (LIFO), then the injector, then a
    /// randomized sweep over the other workers' deques.
    fn find_work(
        &self,
        deque: &Worker<JobRef>,
        lane: usize,
        rng: &mut u64,
    ) -> Option<(JobRef, WorkSource)> {
        if let Some(job) = deque.pop() {
            return Some((job, WorkSource::Local));
        }
        if let Some(job) = retry_loop(|| self.injector.steal(), RETRY_BUDGET) {
            return Some((job, WorkSource::Injector));
        }
        let n = self.stealers.len();
        if n == 0 {
            return None;
        }
        let me = lane.checked_sub(1);
        let start = (xorshift(rng) as usize) % n;
        for k in 0..n {
            let victim = (start + k) % n;
            if Some(victim) == me {
                continue;
            }
            if let Some(job) = retry_loop(|| self.stealers[victim].steal(), RETRY_BUDGET) {
                return Some((job, WorkSource::Stolen));
            }
        }
        None
    }

    /// Blocks on the idle condvar until notified (or a 2ms backstop).
    ///
    /// The missed-wakeup fix: the sleeper announces itself in `sleepers`
    /// *under the condvar lock*, then re-checks every work source (all
    /// deques and the injector) and the shutdown flag before waiting. A
    /// push between the worker's last failed scan and this wait either
    /// sees `sleepers > 0` (and its notify cannot be lost — the sleeper
    /// holds the lock from announce to wait) or happened early enough for
    /// the re-check to see the work. The worker's own deque cannot hold
    /// work here: only the owner pushes to it, and it drained it in
    /// `find_work`.
    fn park(&self, lane: usize) {
        let mut guard = self.sleep_lock.lock();
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        if !self.any_work_visible() && !self.shutdown.load(Ordering::Acquire) {
            let t0 = ninja_probe::metrics_enabled().then(Instant::now);
            // Timed wait as a backstop against anything the handshake
            // still misses (e.g. a thief re-exposing work it cannot run).
            self.sleep_cv.wait_for(&mut guard, Duration::from_millis(2));
            if let Some(t0) = t0 {
                // ORDERING: monotonic stats counter; snapshot-read only.
                self.counters.lanes[lane]
                    .parked_ns
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

fn worker_loop(shared: Arc<Shared>, deque: Worker<JobRef>, lane: usize, pin_core: Option<usize>) {
    if let Some(core) = pin_core {
        pin_to_core(core);
    }
    LANE.with(|l| l.set(lane));
    WORKER_CTX.with(|c| {
        c.set(Some(WorkerCtx {
            shared: Arc::as_ptr(&shared),
            deque: &deque,
        }))
    });
    // Per-worker xorshift64* seed: lane-derived, deliberately not
    // time-derived so victim sequences are reproducible run to run.
    let mut rng: u64 =
        0x9E37_79B9_7F4A_7C15 ^ ((lane as u64 + 1).wrapping_mul(0xA24B_AED4_963E_E407));
    let mut idle_rounds = 0u32;
    loop {
        if let Some((job, source)) = shared.find_work(&deque, lane, &mut rng) {
            idle_rounds = 0;
            shared.execute_counted(lane, job, source);
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Bounded backoff: spin (cheap, latency-optimal), then yield the
        // timeslice, then park on the condvar until new work is pushed.
        idle_rounds = idle_rounds.saturating_add(1);
        if idle_rounds <= SPIN_ROUNDS {
            std::hint::spin_loop();
        } else if idle_rounds <= SPIN_ROUNDS + YIELD_ROUNDS {
            std::thread::yield_now();
        } else {
            shared.park(lane);
            // Stay in the post-spin regime: a spurious 2ms wakeup with no
            // work should park again promptly, not burn a spin phase.
            idle_rounds = SPIN_ROUNDS + YIELD_ROUNDS;
        }
    }
}

/// Best-effort pin of the calling thread to `core` via a raw
/// `sched_setaffinity` syscall (the offline build has no libc binding).
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn pin_to_core(core: usize) {
    const SYS_SCHED_SETAFFINITY: u64 = 203;
    // 1024-bit CPU mask, the kernel's canonical cpu_set_t width.
    let mut mask = [0u64; 16];
    mask[(core / 64) % 16] = 1u64 << (core % 64);
    let ret: i64;
    // SAFETY: sched_setaffinity(pid=0 = self, len, mask) only reads
    // `mask.len() * 8` bytes from `mask` and writes no userspace memory;
    // rcx/r11 are clobbered per the syscall ABI. A failure return is
    // ignored on purpose — affinity is a hint, the thread runs unpinned.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_SCHED_SETAFFINITY => ret,
            in("rdi") 0u64,
            in("rsi") (mask.len() * 8) as u64,
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    let _ = ret;
}

/// Affinity pinning is a Linux/x86-64 fast path; a no-op elsewhere.
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn pin_to_core(_core: usize) {}

/// Configures and builds a [`ThreadPool`].
///
/// ```
/// use ninja_parallel::ThreadPoolBuilder;
///
/// let pool = ThreadPoolBuilder::new().num_threads(2).build();
/// assert_eq!(pool.num_threads(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
    affinity: bool,
    steal: bool,
}

impl ThreadPoolBuilder {
    /// A builder with defaults: hardware-sized, no affinity, stealing on.
    pub fn new() -> Self {
        Self {
            num_threads: None,
            affinity: false,
            steal: true,
        }
    }

    /// Total participating threads (caller + workers). Default: one per
    /// hardware thread.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Round-robin-pin each worker to a core (`lane % hardware_threads`)
    /// via `sched_setaffinity`. Best effort: unsupported platforms and
    /// denied syscalls silently leave workers unpinned. The calling
    /// thread (lane 0) is never pinned. Default: off.
    pub fn affinity(mut self, on: bool) -> Self {
        self.affinity = on;
        self
    }

    /// Enable per-worker deques with work stealing. Off reproduces the
    /// legacy shared-injector FIFO behavior (every queue operation funnels
    /// through one mutex) — kept for A/B measurements. Default: on.
    pub fn steal(mut self, on: bool) -> Self {
        self.steal = on;
        self
    }

    /// Builds the pool, spawning `num_threads - 1` workers.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads(0)` was requested.
    pub fn build(self) -> ThreadPool {
        let num_threads = self.num_threads.unwrap_or_else(crate::hardware_threads);
        assert!(num_threads > 0, "a ThreadPool needs at least one thread");
        let deques: Vec<Worker<JobRef>> = (1..num_threads).map(|_| Worker::new()).collect();
        let stealers = if self.steal {
            deques.iter().map(Worker::stealer).collect()
        } else {
            Vec::new()
        };
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            steal_enabled: self.steal,
            sleepers: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            sleep_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: Counters::new(num_threads),
        });
        let hw = crate::hardware_threads().max(1);
        let workers = deques
            .into_iter()
            .enumerate()
            .map(|(i, deque)| {
                let lane = i + 1;
                let s = Arc::clone(&shared);
                let pin = self.affinity.then_some(lane % hw);
                std::thread::Builder::new()
                    .name(format!("ninja-worker-{lane}"))
                    .spawn(move || worker_loop(s, deque, lane, pin))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            num_threads,
        }
    }
}

impl Default for ThreadPoolBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// A persistent pool of worker threads with OpenMP-style loop scheduling.
///
/// The pool is the reproduction's stand-in for the paper's OpenMP runtime:
/// kernels hand it index ranges and it distributes dynamically-sized chunks
/// over the workers (plus the calling thread, which always participates).
/// Task-shaped work (`join`, `scope`) schedules through per-worker
/// work-stealing deques — see the module docs.
///
/// Dropping the pool joins all workers.
///
/// ```
/// use ninja_parallel::ThreadPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = ThreadPool::with_threads(4);
/// let hits = AtomicUsize::new(0);
/// pool.parallel_for(0..100, 8, |range| {
///     hits.fetch_add(range.len(), Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 100);
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    num_threads: usize,
}

impl ThreadPool {
    /// Creates a pool with one thread per available hardware thread.
    pub fn new() -> Self {
        ThreadPoolBuilder::new().build()
    }

    /// Creates a pool with exactly `num_threads` participating threads
    /// (including the caller; `num_threads - 1` workers are spawned).
    ///
    /// A pool of 1 runs everything inline on the calling thread.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads == 0`.
    pub fn with_threads(num_threads: usize) -> Self {
        ThreadPoolBuilder::new().num_threads(num_threads).build()
    }

    /// A builder for pools with non-default scheduling options.
    pub fn builder() -> ThreadPoolBuilder {
        ThreadPoolBuilder::new()
    }

    /// A process-wide pool sized to the hardware, created on first use.
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(ThreadPool::new)
    }

    /// Number of threads that participate in parallel regions (workers plus
    /// the calling thread).
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `body` over every index chunk of `range`, in parallel, with
    /// dynamic scheduling. Chunks have at most `grain` indices.
    ///
    /// Equivalent to `#pragma omp parallel for schedule(dynamic, grain)`.
    /// The calling thread participates. Returns when every chunk has run.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic with its original payload (after
    /// all other chunks finish), so `catch_unwind` around a parallel
    /// region sees the same message a sequential loop would have raised.
    /// The pool itself stays healthy and can run further regions.
    pub fn parallel_for<F>(&self, range: Range<usize>, grain: usize, body: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        let n = range.end.saturating_sub(range.start);
        if n == 0 {
            return;
        }
        // One relaxed load per region; everything below only pays for
        // instrumentation when the probe flags are on.
        let metrics_on = ninja_probe::metrics_enabled();
        if metrics_on {
            // ORDERING: monotonic stats counter; read only in snapshots.
            self.shared.counters.regions.fetch_add(1, Ordering::Relaxed);
        }
        let grain = grain.max(1);
        let n_chunks = n.div_ceil(grain);
        let threads = self.num_threads.min(n_chunks);
        if threads <= 1 {
            let _region = ninja_probe::span("parallel_for");
            if metrics_on {
                let t0 = Instant::now();
                body(range);
                let lane = &self.shared.counters.lanes[current_lane(self.num_threads)];
                // ORDERING: per-lane stats counters; snapshot reads tolerate
                // skew between lanes.
                lane.chunks.fetch_add(1, Ordering::Relaxed);
                lane.busy_ns
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            } else {
                body(range);
            }
            return;
        }

        let next_chunk = AtomicUsize::new(0);
        let start = range.start;
        let end = range.end;
        let counters = &self.shared.counters;
        let harness = move || {
            // Each participant (caller and any worker that picks up the
            // shared job) traces its own lane and accounts its own busy
            // time, so imbalance between lanes is visible.
            let _region = ninja_probe::span("parallel_for");
            let t0 = metrics_on.then(Instant::now);
            let mut my_chunks = 0u64;
            loop {
                // ORDERING: the chunk claim is an isolated counter — each
                // index is claimed exactly once by atomicity alone, and the
                // region's completion latch orders the loop body's writes.
                let i = next_chunk.fetch_add(1, Ordering::Relaxed);
                if i >= n_chunks {
                    break;
                }
                my_chunks += 1;
                let lo = start + i * grain;
                let hi = (lo + grain).min(end);
                body(lo..hi);
            }
            if let Some(t0) = t0 {
                // A participant that arrived after the chunks ran out did
                // no work; recording its sliver of loop overhead as busy
                // time would pollute the imbalance statistics.
                if my_chunks > 0 {
                    let elapsed_ns = t0.elapsed().as_nanos() as u64;
                    let lane = &counters.lanes[current_lane(counters.lanes.len())];
                    // ORDERING: per-lane stats counters; snapshot reads
                    // tolerate skew between lanes.
                    lane.chunks.fetch_add(my_chunks, Ordering::Relaxed);
                    lane.busy_ns.fetch_add(elapsed_ns, Ordering::Relaxed);
                    // Per-participant busy counter track ("ph":"C"), one
                    // point per region — Perfetto charts lane imbalance
                    // over time from these.
                    ninja_probe::counter("worker busy_ms", &[("busy_ms", elapsed_ns as f64 / 1e6)]);
                }
            }
        };

        let helpers = threads - 1;
        let latch = CountLatch::new(helpers);
        let panic_slot: Mutex<Option<PanicPayload>> = Mutex::new(None);
        let job = SharedJob {
            func: &harness,
            latch: &latch,
            panic: &panic_slot,
        };
        for _ in 0..helpers {
            // Helper jobs bypass local-deque routing (`push_external`):
            // every idle worker must be able to discover the region, and
            // the harness accounts its own busy time (`timed: false`).
            self.shared.push_external(JobRef {
                data: &job as *const SharedJob<'_> as *const (),
                exec: exec_shared,
                timed: false,
            });
        }

        // Even if the inline harness panics we must wait for the workers
        // before unwinding, or they would reference a dead stack frame.
        struct WaitOnDrop<'a>(&'a CountLatch);
        impl Drop for WaitOnDrop<'_> {
            fn drop(&mut self) {
                self.0.wait();
            }
        }
        {
            let _wait = WaitOnDrop(&latch);
            harness();
        }
        let worker_panic = panic_slot.lock().take();
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
    }

    /// Parallel map-reduce over an index range.
    ///
    /// `map` produces a partial value for each chunk; partials are folded
    /// with `reduce` in a nondeterministic order (use associative,
    /// commutative reductions — for floating point this means results can
    /// differ across runs in the last bits).
    pub fn parallel_reduce<T, M, R>(
        &self,
        range: Range<usize>,
        grain: usize,
        identity: T,
        map: M,
        reduce: R,
    ) -> T
    where
        T: Send,
        M: Fn(Range<usize>) -> T + Sync,
        R: Fn(T, T) -> T + Sync,
    {
        let acc: Mutex<Option<T>> = Mutex::new(None);
        self.parallel_for(range, grain, |chunk| {
            let part = map(chunk);
            let mut guard = acc.lock();
            *guard = Some(match guard.take() {
                Some(prev) => reduce(prev, part),
                None => part,
            });
        });
        match acc.into_inner() {
            Some(total) => reduce(identity, total),
            None => identity,
        }
    }

    /// Queues a type-erased heap job (used by [`crate::Scope`]). Routed to
    /// the calling worker's own deque when possible.
    pub(crate) fn push_heap_job(&self, data: *const (), exec: unsafe fn(*const ())) {
        self.shared.push(JobRef {
            data,
            exec,
            timed: true,
        });
    }

    /// Pops and executes one queued job if any; returns whether it did.
    /// Lets waiting threads contribute instead of spinning: own deque
    /// first (if the caller is a worker), then the injector, then theft.
    pub(crate) fn help_one(&self) -> bool {
        let lane = current_lane(self.num_threads);
        if let Some(job) = self.shared.pop_local() {
            self.shared.execute_counted(lane, job, WorkSource::Local);
            return true;
        }
        if let Some(job) = retry_loop(|| self.shared.injector.steal(), RETRY_BUDGET) {
            self.shared.execute_counted(lane, job, WorkSource::Injector);
            return true;
        }
        for stealer in &self.shared.stealers {
            if let Some(job) = retry_loop(|| stealer.steal(), RETRY_BUDGET) {
                self.shared.execute_counted(lane, job, WorkSource::Stolen);
                return true;
            }
        }
        false
    }

    /// A point-in-time snapshot of the pool's instrumentation counters.
    ///
    /// Counters only advance while [`ninja_probe::set_metrics`] is on, and
    /// accumulate from pool creation; diff two snapshots with
    /// [`ninja_probe::PoolMetrics::delta`] to isolate one region of
    /// interest (the harness brackets each measured variant this way).
    pub fn metrics(&self) -> ninja_probe::PoolMetrics {
        let c = &self.shared.counters;
        let workers: Vec<ninja_probe::WorkerStats> = c
            .lanes
            .iter()
            .map(|l| ninja_probe::WorkerStats {
                // ORDERING: a racy snapshot by design — callers diff
                // snapshots taken around a quiescent point (after a
                // region's join).
                tasks: l.tasks.load(Ordering::Relaxed),
                chunks: l.chunks.load(Ordering::Relaxed),
                busy_ns: l.busy_ns.load(Ordering::Relaxed),
                local_pops: l.local_pops.load(Ordering::Relaxed),
                injector_pops: l.injector_pops.load(Ordering::Relaxed),
                steals: l.steals.load(Ordering::Relaxed),
                parked_ns: l.parked_ns.load(Ordering::Relaxed),
                local_window: l.windows[0].snapshot(),
                steal_window: l.windows[1].snapshot(),
            })
            .collect();
        ninja_probe::PoolMetrics {
            threads: self.num_threads,
            at_ns: c.epoch.elapsed().as_nanos() as u64,
            // ORDERING: same racy-snapshot contract as above.
            regions: c.regions.load(Ordering::Relaxed),
            joins: c.joins.load(Ordering::Relaxed),
            steals: workers.iter().map(|w| w.steals).sum(),
            workers,
        }
    }

    /// Calls `body` on every element of `items`, in parallel, with dynamic
    /// chunk scheduling (`grain` elements per chunk).
    ///
    /// Convenience wrapper over [`ThreadPool::parallel_for`] for read-only
    /// sweeps (use [`crate::par_chunks_mut`] to write).
    pub fn parallel_for_each<T, F>(&self, items: &[T], grain: usize, body: F)
    where
        T: Sync,
        F: Fn(usize, &T) + Sync,
    {
        self.parallel_for(0..items.len(), grain, |range| {
            for i in range {
                body(i, &items[i]);
            }
        });
    }

    /// Runs two closures, potentially in parallel, returning both results.
    ///
    /// The second closure is offered to the pool (the calling worker's own
    /// deque when possible — a thief takes it FIFO); the caller runs the
    /// first and then claims the second back if nobody started it (the
    /// common case on an idle pool), or waits for the thief to finish.
    ///
    /// The waiter deliberately does **not** execute unrelated queued jobs:
    /// executing an arbitrary job while blocked nests that job's entire
    /// subtree on the current stack, and the nesting depth would be
    /// bounded only by the number of outstanding jobs — deeply recursive
    /// `join` trees (e.g. parallel merge sort) overflow the stack.
    /// Claim-back already guarantees progress without helping.
    ///
    /// # Panics
    ///
    /// Propagates a panic from either closure.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        if ninja_probe::metrics_enabled() {
            // ORDERING: monotonic stats counter; read only in snapshots.
            self.shared.counters.joins.fetch_add(1, Ordering::Relaxed);
        }
        if self.num_threads <= 1 {
            return (a(), b());
        }
        // Two references: one for the queue entry, one for this frame.
        let shared = Box::into_raw(Box::new(SharedOnce {
            job: OnceJob::new(b),
            refs: AtomicUsize::new(2),
        }));
        self.shared.push(JobRef {
            data: shared as *const (),
            exec: exec_once::<B, RB>,
            timed: true,
        });
        let ra = a();
        // SAFETY: we hold one reference until release below.
        let job = unsafe { &(*shared).job };
        // Claim b back if nobody started it; otherwise wait for the thief.
        if !job.try_run() {
            let mut spins = 0u32;
            while !job.is_done() {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
        let rb = job.take_result();
        // SAFETY: releasing this frame's reference.
        unsafe { release_shared_once::<B, RB>(shared as *const ()) };
        (ra, rb)
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.num_threads)
            .field("steal", &self.shared.steal_enabled)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::with_threads(1);
        let mut hits = vec![false; 50];
        let cell = Mutex::new(&mut hits);
        pool.parallel_for(0..50, 7, |r| {
            let mut guard = cell.lock();
            for i in r {
                guard[i] = true;
            }
        });
        assert!(hits.iter().all(|&h| h));
    }

    #[test]
    fn parallel_for_covers_every_index_exactly_once() {
        let pool = ThreadPool::with_threads(4);
        let counts: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(0..1000, 13, |r| {
            for i in r {
                // ORDERING: parallel_for's join orders these test counters.
                counts[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        // ORDERING: read after the region's join; no concurrent writers left.
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_empty_range_is_noop() {
        let pool = ThreadPool::with_threads(2);
        pool.parallel_for(5..5, 4, |_| panic!("must not run"));
    }

    #[test]
    fn parallel_for_grain_zero_treated_as_one() {
        let pool = ThreadPool::with_threads(2);
        let n = AtomicUsize::new(0);
        pool.parallel_for(0..10, 0, |r| {
            assert_eq!(r.len(), 1);
            // ORDERING: parallel_for's join orders this test counter.
            n.fetch_add(1, Ordering::Relaxed);
        });
        // ORDERING: read after the region's join; no concurrent writers left.
        assert_eq!(n.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn reduce_sums_correctly() {
        let pool = ThreadPool::with_threads(3);
        let total = pool.parallel_reduce(
            0..10_000,
            97,
            0u64,
            |r| r.map(|i| i as u64).sum(),
            |a, b| a + b,
        );
        assert_eq!(total, (0..10_000u64).sum());
    }

    #[test]
    fn reduce_empty_range_yields_identity() {
        let pool = ThreadPool::with_threads(2);
        let v = pool.parallel_reduce(3..3, 8, 42i32, |_| panic!("no chunks"), |a, b| a + b);
        assert_eq!(v, 42);
    }

    #[test]
    fn for_each_visits_every_item_once() {
        let pool = ThreadPool::with_threads(3);
        let items: Vec<u32> = (0..500).collect();
        let hits: Vec<AtomicUsize> = (0..items.len()).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for_each(&items, 17, |i, &v| {
            assert_eq!(v as usize, i);
            // ORDERING: parallel_for's join orders this test counter.
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        // ORDERING: read after the region's join; no concurrent writers left.
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn join_returns_both_results() {
        let pool = ThreadPool::with_threads(2);
        let (a, b) = pool.join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_single_thread() {
        let pool = ThreadPool::with_threads(1);
        let (a, b) = pool.join(|| 5, || 6);
        assert_eq!((a, b), (5, 6));
    }

    #[test]
    fn claimed_back_join_refs_are_harmless() {
        // Regression: a claimed-back join leaves its JobRef in the queue;
        // the entry must stay valid (refcounted) until a worker pops it,
        // even long after the join frame returned.
        let pool = ThreadPool::with_threads(2);
        for i in 0..2_000u64 {
            let (a, b) = pool.join(move || i, move || i + 1);
            assert_eq!((a, b), (i, i + 1));
        }
        // Force the workers to drain any stale queued refs.
        let n = AtomicUsize::new(0);
        pool.parallel_for(0..256, 1, |_| {
            // ORDERING: parallel_for's join orders this test counter.
            n.fetch_add(1, Ordering::Relaxed);
        });
        // ORDERING: read after the region's join; no concurrent writers left.
        assert_eq!(n.load(Ordering::Relaxed), 256);
    }

    #[test]
    fn nested_joins_recursive_fib() {
        fn fib(pool: &ThreadPool, n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = pool.join(|| fib(pool, n - 1), || fib(pool, n - 2));
            a + b
        }
        let pool = ThreadPool::with_threads(4);
        assert_eq!(fib(&pool, 16), 987);
    }

    #[test]
    fn panic_in_parallel_for_propagates() {
        let pool = ThreadPool::with_threads(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(0..8, 1, |r| {
                if r.start == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // Pool must still be usable afterwards.
        let n = AtomicUsize::new(0);
        pool.parallel_for(0..4, 1, |_| {
            // ORDERING: parallel_for's join orders this test counter.
            n.fetch_add(1, Ordering::Relaxed);
        });
        // ORDERING: read after the region's join; no concurrent writers left.
        assert_eq!(n.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn panic_in_join_propagates() {
        let pool = ThreadPool::with_threads(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.join(|| 1, || -> i32 { panic!("boom") })
        }));
        assert!(result.is_err());
    }

    /// Extracts the human-readable message from a caught panic payload.
    fn payload_message(payload: &(dyn std::any::Any + Send)) -> &str {
        payload
            .downcast_ref::<&'static str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("<non-string payload>")
    }

    #[test]
    fn parallel_for_preserves_panic_payload() {
        let pool = ThreadPool::with_threads(4);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(0..64, 1, |r| {
                if r.start == 17 {
                    panic!("chunk {} exploded", r.start);
                }
            });
        }))
        .unwrap_err();
        assert_eq!(payload_message(err.as_ref()), "chunk 17 exploded");
    }

    #[test]
    fn join_preserves_panic_payload_from_stolen_task() {
        let pool = ThreadPool::with_threads(2);
        for _ in 0..50 {
            let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.join(
                    || std::thread::sleep(Duration::from_micros(50)),
                    || -> i32 { panic!("task b failed: code 42") },
                )
            }))
            .unwrap_err();
            assert_eq!(payload_message(err.as_ref()), "task b failed: code 42");
        }
    }

    #[test]
    fn pool_runs_correctly_after_many_panics() {
        let pool = ThreadPool::with_threads(3);
        for round in 0..20 {
            let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.parallel_for(0..32, 1, |r| {
                    if r.start % 5 == round % 5 {
                        panic!("round {round}");
                    }
                });
            }));
            let n = AtomicUsize::new(0);
            pool.parallel_for(0..100, 7, |r| {
                // ORDERING: parallel_for's join orders this test counter.
                n.fetch_add(r.len(), Ordering::Relaxed);
            });
            // ORDERING: read after the region's join.
            assert_eq!(n.load(Ordering::Relaxed), 100);
        }
    }

    #[test]
    fn concurrent_joins_reraise_panics_to_their_own_callers() {
        // Several OS threads share one pool; panicking joins must re-raise
        // in the caller that submitted them, never a bystander, and clean
        // joins interleaved on the same pool must keep returning correct
        // values.
        let pool = Arc::new(ThreadPool::with_threads(4));
        let mut handles = Vec::new();
        for t in 0..6usize {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for round in 0..40usize {
                    if (t + round) % 2 == 0 {
                        let (a, b) = pool.join(|| t * 1000 + round, || round * 7);
                        assert_eq!(a, t * 1000 + round);
                        assert_eq!(b, round * 7);
                    } else {
                        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            pool.join(std::thread::yield_now, || -> usize {
                                panic!("caller {t} round {round}")
                            })
                        }))
                        .unwrap_err();
                        assert_eq!(
                            payload_message(err.as_ref()),
                            format!("caller {t} round {round}")
                        );
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn pool_usable_immediately_after_panicked_parallel_for_under_load() {
        // A panicked parallel_for must leave the pool ready for the very
        // next region with no settling delay, even while another thread
        // keeps clean work flowing through the same workers.
        let pool = Arc::new(ThreadPool::with_threads(4));
        let stop = Arc::new(AtomicBool::new(false));
        let bg = {
            let pool = Arc::clone(&pool);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut rounds = 0u64;
                // ORDERING: advisory stop flag; the thread join below is the
                // real synchronization point.
                while !stop.load(Ordering::Relaxed) {
                    let sum = pool.parallel_reduce(
                        0..256,
                        16,
                        0usize,
                        |r| r.sum::<usize>(),
                        |a, b| a + b,
                    );
                    assert_eq!(sum, (0..256).sum());
                    rounds += 1;
                }
                rounds
            })
        };
        for round in 0..25 {
            let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.parallel_for(0..64, 1, |r| {
                    if r.start == 31 {
                        panic!("round {round}");
                    }
                });
            }))
            .unwrap_err();
            assert_eq!(payload_message(err.as_ref()), format!("round {round}"));
            // Immediately reuse the pool — no sleep, no settling.
            let n = AtomicUsize::new(0);
            pool.parallel_for(0..64, 3, |r| {
                // ORDERING: parallel_for's join orders this test counter.
                n.fetch_add(r.len(), Ordering::Relaxed);
            });
            // ORDERING: read after the region's join.
            assert_eq!(n.load(Ordering::Relaxed), 64);
        }
        // ORDERING: advisory stop flag; the join below synchronizes.
        stop.store(true, Ordering::Relaxed);
        let bg_rounds = bg.join().unwrap();
        assert!(bg_rounds > 0, "background load never ran");
    }

    #[test]
    fn global_pool_is_singleton() {
        let a = ThreadPool::global() as *const _;
        let b = ThreadPool::global() as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn many_sequential_regions_reuse_workers() {
        let pool = ThreadPool::with_threads(3);
        for round in 0..100 {
            let sum = pool.parallel_reduce(
                0..128,
                16,
                0usize,
                |r| r.sum::<usize>() + round - round,
                |a, b| a + b,
            );
            assert_eq!(sum, (0..128).sum());
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = ThreadPool::with_threads(0);
    }

    #[test]
    fn debug_format_mentions_threads() {
        let pool = ThreadPool::with_threads(2);
        assert!(format!("{pool:?}").contains("num_threads"));
    }

    // --- work-stealing runtime tests ---

    #[test]
    fn retry_loop_returns_success_immediately() {
        let calls = Cell::new(0u32);
        let got = retry_loop(
            || {
                calls.set(calls.get() + 1);
                Steal::Success(7)
            },
            4,
        );
        assert_eq!(got, Some(7));
        assert_eq!(calls.get(), 1);
    }

    #[test]
    fn retry_loop_retries_through_lost_races_then_succeeds() {
        // The direct unit test of the pool's retry/backoff path: a source
        // that loses the CAS race a few times must be re-attempted, not
        // treated as empty.
        let calls = Cell::new(0u32);
        let got = retry_loop(
            || {
                calls.set(calls.get() + 1);
                if calls.get() <= 3 {
                    Steal::Retry
                } else {
                    Steal::Success(99)
                }
            },
            4,
        );
        assert_eq!(got, Some(99));
        assert_eq!(calls.get(), 4, "three retries then the winning attempt");
    }

    #[test]
    fn retry_loop_gives_up_after_budget_and_on_empty() {
        let calls = Cell::new(0u32);
        let got: Option<()> = retry_loop(
            || {
                calls.set(calls.get() + 1);
                Steal::Retry
            },
            4,
        );
        assert_eq!(got, None, "a persistently-contended source is skipped");
        assert_eq!(calls.get(), 5, "initial attempt + budget retries");

        let got: Option<()> = retry_loop(|| Steal::Empty, 4);
        assert_eq!(got, None);
    }

    #[test]
    fn builder_defaults_and_flags() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build();
        assert_eq!(pool.num_threads(), 2);
        assert!(pool.shared.steal_enabled, "stealing defaults on");
        assert_eq!(pool.shared.stealers.len(), 1);

        let legacy = ThreadPoolBuilder::new().num_threads(3).steal(false).build();
        assert!(!legacy.shared.steal_enabled);
        assert!(
            legacy.shared.stealers.is_empty(),
            "legacy mode has no thief handles"
        );
        assert!(format!("{legacy:?}").contains("steal"));
    }

    #[test]
    fn steal_disabled_pool_still_computes_correctly() {
        // The A/B baseline (seed FIFO behavior) must stay fully correct:
        // parallel_for, nested joins, and scopes all through the injector.
        let pool = ThreadPoolBuilder::new().num_threads(4).steal(false).build();
        let total = pool.parallel_reduce(
            0..4096,
            32,
            0u64,
            |r| r.map(|i| i as u64).sum(),
            |a, b| a + b,
        );
        assert_eq!(total, (0..4096u64).sum());

        fn fib(pool: &ThreadPool, n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = pool.join(|| fib(pool, n - 1), || fib(pool, n - 2));
            a + b
        }
        assert_eq!(fib(&pool, 12), 144);
    }

    #[test]
    fn affinity_pool_computes_correctly() {
        // Pinning is best-effort; whatever the platform does with the
        // syscall, the pool must behave identically.
        let pool = ThreadPoolBuilder::new()
            .num_threads(2)
            .affinity(true)
            .build();
        let total = pool.parallel_reduce(
            0..1024,
            16,
            0u64,
            |r| r.map(|i| i as u64).sum(),
            |a, b| a + b,
        );
        assert_eq!(total, (0..1024u64).sum());
    }

    #[test]
    fn workers_park_and_wake_across_idle_gaps() {
        // Liveness hammer for the park/notify handshake: force the workers
        // through many park cycles (3ms idle gaps > the 2ms backstop) with
        // a small region after each; a lost wakeup would show up as the
        // region stalling until the backstop fires — or forever, were the
        // backstop removed. The assertion is completion, not timing.
        let pool = ThreadPool::with_threads(4);
        for round in 0..40 {
            std::thread::sleep(Duration::from_millis(3));
            let n = AtomicUsize::new(0);
            pool.parallel_for(0..64, 4, |r| {
                // ORDERING: parallel_for's join orders this test counter.
                n.fetch_add(r.len(), Ordering::Relaxed);
            });
            // ORDERING: read after the region's join.
            assert_eq!(n.load(Ordering::Relaxed), 64, "round {round}");
        }
    }

    #[test]
    fn counter_windows_attach_per_source_and_never_break_scheduling() {
        // Counter windows ride along on the deque execution path; whether
        // the host grants a PMU or not, scheduling must be untouched and
        // the per-source buckets must stay internally consistent.
        ninja_probe::set_counters(true);
        let pool = ThreadPool::with_threads(4);
        fn sum_range(pool: &ThreadPool, lo: u64, hi: u64) -> u64 {
            if hi - lo <= 64 {
                return (lo..hi).sum();
            }
            let mid = lo + (hi - lo) / 2;
            let (a, b) = pool.join(|| sum_range(pool, lo, mid), || sum_range(pool, mid, hi));
            a + b
        }
        assert_eq!(sum_range(&pool, 0, 50_000), (0..50_000u64).sum());
        let m = pool.metrics();
        ninja_probe::set_counters(false);
        let available = ninja_probe::counters::availability().is_available();
        for w in &m.workers {
            if !available {
                // Degradation contract: no fabricated counts.
                assert!(!w.local_window.any_counted(), "{w:?}");
                assert!(!w.steal_window.any_counted(), "{w:?}");
            }
            // Whatever was counted, derived ratios stay in range.
            if let Some(rate) = w.steal_window.llc_miss_rate() {
                assert!((0.0..=1.0).contains(&rate));
            }
        }
        if available {
            let counted: u64 = m
                .workers
                .iter()
                .map(|w| w.local_window.cycles + w.steal_window.cycles)
                .sum();
            assert!(counted > 0, "a PMU-capable host should have counted jobs");
        }
    }

    #[test]
    fn deep_join_tree_is_correct_under_stealing() {
        // A deeper recursion than fib(16): exercises local push, LIFO pop,
        // claim-back, and cross-worker theft all at once.
        fn sum_range(pool: &ThreadPool, lo: u64, hi: u64) -> u64 {
            if hi - lo <= 32 {
                return (lo..hi).sum();
            }
            let mid = lo + (hi - lo) / 2;
            let (a, b) = pool.join(|| sum_range(pool, lo, mid), || sum_range(pool, mid, hi));
            a + b
        }
        let pool = ThreadPool::with_threads(4);
        assert_eq!(sum_range(&pool, 0, 100_000), (0..100_000u64).sum());
    }
}
