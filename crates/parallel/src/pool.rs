//! The thread pool and its scheduling primitives.

use crate::latch::CountLatch;
use crossbeam::deque::{Injector, Steal};
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A captured panic payload in transit between a worker and the caller
/// that will re-raise it.
type PanicPayload = Box<dyn Any + Send + 'static>;

/// Stores `payload` unless a previous panic already claimed the slot
/// (the first panic wins; later ones are dropped, mirroring what a
/// sequential loop would have surfaced).
fn store_first_panic(slot: &Mutex<Option<PanicPayload>>, payload: PanicPayload) {
    let mut guard = slot.lock();
    if guard.is_none() {
        *guard = Some(payload);
    }
}

/// A type-erased pointer to a job living on some waiting caller's stack.
///
/// Safety protocol: the frame that created the job blocks (via
/// [`CountLatch`] or a state flag) until every pushed `JobRef` has been
/// executed, so the pointer never dangles.
struct JobRef {
    data: *const (),
    exec: unsafe fn(*const ()),
}

// SAFETY: the pointed-to job types are Sync (shared-call jobs) or carry
// Send payloads (once jobs); the lifetime protocol above keeps them alive.
unsafe impl Send for JobRef {}

impl JobRef {
    /// # Safety
    ///
    /// `data` must still point at the live job it was created from; the
    /// frame-blocking protocol in the struct docs guarantees this.
    #[inline]
    unsafe fn execute(self) {
        (self.exec)(self.data)
    }
}

/// A job executed by several threads concurrently through a shared `Fn`.
struct SharedJob<'a> {
    func: &'a (dyn Fn() + Sync),
    latch: &'a CountLatch,
    panic: &'a Mutex<Option<PanicPayload>>,
}

/// # Safety
///
/// `ptr` must come from a `JobRef` built over a live `SharedJob`.
unsafe fn exec_shared(ptr: *const ()) {
    // SAFETY: ptr was created from a live SharedJob per the JobRef protocol.
    let job = unsafe { &*(ptr as *const SharedJob<'_>) };
    if let Err(payload) = catch_unwind(AssertUnwindSafe(job.func)) {
        store_first_panic(job.panic, payload);
    }
    job.latch.count_down();
}

const ONCE_PENDING: u8 = 0;
const ONCE_RUNNING: u8 = 1;
const ONCE_DONE: u8 = 2;

/// A run-exactly-once job with a return value, used by [`ThreadPool::join`].
struct OnceJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<R>>,
    state: AtomicU8,
    panic: UnsafeCell<Option<PanicPayload>>,
}

// SAFETY: access to func/result is serialized by the `state` machine:
// exactly one thread wins the PENDING->RUNNING transition and touches the
// cells; readers wait for DONE (Acquire) before reading `result`.
unsafe impl<F: Send, R: Send> Sync for OnceJob<F, R> {}

impl<F: FnOnce() -> R, R> OnceJob<F, R> {
    fn new(func: F) -> Self {
        Self {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
            state: AtomicU8::new(ONCE_PENDING),
            panic: UnsafeCell::new(None),
        }
    }

    /// Attempts to claim and run the job; returns false if already claimed.
    fn try_run(&self) -> bool {
        if self
            .state
            .compare_exchange(
                ONCE_PENDING,
                ONCE_RUNNING,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_err()
        {
            return false;
        }
        // SAFETY: we won the CAS, so we are the only thread touching the cells.
        let func = unsafe { (*self.func.get()).take().expect("once job claimed twice") };
        match catch_unwind(AssertUnwindSafe(func)) {
            // SAFETY: still the sole owner of the cells until the DONE store.
            Ok(r) => unsafe { *self.result.get() = Some(r) },
            // SAFETY: same exclusive access as `result` above; readers wait
            // for the DONE store (Release/Acquire pair) before looking.
            Err(payload) => unsafe { *self.panic.get() = Some(payload) },
        }
        self.state.store(ONCE_DONE, Ordering::Release);
        true
    }

    fn is_done(&self) -> bool {
        self.state.load(Ordering::Acquire) == ONCE_DONE
    }

    /// Takes the result after `is_done` returned true.
    ///
    /// # Panics
    ///
    /// Re-raises the job's own panic payload if the job panicked, so
    /// callers of [`ThreadPool::join`] observe the original message.
    fn take_result(&self) -> R {
        assert!(self.is_done());
        // SAFETY: state is DONE, the runner has released the cells.
        if let Some(payload) = unsafe { (*self.panic.get()).take() } {
            resume_unwind(payload);
        }
        // SAFETY: as above.
        unsafe {
            (*self.result.get())
                .take()
                .expect("once job result taken twice")
        }
    }
}

/// A heap-allocated `OnceJob` shared between the queue entry and the
/// waiting caller.
///
/// Two owners exist after `join` pushes the job: the queued [`JobRef`] and
/// the caller. Either may run the job (exactly one wins the state CAS);
/// **both** must release their reference, and the last one frees the
/// allocation. Keeping the queue entry as a real owner is what makes
/// claim-back sound: a stale queued `JobRef` popped after the `join`
/// returned still points at live memory and its `try_run` is a no-op.
struct SharedOnce<F, R> {
    job: OnceJob<F, R>,
    refs: AtomicUsize,
}

/// Drops one reference to a `SharedOnce`, freeing it when it was the last.
///
/// # Safety
///
/// `ptr` must be a `SharedOnce<F, R>` allocation on which the caller holds
/// one outstanding reference, surrendered by this call.
unsafe fn release_shared_once<F: FnOnce() -> R + Send, R: Send>(ptr: *const ()) {
    let shared = ptr as *mut SharedOnce<F, R>;
    // SAFETY: caller holds one of the outstanding references.
    if unsafe { (*shared).refs.fetch_sub(1, Ordering::AcqRel) } == 1 {
        // SAFETY: last reference; no other thread can touch the job now.
        drop(unsafe { Box::from_raw(shared) });
    }
}

/// # Safety
///
/// `ptr` must be a live `SharedOnce<F, R>` for which the queue entry holds
/// the reference this call releases.
unsafe fn exec_once<F: FnOnce() -> R + Send, R: Send>(ptr: *const ()) {
    {
        // SAFETY: the queue entry owns a reference (released below).
        let shared = unsafe { &*(ptr as *const SharedOnce<F, R>) };
        shared.job.try_run();
    }
    // SAFETY: releasing the queue entry's reference.
    unsafe { release_shared_once::<F, R>(ptr) };
}

/// Per-participant instrumentation counters, cache-line padded so relaxed
/// increments from different lanes never contend on the same line.
#[derive(Default)]
#[repr(align(64))]
struct Lane {
    /// Injector jobs popped and executed (workers only).
    tasks: AtomicU64,
    /// `parallel_for` chunks claimed and run by this lane.
    chunks: AtomicU64,
    /// Nanoseconds spent inside pool work by this lane.
    busy_ns: AtomicU64,
}

/// All instrumentation state for one pool. Counters are only written while
/// `ninja_probe::metrics_enabled()` is on; the disabled path performs a
/// single relaxed boolean load per region (see the overhead test in
/// `tests/metrics.rs`).
struct Counters {
    /// Lane 0 is the calling thread; lanes `1..` are the pool's workers.
    lanes: Vec<Lane>,
    regions: AtomicU64,
    joins: AtomicU64,
    steals: AtomicU64,
    epoch: Instant,
}

impl Counters {
    fn new(num_threads: usize) -> Self {
        Self {
            lanes: (0..num_threads).map(|_| Lane::default()).collect(),
            regions: AtomicU64::new(0),
            joins: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }
}

thread_local! {
    /// This thread's lane index in the pool it belongs to. Worker threads
    /// set their index at startup; every other thread (in particular the
    /// caller driving `parallel_for`) reports on lane 0.
    static LANE: Cell<usize> = const { Cell::new(0) };
}

fn current_lane(num_lanes: usize) -> usize {
    LANE.with(|l| l.get()).min(num_lanes.saturating_sub(1))
}

struct Shared {
    injector: Injector<JobRef>,
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
    shutdown: AtomicBool,
    counters: Counters,
}

impl Shared {
    fn push(&self, job: JobRef) {
        self.injector.push(job);
        let _guard = self.sleep_lock.lock();
        self.sleep_cv.notify_one();
    }

    fn notify_all(&self) {
        let _guard = self.sleep_lock.lock();
        self.sleep_cv.notify_all();
    }

    /// Pops one job, or returns None when the queue looks empty.
    fn try_pop(&self) -> Option<JobRef> {
        loop {
            match self.injector.steal() {
                Steal::Success(job) => return Some(job),
                Steal::Empty => return None,
                Steal::Retry => continue,
            }
        }
    }
}

fn worker_loop(shared: Arc<Shared>, lane: usize) {
    LANE.with(|l| l.set(lane));
    loop {
        if let Some(job) = shared.try_pop() {
            if ninja_probe::metrics_enabled() {
                // ORDERING: monotonic stats counter; snapshots tolerate skew
                // and no control flow depends on it.
                shared.counters.lanes[lane]
                    .tasks
                    .fetch_add(1, Ordering::Relaxed);
            }
            // SAFETY: per the JobRef protocol the job outlives its queue entry.
            unsafe { job.execute() };
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let mut guard = shared.sleep_lock.lock();
        if !shared.injector.is_empty() || shared.shutdown.load(Ordering::Acquire) {
            continue;
        }
        // Timed wait as a backstop against any missed wakeup.
        shared
            .sleep_cv
            .wait_for(&mut guard, Duration::from_millis(2));
    }
}

/// A persistent pool of worker threads with OpenMP-style loop scheduling.
///
/// The pool is the reproduction's stand-in for the paper's OpenMP runtime:
/// kernels hand it index ranges and it distributes dynamically-sized chunks
/// over the workers (plus the calling thread, which always participates).
///
/// Dropping the pool joins all workers.
///
/// ```
/// use ninja_parallel::ThreadPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = ThreadPool::with_threads(4);
/// let hits = AtomicUsize::new(0);
/// pool.parallel_for(0..100, 8, |range| {
///     hits.fetch_add(range.len(), Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 100);
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    num_threads: usize,
}

impl ThreadPool {
    /// Creates a pool with one thread per available hardware thread.
    pub fn new() -> Self {
        Self::with_threads(crate::hardware_threads())
    }

    /// Creates a pool with exactly `num_threads` participating threads
    /// (including the caller; `num_threads - 1` workers are spawned).
    ///
    /// A pool of 1 runs everything inline on the calling thread.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads == 0`.
    pub fn with_threads(num_threads: usize) -> Self {
        assert!(num_threads > 0, "a ThreadPool needs at least one thread");
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            sleep_lock: Mutex::new(()),
            sleep_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: Counters::new(num_threads),
        });
        let workers = (1..num_threads)
            .map(|i| {
                let s = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ninja-worker-{i}"))
                    .spawn(move || worker_loop(s, i))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self {
            shared,
            workers,
            num_threads,
        }
    }

    /// A process-wide pool sized to the hardware, created on first use.
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(ThreadPool::new)
    }

    /// Number of threads that participate in parallel regions (workers plus
    /// the calling thread).
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `body` over every index chunk of `range`, in parallel, with
    /// dynamic scheduling. Chunks have at most `grain` indices.
    ///
    /// Equivalent to `#pragma omp parallel for schedule(dynamic, grain)`.
    /// The calling thread participates. Returns when every chunk has run.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic with its original payload (after
    /// all other chunks finish), so `catch_unwind` around a parallel
    /// region sees the same message a sequential loop would have raised.
    /// The pool itself stays healthy and can run further regions.
    pub fn parallel_for<F>(&self, range: Range<usize>, grain: usize, body: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        let n = range.end.saturating_sub(range.start);
        if n == 0 {
            return;
        }
        // One relaxed load per region; everything below only pays for
        // instrumentation when the probe flags are on.
        let metrics_on = ninja_probe::metrics_enabled();
        if metrics_on {
            // ORDERING: monotonic stats counter; read only in snapshots.
            self.shared.counters.regions.fetch_add(1, Ordering::Relaxed);
        }
        let grain = grain.max(1);
        let n_chunks = n.div_ceil(grain);
        let threads = self.num_threads.min(n_chunks);
        if threads <= 1 {
            let _region = ninja_probe::span("parallel_for");
            if metrics_on {
                let t0 = Instant::now();
                body(range);
                let lane = &self.shared.counters.lanes[current_lane(self.num_threads)];
                // ORDERING: per-lane stats counters; snapshot reads tolerate
                // skew between lanes.
                lane.chunks.fetch_add(1, Ordering::Relaxed);
                lane.busy_ns
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            } else {
                body(range);
            }
            return;
        }

        let next_chunk = AtomicUsize::new(0);
        let start = range.start;
        let end = range.end;
        let counters = &self.shared.counters;
        let harness = move || {
            // Each participant (caller and any worker that picks up the
            // shared job) traces its own lane and accounts its own busy
            // time, so imbalance between lanes is visible.
            let _region = ninja_probe::span("parallel_for");
            let t0 = metrics_on.then(Instant::now);
            let mut my_chunks = 0u64;
            loop {
                // ORDERING: the chunk claim is an isolated counter — each
                // index is claimed exactly once by atomicity alone, and the
                // region's completion latch orders the loop body's writes.
                let i = next_chunk.fetch_add(1, Ordering::Relaxed);
                if i >= n_chunks {
                    break;
                }
                my_chunks += 1;
                let lo = start + i * grain;
                let hi = (lo + grain).min(end);
                body(lo..hi);
            }
            if let Some(t0) = t0 {
                // A participant that arrived after the chunks ran out did
                // no work; recording its sliver of loop overhead as busy
                // time would pollute the imbalance statistics.
                if my_chunks > 0 {
                    let lane = &counters.lanes[current_lane(counters.lanes.len())];
                    // ORDERING: per-lane stats counters; snapshot reads
                    // tolerate skew between lanes.
                    lane.chunks.fetch_add(my_chunks, Ordering::Relaxed);
                    lane.busy_ns
                        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
            }
        };

        let helpers = threads - 1;
        let latch = CountLatch::new(helpers);
        let panic_slot: Mutex<Option<PanicPayload>> = Mutex::new(None);
        let job = SharedJob {
            func: &harness,
            latch: &latch,
            panic: &panic_slot,
        };
        for _ in 0..helpers {
            self.shared.push(JobRef {
                data: &job as *const SharedJob<'_> as *const (),
                exec: exec_shared,
            });
        }

        // Even if the inline harness panics we must wait for the workers
        // before unwinding, or they would reference a dead stack frame.
        struct WaitOnDrop<'a>(&'a CountLatch);
        impl Drop for WaitOnDrop<'_> {
            fn drop(&mut self) {
                self.0.wait();
            }
        }
        {
            let _wait = WaitOnDrop(&latch);
            harness();
        }
        let worker_panic = panic_slot.lock().take();
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
    }

    /// Parallel map-reduce over an index range.
    ///
    /// `map` produces a partial value for each chunk; partials are folded
    /// with `reduce` in a nondeterministic order (use associative,
    /// commutative reductions — for floating point this means results can
    /// differ across runs in the last bits).
    pub fn parallel_reduce<T, M, R>(
        &self,
        range: Range<usize>,
        grain: usize,
        identity: T,
        map: M,
        reduce: R,
    ) -> T
    where
        T: Send,
        M: Fn(Range<usize>) -> T + Sync,
        R: Fn(T, T) -> T + Sync,
    {
        let acc: Mutex<Option<T>> = Mutex::new(None);
        self.parallel_for(range, grain, |chunk| {
            let part = map(chunk);
            let mut guard = acc.lock();
            *guard = Some(match guard.take() {
                Some(prev) => reduce(prev, part),
                None => part,
            });
        });
        match acc.into_inner() {
            Some(total) => reduce(identity, total),
            None => identity,
        }
    }

    /// Queues a type-erased heap job (used by [`crate::Scope`]).
    pub(crate) fn push_heap_job(&self, data: *const (), exec: unsafe fn(*const ())) {
        self.shared.push(JobRef { data, exec });
    }

    /// Pops and executes one queued job if any; returns whether it did.
    /// Lets waiting threads contribute instead of spinning.
    pub(crate) fn help_one(&self) -> bool {
        if let Some(job) = self.shared.try_pop() {
            if ninja_probe::metrics_enabled() {
                // ORDERING: monotonic stats counter; read only in snapshots.
                self.shared.counters.steals.fetch_add(1, Ordering::Relaxed);
            }
            // SAFETY: queued jobs are kept alive by their waiters.
            unsafe { job.execute() };
            true
        } else {
            false
        }
    }

    /// A point-in-time snapshot of the pool's instrumentation counters.
    ///
    /// Counters only advance while [`ninja_probe::set_metrics`] is on, and
    /// accumulate from pool creation; diff two snapshots with
    /// [`ninja_probe::PoolMetrics::delta`] to isolate one region of
    /// interest (the harness brackets each measured variant this way).
    pub fn metrics(&self) -> ninja_probe::PoolMetrics {
        let c = &self.shared.counters;
        ninja_probe::PoolMetrics {
            threads: self.num_threads,
            at_ns: c.epoch.elapsed().as_nanos() as u64,
            // ORDERING: a racy snapshot by design — callers diff snapshots
            // taken around a quiescent point (after a region's join).
            regions: c.regions.load(Ordering::Relaxed),
            joins: c.joins.load(Ordering::Relaxed),
            steals: c.steals.load(Ordering::Relaxed),
            workers: c
                .lanes
                .iter()
                .map(|l| ninja_probe::WorkerStats {
                    // ORDERING: same racy-snapshot contract as above.
                    tasks: l.tasks.load(Ordering::Relaxed),
                    chunks: l.chunks.load(Ordering::Relaxed),
                    busy_ns: l.busy_ns.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// Calls `body` on every element of `items`, in parallel, with dynamic
    /// chunk scheduling (`grain` elements per chunk).
    ///
    /// Convenience wrapper over [`ThreadPool::parallel_for`] for read-only
    /// sweeps (use [`crate::par_chunks_mut`] to write).
    pub fn parallel_for_each<T, F>(&self, items: &[T], grain: usize, body: F)
    where
        T: Sync,
        F: Fn(usize, &T) + Sync,
    {
        self.parallel_for(0..items.len(), grain, |range| {
            for i in range {
                body(i, &items[i]);
            }
        });
    }

    /// Runs two closures, potentially in parallel, returning both results.
    ///
    /// The second closure is offered to the pool; the caller runs the first
    /// and then claims the second back if no worker has started it (the
    /// common case on an idle pool), or waits for the thief to finish.
    ///
    /// The waiter deliberately does **not** execute unrelated queued jobs:
    /// executing an arbitrary job while blocked nests that job's entire
    /// subtree on the current stack, and with a FIFO queue the nesting
    /// depth is bounded only by the number of outstanding jobs — deeply
    /// recursive `join` trees (e.g. parallel merge sort) overflow the
    /// stack. Claim-back already guarantees progress without helping.
    ///
    /// # Panics
    ///
    /// Propagates a panic from either closure.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        let metrics_on = ninja_probe::metrics_enabled();
        if metrics_on {
            // ORDERING: monotonic stats counter; read only in snapshots.
            self.shared.counters.joins.fetch_add(1, Ordering::Relaxed);
        }
        if self.num_threads <= 1 {
            return (a(), b());
        }
        // Two references: one for the queue entry, one for this frame.
        let shared = Box::into_raw(Box::new(SharedOnce {
            job: OnceJob::new(b),
            refs: AtomicUsize::new(2),
        }));
        self.shared.push(JobRef {
            data: shared as *const (),
            exec: exec_once::<B, RB>,
        });
        let ra = a();
        // SAFETY: we hold one reference until release below.
        let job = unsafe { &(*shared).job };
        // Claim b back if nobody started it; otherwise wait for the thief.
        if !job.try_run() {
            if metrics_on {
                // ORDERING: monotonic stats counter; read only in snapshots.
                self.shared.counters.steals.fetch_add(1, Ordering::Relaxed);
            }
            let mut spins = 0u32;
            while !job.is_done() {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
        let rb = job.take_result();
        // SAFETY: releasing this frame's reference.
        unsafe { release_shared_once::<B, RB>(shared as *const ()) };
        (ra, rb)
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.num_threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::with_threads(1);
        let mut hits = vec![false; 50];
        let cell = Mutex::new(&mut hits);
        pool.parallel_for(0..50, 7, |r| {
            let mut guard = cell.lock();
            for i in r {
                guard[i] = true;
            }
        });
        assert!(hits.iter().all(|&h| h));
    }

    #[test]
    fn parallel_for_covers_every_index_exactly_once() {
        let pool = ThreadPool::with_threads(4);
        let counts: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(0..1000, 13, |r| {
            for i in r {
                // ORDERING: parallel_for's join orders these test counters.
                counts[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        // ORDERING: read after the region's join; no concurrent writers left.
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_empty_range_is_noop() {
        let pool = ThreadPool::with_threads(2);
        pool.parallel_for(5..5, 4, |_| panic!("must not run"));
    }

    #[test]
    fn parallel_for_grain_zero_treated_as_one() {
        let pool = ThreadPool::with_threads(2);
        let n = AtomicUsize::new(0);
        pool.parallel_for(0..10, 0, |r| {
            assert_eq!(r.len(), 1);
            // ORDERING: parallel_for's join orders this test counter.
            n.fetch_add(1, Ordering::Relaxed);
        });
        // ORDERING: read after the region's join; no concurrent writers left.
        assert_eq!(n.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn reduce_sums_correctly() {
        let pool = ThreadPool::with_threads(3);
        let total = pool.parallel_reduce(
            0..10_000,
            97,
            0u64,
            |r| r.map(|i| i as u64).sum(),
            |a, b| a + b,
        );
        assert_eq!(total, (0..10_000u64).sum());
    }

    #[test]
    fn reduce_empty_range_yields_identity() {
        let pool = ThreadPool::with_threads(2);
        let v = pool.parallel_reduce(3..3, 8, 42i32, |_| panic!("no chunks"), |a, b| a + b);
        assert_eq!(v, 42);
    }

    #[test]
    fn for_each_visits_every_item_once() {
        let pool = ThreadPool::with_threads(3);
        let items: Vec<u32> = (0..500).collect();
        let hits: Vec<AtomicUsize> = (0..items.len()).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for_each(&items, 17, |i, &v| {
            assert_eq!(v as usize, i);
            // ORDERING: parallel_for's join orders this test counter.
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        // ORDERING: read after the region's join; no concurrent writers left.
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn join_returns_both_results() {
        let pool = ThreadPool::with_threads(2);
        let (a, b) = pool.join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_single_thread() {
        let pool = ThreadPool::with_threads(1);
        let (a, b) = pool.join(|| 5, || 6);
        assert_eq!((a, b), (5, 6));
    }

    #[test]
    fn claimed_back_join_refs_are_harmless() {
        // Regression: a claimed-back join leaves its JobRef in the queue;
        // the entry must stay valid (refcounted) until a worker pops it,
        // even long after the join frame returned.
        let pool = ThreadPool::with_threads(2);
        for i in 0..2_000u64 {
            let (a, b) = pool.join(move || i, move || i + 1);
            assert_eq!((a, b), (i, i + 1));
        }
        // Force the workers to drain any stale queued refs.
        let n = AtomicUsize::new(0);
        pool.parallel_for(0..256, 1, |_| {
            // ORDERING: parallel_for's join orders this test counter.
            n.fetch_add(1, Ordering::Relaxed);
        });
        // ORDERING: read after the region's join; no concurrent writers left.
        assert_eq!(n.load(Ordering::Relaxed), 256);
    }

    #[test]
    fn nested_joins_recursive_fib() {
        fn fib(pool: &ThreadPool, n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = pool.join(|| fib(pool, n - 1), || fib(pool, n - 2));
            a + b
        }
        let pool = ThreadPool::with_threads(4);
        assert_eq!(fib(&pool, 16), 987);
    }

    #[test]
    fn panic_in_parallel_for_propagates() {
        let pool = ThreadPool::with_threads(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(0..8, 1, |r| {
                if r.start == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // Pool must still be usable afterwards.
        let n = AtomicUsize::new(0);
        pool.parallel_for(0..4, 1, |_| {
            // ORDERING: parallel_for's join orders this test counter.
            n.fetch_add(1, Ordering::Relaxed);
        });
        // ORDERING: read after the region's join; no concurrent writers left.
        assert_eq!(n.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn panic_in_join_propagates() {
        let pool = ThreadPool::with_threads(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.join(|| 1, || -> i32 { panic!("boom") })
        }));
        assert!(result.is_err());
    }

    /// Extracts the human-readable message from a caught panic payload.
    fn payload_message(payload: &(dyn std::any::Any + Send)) -> &str {
        payload
            .downcast_ref::<&'static str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("<non-string payload>")
    }

    #[test]
    fn parallel_for_preserves_panic_payload() {
        let pool = ThreadPool::with_threads(4);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(0..64, 1, |r| {
                if r.start == 17 {
                    panic!("chunk {} exploded", r.start);
                }
            });
        }))
        .unwrap_err();
        assert_eq!(payload_message(err.as_ref()), "chunk 17 exploded");
    }

    #[test]
    fn join_preserves_panic_payload_from_stolen_task() {
        let pool = ThreadPool::with_threads(2);
        for _ in 0..50 {
            let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.join(
                    || std::thread::sleep(Duration::from_micros(50)),
                    || -> i32 { panic!("task b failed: code 42") },
                )
            }))
            .unwrap_err();
            assert_eq!(payload_message(err.as_ref()), "task b failed: code 42");
        }
    }

    #[test]
    fn pool_runs_correctly_after_many_panics() {
        let pool = ThreadPool::with_threads(3);
        for round in 0..20 {
            let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.parallel_for(0..32, 1, |r| {
                    if r.start % 5 == round % 5 {
                        panic!("round {round}");
                    }
                });
            }));
            let n = AtomicUsize::new(0);
            pool.parallel_for(0..100, 7, |r| {
                // ORDERING: parallel_for's join orders this test counter.
                n.fetch_add(r.len(), Ordering::Relaxed);
            });
            // ORDERING: read after the region's join.
            assert_eq!(n.load(Ordering::Relaxed), 100);
        }
    }

    #[test]
    fn concurrent_joins_reraise_panics_to_their_own_callers() {
        // Several OS threads share one pool; panicking joins must re-raise
        // in the caller that submitted them, never a bystander, and clean
        // joins interleaved on the same pool must keep returning correct
        // values.
        let pool = Arc::new(ThreadPool::with_threads(4));
        let mut handles = Vec::new();
        for t in 0..6usize {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for round in 0..40usize {
                    if (t + round) % 2 == 0 {
                        let (a, b) = pool.join(|| t * 1000 + round, || round * 7);
                        assert_eq!(a, t * 1000 + round);
                        assert_eq!(b, round * 7);
                    } else {
                        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            pool.join(std::thread::yield_now, || -> usize {
                                panic!("caller {t} round {round}")
                            })
                        }))
                        .unwrap_err();
                        assert_eq!(
                            payload_message(err.as_ref()),
                            format!("caller {t} round {round}")
                        );
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn pool_usable_immediately_after_panicked_parallel_for_under_load() {
        // A panicked parallel_for must leave the pool ready for the very
        // next region with no settling delay, even while another thread
        // keeps clean work flowing through the same workers.
        let pool = Arc::new(ThreadPool::with_threads(4));
        let stop = Arc::new(AtomicBool::new(false));
        let bg = {
            let pool = Arc::clone(&pool);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut rounds = 0u64;
                // ORDERING: advisory stop flag; the thread join below is the
                // real synchronization point.
                while !stop.load(Ordering::Relaxed) {
                    let sum = pool.parallel_reduce(
                        0..256,
                        16,
                        0usize,
                        |r| r.sum::<usize>(),
                        |a, b| a + b,
                    );
                    assert_eq!(sum, (0..256).sum());
                    rounds += 1;
                }
                rounds
            })
        };
        for round in 0..25 {
            let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.parallel_for(0..64, 1, |r| {
                    if r.start == 31 {
                        panic!("round {round}");
                    }
                });
            }))
            .unwrap_err();
            assert_eq!(payload_message(err.as_ref()), format!("round {round}"));
            // Immediately reuse the pool — no sleep, no settling.
            let n = AtomicUsize::new(0);
            pool.parallel_for(0..64, 3, |r| {
                // ORDERING: parallel_for's join orders this test counter.
                n.fetch_add(r.len(), Ordering::Relaxed);
            });
            // ORDERING: read after the region's join.
            assert_eq!(n.load(Ordering::Relaxed), 64);
        }
        // ORDERING: advisory stop flag; the join below synchronizes.
        stop.store(true, Ordering::Relaxed);
        let bg_rounds = bg.join().unwrap();
        assert!(bg_rounds > 0, "background load never ran");
    }

    #[test]
    fn global_pool_is_singleton() {
        let a = ThreadPool::global() as *const _;
        let b = ThreadPool::global() as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn many_sequential_regions_reuse_workers() {
        let pool = ThreadPool::with_threads(3);
        for round in 0..100 {
            let sum = pool.parallel_reduce(
                0..128,
                16,
                0usize,
                |r| r.sum::<usize>() + round - round,
                |a, b| a + b,
            );
            assert_eq!(sum, (0..128).sum());
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = ThreadPool::with_threads(0);
    }

    #[test]
    fn debug_format_mentions_threads() {
        let pool = ThreadPool::with_threads(2);
        assert!(format!("{pool:?}").contains("num_threads"));
    }
}
