//! Round-trip test for the Chrome trace export: spans recorded across
//! several threads must export as parseable `trace_event` JSON in which
//! every `"B"` event has a matching `"E"` and timestamps are monotone
//! non-decreasing per `tid`.
//!
//! The whole scenario lives in one `#[test]` because the tracer sink is
//! process-global; a single test per process keeps it deterministic.

use ninja_probe::{chrome_trace_json, take_events, validate_events, Phase};
use serde::Value;

fn num(v: &Value) -> f64 {
    match v {
        Value::Num(n) => n.raw.parse().unwrap(),
        other => panic!("expected number, got {other:?}"),
    }
}

fn text(v: &Value) -> &str {
    match v {
        Value::Str(s) => s,
        other => panic!("expected string, got {other:?}"),
    }
}

#[test]
fn spans_roundtrip_through_chrome_json() {
    ninja_probe::set_tracing(true);
    ninja_probe::clear_events();

    {
        let _suite = ninja_probe::span("suite");
        for kernel in ["alpha", "beta"] {
            let _k = ninja_probe::span(&format!("kernel:{kernel}"));
            let handles: Vec<_> = (0..3)
                .map(|w| {
                    std::thread::Builder::new()
                        .name(format!("rt-worker-{w}"))
                        .spawn(move || {
                            for rep in 0..4 {
                                let _r = ninja_probe::span(&format!("rep:{rep}"));
                                ninja_probe::instant("tick");
                                std::hint::black_box(rep);
                            }
                        })
                        .unwrap()
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        }
    }
    ninja_probe::set_tracing(false);

    let events = take_events();
    assert!(
        events
            .iter()
            .any(|e| e.name == "suite" && e.ph == Phase::Begin),
        "suite span missing"
    );
    // Structural invariants on the in-memory events.
    validate_events(&events).expect("B/E matching and per-tid monotonicity");

    // And again on what actually lands in the file: parse the JSON back
    // and re-check B/E pairing and monotonicity from the parsed form.
    let json = chrome_trace_json(&events);
    let parsed: Value = serde_json::from_str(&json).expect("export must be valid JSON");
    let Value::Array(items) = parsed else {
        panic!("trace_event export must be a JSON array");
    };
    assert!(!items.is_empty());

    let mut stacks: std::collections::HashMap<i64, Vec<String>> = Default::default();
    let mut last_ts: std::collections::HashMap<i64, f64> = Default::default();
    let mut thread_names = 0usize;
    for item in &items {
        let ph = text(item.field("ph").unwrap()).to_owned();
        let tid = num(item.field("tid").unwrap()) as i64;
        if ph == "M" {
            assert_eq!(text(item.field("name").unwrap()), "thread_name");
            thread_names += 1;
            continue;
        }
        let name = text(item.field("name").unwrap()).to_owned();
        let ts = num(item.field("ts").unwrap());
        let prev = last_ts.entry(tid).or_insert(f64::NEG_INFINITY);
        assert!(
            ts >= *prev,
            "tid {tid}: ts {ts} went backwards (prev {prev})"
        );
        *prev = ts;
        match ph.as_str() {
            "B" => stacks.entry(tid).or_default().push(name),
            "E" => {
                let open = stacks
                    .entry(tid)
                    .or_default()
                    .pop()
                    .unwrap_or_else(|| panic!("E \"{name}\" with no open B on tid {tid}"));
                assert_eq!(open, name, "mismatched span nesting on tid {tid}");
            }
            "i" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for (tid, stack) in stacks {
        assert!(stack.is_empty(), "unclosed spans on tid {tid}: {stack:?}");
    }
    // Main thread + 6 spawned workers all got named lanes.
    assert!(thread_names >= 7, "only {thread_names} thread_name events");
}
