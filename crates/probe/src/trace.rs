//! Span/event tracer with Chrome `trace_event` JSON export.
//!
//! The model is deliberately small: `B`/`E` begin/end pairs (emitted by the
//! RAII [`Span`] guard) and `i` instant events, each stamped with a
//! microsecond timestamp from a process-global monotonic epoch and a small
//! integer thread lane id. Thread names are captured on first use of a lane
//! and exported as `M` (metadata) events so Perfetto labels worker rows
//! `ninja-worker-0`, `ninja-worker-1`, ... instead of bare numbers.
//!
//! Events from all threads funnel into one mutex-protected sink. That is
//! fine here: tracing is off by default, and when it is on the spans being
//! recorded (suite/kernel/variant/rep lifecycle, per-participant
//! `parallel_for` regions) are orders of magnitude longer than a lock.

use std::cell::Cell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Chrome `trace_event` phase of a recorded event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// `"B"` — duration begin.
    Begin,
    /// `"E"` — duration end.
    End,
    /// `"i"` — instant event.
    Instant,
    /// `"C"` — counter sample (Perfetto renders each `args` series as a
    /// value track, so a trace can show *why* a span is slow).
    Counter,
}

impl Phase {
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
            Phase::Counter => "C",
        }
    }
}

/// One recorded tracer event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    pub name: String,
    pub ph: Phase,
    /// Microseconds since the process-global trace epoch (monotonic).
    pub ts_us: f64,
    /// Small per-thread lane id (dense, assigned on first use).
    pub tid: u32,
    /// Named value series, exported as the Chrome `args` object. Only
    /// [`Phase::Counter`] events carry any; empty elsewhere (and kept
    /// off the JSON when empty).
    pub args: Vec<(String, f64)>,
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_us() -> f64 {
    epoch().elapsed().as_nanos() as f64 / 1000.0
}

static NEXT_TID: AtomicU32 = AtomicU32::new(0);
static SINK: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static THREAD_NAMES: Mutex<Vec<(u32, String)>> = Mutex::new(Vec::new());
/// Names of threads a supervisor abandoned mid-flight (watchdog timeouts,
/// serve executor replacement). Spans on these lanes may legitimately
/// never close.
static ABANDONED_NAMES: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Lock a global mutex, recovering the data if a panicking holder
/// poisoned it (the harness intentionally survives panics).
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    static TID: Cell<Option<u32>> = const { Cell::new(None) };
}

/// The calling thread's trace lane id, assigned densely on first use.
/// Also registers the OS thread name for `M` metadata export.
pub fn thread_id() -> u32 {
    TID.with(|c| {
        if let Some(t) = c.get() {
            return t;
        }
        // ORDERING: unique-id allocator; atomicity alone guarantees dense,
        // distinct ids and nothing sequences on it.
        let t = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        c.set(Some(t));
        let name = std::thread::current()
            .name()
            .map(str::to_owned)
            .unwrap_or_else(|| format!("thread-{t}"));
        lock_recover(&THREAD_NAMES).push((t, name));
        t
    })
}

fn push(ev: TraceEvent) {
    lock_recover(&SINK).push(ev);
}

/// RAII span guard: emits a `B` event on creation (when tracing is
/// enabled) and the matching `E` event on drop, on the same thread lane.
#[must_use = "a span measures the scope it is alive for; bind it to a variable"]
pub struct Span {
    name: Option<String>,
}

/// Open a span named `name` on the current thread. No-op (and
/// allocation-free) while tracing is disabled.
#[inline]
pub fn span(name: &str) -> Span {
    if !crate::tracing_enabled() {
        return Span { name: None };
    }
    push(TraceEvent {
        name: name.to_owned(),
        ph: Phase::Begin,
        ts_us: now_us(),
        tid: thread_id(),
        args: Vec::new(),
    });
    Span {
        name: Some(name.to_owned()),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            push(TraceEvent {
                name,
                ph: Phase::End,
                ts_us: now_us(),
                tid: thread_id(),
                args: Vec::new(),
            });
        }
    }
}

/// Record an instant (`i`) event. No-op while tracing is disabled.
#[inline]
pub fn instant(name: &str) {
    if !crate::tracing_enabled() {
        return;
    }
    push(TraceEvent {
        name: name.to_owned(),
        ph: Phase::Instant,
        ts_us: now_us(),
        tid: thread_id(),
        args: Vec::new(),
    });
}

/// Record a counter (`C`) sample: one event whose named series Perfetto
/// draws as per-track value graphs under the thread's lane. No-op while
/// tracing is disabled; non-finite values are dropped (Chrome JSON has
/// no NaN).
#[inline]
pub fn counter(name: &str, series: &[(&str, f64)]) {
    if !crate::tracing_enabled() {
        return;
    }
    let args: Vec<(String, f64)> = series
        .iter()
        .filter(|(_, v)| v.is_finite())
        .map(|&(k, v)| (k.to_owned(), v))
        .collect();
    if args.is_empty() {
        return;
    }
    push(TraceEvent {
        name: name.to_owned(),
        ph: Phase::Counter,
        ts_us: now_us(),
        tid: thread_id(),
        args,
    });
}

/// Drain and return every event recorded so far, oldest first.
pub fn take_events() -> Vec<TraceEvent> {
    std::mem::take(&mut *lock_recover(&SINK))
}

/// Discard all recorded events without returning them.
pub fn clear_events() {
    lock_recover(&SINK).clear();
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Render events as a Chrome `trace_event` JSON array (the "JSON Array
/// Format": a bare `[...]` of event objects), loadable in Perfetto and
/// `chrome://tracing`. Thread-name `M` metadata events for every lane
/// seen so far are prepended so worker rows are labelled.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let names = lock_recover(&THREAD_NAMES).clone();
    let mut out = String::with_capacity(64 + events.len() * 80);
    out.push_str("[\n");
    let mut first = true;
    for (tid, name) in &names {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
        let _ = write!(out, "{tid}");
        out.push_str(",\"args\":{\"name\":\"");
        escape_json(name, &mut out);
        out.push_str("\"}}");
    }
    for ev in events {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("{\"name\":\"");
        escape_json(&ev.name, &mut out);
        let _ = write!(
            out,
            "\",\"cat\":\"ninja\",\"ph\":\"{}\",\"ts\":{:.3},\"pid\":1,\"tid\":{}",
            ev.ph.as_str(),
            ev.ts_us,
            ev.tid
        );
        if ev.ph == Phase::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        if !ev.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (key, value)) in ev.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_json(key, &mut out);
                let _ = write!(out, "\":{value}");
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

/// Mark the thread named `name` as abandoned by its supervisor: a
/// watchdog gave up waiting on it (or a serve executor was replaced), so
/// any span it had open when abandoned will never see its `E` event.
/// [`validate_events`] skips lanes registered here instead of reporting
/// their unclosed spans as B/E-pairing bugs.
pub fn mark_thread_abandoned(name: &str) {
    lock_recover(&ABANDONED_NAMES).push(name.to_owned());
}

/// Clear the abandoned-thread registry (test isolation).
pub fn clear_abandoned_threads() {
    lock_recover(&ABANDONED_NAMES).clear();
}

/// The trace lane ids whose registered thread name has been marked
/// abandoned via [`mark_thread_abandoned`].
fn abandoned_tids() -> Vec<u32> {
    let abandoned = lock_recover(&ABANDONED_NAMES);
    if abandoned.is_empty() {
        return Vec::new();
    }
    lock_recover(&THREAD_NAMES)
        .iter()
        .filter(|(_, name)| abandoned.iter().any(|a| a == name))
        .map(|&(tid, _)| tid)
        .collect()
}

/// Structural validation used by tests and the smoke pipeline: every `B`
/// must have a matching same-name `E` on the same lane (proper nesting),
/// and timestamps must be monotone non-decreasing per lane. Lanes whose
/// thread was [marked abandoned](mark_thread_abandoned) are exempt: a
/// watchdog-abandoned thread legitimately leaves its last span open.
pub fn validate_events(events: &[TraceEvent]) -> Result<(), String> {
    use std::collections::HashMap;
    let abandoned = abandoned_tids();
    let mut stacks: HashMap<u32, Vec<&str>> = HashMap::new();
    let mut last_ts: HashMap<u32, f64> = HashMap::new();
    for (i, ev) in events.iter().enumerate() {
        if abandoned.contains(&ev.tid) {
            continue;
        }
        if let Some(prev) = last_ts.get(&ev.tid) {
            if ev.ts_us < *prev {
                return Err(format!(
                    "event {i} ({}): ts {} < previous ts {} on tid {}",
                    ev.name, ev.ts_us, prev, ev.tid
                ));
            }
        }
        last_ts.insert(ev.tid, ev.ts_us);
        match ev.ph {
            Phase::Begin => stacks.entry(ev.tid).or_default().push(&ev.name),
            Phase::End => match stacks.entry(ev.tid).or_default().pop() {
                Some(open) if open == ev.name => {}
                Some(open) => {
                    return Err(format!(
                        "event {i}: E \"{}\" closes open span \"{open}\" on tid {}",
                        ev.name, ev.tid
                    ));
                }
                None => {
                    return Err(format!(
                        "event {i}: E \"{}\" with no open span on tid {}",
                        ev.name, ev.tid
                    ));
                }
            },
            // Instants and counter samples are point events: nothing to
            // pair, only the per-lane monotonicity above applies.
            Phase::Instant | Phase::Counter => {}
        }
    }
    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("unclosed span \"{open}\" on tid {tid}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let _guard = crate::TEST_LOCK.lock().unwrap();
        crate::set_tracing(false);
        clear_events();
        {
            let _s = span("ghost");
            instant("ghost-instant");
        }
        assert!(take_events().is_empty());
    }

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        let mut out = String::new();
        escape_json("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn validator_rejects_unmatched_begin() {
        let evs = vec![TraceEvent {
            name: "open".into(),
            ph: Phase::Begin,
            ts_us: 1.0,
            tid: 0,
            args: Vec::new(),
        }];
        assert!(validate_events(&evs).unwrap_err().contains("unclosed"));
    }

    #[test]
    fn abandoned_lane_is_exempt_from_pairing() {
        let _guard = crate::TEST_LOCK.lock().unwrap();
        crate::set_tracing(true);
        clear_events();
        clear_abandoned_threads();
        // A named thread opens a span it never closes — exactly what a
        // watchdog-abandoned variant thread does.
        std::thread::Builder::new()
            .name("watchdog-test-victim".into())
            .spawn(|| {
                let s = span("stuck-work");
                std::mem::forget(s);
            })
            .unwrap()
            .join()
            .unwrap();
        let events = take_events();
        crate::set_tracing(false);
        // Without the abandonment tag this is a pairing bug...
        assert!(validate_events(&events).unwrap_err().contains("unclosed"));
        // ...with it, the lane is exempt.
        mark_thread_abandoned("watchdog-test-victim");
        validate_events(&events).unwrap();
        clear_abandoned_threads();
        // Other lanes are still validated strictly.
        mark_thread_abandoned("some-other-thread");
        assert!(validate_events(&events).is_err());
        clear_abandoned_threads();
    }

    #[test]
    fn validator_rejects_time_travel() {
        let mk = |ph, ts| TraceEvent {
            name: "x".into(),
            ph,
            ts_us: ts,
            tid: 0,
            args: Vec::new(),
        };
        let evs = vec![mk(Phase::Begin, 5.0), mk(Phase::End, 4.0)];
        assert!(validate_events(&evs).unwrap_err().contains("previous ts"));
    }

    #[test]
    fn counter_events_carry_args_and_pass_validation() {
        let _guard = crate::TEST_LOCK.lock().unwrap();
        crate::set_tracing(true);
        clear_events();
        counter("worker counters", &[("busy_ns", 1234.0), ("ipc", 1.85)]);
        counter("dropped", &[("nan", f64::NAN)]); // non-finite: no event
        counter("empty", &[]); // no series: no event
        let events = take_events();
        crate::set_tracing(false);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].ph, Phase::Counter);
        assert_eq!(events[0].args.len(), 2);
        // A lone C event needs no matching end and validates clean.
        validate_events(&events).unwrap();
        let json = chrome_trace_json(&events);
        assert!(json.contains("\"ph\":\"C\""), "{json}");
        assert!(
            json.contains("\"args\":{\"busy_ns\":1234,\"ipc\":1.85}"),
            "{json}"
        );
    }

    #[test]
    fn disabled_tracer_skips_counters() {
        let _guard = crate::TEST_LOCK.lock().unwrap();
        crate::set_tracing(false);
        clear_events();
        counter("ghost", &[("v", 1.0)]);
        assert!(take_events().is_empty());
    }
}
