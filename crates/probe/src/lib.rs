//! ninja-probe: the observability layer for the Ninja-gap reproduction.
//!
//! Everything in this crate is std-only and safe to link from the lowest
//! layers of the workspace (`ninja-parallel` instruments its worker loop
//! with it). Two independent facilities live here, each behind its own
//! runtime flag so the disabled path costs one relaxed atomic load:
//!
//! * **Span tracing** ([`span`], [`instant`], [`take_events`]): a global
//!   event sink recording `B`/`E` begin/end pairs with microsecond
//!   timestamps and small per-thread lane ids, exportable as Chrome
//!   `trace_event` JSON ([`chrome_trace_json`]) that loads directly in
//!   Perfetto or `chrome://tracing`.
//! * **Pool metrics** ([`PoolMetrics`], [`WorkerStats`]): the snapshot
//!   vocabulary the thread pool aggregates its relaxed-atomic per-worker
//!   counters into. The types live here (not in `ninja-parallel`) so that
//!   `ninja-core` can attach them to measured cells without depending on
//!   pool internals.
//! * **Hardware counters** ([`counters`], re-exported from
//!   `ninja-counters`, behind [`counters_enabled`]): per-thread
//!   `perf_event_open` groups windowed around measured reps and pool
//!   tasks, degrading to `CounterStatus::Unavailable(reason)` wherever
//!   perf is not permitted.
//!
//! ## Overhead contract
//!
//! With both flags off (the default), instrumented code paths perform a
//! single `Relaxed` boolean load and branch — no allocation, no locking,
//! no time sampling. `crates/parallel/tests/metrics.rs` enforces this
//! with an overhead test comparing instrumented-but-disabled
//! `parallel_for` against its own baseline.

mod metrics;
mod trace;

/// Hardware performance-counter windows (`ninja-counters`), re-exported
/// so the rest of the stack reaches them as `ninja_probe::counters::*`
/// without a separate dependency edge.
pub use ninja_counters as counters;

pub use metrics::{PoolMetrics, WorkerStats};
pub use trace::{
    chrome_trace_json, clear_abandoned_threads, clear_events, counter, instant,
    mark_thread_abandoned, span, take_events, thread_id, validate_events, Phase, Span, TraceEvent,
};

use std::sync::atomic::{AtomicBool, Ordering};

static TRACING: AtomicBool = AtomicBool::new(false);
static METRICS: AtomicBool = AtomicBool::new(false);
static COUNTERS: AtomicBool = AtomicBool::new(false);

/// Is the span tracer recording? Relaxed load; safe to call on hot paths.
#[inline]
pub fn tracing_enabled() -> bool {
    // ORDERING: advisory on/off flag; a stale read merely records or skips
    // one extra event, and callers toggle it only at measurement boundaries.
    TRACING.load(Ordering::Relaxed)
}

/// Switch the span tracer on or off at runtime.
pub fn set_tracing(on: bool) {
    // ORDERING: advisory flag, see `tracing_enabled`.
    TRACING.store(on, Ordering::Relaxed);
}

/// Are pool metrics counters active? Relaxed load; safe on hot paths.
#[inline]
pub fn metrics_enabled() -> bool {
    // ORDERING: advisory on/off flag; a stale read merely counts or skips
    // one extra sample, and callers toggle it only at measurement boundaries.
    METRICS.load(Ordering::Relaxed)
}

/// Switch pool metrics collection on or off at runtime.
pub fn set_metrics(on: bool) {
    // ORDERING: advisory flag, see `metrics_enabled`.
    METRICS.store(on, Ordering::Relaxed);
}

/// Are hardware-counter windows requested? Relaxed load; safe on hot
/// paths. The flag expresses *intent* — whether the host can actually
/// open counters is a per-thread [`counters::CounterStatus`].
#[inline]
pub fn counters_enabled() -> bool {
    // ORDERING: advisory on/off flag; a stale read merely opens or skips
    // one counter window, and callers toggle it only at startup.
    COUNTERS.load(Ordering::Relaxed)
}

/// Switch hardware-counter windows on or off at runtime.
pub fn set_counters(on: bool) {
    // ORDERING: advisory flag, see `counters_enabled`.
    COUNTERS.store(on, Ordering::Relaxed);
}

/// Unit tests in this binary share the process-global flags and sink;
/// the ones that touch them serialize on this lock.
#[cfg(test)]
pub(crate) static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_default_off_and_toggle() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_tracing(true);
        set_metrics(true);
        set_counters(true);
        assert!(tracing_enabled());
        assert!(metrics_enabled());
        assert!(counters_enabled());
        set_tracing(false);
        set_metrics(false);
        set_counters(false);
        assert!(!counters_enabled());
    }
}
