//! Snapshot vocabulary for thread-pool utilization metrics.
//!
//! `ninja-parallel` maintains relaxed-atomic per-worker counters and
//! renders them into these plain structs on demand. Snapshots are
//! cumulative since pool creation; callers that want the cost of one
//! region (the harness measures one variant at a time) take a snapshot
//! before and after and call [`PoolMetrics::delta`].

use ninja_counters::CounterSample;

/// Cumulative counters for one pool participant. Lane 0 is the thread
/// that calls into the pool (the harness thread); lanes `1..=N` are the
/// pool's worker threads.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Jobs this lane executed, from any source (own deque, injector, or
    /// theft).
    pub tasks: u64,
    /// `parallel_for` chunks this participant claimed and ran.
    pub chunks: u64,
    /// Nanoseconds this participant spent inside pool work
    /// (`parallel_for` chunk loops, executed jobs).
    pub busy_ns: u64,
    /// Jobs popped from this lane's own deque (the LIFO fast path).
    pub local_pops: u64,
    /// Jobs taken from the shared overflow injector.
    pub injector_pops: u64,
    /// Jobs stolen from another worker's deque.
    pub steals: u64,
    /// Nanoseconds this lane spent parked on the pool's idle condvar.
    pub parked_ns: u64,
    /// Hardware-counter totals over jobs this lane popped from its own
    /// deque (the LIFO cache-warm path). Only the event counts are
    /// populated — the time fields stay zero, so per-source rates come
    /// from ratios (IPC, miss rate), not bandwidth. All-zero when
    /// hardware counters were off or unavailable.
    pub local_window: CounterSample,
    /// Hardware-counter totals over jobs this lane stole from another
    /// worker's deque (the cache-cold path). Same population rules as
    /// [`WorkerStats::local_window`].
    pub steal_window: CounterSample,
}

/// A point-in-time aggregation of the pool's instrumentation counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PoolMetrics {
    /// Participant count: caller lane + worker threads.
    pub threads: usize,
    /// Monotonic nanoseconds since the pool's counters were created. In a
    /// [`delta`](Self::delta) this becomes the window's wall-clock length.
    pub at_ns: u64,
    /// `parallel_for` / `parallel_reduce` regions entered.
    pub regions: u64,
    /// `join` calls executed.
    pub joins: u64,
    /// Jobs taken from another worker's deque (sum of the per-lane
    /// [`WorkerStats::steals`] — cross-worker deque thefts only, not
    /// injector pops or join claim-backs).
    pub steals: u64,
    /// Per-participant counters, indexed by lane.
    pub workers: Vec<WorkerStats>,
}

impl PoolMetrics {
    /// Counter-wise `self - earlier`, for isolating one measured window
    /// out of cumulative snapshots.
    ///
    /// **Counter-window semantics.** Every field is a *monotonic*
    /// counter over one pool's lifetime: within a single pool, a later
    /// snapshot is field-wise ≥ an earlier one, so the subtraction is
    /// exact for any correctly-ordered bracket — including the hardware-
    /// counter windows that bracket per-worker steal-path/local-pop
    /// attribution around a measured variant. The counters only "reset"
    /// by belonging to a *different* pool (a rebuilt `ThreadPool` starts
    /// from zero); for that case, and for swapped operands, each field
    /// saturates to zero (`saturating_sub`, never a wrapping subtraction
    /// that would smuggle a near-`u64::MAX` garbage delta downstream).
    /// A window delta therefore can never report a negative (wrapped)
    /// value: the worst failure mode of a mismatched bracket is an
    /// empty window.
    pub fn delta(&self, earlier: &PoolMetrics) -> PoolMetrics {
        let workers = self
            .workers
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let e = earlier.workers.get(i).cloned().unwrap_or_default();
                WorkerStats {
                    tasks: w.tasks.saturating_sub(e.tasks),
                    chunks: w.chunks.saturating_sub(e.chunks),
                    busy_ns: w.busy_ns.saturating_sub(e.busy_ns),
                    local_pops: w.local_pops.saturating_sub(e.local_pops),
                    injector_pops: w.injector_pops.saturating_sub(e.injector_pops),
                    steals: w.steals.saturating_sub(e.steals),
                    parked_ns: w.parked_ns.saturating_sub(e.parked_ns),
                    local_window: w.local_window.saturating_sub(&e.local_window),
                    steal_window: w.steal_window.saturating_sub(&e.steal_window),
                }
            })
            .collect();
        PoolMetrics {
            threads: self.threads,
            at_ns: self.at_ns.saturating_sub(earlier.at_ns),
            regions: self.regions.saturating_sub(earlier.regions),
            joins: self.joins.saturating_sub(earlier.joins),
            steals: self.steals.saturating_sub(earlier.steals),
            workers,
        }
    }

    pub fn total_busy_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_ns).sum()
    }

    pub fn total_chunks(&self) -> u64 {
        self.workers.iter().map(|w| w.chunks).sum()
    }

    pub fn total_tasks(&self) -> u64 {
        self.workers.iter().map(|w| w.tasks).sum()
    }

    /// Load-imbalance ratio: max participant busy time over the mean busy
    /// time of participants that did any work. `1.0` is perfectly
    /// balanced; large values mean one straggler held the region open.
    /// Returns `1.0` when fewer than two participants were active.
    pub fn imbalance_ratio(&self) -> f64 {
        let active: Vec<u64> = self
            .workers
            .iter()
            .map(|w| w.busy_ns)
            .filter(|&b| b > 0)
            .collect();
        if active.len() < 2 {
            return 1.0;
        }
        let max = *active.iter().max().expect("non-empty") as f64;
        let mean = active.iter().sum::<u64>() as f64 / active.len() as f64;
        if mean <= 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Fraction of the window's aggregate thread-time spent *not* doing
    /// pool work: `1 - total_busy / (threads * wall)`. Meaningful on a
    /// [`delta`](Self::delta) whose `at_ns` is the window length; clamped
    /// to `[0, 1]`. Returns `0.0` for an empty window.
    pub fn idle_fraction(&self) -> f64 {
        let capacity = self.threads as f64 * self.at_ns as f64;
        if capacity <= 0.0 {
            return 0.0;
        }
        (1.0 - self.total_busy_ns() as f64 / capacity).clamp(0.0, 1.0)
    }

    /// Of the jobs lanes executed, the fraction that arrived by stealing
    /// from another worker's deque. `0.0` when no jobs ran — either the
    /// window was pure `parallel_for` chunking (which schedules through an
    /// atomic counter, not the deques) or the pool was idle.
    pub fn steal_ratio(&self) -> f64 {
        let tasks = self.total_tasks();
        if tasks == 0 {
            return 0.0;
        }
        self.workers.iter().map(|w| w.steals).sum::<u64>() as f64 / tasks as f64
    }

    /// Fraction of the window's aggregate thread-time spent parked on the
    /// idle condvar. Like [`idle_fraction`](Self::idle_fraction) this is
    /// meaningful on a [`delta`](Self::delta); clamped to `[0, 1]`.
    /// Parked time is a subset of idle time — the difference is spent
    /// spinning, yielding, and scanning for victims.
    pub fn parked_fraction(&self) -> f64 {
        let capacity = self.threads as f64 * self.at_ns as f64;
        if capacity <= 0.0 {
            return 0.0;
        }
        let parked: u64 = self.workers.iter().map(|w| w.parked_ns).sum();
        (parked as f64 / capacity).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(busy: &[u64], wall: u64) -> PoolMetrics {
        PoolMetrics {
            threads: busy.len(),
            at_ns: wall,
            workers: busy
                .iter()
                .map(|&b| WorkerStats {
                    busy_ns: b,
                    ..Default::default()
                })
                .collect(),
            ..Default::default()
        }
    }

    #[test]
    fn balanced_workers_have_unit_imbalance() {
        let m = metrics(&[100, 100, 100, 100], 100);
        assert!((m.imbalance_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn straggler_dominates_imbalance() {
        // One worker 100x busier: max=10000, mean=(10000+300)/4=2575.
        let m = metrics(&[10_000, 100, 100, 100], 10_000);
        assert!(m.imbalance_ratio() > 3.0, "{}", m.imbalance_ratio());
    }

    #[test]
    fn inactive_workers_do_not_dilute_imbalance() {
        let m = metrics(&[500, 500, 0, 0], 500);
        assert!((m.imbalance_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_fraction_counts_unused_capacity() {
        // 4 threads over 100ns = 400ns capacity, 100ns busy => 75% idle.
        let m = metrics(&[100, 0, 0, 0], 100);
        assert!((m.idle_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(metrics(&[], 0).idle_fraction(), 0.0);
    }

    #[test]
    fn delta_subtracts_counterwise() {
        let mut before = metrics(&[10, 20], 100);
        before.regions = 1;
        before.workers[0].steals = 2;
        before.workers[0].parked_ns = 40;
        let mut after = metrics(&[15, 45], 300);
        after.regions = 4;
        after.workers[0].steals = 7;
        after.workers[0].parked_ns = 100;
        let d = after.delta(&before);
        assert_eq!(d.at_ns, 200);
        assert_eq!(d.regions, 3);
        assert_eq!(d.workers[0].busy_ns, 5);
        assert_eq!(d.workers[1].busy_ns, 25);
        assert_eq!(d.workers[0].steals, 5);
        assert_eq!(d.workers[0].parked_ns, 60);
        // Swapped operands saturate instead of panicking.
        let swapped = before.delta(&after);
        assert_eq!(swapped.at_ns, 0);
    }

    #[test]
    fn delta_across_a_pool_reset_saturates_to_empty_not_wraps() {
        // A rebuilt pool restarts its monotonic counters from zero, so
        // "after" can be field-wise below "before". The window contract:
        // every such field saturates to an empty window — no wrapped
        // near-u64::MAX delta may ever reach the per-worker counter
        // attribution.
        let mut before = metrics(&[1_000, 2_000], 5_000);
        before.workers[0].tasks = 50;
        before.workers[0].steals = 9;
        before.steals = 9;
        let mut after = metrics(&[10, 0], 100); // fresh pool, tiny window
        after.workers[0].tasks = 1;
        let d = after.delta(&before);
        assert_eq!(d.workers[0].busy_ns, 0);
        assert_eq!(d.workers[0].tasks, 0);
        assert_eq!(d.workers[0].steals, 0);
        assert_eq!(d.steals, 0);
        assert_eq!(d.at_ns, 0);
        // The derived window statistics stay in range on the empty window.
        assert_eq!(d.steal_ratio(), 0.0);
        assert_eq!(d.idle_fraction(), 0.0);
    }

    #[test]
    fn delta_windows_per_source_counters_with_the_same_saturation() {
        let mut before = metrics(&[100, 100], 100);
        before.workers[1].steal_window = CounterSample {
            cycles: 1_000,
            instructions: 800,
            ..Default::default()
        };
        let mut after = metrics(&[200, 300], 300);
        after.workers[1].steal_window = CounterSample {
            cycles: 5_000,
            instructions: 3_200,
            ..Default::default()
        };
        after.workers[1].local_window = CounterSample {
            cycles: 2_000,
            instructions: 4_000,
            ..Default::default()
        };
        let d = after.delta(&before);
        assert_eq!(d.workers[1].steal_window.cycles, 4_000);
        assert_eq!(d.workers[1].steal_window.instructions, 2_400);
        assert_eq!(d.workers[1].local_window.instructions, 4_000);
        // Pool-reset bracket: the counter windows saturate empty too.
        let swapped = before.delta(&after);
        assert!(!swapped.workers[1].steal_window.any_counted());
    }

    #[test]
    fn delta_tolerates_worker_count_mismatch() {
        // Snapshots from pools with different lane counts (another
        // reset symptom): missing earlier lanes are treated as zero.
        let before = metrics(&[100], 50);
        let after = metrics(&[300, 40], 80);
        let d = after.delta(&before);
        assert_eq!(d.workers.len(), 2);
        assert_eq!(d.workers[0].busy_ns, 200);
        assert_eq!(d.workers[1].busy_ns, 40);
    }

    #[test]
    fn steal_ratio_is_stolen_share_of_executed_jobs() {
        let mut m = metrics(&[100, 100, 100], 100);
        assert_eq!(m.steal_ratio(), 0.0, "no jobs executed yet");
        m.workers[0].tasks = 6;
        m.workers[1].tasks = 2;
        m.workers[1].steals = 2;
        m.workers[2].tasks = 2;
        // 2 of 10 executed jobs were thefts.
        assert!((m.steal_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn parked_fraction_is_parked_share_of_capacity() {
        // 4 threads over 100ns = 400ns capacity; 100ns parked => 25%.
        let mut m = metrics(&[0, 0, 0, 0], 100);
        m.workers[1].parked_ns = 60;
        m.workers[2].parked_ns = 40;
        assert!((m.parked_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(metrics(&[], 0).parked_fraction(), 0.0);
    }
}
