//! Shared vocabulary of the benchmark suite: variants, sizes, validation,
//! and the type-erased instance interface consumed by the harness.

use ninja_parallel::ThreadPool;
use std::fmt;

/// Problem-size preset for a kernel instance.
///
/// The paper ran server-class sizes (e.g. one million bodies, 256M-element
/// sorts); this reproduction scales them to laptop class while keeping every
/// working set large enough to exercise the same cache/bandwidth regimes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum ProblemSize {
    /// Tiny inputs for unit tests (milliseconds per variant).
    Test,
    /// Default measurement size (fractions of a second per variant).
    #[default]
    Quick,
    /// The largest size this host can run in reasonable time; closest in
    /// spirit to the paper's inputs.
    Paper,
}

impl ProblemSize {
    /// All presets, smallest first.
    pub const ALL: [ProblemSize; 3] = [ProblemSize::Test, ProblemSize::Quick, ProblemSize::Paper];

    /// Short lowercase label (`test`, `quick`, `paper`).
    pub fn name(self) -> &'static str {
        match self {
            ProblemSize::Test => "test",
            ProblemSize::Quick => "quick",
            ProblemSize::Paper => "paper",
        }
    }

    /// Parses a label produced by [`ProblemSize::name`].
    pub fn from_name(name: &str) -> Option<ProblemSize> {
        ProblemSize::ALL.into_iter().find(|s| s.name() == name)
    }
}

impl fmt::Display for ProblemSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rung of the paper's optimization ladder.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Variant {
    /// Serial, scalar, parallelism-unaware code.
    Naive,
    /// Naive plus a `parallel_for` annotation (threads only).
    Parallel,
    /// Serial code restructured for compiler auto-vectorization.
    Simd,
    /// The paper's "low effort" endpoint: algorithmic changes (SoA,
    /// blocking, SIMD-friendly restructuring) plus threads plus compiler
    /// vectorization.
    Algorithmic,
    /// Hand-written SIMD intrinsics plus threads plus tuning.
    Ninja,
}

impl Variant {
    /// Every variant, in ladder order.
    pub const ALL: [Variant; 5] = [
        Variant::Naive,
        Variant::Parallel,
        Variant::Simd,
        Variant::Algorithmic,
        Variant::Ninja,
    ];

    /// Short lowercase label used on the command line and in reports.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Naive => "naive",
            Variant::Parallel => "parallel",
            Variant::Simd => "simd",
            Variant::Algorithmic => "algorithmic",
            Variant::Ninja => "ninja",
        }
    }

    /// Parses a label produced by [`Variant::name`].
    pub fn from_name(name: &str) -> Option<Variant> {
        Variant::ALL.into_iter().find(|v| v.name() == name)
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-kernel metadata for one variant.
#[derive(Copy, Clone, Debug)]
pub struct VariantInfo {
    /// Which rung of the ladder this is.
    pub variant: Variant,
    /// Approximate lines of code added/changed relative to the naive
    /// version — the paper's programming-effort metric (its Figure on
    /// effort compares exactly this).
    pub effort_loc: u32,
    /// One-line description of what was changed.
    pub what_changed: &'static str,
}

/// Roofline-style characterization of a kernel, consumed by `ninja-model`
/// to project results onto machines this host cannot measure.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Characterization {
    /// Useful arithmetic operations per output element.
    pub flops_per_elem: f64,
    /// Bytes moved to/from memory per output element (streaming estimate).
    pub bytes_per_elem: f64,
    /// Fraction of naive-code work the compiler can already vectorize
    /// without restructuring (usually 0: AoS layout or branches block it).
    pub naive_simd_frac: f64,
    /// Fraction of work the compiler can vectorize after the *low-effort
    /// restructuring* of the `Simd` tier (loop interchange, hoisted bounds)
    /// but before any real algorithmic change. Zero for kernels like
    /// search/sort/VR whose naive algorithm is inherently scalar.
    pub restructure_simd_frac: f64,
    /// Fraction of work that is vectorizable after the algorithmic changes.
    pub simd_friendly_frac: f64,
    /// Parallelizable fraction of total work (Amdahl).
    pub parallel_frac: f64,
    /// Gather (irregular load) operations per element — drives the paper's
    /// hardware gather/scatter programmability discussion.
    pub gather_per_elem: f64,
    /// Pure-algorithm speedup of the `Algorithmic` tier over naive that is
    /// *independent* of SIMD/threads (e.g. cache blocking, better asymptotic
    /// constant). 1.0 when the change only enables vectorization.
    pub algorithmic_factor: f64,
    /// SIMD efficiency loss from branch divergence in the Ninja version
    /// (1.0 = no divergence; volume rendering ≈ 0.6).
    pub simd_efficiency: f64,
}

/// Work accounting for a concrete instance, used to compute achieved
/// GFLOP/s and GB/s.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct Work {
    /// Total useful arithmetic operations for one run.
    pub flops: f64,
    /// Total bytes streamed for one run.
    pub bytes: f64,
    /// Number of output elements.
    pub elems: u64,
}

/// A variant produced an output that disagrees with the reference.
#[derive(Debug, Clone)]
pub struct ValidationError {
    /// Kernel name.
    pub kernel: &'static str,
    /// Variant that failed.
    pub variant: Variant,
    /// Human-readable mismatch description (worst element, error metric).
    pub detail: String,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kernel '{}' variant '{}' failed validation: {}",
            self.kernel, self.variant, self.detail
        )
    }
}

impl std::error::Error for ValidationError {}

/// A runnable, validated kernel instance (inputs already generated).
///
/// Implementations own their inputs and scratch space; `run` executes one
/// variant end-to-end and returns a checksum of the output so the optimizer
/// cannot dead-code-eliminate the work.
pub trait Instance: Send {
    /// Executes `variant` once, returning an output checksum.
    fn run(&mut self, variant: Variant, pool: &ThreadPool) -> f64;

    /// Executes `variant` and compares its full output against the
    /// reference implementation.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] describing the worst mismatch if the
    /// output differs beyond the kernel's documented tolerance.
    fn validate(&mut self, variant: Variant, pool: &ThreadPool) -> Result<(), ValidationError>;

    /// Flop/byte accounting for one `run`.
    fn work(&self) -> Work;
}

/// Static description of one benchmark: metadata, characterization, and an
/// instance factory.
pub struct KernelSpec {
    /// Kernel name as used in the paper (e.g. `"nbody"`).
    pub name: &'static str,
    /// One-line description of the computation.
    pub description: &'static str,
    /// Whether the kernel is compute-bound or bandwidth-bound at paper
    /// sizes (the paper's Table 1 column).
    pub bound: &'static str,
    /// Per-variant effort metadata, in [`Variant::ALL`] order.
    pub variants: [VariantInfo; 5],
    /// Roofline characterization for the machine model.
    pub character: Characterization,
    /// Builds a runnable instance with deterministic inputs for `seed`.
    pub make: fn(ProblemSize, u64) -> Box<dyn Instance>,
}

impl fmt::Debug for KernelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KernelSpec")
            .field("name", &self.name)
            .field("bound", &self.bound)
            .finish()
    }
}

/// Output buffers that can be checksummed and compared against a reference.
pub trait OutputData {
    /// Order-insensitive-ish checksum used to keep the optimizer honest.
    fn checksum(&self) -> f64;
    /// Largest relative mismatch vs `reference`, plus its position, or
    /// `None` if shapes differ.
    fn worst_error(&self, reference: &Self) -> Option<(f64, usize)>;
}

impl OutputData for Vec<f32> {
    fn checksum(&self) -> f64 {
        self.iter().map(|&x| x as f64).sum()
    }

    fn worst_error(&self, reference: &Self) -> Option<(f64, usize)> {
        if self.len() != reference.len() {
            return None;
        }
        let mut worst = (0.0f64, 0usize);
        for (i, (&a, &b)) in self.iter().zip(reference.iter()).enumerate() {
            let scale = (b.abs() as f64).max(1.0);
            let err = ((a - b).abs() as f64) / scale;
            if err > worst.0 {
                worst = (err, i);
            }
        }
        Some(worst)
    }
}

impl OutputData for Vec<f64> {
    fn checksum(&self) -> f64 {
        self.iter().sum()
    }

    fn worst_error(&self, reference: &Self) -> Option<(f64, usize)> {
        if self.len() != reference.len() {
            return None;
        }
        let mut worst = (0.0f64, 0usize);
        for (i, (&a, &b)) in self.iter().zip(reference.iter()).enumerate() {
            let err = (a - b).abs() / b.abs().max(1.0);
            if err > worst.0 {
                worst = (err, i);
            }
        }
        Some(worst)
    }
}

impl OutputData for Vec<u32> {
    fn checksum(&self) -> f64 {
        self.iter().map(|&x| x as f64).sum()
    }

    fn worst_error(&self, reference: &Self) -> Option<(f64, usize)> {
        if self.len() != reference.len() {
            return None;
        }
        for (i, (&a, &b)) in self.iter().zip(reference.iter()).enumerate() {
            if a != b {
                return Some((1.0, i));
            }
        }
        Some((0.0, 0))
    }
}

/// Glue that turns a concrete kernel (with typed outputs) into a type-erased
/// [`Instance`].
///
/// `K` supplies input state; `run` maps a variant to its typed output.
pub(crate) struct Adapter<K, O> {
    pub kernel: K,
    pub name: &'static str,
    pub tolerance: f64,
    pub run: fn(&K, Variant, &ThreadPool) -> O,
    pub work: fn(&K) -> Work,
    pub reference: Option<O>,
}

impl<K: Send, O: OutputData + Send> Adapter<K, O> {
    fn reference_output(&mut self, pool: &ThreadPool) -> &O {
        if self.reference.is_none() {
            self.reference = Some((self.run)(&self.kernel, Variant::Naive, pool));
        }
        self.reference.as_ref().expect("reference just computed")
    }
}

impl<K: Send, O: OutputData + Send> Instance for Adapter<K, O> {
    fn run(&mut self, variant: Variant, pool: &ThreadPool) -> f64 {
        (self.run)(&self.kernel, variant, pool).checksum()
    }

    fn validate(&mut self, variant: Variant, pool: &ThreadPool) -> Result<(), ValidationError> {
        let out = (self.run)(&self.kernel, variant, pool);
        let name = self.name;
        let tolerance = self.tolerance;
        let reference = self.reference_output(pool);
        match out.worst_error(reference) {
            None => Err(ValidationError {
                kernel: name,
                variant,
                detail: "output shape differs from reference".to_owned(),
            }),
            Some((err, pos)) if err > tolerance => Err(ValidationError {
                kernel: name,
                variant,
                detail: format!(
                    "worst relative error {err:.3e} at element {pos} (tolerance {tolerance:.1e})"
                ),
            }),
            Some(_) => Ok(()),
        }
    }

    fn work(&self) -> Work {
        (self.work)(&self.kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_roundtrip_names() {
        for v in Variant::ALL {
            assert_eq!(Variant::from_name(v.name()), Some(v));
            assert_eq!(format!("{v}"), v.name());
        }
        assert_eq!(Variant::from_name("bogus"), None);
    }

    #[test]
    fn problem_size_labels() {
        assert_eq!(ProblemSize::Test.name(), "test");
        assert_eq!(ProblemSize::default(), ProblemSize::Quick);
        assert_eq!(format!("{}", ProblemSize::Paper), "paper");
        for s in ProblemSize::ALL {
            assert_eq!(ProblemSize::from_name(s.name()), Some(s));
        }
        assert_eq!(ProblemSize::from_name("huge"), None);
    }

    #[test]
    fn f32_output_worst_error() {
        let a = vec![1.0f32, 2.0, 3.0];
        let b = vec![1.0f32, 2.2, 3.0];
        let (err, pos) = a.worst_error(&b).unwrap();
        assert_eq!(pos, 1);
        assert!((err - 0.2 / 2.2).abs() < 1e-6);
        assert!(a.worst_error(&vec![1.0f32]).is_none());
    }

    #[test]
    fn u32_output_exact_compare() {
        let a = vec![1u32, 2, 3];
        assert_eq!(a.worst_error(&a).unwrap().0, 0.0);
        let b = vec![1u32, 9, 3];
        assert_eq!(a.worst_error(&b).unwrap(), (1.0, 1));
    }

    #[test]
    fn checksums_sum_elements() {
        assert_eq!(vec![1.0f32, 2.0].checksum(), 3.0);
        assert_eq!(vec![1.0f64, 2.0].checksum(), 3.0);
        assert_eq!(vec![1u32, 2].checksum(), 3.0);
    }

    #[test]
    fn adapter_detects_wrong_output() {
        // A fake kernel whose "ninja" variant returns a corrupted output.
        struct Fake;
        fn fake_run(_: &Fake, v: Variant, _: &ninja_parallel::ThreadPool) -> Vec<f32> {
            match v {
                Variant::Ninja => vec![1.0, 2.0, 99.0],
                _ => vec![1.0, 2.0, 3.0],
            }
        }
        fn fake_work(_: &Fake) -> Work {
            Work {
                flops: 1.0,
                bytes: 1.0,
                elems: 3,
            }
        }
        let mut adapter = Adapter {
            kernel: Fake,
            name: "fake",
            tolerance: 1e-6,
            run: fake_run,
            work: fake_work,
            reference: None,
        };
        let pool = ninja_parallel::ThreadPool::with_threads(1);
        assert!(Instance::validate(&mut adapter, Variant::Simd, &pool).is_ok());
        let err = Instance::validate(&mut adapter, Variant::Ninja, &pool).unwrap_err();
        assert_eq!(err.variant, Variant::Ninja);
        assert!(err.detail.contains("element 2"), "{}", err.detail);
        // Checksums still work through the erased interface.
        assert_eq!(Instance::run(&mut adapter, Variant::Naive, &pool), 6.0);
        assert_eq!(Instance::work(&adapter).elems, 3);
    }

    #[test]
    fn adapter_detects_shape_mismatch() {
        struct Fake;
        fn fake_run(_: &Fake, v: Variant, _: &ninja_parallel::ThreadPool) -> Vec<f32> {
            match v {
                Variant::Ninja => vec![1.0],
                _ => vec![1.0, 2.0],
            }
        }
        fn fake_work(_: &Fake) -> Work {
            Work::default()
        }
        let mut adapter = Adapter {
            kernel: Fake,
            name: "fake",
            tolerance: 0.0,
            run: fake_run,
            work: fake_work,
            reference: None,
        };
        let pool = ninja_parallel::ThreadPool::with_threads(1);
        let err = Instance::validate(&mut adapter, Variant::Ninja, &pool).unwrap_err();
        assert!(err.detail.contains("shape"), "{}", err.detail);
    }

    #[test]
    fn validation_error_displays_context() {
        let e = ValidationError {
            kernel: "nbody",
            variant: Variant::Ninja,
            detail: "oops".into(),
        };
        let s = format!("{e}");
        assert!(s.contains("nbody") && s.contains("ninja") && s.contains("oops"));
    }
}
