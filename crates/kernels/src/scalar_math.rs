//! Scalar mirrors of the `ninja-simd` vector transcendentals.
//!
//! These are the "restructured for the compiler" forms: straight-line `f32`
//! polynomial code with no opaque libm calls, exactly lane 0 of the vector
//! versions. The `Simd`/`Algorithmic` tiers of the transcendental-heavy
//! kernels (BlackScholes, Libor) inline these so an auto-vectorizer can in
//! principle vectorize the whole loop — the paper's `#pragma simd` + SVML
//! configuration.

/// Branch-free lane select: `if cond { a } else { b }`, computed with bit
/// masks exactly like `Mask32x4::select`, so scalar and vector code stay
/// bit-identical while remaining auto-vectorizable.
#[inline(always)]
pub fn select_f32(cond: bool, a: f32, b: f32) -> f32 {
    let mask = (cond as u32).wrapping_neg();
    f32::from_bits((a.to_bits() & mask) | (b.to_bits() & !mask))
}

/// Branch-free floor that mirrors `F32x4::floor` (truncate, then correct
/// negative non-integers). Unlike `f32::floor`, this lowers to straight-line
/// code on bare SSE2 instead of a `floorf` libm call, so loops using it stay
/// auto-vectorizable. Exact for `|x| < 2^31`.
#[inline(always)]
pub fn floor_f32(x: f32) -> f32 {
    let t = x as i32 as f32;
    select_f32(t > x, t - 1.0, t)
}

/// Scalar mirror of [`ninja_simd::math::exp_v4`]'s polynomial.
#[inline(always)]
pub fn exp_poly(x: f32) -> f32 {
    let x = x.clamp(-87.336_54, 88.376_26);
    let fx = floor_f32(x * std::f32::consts::LOG2_E + 0.5);
    let r = x - fx * 0.693_359_4 - fx * -2.121_944_4e-4;
    let mut p = 1.987_569_1e-4;
    p = p * r + 1.398_199_9e-3;
    p = p * r + 8.333_452e-3;
    p = p * r + 4.166_579_6e-2;
    p = p * r + 1.666_666_6e-1;
    p = p * r + 0.5;
    let y = p * (r * r) + (r + 1.0);
    let pow2n = f32::from_bits((((fx as i32) + 127) << 23) as u32);
    y * pow2n
}

/// Scalar mirror of [`ninja_simd::math::ln_v4`]'s polynomial.
#[inline(always)]
pub fn ln_poly(x: f32) -> f32 {
    let bits = x.to_bits() as i32;
    let e_raw = ((bits >> 23) - 127) as f32;
    let m_raw = f32::from_bits(((bits & 0x007f_ffff) | 0x3f80_0000) as u32);
    let fold = m_raw > std::f32::consts::SQRT_2;
    let m = select_f32(fold, m_raw * 0.5, m_raw);
    let e = select_f32(fold, e_raw + 1.0, e_raw);
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    let mut p = 2.0 / 9.0;
    p = p * t2 + 2.0 / 7.0;
    p = p * t2 + 2.0 / 5.0;
    p = p * t2 + 2.0 / 3.0;
    p = p * t2 + 2.0;
    e * std::f32::consts::LN_2 + p * t
}

/// Scalar mirror of [`ninja_simd::math::norm_cdf_v4`] (A&S 26.2.17).
#[inline(always)]
pub fn cnd_poly(x: f32) -> f32 {
    let ax = x.abs();
    let k = 1.0 / (ax * 0.231_641_9 + 1.0);
    let mut poly = 1.330_274_5_f32;
    poly = poly * k + -1.821_255_9;
    poly = poly * k + 1.781_477_9;
    poly = poly * k + -0.356_563_78;
    poly = poly * k + 0.319_381_54;
    poly *= k;
    let pdf = 0.398_942_3 * exp_poly(-(ax * ax) * 0.5);
    let cdf_pos = 1.0 - pdf * poly;
    select_f32(x >= 0.0, cdf_pos, 1.0 - cdf_pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ninja_simd::math::{exp_v4, ln_v4, norm_cdf_v4};
    use ninja_simd::F32x4;

    #[test]
    fn scalar_polys_match_vector_lane0() {
        for i in -50..=50 {
            let x = i as f32 * 0.73;
            assert_eq!(exp_poly(x), exp_v4(F32x4::splat(x)).lane(0), "exp {x}");
            assert_eq!(cnd_poly(x), norm_cdf_v4(F32x4::splat(x)).lane(0), "cnd {x}");
            if x > 0.0 {
                assert_eq!(ln_poly(x), ln_v4(F32x4::splat(x)).lane(0), "ln {x}");
            }
        }
    }

    #[test]
    fn scalar_polys_match_std() {
        for i in -40..=40 {
            let x = i as f32 * 0.5;
            assert!((exp_poly(x) - x.exp()).abs() / x.exp() < 3e-6, "exp {x}");
        }
        for i in 1..200 {
            let x = i as f32 * 0.37;
            assert!(
                (ln_poly(x) - x.ln()).abs() < 3e-6 * x.ln().abs().max(1.0),
                "ln {x}"
            );
        }
    }
}
