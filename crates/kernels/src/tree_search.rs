//! TreeSearch: batched lower-bound queries against a binary search tree.
//!
//! The paper's index-probing benchmark (their companion FAST work): answer
//! millions of independent lookups against a large search tree. The naive
//! version chases heap pointers; the **algorithmic changes** are exactly the
//! paper's — a *linearized* (breadth-first / Eytzinger) array layout that
//! removes pointers and improves locality, and *SIMD blocking* that descends
//! four queries per instruction using gathers.
//!
//! Every variant returns, for each query, the rank (position in sorted
//! order) of the first key `>=` the query, or `n` when no such key exists —
//! so outputs are exactly comparable across tiers.

use crate::framework::{
    Adapter, Characterization, Instance, KernelSpec, ProblemSize, Variant, VariantInfo, Work,
};
use ninja_parallel::{par_chunks_mut, ThreadPool};
use ninja_simd::isa::{dispatch, Isa, IsaOp, SimdF32, SimdI32, SimdMask, Sse2};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A pointer-based BST node (the naive representation).
struct Node {
    key: f32,
    rank: u32,
    left: Option<Box<Node>>,
    right: Option<Box<Node>>,
}

/// A batched tree-search problem instance.
pub struct TreeSearch {
    /// Sorted keys (ranks are positions in this array).
    keys: Vec<f32>,
    queries: Vec<f32>,
    root: Option<Box<Node>>,
    /// 1-indexed Eytzinger layout; slot 0 unused.
    eyt: Vec<f32>,
    /// Rank of the key stored at each Eytzinger slot.
    eyt_rank: Vec<u32>,
}

impl TreeSearch {
    /// Tree size (number of keys) per preset; a perfect tree (`2^d − 1`).
    pub fn keys_for(size: ProblemSize) -> usize {
        match size {
            ProblemSize::Test => (1 << 10) - 1,
            ProblemSize::Quick => (1 << 20) - 1,
            ProblemSize::Paper => (1 << 22) - 1,
        }
    }

    /// Number of queries per preset.
    pub fn queries_for(size: ProblemSize) -> usize {
        match size {
            ProblemSize::Test => 2048,
            ProblemSize::Quick => 1 << 20,
            ProblemSize::Paper => 1 << 22,
        }
    }

    /// Generates a deterministic instance: sorted random keys, random
    /// queries covering hits, misses, and out-of-range probes.
    pub fn generate(size: ProblemSize, seed: u64) -> Self {
        let n = Self::keys_for(size);
        let m = Self::queries_for(size);
        let mut rng = SmallRng::seed_from_u64(seed);
        // Strictly increasing keys via a positive random walk.
        let mut keys = Vec::with_capacity(n);
        let mut acc = 0.0f32;
        for _ in 0..n {
            acc += rng.gen_range(0.5..2.0);
            keys.push(acc);
        }
        let hi = acc * 1.05;
        let queries = (0..m)
            .map(|i| {
                if i % 16 == 0 {
                    // Exact hit: exercises the equality path.
                    keys[rng.gen_range(0..n)]
                } else {
                    rng.gen_range(-1.0..hi)
                }
            })
            .collect();

        let root = build_bst(&keys, 0, n);
        let mut eyt = vec![0.0f32; n + 1];
        let mut eyt_rank = vec![0u32; n + 1];
        let mut cursor = 0usize;
        fill_eytzinger(&keys, &mut eyt, &mut eyt_rank, 1, &mut cursor);
        Self {
            keys,
            queries,
            root,
            eyt,
            eyt_rank,
        }
    }

    /// Number of keys in the tree.
    pub fn num_keys(&self) -> usize {
        self.keys.len()
    }

    /// Number of queries in the batch.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    #[inline]
    // ninja-lint: effort(naive)
    fn search_bst(&self, q: f32) -> u32 {
        let mut best = self.keys.len() as u32;
        let mut node = self.root.as_deref();
        while let Some(n) = node {
            if n.key >= q {
                best = n.rank;
                node = n.left.as_deref();
            } else {
                node = n.right.as_deref();
            }
        }
        best
    }

    /// Naive tier: serial pointer-chasing BST descent per query.
    // ninja-lint: variant(naive)
    pub fn run_naive(&self) -> Vec<u32> {
        self.queries.iter().map(|&q| self.search_bst(q)).collect()
    }

    /// Parallel tier: the naive descent behind a `parallel_for`.
    // ninja-lint: variant(parallel)
    pub fn run_parallel(&self, pool: &ThreadPool) -> Vec<u32> {
        let mut out = vec![0u32; self.queries.len()];
        par_chunks_mut(pool, &mut out, 4096, |chunk_idx, chunk| {
            let base = chunk_idx * 4096;
            for (j, o) in chunk.iter_mut().enumerate() {
                *o = self.search_bst(self.queries[base + j]);
            }
        });
        out
    }

    #[inline]
    // ninja-lint: effort(algorithmic, ninja)
    fn search_eytzinger(&self, q: f32) -> u32 {
        let n = self.keys.len();
        let mut k = 1usize;
        while k <= n {
            // Branch-free descent: left when key >= q, right otherwise.
            k = 2 * k + usize::from(self.eyt[k] < q);
        }
        // Undo the final descents that ran off the tree: strip trailing
        // ones plus the bit above them.
        k >>= (k.trailing_ones() + 1).min(63);
        if k == 0 {
            n as u32
        } else {
            self.eyt_rank[k]
        }
    }

    /// Compiler-vectorizable tier: the same pointer tree searched
    /// iteratively — the restructuring a compiler needs, but pointer
    /// chasing still defeats vectorization (≈1X, as the paper observes
    /// for search).
    // ninja-lint: variant(simd)
    // ninja-lint: allow(NL008, "pointer-chasing descent defeats the auto-vectorizer at every target-cpu level; ~1X is the paper's measured result for search")
    pub fn run_simd(&self) -> Vec<u32> {
        // Iterative descent without recursion; still on the boxed tree.
        self.queries
            .iter()
            .map(|&q| {
                let mut best = self.keys.len() as u32;
                let mut node = self.root.as_deref();
                while let Some(n) = node {
                    let ge = n.key >= q;
                    if ge {
                        best = n.rank;
                    }
                    node = if ge {
                        n.left.as_deref()
                    } else {
                        n.right.as_deref()
                    };
                }
                best
            })
            .collect()
    }

    /// Low-effort endpoint: linearized (Eytzinger) layout plus query
    /// parallelism — the paper's "restructure the data, keep scalar code".
    // ninja-lint: variant(algorithmic)
    pub fn run_algorithmic(&self, pool: &ThreadPool) -> Vec<u32> {
        let mut out = vec![0u32; self.queries.len()];
        par_chunks_mut(pool, &mut out, 4096, |chunk_idx, chunk| {
            let base = chunk_idx * 4096;
            for (j, o) in chunk.iter_mut().enumerate() {
                *o = self.search_eytzinger(self.queries[base + j]);
            }
        });
        out
    }

    /// Descends one vector group of queries simultaneously through the
    /// Eytzinger tree — written once against the width-generic [`Isa`]
    /// trait, so the same descent runs 4 queries per step under SSE2/NEON
    /// and 8 under AVX2. `qs` and `out` must both hold exactly one group
    /// (`LANES` queries).
    #[inline]
    // ninja-lint: effort(ninja)
    fn search_group<I: Isa>(&self, qs: &[f32], out: &mut [u32]) {
        let lanes = <I::F32 as SimdF32>::LANES;
        debug_assert_eq!(qs.len(), lanes);
        debug_assert_eq!(out.len(), lanes);
        let n = self.keys.len() as i32;
        let q = I::F32::load(qs);
        let mut k = I::I32::splat(1);
        let n_vec = I::I32::splat(n);
        let one = I::I32::splat(1);
        let zero = I::I32::zero();
        loop {
            let active = n_vec.simd_gt(k).or(n_vec.simd_eq(k)); // k <= n
            if !active.any() {
                break;
            }
            // Clamp inactive lanes to a safe gather index (slot 0 unused).
            let idx = I::I32::select(active, k, zero);
            let keys = I::F32::gather(&self.eyt, idx);
            let go_right = keys.simd_lt(q);
            let step = I::I32::select(go_right, one, zero);
            let next = (k << 1) + step;
            k = I::I32::select(active, next, k);
        }
        for (i, o) in out.iter_mut().enumerate() {
            let mut kk = k.lane(i) as u32;
            kk >>= (kk.trailing_ones() + 1).min(31);
            *o = if kk == 0 {
                n as u32
            } else {
                self.eyt_rank[kk as usize]
            };
        }
    }

    // --- Serving surface -------------------------------------------------
    //
    // Per-query entry points for `ninja-serve`, which batches arbitrary
    // client queries against a server-resident tree. Each delegates to
    // the math of one degradation-ladder rung.

    /// Serving-layer scalar floor: pointer-chasing BST lower bound.
    pub fn lower_bound_bst(&self, q: f32) -> u32 {
        self.search_bst(q)
    }

    /// Serving-layer restructured rung: linearized (Eytzinger) lower
    /// bound.
    pub fn lower_bound_linearized(&self, q: f32) -> u32 {
        self.search_eytzinger(q)
    }

    /// Serving-layer ninja rung: four lower bounds per SIMD descent (the
    /// generic group descent pinned to the portable 128-bit backend so
    /// the serving batch shape is stable across hosts).
    pub fn lower_bound4(&self, qs: [f32; 4]) -> [u32; 4] {
        let mut out = [0u32; 4];
        self.search_group::<Sse2>(&qs, &mut out);
        out
    }

    /// Ninja tier: SIMD-blocked search — one vector group of queries per
    /// descent step with gathered key loads — plus query parallelism. The
    /// ISA backend (and so the group width) is dispatched *inside* each
    /// worker closure because `#[target_feature]` trampolines do not
    /// cross thread boundaries (see `ninja_simd::isa::dispatch`).
    // ninja-lint: variant(ninja)
    pub fn run_ninja(&self, pool: &ThreadPool) -> Vec<u32> {
        let m = self.queries.len();
        let mut out = vec![0u32; m];
        par_chunks_mut(pool, &mut out, 4096, |chunk_idx, chunk| {
            dispatch(SearchChunk {
                kernel: self,
                base: chunk_idx * 4096,
                out: chunk,
            });
        });
        out
    }
}

/// One output chunk of the ninja rung: whole vector groups through the
/// SIMD descent, the sub-group remainder through the scalar Eytzinger
/// search.
struct SearchChunk<'a> {
    kernel: &'a TreeSearch,
    /// First query index covered by `out`.
    base: usize,
    out: &'a mut [u32],
}

impl IsaOp for SearchChunk<'_> {
    type Output = ();
    fn run<I: Isa>(self) {
        let lanes = <I::F32 as SimdF32>::LANES;
        let k = self.kernel;
        let m = self.out.len();
        let groups = m / lanes;
        for g in 0..groups {
            let i = self.base + lanes * g;
            k.search_group::<I>(
                &k.queries[i..i + lanes],
                &mut self.out[lanes * g..lanes * (g + 1)],
            );
        }
        for (j, o) in self.out.iter_mut().enumerate().skip(groups * lanes) {
            *o = k.search_eytzinger(k.queries[self.base + j]);
        }
    }
}

fn build_bst(keys: &[f32], lo: usize, hi: usize) -> Option<Box<Node>> {
    if lo >= hi {
        return None;
    }
    let mid = lo + (hi - lo) / 2;
    Some(Box::new(Node {
        key: keys[mid],
        rank: mid as u32,
        left: build_bst(keys, lo, mid),
        right: build_bst(keys, mid + 1, hi),
    }))
}

/// In-order fill of the 1-indexed Eytzinger array from sorted keys.
fn fill_eytzinger(keys: &[f32], eyt: &mut [f32], rank: &mut [u32], k: usize, cursor: &mut usize) {
    if k > keys.len() {
        return;
    }
    fill_eytzinger(keys, eyt, rank, 2 * k, cursor);
    eyt[k] = keys[*cursor];
    rank[k] = *cursor as u32;
    *cursor += 1;
    fill_eytzinger(keys, eyt, rank, 2 * k + 1, cursor);
}

fn run(k: &TreeSearch, variant: Variant, pool: &ThreadPool) -> Vec<u32> {
    match variant {
        Variant::Naive => k.run_naive(),
        Variant::Parallel => k.run_parallel(pool),
        Variant::Simd => k.run_simd(),
        Variant::Algorithmic => k.run_algorithmic(pool),
        Variant::Ninja => k.run_ninja(pool),
    }
}

fn work(k: &TreeSearch) -> Work {
    let m = k.num_queries() as f64;
    let depth = (k.num_keys() as f64).log2().ceil();
    Work {
        flops: m * depth * 2.0,
        bytes: m * depth * 4.0,
        elems: k.num_queries() as u64,
    }
}

/// Suite entry for the TreeSearch kernel.
pub fn spec() -> KernelSpec {
    KernelSpec {
        name: "treesearch",
        description: "batched BST lower-bound queries (latency bound, layout showcase)",
        bound: "memory",
        variants: [
            VariantInfo {
                variant: Variant::Naive,
                effort_loc: 0,
                what_changed: "recursive pointer-chasing BST",
            },
            VariantInfo {
                variant: Variant::Parallel,
                effort_loc: 2,
                what_changed: "parallel_for over queries",
            },
            VariantInfo {
                variant: Variant::Simd,
                effort_loc: 6,
                what_changed: "iterative descent (compiler still cannot vectorize)",
            },
            VariantInfo {
                variant: Variant::Algorithmic,
                effort_loc: 25,
                what_changed: "linearized Eytzinger layout + parallel queries",
            },
            VariantInfo {
                variant: Variant::Ninja,
                effort_loc: 85,
                what_changed: "SIMD-blocked 4-query descent with gathers",
            },
        ],
        character: Characterization {
            flops_per_elem: 40.0,
            bytes_per_elem: 24.0,
            naive_simd_frac: 0.0,
            restructure_simd_frac: 0.0,
            simd_friendly_frac: 0.85,
            parallel_frac: 1.0,
            gather_per_elem: 20.0,
            algorithmic_factor: 1.6, // pointer tree -> packed array locality win
            simd_efficiency: 0.8,
        },
        make: |size, seed| {
            Box::new(Adapter {
                kernel: TreeSearch::generate(size, seed),
                name: "treesearch",
                tolerance: 0.0,
                run,
                work,
                reference: None,
            }) as Box<dyn Instance>
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower_bound(keys: &[f32], q: f32) -> u32 {
        keys.partition_point(|&k| k < q) as u32
    }

    #[test]
    fn bst_matches_partition_point() {
        let k = TreeSearch::generate(ProblemSize::Test, 1);
        for &q in k.queries.iter().take(500) {
            assert_eq!(k.search_bst(q), lower_bound(&k.keys, q), "q={q}");
        }
    }

    #[test]
    fn eytzinger_matches_partition_point() {
        let k = TreeSearch::generate(ProblemSize::Test, 2);
        for &q in k.queries.iter().take(500) {
            assert_eq!(k.search_eytzinger(q), lower_bound(&k.keys, q), "q={q}");
        }
        // Out-of-range probes.
        assert_eq!(k.search_eytzinger(-100.0), 0);
        assert_eq!(k.search_eytzinger(f32::MAX), k.keys.len() as u32);
    }

    #[test]
    fn simd_block_matches_scalar() {
        let k = TreeSearch::generate(ProblemSize::Test, 3);
        for w in k.queries.chunks_exact(4).take(100) {
            let got = k.lower_bound4([w[0], w[1], w[2], w[3]]);
            for i in 0..4 {
                assert_eq!(got[i], k.search_eytzinger(w[i]));
            }
        }
    }

    /// Bit-exact agreement (tolerance 0) of the generic SIMD descent with
    /// the naive BST under every reachable ISA backend, including a chunk
    /// length that forces the sub-group scalar remainder.
    #[test]
    fn ninja_rung_agrees_under_every_reachable_backend() {
        use ninja_simd::isa::{available_kinds, dispatch_on};
        let k = TreeSearch::generate(ProblemSize::Test, 13);
        let reference = k.run_naive();
        for kind in available_kinds() {
            let mut out = vec![0u32; k.num_queries()];
            dispatch_on(
                kind,
                SearchChunk {
                    kernel: &k,
                    base: 0,
                    out: &mut out,
                },
            );
            assert_eq!(out, reference, "{kind}");

            // An odd-length window exercises the scalar remainder path.
            let mut tail = vec![0u32; 13];
            dispatch_on(
                kind,
                SearchChunk {
                    kernel: &k,
                    base: 32,
                    out: &mut tail,
                },
            );
            assert_eq!(tail, reference[32..45], "{kind} remainder");
        }
    }

    #[test]
    fn exact_hits_return_their_rank() {
        let k = TreeSearch::generate(ProblemSize::Test, 4);
        for rank in [0usize, 1, 10, k.keys.len() / 2, k.keys.len() - 1] {
            assert_eq!(k.search_bst(k.keys[rank]), rank as u32);
            assert_eq!(k.search_eytzinger(k.keys[rank]), rank as u32);
        }
    }

    #[test]
    fn all_variants_agree_exactly() {
        let k = TreeSearch::generate(ProblemSize::Test, 5);
        let pool = ThreadPool::with_threads(2);
        let reference = k.run_naive();
        assert_eq!(k.run_parallel(&pool), reference);
        assert_eq!(k.run_simd(), reference);
        assert_eq!(k.run_algorithmic(&pool), reference);
        assert_eq!(k.run_ninja(&pool), reference);
    }

    #[test]
    fn adapter_validates_all_variants() {
        let spec = spec();
        let pool = ThreadPool::with_threads(1);
        let mut inst = (spec.make)(ProblemSize::Test, 6);
        for v in Variant::ALL {
            inst.validate(v, &pool).unwrap();
        }
    }

    #[test]
    fn results_are_valid_ranks() {
        let k = TreeSearch::generate(ProblemSize::Test, 10);
        let pool = ThreadPool::with_threads(1);
        for rank in k.run_ninja(&pool) {
            assert!(rank as usize <= k.num_keys());
        }
    }

    #[test]
    fn serving_surface_delegates_match_partition_point() {
        let k = TreeSearch::generate(ProblemSize::Test, 12);
        for w in k.queries.chunks_exact(4).take(50) {
            let v4 = k.lower_bound4([w[0], w[1], w[2], w[3]]);
            for (i, &q) in w.iter().enumerate() {
                let want = lower_bound(&k.keys, q);
                assert_eq!(k.lower_bound_bst(q), want);
                assert_eq!(k.lower_bound_linearized(q), want);
                assert_eq!(v4[i], want);
            }
        }
    }

    #[test]
    fn lower_bound_brackets_the_query() {
        let k = TreeSearch::generate(ProblemSize::Test, 11);
        for (&q, &rank) in k.queries.iter().zip(k.run_naive().iter()).take(300) {
            let r = rank as usize;
            if r < k.keys.len() {
                assert!(k.keys[r] >= q, "key at rank not >= query");
            }
            if r > 0 {
                assert!(k.keys[r - 1] < q, "previous key not < query");
            }
        }
    }
}
