//! BlackScholes: European option pricing over a large option batch.
//!
//! The paper's transcendental-heavy financial kernel: for each option,
//! evaluate the closed-form Black-Scholes call and put prices, which costs
//! two `ln`/`exp`/`sqrt` groups and two normal-CDF evaluations per option.
//!
//! Optimization story (paper §4):
//! * the **naive** version prices one array-of-structs option at a time in
//!   `f64`, calling libm — the compiler cannot vectorize across the struct
//!   layout or the opaque math calls;
//! * **algorithmic change**: AoS→SoA plus inlining polynomial math in `f32`
//!   turns the loop into straight-line arithmetic the vectorizer handles
//!   (the paper gets this from `#pragma simd` + SVML);
//! * **Ninja**: explicit SIMD written once against the width-generic
//!   [`Isa`] trait with the vector `exp`/`ln`/CDF from
//!   `ninja-simd::isa::math`, instantiated per backend (SSE2, AVX2,
//!   NEON, scalar) by the runtime dispatcher.

use crate::framework::{
    Adapter, Characterization, Instance, KernelSpec, ProblemSize, Variant, VariantInfo, Work,
};
use ninja_parallel::{par_chunks_mut, ThreadPool};
use ninja_simd::isa::{dispatch, math as vmath, Isa, IsaOp, SimdF32, Sse2, MAX_ISA_F32_LANES};
use ninja_simd::math::norm_cdf_scalar;
use ninja_simd::AlignedVec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Block length of the staged polynomial pricing loops (fits L1).
const POLY_BLOCK: usize = 1024;

/// One option contract in the naive array-of-structs layout.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct OptionContract {
    /// Spot price.
    pub spot: f32,
    /// Strike price.
    pub strike: f32,
    /// Time to maturity in years.
    pub years: f32,
    /// Risk-free rate.
    pub rate: f32,
    /// Volatility.
    pub vol: f32,
}

/// A batch-pricing problem instance (AoS and SoA mirrors of the same book).
pub struct BlackScholes {
    contracts: Vec<OptionContract>,
    // SoA mirror for the vectorized tiers, padded to a multiple of the
    // widest ISA backend's f32 lane count and cache-line aligned, so any
    // dispatched width can round its last group up into the padding.
    spot: AlignedVec<f32>,
    strike: AlignedVec<f32>,
    years: AlignedVec<f32>,
    rate: AlignedVec<f32>,
    vol: AlignedVec<f32>,
}

impl BlackScholes {
    /// Number of options for each size preset.
    pub fn n_for(size: ProblemSize) -> usize {
        match size {
            ProblemSize::Test => 1 << 10,
            ProblemSize::Quick => 1 << 19,
            ProblemSize::Paper => 1 << 22,
        }
    }

    /// Generates a deterministic random option book.
    pub fn generate(size: ProblemSize, seed: u64) -> Self {
        let n = Self::n_for(size);
        let mut rng = SmallRng::seed_from_u64(seed);
        let contracts: Vec<OptionContract> = (0..n)
            .map(|_| OptionContract {
                spot: rng.gen_range(5.0..120.0),
                strike: rng.gen_range(10.0..100.0),
                years: rng.gen_range(0.1..5.0),
                rate: rng.gen_range(0.01..0.08),
                vol: rng.gen_range(0.05..0.6),
            })
            .collect();
        let padded = n.div_ceil(MAX_ISA_F32_LANES) * MAX_ISA_F32_LANES;
        let mut this = Self {
            spot: AlignedVec::filled(padded, 1.0),
            strike: AlignedVec::filled(padded, 1.0),
            years: AlignedVec::filled(padded, 1.0),
            rate: AlignedVec::zeroed(padded),
            vol: AlignedVec::filled(padded, 0.5),
            contracts,
        };
        for (i, c) in this.contracts.iter().enumerate() {
            this.spot[i] = c.spot;
            this.strike[i] = c.strike;
            this.years[i] = c.years;
            this.rate[i] = c.rate;
            this.vol[i] = c.vol;
        }
        this
    }

    /// Number of options.
    pub fn len(&self) -> usize {
        self.contracts.len()
    }

    /// True if the book is empty.
    pub fn is_empty(&self) -> bool {
        self.contracts.is_empty()
    }

    /// The option book in its array-of-structs form.
    pub fn contracts(&self) -> &[OptionContract] {
        &self.contracts
    }

    #[inline]
    // ninja-lint: effort(naive)
    fn price_scalar_f64(c: &OptionContract) -> (f32, f32) {
        let s = c.spot as f64;
        let k = c.strike as f64;
        let t = c.years as f64;
        let r = c.rate as f64;
        let v = c.vol as f64;
        let sqrt_t = t.sqrt();
        let d1 = ((s / k).ln() + (r + 0.5 * v * v) * t) / (v * sqrt_t);
        let d2 = d1 - v * sqrt_t;
        let disc = (-r * t).exp();
        let call = s * norm_cdf_scalar(d1) - k * disc * norm_cdf_scalar(d2);
        let put = k * disc * norm_cdf_scalar(-d2) - s * norm_cdf_scalar(-d1);
        (call as f32, put as f32)
    }

    /// Naive tier: serial AoS, `f64` libm math per option.
    // ninja-lint: variant(naive)
    pub fn run_naive(&self) -> Vec<f32> {
        let n = self.len();
        let mut out = vec![0.0f32; 2 * n];
        for (i, c) in self.contracts.iter().enumerate() {
            let (call, put) = Self::price_scalar_f64(c);
            out[2 * i] = call;
            out[2 * i + 1] = put;
        }
        out
    }

    /// Parallel tier: the naive option loop behind a `parallel_for`.
    // ninja-lint: variant(parallel)
    pub fn run_parallel(&self, pool: &ThreadPool) -> Vec<f32> {
        let n = self.len();
        let mut out = vec![0.0f32; 2 * n];
        par_chunks_mut(pool, &mut out, 2 * 4096, |chunk_idx, chunk| {
            let base = chunk_idx * 4096;
            for (k, pair) in chunk.chunks_mut(2).enumerate() {
                let (call, put) = Self::price_scalar_f64(&self.contracts[base + k]);
                pair[0] = call;
                pair[1] = put;
            }
        });
        out
    }

    /// Prices a block of options with staged unit-stride `f32` loops —
    /// the restructuring an auto-vectorizer needs: each stage is a simple
    /// elementwise pass with branch-free polynomial bodies.
    // ninja-lint: effort(simd, algorithmic)
    fn price_block_poly(&self, lo: usize, n: usize, out: &mut [f32]) {
        debug_assert!(n <= POLY_BLOCK);
        let s = &self.spot[lo..lo + n];
        let k = &self.strike[lo..lo + n];
        let t = &self.years[lo..lo + n];
        let r = &self.rate[lo..lo + n];
        let v = &self.vol[lo..lo + n];
        let mut d1_buf = [0.0f32; POLY_BLOCK];
        let mut d2_buf = [0.0f32; POLY_BLOCK];
        let mut disc_buf = [0.0f32; POLY_BLOCK];
        // Slice the stage buffers to the block length up front: with raw
        // `buf[j]` stores the `j < POLY_BLOCK` bounds check sits inside the
        // loop and LLVM refuses to vectorize the staged passes (the NL008
        // asm audit caught exactly that — scalar `mulss` code on the rung
        // whose whole point is auto-vectorization).
        let d1 = &mut d1_buf[..n];
        let d2 = &mut d2_buf[..n];
        let disc = &mut disc_buf[..n];
        for j in 0..n {
            let sqrt_t = t[j].sqrt();
            let vt = v[j] * sqrt_t;
            let d = (ln_poly(s[j] / k[j]) + (r[j] + 0.5 * v[j] * v[j]) * t[j]) / vt;
            d1[j] = d;
            d2[j] = d - vt;
            disc[j] = exp_poly(-(r[j] * t[j]));
        }
        let mut nd1_buf = [0.0f32; POLY_BLOCK];
        let mut nd2_buf = [0.0f32; POLY_BLOCK];
        let nd1 = &mut nd1_buf[..n];
        let nd2 = &mut nd2_buf[..n];
        for j in 0..n {
            nd1[j] = cnd_poly(d1[j]);
            nd2[j] = cnd_poly(d2[j]);
        }
        let out = &mut out[..2 * n];
        for j in 0..n {
            let kd = k[j] * disc[j];
            out[2 * j] = s[j] * nd1[j] - kd * nd2[j];
            out[2 * j + 1] = kd * (1.0 - nd2[j]) - s[j] * (1.0 - nd1[j]);
        }
    }

    /// Compiler-vectorizable tier: serial SoA `f32` staged loops with
    /// inlined branch-free polynomial math (no opaque calls).
    // ninja-lint: variant(simd)
    pub fn run_simd(&self) -> Vec<f32> {
        let n = self.len();
        let mut out = vec![0.0f32; 2 * n];
        let mut lo = 0;
        while lo < n {
            let len = POLY_BLOCK.min(n - lo);
            self.price_block_poly(lo, len, &mut out[2 * lo..2 * (lo + len)]);
            lo += len;
        }
        out
    }

    /// Low-effort endpoint: SoA `f32` staged polynomial loops plus
    /// `parallel_for`.
    // ninja-lint: variant(algorithmic)
    pub fn run_algorithmic(&self, pool: &ThreadPool) -> Vec<f32> {
        let n = self.len();
        let mut out = vec![0.0f32; 2 * n];
        par_chunks_mut(pool, &mut out, 2 * POLY_BLOCK, |chunk_idx, chunk| {
            let lo = chunk_idx * POLY_BLOCK;
            self.price_block_poly(lo, chunk.len() / 2, chunk);
        });
        out
    }

    /// Ninja tier: explicit width-generic SIMD pricing with vector
    /// `exp`/`ln`/CDF, parallel over option blocks. The ISA backend is
    /// dispatched *inside* each worker closure because `#[target_feature]`
    /// trampolines do not cross thread boundaries (see
    /// `ninja_simd::isa::dispatch`).
    // ninja-lint: variant(ninja)
    pub fn run_ninja(&self, pool: &ThreadPool) -> Vec<f32> {
        let n = self.len();
        let mut out = vec![0.0f32; 2 * n];
        const BLOCK: usize = 4096;
        par_chunks_mut(pool, &mut out, 2 * BLOCK, |chunk_idx, chunk| {
            dispatch(PriceRange {
                kernel: self,
                lo: chunk_idx * BLOCK,
                out: chunk,
            });
        });
        out
    }
}

/// One output chunk of the ninja rung, priced under whichever ISA backend
/// the dispatcher selects.
struct PriceRange<'a> {
    kernel: &'a BlackScholes,
    /// First option index covered by `out`.
    lo: usize,
    /// Interleaved `(call, put)` output window for this chunk.
    out: &'a mut [f32],
}

impl IsaOp for PriceRange<'_> {
    type Output = ();
    fn run<I: Isa>(self) {
        let lanes = <I::F32 as SimdF32>::LANES;
        let k = self.kernel;
        // Round the upper bound up to a full vector group: the SoA arrays
        // are padded to a multiple of `MAX_ISA_F32_LANES >= lanes`, so the
        // trailing group may read padding but never out of bounds.
        let hi = (self.lo + self.out.len() / 2).min(k.spot.len());
        let hi = (hi.div_ceil(lanes) * lanes).min(k.spot.len());
        price_soa_range::<I>(
            &k.spot, &k.strike, &k.years, &k.rate, &k.vol, self.lo, hi, self.out,
        );
    }
}

/// Prices options `[lo, hi)` from SoA slices with explicit SIMD, written
/// once against the width-generic [`Isa`] trait — the same source is
/// instantiated at 128- and 256-bit widths by the dispatcher. `lo` and
/// `hi` must be multiples of the backend's lane count and the slices must
/// extend to `hi`; `out` receives interleaved `(call, put)` pairs for
/// option `lo` onward and may end mid-group (the pair stores are masked
/// to the remaining window).
// ninja-lint: effort(ninja)
#[allow(clippy::too_many_arguments)]
fn price_soa_range<I: Isa>(
    spot: &[f32],
    strike: &[f32],
    years: &[f32],
    rate: &[f32],
    vol: &[f32],
    lo: usize,
    hi: usize,
    out: &mut [f32],
) {
    let lanes = <I::F32 as SimdF32>::LANES;
    debug_assert_eq!(lo % lanes, 0);
    debug_assert_eq!(hi % lanes, 0);
    let half = I::F32::splat(0.5);
    let one = I::F32::splat(1.0);
    let mut j = lo;
    while j < hi {
        let s = I::F32::load(&spot[j..]);
        let k = I::F32::load(&strike[j..]);
        let t = I::F32::load(&years[j..]);
        let r = I::F32::load(&rate[j..]);
        let v = I::F32::load(&vol[j..]);

        let sqrt_t = t.sqrt();
        let vt = v * sqrt_t;
        let d1 = (vmath::ln::<I>(s / k) + (r + half * v * v) * t) / vt;
        let d2 = d1 - vt;
        let disc = vmath::exp::<I>(-(r * t));
        let nd1 = vmath::norm_cdf::<I>(d1);
        let nd2 = vmath::norm_cdf::<I>(d2);
        let call = s * nd1 - k * disc * nd2;
        let put = k * disc * (one - nd2) - s * (one - nd1);

        // Interleave (call, put) pairs back into the output layout.
        let (lo_pairs, hi_pairs) = call.interleave(put);
        let base = 2 * (j - lo);
        let avail = out.len() - base;
        if avail >= 2 * lanes {
            lo_pairs.store(&mut out[base..]);
            hi_pairs.store(&mut out[base + lanes..]);
        } else {
            lo_pairs.store_partial(&mut out[base..base + avail.min(lanes)]);
            if avail > lanes {
                hi_pairs.store_partial(&mut out[base + lanes..base + avail]);
            }
        }
        j += lanes;
    }
}

use crate::scalar_math::{cnd_poly, exp_poly, ln_poly};

// --- Serving surface -----------------------------------------------------
//
// Free pricing entry points for `ninja-serve`: the service coalesces
// request batches itself, so these price caller-provided contracts/SoA
// slices rather than the instance's generated book. Each function is the
// math of one degradation-ladder rung (scalar f64 libm, f32 polynomial,
// explicit 4-wide SIMD).

/// Prices one contract with the naive `f64` libm math — the serving
/// layer's scalar floor. Returns `(call, put)`.
pub fn price_contract(c: &OptionContract) -> (f32, f32) {
    BlackScholes::price_scalar_f64(c)
}

/// Prices a SoA batch with the branch-free `f32` polynomial math (the
/// SIMD rung). All input slices share a length `n`; `out` receives the
/// interleaved `(call, put)` pairs and must hold `2 * n` floats.
///
/// # Panics
///
/// Panics if the slice lengths disagree.
pub fn price_batch_poly(
    spot: &[f32],
    strike: &[f32],
    years: &[f32],
    rate: &[f32],
    vol: &[f32],
    out: &mut [f32],
) {
    let n = spot.len();
    assert!(
        strike.len() == n && years.len() == n && rate.len() == n && vol.len() == n,
        "SoA batch slices must share a length"
    );
    assert_eq!(out.len(), 2 * n, "out must hold (call, put) per option");
    for j in 0..n {
        let sqrt_t = years[j].sqrt();
        let vt = vol[j] * sqrt_t;
        let d1 = (ln_poly(spot[j] / strike[j]) + (rate[j] + 0.5 * vol[j] * vol[j]) * years[j]) / vt;
        let d2 = d1 - vt;
        let disc = exp_poly(-(rate[j] * years[j]));
        let nd1 = cnd_poly(d1);
        let nd2 = cnd_poly(d2);
        let kd = strike[j] * disc;
        out[2 * j] = spot[j] * nd1 - kd * nd2;
        out[2 * j + 1] = kd * (1.0 - nd2) - spot[j] * (1.0 - nd1);
    }
}

/// Prices a SoA batch with the explicit SIMD ninja body instantiated at
/// the portable 128-bit backend, so the serving layer's `n % 4` batch
/// contract and numeric results are stable across hosts. Slice layout as
/// [`price_batch_poly`]; the shared length must be a multiple of 4.
///
/// # Panics
///
/// Panics if the slice lengths disagree or are not a multiple of 4.
pub fn price_batch_simd(
    spot: &[f32],
    strike: &[f32],
    years: &[f32],
    rate: &[f32],
    vol: &[f32],
    out: &mut [f32],
) {
    let n = spot.len();
    assert!(
        strike.len() == n && years.len() == n && rate.len() == n && vol.len() == n,
        "SoA batch slices must share a length"
    );
    assert_eq!(n % 4, 0, "SIMD batch length must be a multiple of 4");
    assert_eq!(out.len(), 2 * n, "out must hold (call, put) per option");
    price_soa_range::<Sse2>(spot, strike, years, rate, vol, 0, n, out);
}

fn run(k: &BlackScholes, variant: Variant, pool: &ThreadPool) -> Vec<f32> {
    match variant {
        Variant::Naive => k.run_naive(),
        Variant::Parallel => k.run_parallel(pool),
        Variant::Simd => k.run_simd(),
        Variant::Algorithmic => k.run_algorithmic(pool),
        Variant::Ninja => k.run_ninja(pool),
    }
}

fn work(k: &BlackScholes) -> Work {
    let n = k.len() as f64;
    Work {
        flops: n * 90.0, // polynomial-expanded transcendental cost
        bytes: n * (5.0 * 4.0 + 2.0 * 4.0),
        elems: k.len() as u64,
    }
}

/// Suite entry for the BlackScholes kernel.
pub fn spec() -> KernelSpec {
    KernelSpec {
        name: "blackscholes",
        description: "European option pricing (compute bound, exp/ln/CDF heavy)",
        bound: "compute",
        variants: [
            VariantInfo {
                variant: Variant::Naive,
                effort_loc: 0,
                what_changed: "serial AoS, f64 libm per option",
            },
            VariantInfo {
                variant: Variant::Parallel,
                effort_loc: 2,
                what_changed: "parallel_for over options",
            },
            VariantInfo {
                variant: Variant::Simd,
                effort_loc: 15,
                what_changed: "AoS->SoA, f32, inlined polynomial math",
            },
            VariantInfo {
                variant: Variant::Algorithmic,
                effort_loc: 17,
                what_changed: "SoA polynomial loop + parallel_for",
            },
            VariantInfo {
                variant: Variant::Ninja,
                effort_loc: 90,
                what_changed: "hand SIMD with vector exp/ln/CDF, interleaved stores",
            },
        ],
        character: Characterization {
            flops_per_elem: 90.0,
            bytes_per_elem: 28.0,
            naive_simd_frac: 0.0,
            restructure_simd_frac: 1.0,
            simd_friendly_frac: 1.0,
            parallel_frac: 1.0,
            gather_per_elem: 0.0,
            algorithmic_factor: 1.6, // f64 libm -> f32 polynomial also wins scalar time
            simd_efficiency: 1.0,
        },
        make: |size, seed| {
            Box::new(Adapter {
                kernel: BlackScholes::generate(size, seed),
                name: "blackscholes",
                tolerance: 5e-3,
                run,
                work,
                reference: None,
            }) as Box<dyn Instance>
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_price_textbook_case() {
        // S=100, K=100, T=1, r=5%, v=20%: call ≈ 10.4506, put ≈ 5.5735.
        let c = OptionContract {
            spot: 100.0,
            strike: 100.0,
            years: 1.0,
            rate: 0.05,
            vol: 0.2,
        };
        let (call, put) = BlackScholes::price_scalar_f64(&c);
        assert!((call - 10.4506).abs() < 1e-3, "call {call}");
        assert!((put - 5.5735).abs() < 1e-3, "put {put}");
    }

    #[test]
    fn put_call_parity_holds() {
        let k = BlackScholes::generate(ProblemSize::Test, 11);
        let out = k.run_naive();
        for (i, c) in k.contracts.iter().enumerate().take(100) {
            let call = out[2 * i] as f64;
            let put = out[2 * i + 1] as f64;
            let lhs = call - put;
            let rhs = c.spot as f64 - c.strike as f64 * (-(c.rate as f64) * c.years as f64).exp();
            assert!(
                (lhs - rhs).abs() < 1e-3 * (c.spot as f64).max(1.0),
                "parity violated at {i}: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn all_variants_agree_with_naive() {
        let k = BlackScholes::generate(ProblemSize::Test, 5);
        let pool = ThreadPool::with_threads(2);
        let reference = k.run_naive();
        for (label, out) in [
            ("parallel", k.run_parallel(&pool)),
            ("simd", k.run_simd()),
            ("algorithmic", k.run_algorithmic(&pool)),
            ("ninja", k.run_ninja(&pool)),
        ] {
            assert_eq!(out.len(), reference.len(), "{label}");
            for (i, (&a, &b)) in out.iter().zip(reference.iter()).enumerate() {
                let err = (a - b).abs() / b.abs().max(1.0);
                assert!(err < 5e-3, "{label}[{i}]: {a} vs {b} (err {err})");
            }
        }
    }

    #[test]
    fn adapter_validates_all_variants() {
        let spec = spec();
        let pool = ThreadPool::with_threads(1);
        let mut inst = (spec.make)(ProblemSize::Test, 2);
        for v in Variant::ALL {
            inst.validate(v, &pool).unwrap();
        }
    }

    #[test]
    fn prices_are_nonnegative_and_bounded() {
        let k = BlackScholes::generate(ProblemSize::Test, 21);
        let out = k.run_ninja(&ThreadPool::with_threads(1));
        for (i, c) in k.contracts.iter().enumerate() {
            let call = out[2 * i];
            let put = out[2 * i + 1];
            assert!(call >= -1e-3 && call <= c.spot + 1e-3, "call bounds at {i}");
            assert!(put >= -1e-3 && put <= c.strike + 1e-3, "put bounds at {i}");
        }
    }

    #[test]
    fn serving_surface_matches_instance_variants() {
        let k = BlackScholes::generate(ProblemSize::Test, 7);
        let reference = k.run_naive();
        let n = k.len();
        let cs = k.contracts();
        // Scalar floor is exactly the naive math.
        for (i, c) in cs.iter().enumerate().take(200) {
            let (call, put) = price_contract(c);
            assert_eq!(call, reference[2 * i]);
            assert_eq!(put, reference[2 * i + 1]);
        }
        // SoA batches built from the AoS book (padded for the SIMD rung).
        let padded = n.div_ceil(4) * 4;
        let mut soa: [Vec<f32>; 5] = std::array::from_fn(|_| vec![1.0f32; padded]);
        for (i, c) in cs.iter().enumerate() {
            soa[0][i] = c.spot;
            soa[1][i] = c.strike;
            soa[2][i] = c.years;
            soa[3][i] = c.rate;
            soa[4][i] = c.vol;
        }
        let mut poly = vec![0.0f32; 2 * padded];
        let mut simd = vec![0.0f32; 2 * padded];
        price_batch_poly(&soa[0], &soa[1], &soa[2], &soa[3], &soa[4], &mut poly);
        price_batch_simd(&soa[0], &soa[1], &soa[2], &soa[3], &soa[4], &mut simd);
        for i in 0..2 * n {
            let b = reference[i];
            for (label, out) in [("poly", &poly), ("simd", &simd)] {
                let err = (out[i] - b).abs() / b.abs().max(1.0);
                assert!(err < 5e-3, "{label}[{i}]: {} vs {b}", out[i]);
            }
        }
    }

    #[test]
    fn ninja_rung_agrees_under_every_reachable_backend() {
        use ninja_simd::isa::{available_kinds, dispatch_on};
        let k = BlackScholes::generate(ProblemSize::Test, 3);
        let reference = k.run_naive();
        let n = k.len();
        for kind in available_kinds() {
            let mut out = vec![0.0f32; 2 * n];
            dispatch_on(
                kind,
                PriceRange {
                    kernel: &k,
                    lo: 0,
                    out: &mut out,
                },
            );
            for (i, (&a, &b)) in out.iter().zip(reference.iter()).enumerate() {
                let err = (a - b).abs() / b.abs().max(1.0);
                assert!(err < 5e-3, "{kind}[{i}]: {a} vs {b} (err {err})");
            }
        }
    }

    /// A batch length that is not a multiple of any vector width forces
    /// the masked tail stores in the generic body under every backend.
    #[test]
    fn ninja_tail_is_masked_under_every_reachable_backend() {
        use ninja_simd::isa::{available_kinds, dispatch_on};

        struct OddBatch {
            n: usize,
        }
        impl IsaOp for OddBatch {
            type Output = Vec<f32>;
            fn run<I: Isa>(self) -> Vec<f32> {
                let lanes = <I::F32 as SimdF32>::LANES;
                let padded = self.n.div_ceil(MAX_ISA_F32_LANES) * MAX_ISA_F32_LANES;
                let mk = |base: f32, step: f32| -> Vec<f32> {
                    (0..padded).map(|i| base + step * i as f32).collect()
                };
                let spot = mk(20.0, 1.7);
                let strike = mk(25.0, 1.3);
                let years = mk(0.5, 0.05);
                let rate = mk(0.01, 0.001);
                let vol = mk(0.1, 0.004);
                let mut out = vec![0.0f32; 2 * self.n];
                let hi = self.n.div_ceil(lanes) * lanes;
                price_soa_range::<I>(&spot, &strike, &years, &rate, &vol, 0, hi, &mut out);
                // The scalar reference for the same contracts.
                let mut want = vec![0.0f32; 2 * self.n];
                for i in 0..self.n {
                    let (call, put) = price_contract(&OptionContract {
                        spot: spot[i],
                        strike: strike[i],
                        years: years[i],
                        rate: rate[i],
                        vol: vol[i],
                    });
                    want[2 * i] = call;
                    want[2 * i + 1] = put;
                }
                for (i, (&a, &b)) in out.iter().zip(want.iter()).enumerate() {
                    let err = (a - b).abs() / b.abs().max(1.0);
                    assert!(err < 5e-3, "n={} out[{i}]: {a} vs {b}", self.n);
                }
                out
            }
        }

        for kind in available_kinds() {
            for n in [1usize, 3, 7, 9, 13] {
                dispatch_on(kind, OddBatch { n });
            }
        }
    }

    #[test]
    fn call_price_is_monotone_in_spot_and_vol() {
        let price = |spot: f32, vol: f32| {
            BlackScholes::price_scalar_f64(&OptionContract {
                spot,
                strike: 50.0,
                years: 1.0,
                rate: 0.03,
                vol,
            })
        };
        let mut prev_call = -1.0f32;
        for s in [20.0f32, 40.0, 50.0, 60.0, 80.0] {
            let (call, _) = price(s, 0.25);
            assert!(call > prev_call, "call not increasing in spot at {s}");
            prev_call = call;
        }
        let mut prev = -1.0f32;
        for v in [0.05f32, 0.15, 0.3, 0.5] {
            let (call, _) = price(50.0, v);
            assert!(call > prev, "call not increasing in vol at {v}");
            prev = call;
        }
    }
}
