//! LBM: a D2Q9 lattice-Boltzmann fluid step (stream + BGK collide).
//!
//! The paper's bandwidth-bound stencil code (SPEC's `470.lbm` is its
//! original). Every time step pulls nine distribution values from the
//! neighbouring cells, relaxes them toward local equilibrium, and writes
//! nine values back — ~72 bytes of traffic per cell per step, so the kernel
//! lives on the memory roofline.
//!
//! The AoS cell layout (`f[cell][9]`) of the naive code defeats
//! vectorization; the **algorithmic changes** are AoS→SoA (nine separate
//! planes) plus an interior/boundary split that removes the periodic-wrap
//! arithmetic from the hot loop.
//!
//! All tiers use the identical *stream-then-collide* update with the same
//! operation order, so results agree to rounding across variants.

use crate::framework::{
    Adapter, Characterization, Instance, KernelSpec, ProblemSize, Variant, VariantInfo, Work,
};
use ninja_parallel::{par_chunks_mut, ThreadPool};
use ninja_simd::{AlignedVec, F32x4};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of discrete velocities in D2Q9.
pub const Q: usize = 9;
/// Lattice velocities (dx, dy) per direction.
const E: [(i32, i32); Q] = [
    (0, 0),
    (1, 0),
    (-1, 0),
    (0, 1),
    (0, -1),
    (1, 1),
    (-1, -1),
    (1, -1),
    (-1, 1),
];
/// Lattice weights per direction.
const W: [f32; Q] = [
    4.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
];
/// BGK relaxation rate (1/τ).
const OMEGA: f32 = 1.0 / 0.6;
/// Row-block length of the staged collide (fits comfortably in L1).
const STAGE_ROW: usize = 256;

/// A D2Q9 lattice-Boltzmann problem instance.
pub struct Lbm {
    width: usize,
    height: usize,
    steps: usize,
    /// Initial distributions, AoS layout `f[(y*w + x) * 9 + d]`.
    init: Vec<f32>,
}

impl Lbm {
    /// Grid edge and step count per preset.
    pub fn shape_for(size: ProblemSize) -> (usize, usize) {
        match size {
            ProblemSize::Test => (32, 4),
            ProblemSize::Quick => (192, 8),
            ProblemSize::Paper => (384, 10),
        }
    }

    /// Generates a deterministic initial state near equilibrium.
    pub fn generate(size: ProblemSize, seed: u64) -> Self {
        let (dim, steps) = Self::shape_for(size);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut init = vec![0.0f32; dim * dim * Q];
        for cell in init.chunks_mut(Q) {
            let rho: f32 = rng.gen_range(0.8..1.2);
            let ux: f32 = rng.gen_range(-0.05..0.05);
            let uy: f32 = rng.gen_range(-0.05..0.05);
            for d in 0..Q {
                cell[d] = equilibrium(d, rho, ux, uy);
            }
        }
        Self {
            width: dim,
            height: dim,
            steps,
            init,
        }
    }

    /// Grid width in cells.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of time steps the instance runs.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Naive tier: AoS layout, periodic wrap computed per access, serial.
    // ninja-lint: variant(naive)
    pub fn run_naive(&self) -> Vec<f32> {
        let (w, h) = (self.width, self.height);
        let mut cur = self.init.clone();
        let mut next = vec![0.0f32; cur.len()];
        for _ in 0..self.steps {
            for y in 0..h {
                for x in 0..w {
                    let mut f = [0.0f32; Q];
                    for (d, &(ex, ey)) in E.iter().enumerate() {
                        let sx = wrap(x as i32 - ex, w);
                        let sy = wrap(y as i32 - ey, h);
                        f[d] = cur[(sy * w + sx) * Q + d];
                    }
                    let out = &mut next[(y * w + x) * Q..(y * w + x) * Q + Q];
                    collide(&f, out);
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        densities_aos(&cur, w * h)
    }

    /// Parallel tier: the naive cell update behind a row-parallel loop.
    // ninja-lint: variant(parallel)
    pub fn run_parallel(&self, pool: &ThreadPool) -> Vec<f32> {
        let (w, h) = (self.width, self.height);
        let mut cur = self.init.clone();
        let mut next = vec![0.0f32; cur.len()];
        for _ in 0..self.steps {
            {
                let src = &cur;
                par_chunks_mut(pool, &mut next, w * Q, |y, row| {
                    for x in 0..w {
                        let mut f = [0.0f32; Q];
                        for (d, &(ex, ey)) in E.iter().enumerate() {
                            let sx = wrap(x as i32 - ex, w);
                            let sy = wrap(y as i32 - ey, h);
                            f[d] = src[(sy * w + sx) * Q + d];
                        }
                        collide(&f, &mut row[x * Q..x * Q + Q]);
                    }
                });
            }
            std::mem::swap(&mut cur, &mut next);
        }
        densities_aos(&cur, w * h)
    }

    // ninja-lint: effort(simd, algorithmic, ninja)
    fn soa_init(&self) -> Vec<AlignedVec<f32>> {
        let cells = self.width * self.height;
        let mut planes: Vec<AlignedVec<f32>> = (0..Q).map(|_| AlignedVec::zeroed(cells)).collect();
        for c in 0..cells {
            for d in 0..Q {
                planes[d][c] = self.init[c * Q + d];
            }
        }
        planes
    }

    /// One SoA row update for `y`, cells `[x0, x1)`, scalar arithmetic.
    #[inline]
    // ninja-lint: effort(simd, algorithmic, ninja)
    fn soa_row_scalar(
        src: &[AlignedVec<f32>],
        dst_row: &mut [f32],
        plane_of: usize,
        w: usize,
        h: usize,
        y: usize,
        x0: usize,
        x1: usize,
        wrap_x: bool,
    ) {
        let (ex, ey) = E[plane_of];
        let sy = wrap(y as i32 - ey, h);
        let src_plane = &src[plane_of];
        if wrap_x {
            for x in x0..x1 {
                let sx = wrap(x as i32 - ex, w);
                dst_row[x] = src_plane[sy * w + sx];
            }
        } else {
            let base = (sy * w) as i32 - ex;
            for x in x0..x1 {
                dst_row[x] = src_plane[(base + x as i32) as usize];
            }
        }
    }

    /// Shared SoA step used by the simd/algorithmic/ninja tiers.
    ///
    /// `streamed` is scratch: Q planes holding post-stream values, then
    /// collided in a second fused loop over cells.
    // ninja-lint: effort(simd, algorithmic, ninja)
    fn soa_step(
        src: &[AlignedVec<f32>],
        streamed: &mut [AlignedVec<f32>],
        dst: &mut [AlignedVec<f32>],
        w: usize,
        h: usize,
        range: std::ops::Range<usize>,
        use_simd: bool,
    ) {
        // Stream: each plane is a shifted copy (interior unit-stride).
        for d in 0..Q {
            let (ex, _ey) = E[d];
            for y in range.clone() {
                let row = &mut streamed[d][y * w..(y + 1) * w];
                // Boundary columns wrap; interior is a straight copy.
                let lo = if ex > 0 { ex as usize } else { 0 };
                let hi = if ex < 0 { w - (-ex) as usize } else { w };
                if lo > 0 {
                    Self::soa_row_scalar(src, row, d, w, h, y, 0, lo, true);
                }
                if hi < w {
                    Self::soa_row_scalar(src, row, d, w, h, y, hi, w, true);
                }
                Self::soa_row_scalar(src, row, d, w, h, y, lo, hi, false);
            }
        }
        // Collide on unit-stride planes.
        for y in range {
            let base = y * w;
            if use_simd {
                let vec_w = w / 4 * 4;
                for x in (0..vec_w).step_by(4) {
                    let i = base + x;
                    let f: [F32x4; Q] =
                        std::array::from_fn(|d| F32x4::from_slice(&streamed[d][i..]));
                    let out = collide_v4(&f);
                    for d in 0..Q {
                        out[d].write_to_slice(&mut dst[d][i..]);
                    }
                }
                for x in vec_w..w {
                    let i = base + x;
                    let f: [f32; Q] = std::array::from_fn(|d| streamed[d][i]);
                    let mut out = [0.0f32; Q];
                    collide(&f, &mut out);
                    for d in 0..Q {
                        dst[d][i] = out[d];
                    }
                }
            } else {
                Self::collide_row_staged(streamed, dst, base, w);
            }
        }
    }

    /// Plane-staged collide over one row: computes the moment rows
    /// (`rho`, `ux`, `uy`) with plane-accumulation loops, then relaxes each
    /// plane with an elementwise pass — every loop is unit-stride scalar
    /// `f32` arithmetic an auto-vectorizer handles, with the identical
    /// operation order as [`collide`] so results match bitwise.
    // ninja-lint: effort(simd, algorithmic)
    fn collide_row_staged(
        streamed: &[AlignedVec<f32>],
        dst: &mut [AlignedVec<f32>],
        base: usize,
        w: usize,
    ) {
        let mut rho = [0.0f32; STAGE_ROW];
        let mut ux = [0.0f32; STAGE_ROW];
        let mut uy = [0.0f32; STAGE_ROW];
        let mut x0 = 0;
        while x0 < w {
            let n = STAGE_ROW.min(w - x0);
            let lo = base + x0;
            // Moments, accumulated plane by plane in direction order (the
            // same summation order as the scalar path).
            rho[..n].copy_from_slice(&streamed[0][lo..lo + n]);
            ux[..n].fill(0.0);
            uy[..n].fill(0.0);
            for d in 1..Q {
                let f = &streamed[d][lo..lo + n];
                for j in 0..n {
                    rho[j] += f[j];
                }
            }
            for d in 0..Q {
                let (ex, ey) = (E[d].0 as f32, E[d].1 as f32);
                let f = &streamed[d][lo..lo + n];
                for j in 0..n {
                    ux[j] += ex * f[j];
                    uy[j] += ey * f[j];
                }
            }
            for j in 0..n {
                let inv_rho = 1.0 / rho[j];
                ux[j] *= inv_rho;
                uy[j] *= inv_rho;
            }
            // Relax every plane with an elementwise pass.
            for d in 0..Q {
                let (ex, ey) = (E[d].0 as f32, E[d].1 as f32);
                let wq = W[d];
                let f = &streamed[d][lo..lo + n];
                let out = &mut dst[d][lo..lo + n];
                for j in 0..n {
                    let usq = ux[j] * ux[j] + uy[j] * uy[j];
                    let eu = ex * ux[j] + ey * uy[j];
                    let feq = wq * rho[j] * (1.0 + 3.0 * eu + 4.5 * eu * eu - 1.5 * usq);
                    out[j] = f[j] + OMEGA * (feq - f[j]);
                }
            }
            x0 += n;
        }
    }

    // ninja-lint: effort(simd, algorithmic, ninja)
    fn run_soa(&self, pool: Option<&ThreadPool>, use_simd: bool) -> Vec<f32> {
        let (w, h) = (self.width, self.height);
        let cells = w * h;
        let mut cur = self.soa_init();
        let mut streamed: Vec<AlignedVec<f32>> =
            (0..Q).map(|_| AlignedVec::zeroed(cells)).collect();
        let mut next: Vec<AlignedVec<f32>> = (0..Q).map(|_| AlignedVec::zeroed(cells)).collect();
        for _ in 0..self.steps {
            match pool {
                None => Self::soa_step(&cur, &mut streamed, &mut next, w, h, 0..h, use_simd),
                Some(pool) => {
                    // Parallelize over row bands; bands write disjoint rows
                    // of `streamed` and `next`, so share them via raw parts.
                    let src = &cur;
                    let streamed_ptr = PlanesPtr::new(&mut streamed);
                    let next_ptr = PlanesPtr::new(&mut next);
                    const BAND: usize = 8;
                    let bands = h.div_ceil(BAND);
                    pool.parallel_for(0..bands, 1, |r| {
                        for b in r {
                            let y0 = b * BAND;
                            let y1 = (y0 + BAND).min(h);
                            // SAFETY: bands cover disjoint row ranges.
                            let streamed = unsafe { streamed_ptr.planes() };
                            // SAFETY: same disjoint-rows argument as above.
                            let next = unsafe { next_ptr.planes() };
                            Self::soa_step(src, streamed, next, w, h, y0..y1, use_simd);
                        }
                    });
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        // Density in the same summation order as the AoS path.
        let mut rho = vec![0.0f32; cells];
        for (c, r) in rho.iter_mut().enumerate() {
            let f: [f32; Q] = std::array::from_fn(|d| cur[d][c]);
            *r = sum_q(&f);
        }
        rho
    }

    /// Compiler-vectorizable tier: SoA planes, interior/boundary split,
    /// serial.
    // ninja-lint: variant(simd)
    pub fn run_simd(&self) -> Vec<f32> {
        self.run_soa(None, false)
    }

    /// Low-effort endpoint: SoA + split + row-band parallelism.
    // ninja-lint: variant(algorithmic)
    pub fn run_algorithmic(&self, pool: &ThreadPool) -> Vec<f32> {
        self.run_soa(Some(pool), false)
    }

    /// Ninja tier: explicit 4-wide SIMD collide on SoA planes + threads.
    // ninja-lint: variant(ninja)
    pub fn run_ninja(&self, pool: &ThreadPool) -> Vec<f32> {
        self.run_soa(Some(pool), true)
    }
}

/// Shares `&mut [AlignedVec<f32>]` across a parallel region whose tasks
/// write disjoint row ranges.
struct PlanesPtr {
    ptr: *mut AlignedVec<f32>,
    len: usize,
}
// SAFETY: PlanesPtr is only handed to pool tasks that write disjoint row
// ranges of the planes; the pointer and length stay valid for the region.
unsafe impl Send for PlanesPtr {}
unsafe impl Sync for PlanesPtr {}
impl PlanesPtr {
    fn new(planes: &mut [AlignedVec<f32>]) -> Self {
        Self {
            ptr: planes.as_mut_ptr(),
            len: planes.len(),
        }
    }
    /// # Safety
    /// Callers must write disjoint element ranges per thread.
    #[allow(clippy::mut_from_ref)]
    unsafe fn planes(&self) -> &mut [AlignedVec<f32>] {
        // SAFETY: upheld by the caller per this function's contract; the
        // pointer/len came from a live `&mut [AlignedVec<f32>]` in `new`.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}

#[inline(always)]
// ninja-lint: effort(naive)
fn wrap(v: i32, n: usize) -> usize {
    let n = n as i32;
    (((v % n) + n) % n) as usize
}

/// Fixed-order 9-way sum, shared by every tier so densities agree bitwise.
#[inline(always)]
// ninja-lint: effort(naive)
fn sum_q(f: &[f32; Q]) -> f32 {
    let mut s = f[0];
    for d in 1..Q {
        s += f[d];
    }
    s
}

/// Equilibrium distribution for direction `d`.
#[inline(always)]
// ninja-lint: effort(naive)
fn equilibrium(d: usize, rho: f32, ux: f32, uy: f32) -> f32 {
    let (ex, ey) = E[d];
    let eu = ex as f32 * ux + ey as f32 * uy;
    let usq = ux * ux + uy * uy;
    W[d] * rho * (1.0 + 3.0 * eu + 4.5 * eu * eu - 1.5 * usq)
}

/// BGK collision: relax the streamed distributions toward equilibrium.
#[inline(always)]
// ninja-lint: effort(naive)
fn collide(f: &[f32; Q], out: &mut [f32]) {
    let rho = sum_q(f);
    let inv_rho = 1.0 / rho;
    let mut ux = 0.0f32;
    let mut uy = 0.0f32;
    for d in 0..Q {
        ux += E[d].0 as f32 * f[d];
        uy += E[d].1 as f32 * f[d];
    }
    ux *= inv_rho;
    uy *= inv_rho;
    let usq = ux * ux + uy * uy;
    for d in 0..Q {
        let (ex, ey) = E[d];
        let eu = ex as f32 * ux + ey as f32 * uy;
        let feq = W[d] * rho * (1.0 + 3.0 * eu + 4.5 * eu * eu - 1.5 * usq);
        out[d] = f[d] + OMEGA * (feq - f[d]);
    }
}

/// Vector mirror of [`collide`] with the identical operation order.
#[inline(always)]
// ninja-lint: effort(ninja)
fn collide_v4(f: &[F32x4; Q]) -> [F32x4; Q] {
    let mut rho = f[0];
    for d in 1..Q {
        rho += f[d];
    }
    let inv_rho = F32x4::splat(1.0) / rho;
    let mut ux = F32x4::zero();
    let mut uy = F32x4::zero();
    for d in 0..Q {
        ux += F32x4::splat(E[d].0 as f32) * f[d];
        uy += F32x4::splat(E[d].1 as f32) * f[d];
    }
    ux *= inv_rho;
    uy *= inv_rho;
    let usq = ux * ux + uy * uy;
    let one = F32x4::splat(1.0);
    let omega = F32x4::splat(OMEGA);
    std::array::from_fn(|d| {
        let (ex, ey) = E[d];
        let eu = F32x4::splat(ex as f32) * ux + F32x4::splat(ey as f32) * uy;
        let feq = F32x4::splat(W[d])
            * rho
            * (one + F32x4::splat(3.0) * eu + F32x4::splat(4.5) * eu * eu
                - F32x4::splat(1.5) * usq);
        f[d] + omega * (feq - f[d])
    })
}

// ninja-lint: effort(naive)
fn densities_aos(f: &[f32], cells: usize) -> Vec<f32> {
    let mut rho = vec![0.0f32; cells];
    for (c, r) in rho.iter_mut().enumerate() {
        let arr: [f32; Q] = std::array::from_fn(|d| f[c * Q + d]);
        *r = sum_q(&arr);
    }
    rho
}

fn run(k: &Lbm, variant: Variant, pool: &ThreadPool) -> Vec<f32> {
    match variant {
        Variant::Naive => k.run_naive(),
        Variant::Parallel => k.run_parallel(pool),
        Variant::Simd => k.run_simd(),
        Variant::Algorithmic => k.run_algorithmic(pool),
        Variant::Ninja => k.run_ninja(pool),
    }
}

fn work(k: &Lbm) -> Work {
    let cells = (k.width * k.height) as f64;
    let steps = k.steps as f64;
    Work {
        flops: cells * steps * 130.0,
        bytes: cells * steps * (Q as f64) * 8.0,
        elems: (k.width * k.height) as u64,
    }
}

/// Suite entry for the LBM kernel.
pub fn spec() -> KernelSpec {
    KernelSpec {
        name: "lbm",
        description: "D2Q9 lattice Boltzmann stream+collide (bandwidth bound)",
        bound: "memory",
        variants: [
            VariantInfo {
                variant: Variant::Naive,
                effort_loc: 0,
                what_changed: "AoS cells, modulo wrap per access, serial",
            },
            VariantInfo {
                variant: Variant::Parallel,
                effort_loc: 2,
                what_changed: "parallel_for over rows",
            },
            VariantInfo {
                variant: Variant::Simd,
                effort_loc: 30,
                what_changed: "AoS->SoA planes, interior/boundary split",
            },
            VariantInfo {
                variant: Variant::Algorithmic,
                effort_loc: 35,
                what_changed: "SoA + split + row-band parallelism",
            },
            VariantInfo {
                variant: Variant::Ninja,
                effort_loc: 95,
                what_changed: "explicit SIMD collide over SoA planes",
            },
        ],
        character: Characterization {
            flops_per_elem: 130.0,
            bytes_per_elem: 72.0,
            naive_simd_frac: 0.0,
            restructure_simd_frac: 0.95,
            simd_friendly_frac: 0.95,
            parallel_frac: 1.0,
            gather_per_elem: 0.0,
            algorithmic_factor: 1.4, // wrap hoisting + layout locality
            simd_efficiency: 0.9,
        },
        make: |size, seed| {
            Box::new(Adapter {
                kernel: Lbm::generate(size, seed),
                name: "lbm",
                tolerance: 1e-3,
                run,
                work,
                reference: None,
            }) as Box<dyn Instance>
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mass_is_conserved() {
        let k = Lbm::generate(ProblemSize::Test, 1);
        let before: f64 = k.init.iter().map(|&x| x as f64).sum();
        let after: f64 = k.run_naive().iter().map(|&x| x as f64).sum();
        let rel = (before - after).abs() / before;
        assert!(rel < 1e-4, "mass drift {rel}");
    }

    #[test]
    fn uniform_equilibrium_is_a_fixed_point() {
        let mut k = Lbm::generate(ProblemSize::Test, 2);
        for cell in k.init.chunks_mut(Q) {
            for d in 0..Q {
                cell[d] = equilibrium(d, 1.0, 0.0, 0.0);
            }
        }
        let rho = k.run_naive();
        for &r in rho.iter() {
            assert!((r - 1.0).abs() < 1e-5, "rho {r}");
        }
    }

    #[test]
    fn weights_sum_to_one() {
        let s: f32 = W.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        // And equilibrium reproduces rho.
        let f: [f32; Q] = std::array::from_fn(|d| equilibrium(d, 1.3, 0.02, -0.04));
        assert!((sum_q(&f) - 1.3).abs() < 1e-5);
    }

    #[test]
    fn collide_vector_matches_scalar() {
        let k = Lbm::generate(ProblemSize::Test, 3);
        let f4: [F32x4; Q] = std::array::from_fn(|d| {
            F32x4::new(
                k.init[d],
                k.init[Q + d],
                k.init[2 * Q + d],
                k.init[3 * Q + d],
            )
        });
        let got = collide_v4(&f4);
        for lane in 0..4 {
            let f: [f32; Q] = std::array::from_fn(|d| k.init[lane * Q + d]);
            let mut want = [0.0f32; Q];
            collide(&f, &mut want);
            for d in 0..Q {
                assert_eq!(got[d].lane(lane), want[d], "lane {lane} dir {d}");
            }
        }
    }

    #[test]
    fn all_variants_agree_with_naive() {
        let k = Lbm::generate(ProblemSize::Test, 4);
        let pool = ThreadPool::with_threads(2);
        let reference = k.run_naive();
        for (label, out) in [
            ("parallel", k.run_parallel(&pool)),
            ("simd", k.run_simd()),
            ("algorithmic", k.run_algorithmic(&pool)),
            ("ninja", k.run_ninja(&pool)),
        ] {
            for (i, (&a, &b)) in out.iter().zip(reference.iter()).enumerate() {
                let err = (a - b).abs() / b.abs().max(1.0);
                assert!(err < 1e-3, "{label}[{i}]: {a} vs {b}");
            }
        }
    }

    #[test]
    fn adapter_validates_all_variants() {
        let spec = spec();
        let pool = ThreadPool::with_threads(1);
        let mut inst = (spec.make)(ProblemSize::Test, 5);
        for v in Variant::ALL {
            inst.validate(v, &pool).unwrap();
        }
    }

    #[test]
    fn wrap_handles_negatives() {
        assert_eq!(wrap(-1, 8), 7);
        assert_eq!(wrap(8, 8), 0);
        assert_eq!(wrap(3, 8), 3);
        assert_eq!(wrap(-9, 8), 7);
    }

    #[test]
    fn momentum_is_conserved() {
        // BGK collisions conserve per-cell momentum and periodic streaming
        // permutes populations, so total momentum is invariant.
        let k = Lbm::generate(ProblemSize::Test, 9);
        let momentum = |f: &[f32]| {
            let mut mx = 0.0f64;
            let mut my = 0.0f64;
            for cell in f.chunks(Q) {
                for (d, &(ex, ey)) in E.iter().enumerate() {
                    mx += ex as f64 * cell[d] as f64;
                    my += ey as f64 * cell[d] as f64;
                }
            }
            (mx, my)
        };
        let (mx0, my0) = momentum(&k.init);
        // Re-run the naive stepper but keep the final distributions: easiest
        // is to step a copy manually using the same public pieces.
        let (w, h) = (k.width, k.height);
        let mut cur = k.init.clone();
        let mut next = vec![0.0f32; cur.len()];
        for _ in 0..k.steps {
            for y in 0..h {
                for x in 0..w {
                    let mut f = [0.0f32; Q];
                    for (d, &(ex, ey)) in E.iter().enumerate() {
                        let sx = wrap(x as i32 - ex, w);
                        let sy = wrap(y as i32 - ey, h);
                        f[d] = cur[(sy * w + sx) * Q + d];
                    }
                    collide(&f, &mut next[(y * w + x) * Q..(y * w + x) * Q + Q]);
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        let (mx1, my1) = momentum(&cur);
        let cells = (w * h) as f64;
        assert!((mx0 - mx1).abs() < 1e-3 * cells.sqrt(), "{mx0} vs {mx1}");
        assert!((my0 - my1).abs() < 1e-3 * cells.sqrt(), "{my0} vs {my1}");
    }
}
