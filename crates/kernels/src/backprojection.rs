//! BackProjection: parallel-beam CT image reconstruction.
//!
//! The paper's medical-imaging benchmark: accumulate, into every pixel of a
//! `P×P` image, the linearly interpolated sinogram sample each projection
//! angle maps it to. Per (pixel, angle): a rotation (`x·cosθ + y·sinθ`),
//! a `floor`, and a two-tap interpolation — an irregular (gathered) load
//! stream, which is why this kernel anchors the paper's hardware
//! gather/scatter discussion.
//!
//! Optimization story:
//! * **naive** — pixel-major loops recomputing the rotation per (pixel,
//!   angle) with bounds-checked sampling;
//! * **algorithmic** — loop interchange to angle-major with incremental
//!   detector coordinates (`t += cosθ` along a row): strength reduction
//!   plus clamp-free interior;
//! * **Ninja** — 4 pixels per instruction with explicit gathers for the
//!   interpolation taps.

use crate::framework::{
    Adapter, Characterization, Instance, KernelSpec, ProblemSize, Variant, VariantInfo, Work,
};
use ninja_parallel::{par_chunks_mut, ThreadPool};
use ninja_simd::{F32x4, I32x4};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A CT backprojection problem instance.
pub struct BackProjection {
    image_dim: usize,
    angles: usize,
    bins: usize,
    /// Sinogram, `angles` rows of `bins` detector samples.
    sino: Vec<f32>,
    cos_t: Vec<f32>,
    sin_t: Vec<f32>,
}

impl BackProjection {
    /// Image edge and angle count per preset.
    pub fn shape_for(size: ProblemSize) -> (usize, usize) {
        match size {
            ProblemSize::Test => (32, 24),
            ProblemSize::Quick => (256, 180),
            ProblemSize::Paper => (512, 360),
        }
    }

    /// Generates a deterministic random sinogram.
    pub fn generate(size: ProblemSize, seed: u64) -> Self {
        let (dim, angles) = Self::shape_for(size);
        let bins = dim * 3 / 2;
        let mut rng = SmallRng::seed_from_u64(seed);
        let sino = (0..angles * bins)
            .map(|_| rng.gen_range(0.0..1.0))
            .collect();
        let cos_t = (0..angles)
            .map(|a| (std::f32::consts::PI * a as f32 / angles as f32).cos())
            .collect();
        let sin_t = (0..angles)
            .map(|a| (std::f32::consts::PI * a as f32 / angles as f32).sin())
            .collect();
        Self {
            image_dim: dim,
            angles,
            bins,
            sino,
            cos_t,
            sin_t,
        }
    }

    /// Reconstructed image edge length.
    pub fn image_dim(&self) -> usize {
        self.image_dim
    }

    /// Number of projection angles.
    pub fn angles(&self) -> usize {
        self.angles
    }

    /// Clamped linear interpolation into one sinogram row.
    #[inline(always)]
    // ninja-lint: effort(naive)
    fn sample(&self, angle: usize, t: f32) -> f32 {
        let max = (self.bins - 2) as f32;
        let t = t.clamp(0.0, max);
        let it = t as usize;
        let ft = t - it as f32;
        let row = angle * self.bins;
        let a = self.sino[row + it];
        let b = self.sino[row + it + 1];
        a + (b - a) * ft
    }

    /// Detector coordinate for pixel center (x, y) at `angle`.
    #[inline(always)]
    // ninja-lint: effort(naive)
    fn detector_t(&self, angle: usize, x: usize, y: usize) -> f32 {
        let c = self.cos_t[angle];
        let s = self.sin_t[angle];
        let half = self.image_dim as f32 * 0.5;
        let px = x as f32 + 0.5 - half;
        let py = y as f32 + 0.5 - half;
        px * c + py * s + self.bins as f32 * 0.5
    }

    /// Naive tier: pixel-major, rotation recomputed per (pixel, angle).
    // ninja-lint: variant(naive)
    pub fn run_naive(&self) -> Vec<f32> {
        let d = self.image_dim;
        let mut img = vec![0.0f32; d * d];
        for y in 0..d {
            for x in 0..d {
                let mut acc = 0.0f32;
                for a in 0..self.angles {
                    acc += self.sample(a, self.detector_t(a, x, y));
                }
                img[y * d + x] = acc;
            }
        }
        img
    }

    /// Parallel tier: the naive pixel loop behind a row-parallel loop.
    // ninja-lint: variant(parallel)
    pub fn run_parallel(&self, pool: &ThreadPool) -> Vec<f32> {
        let d = self.image_dim;
        let mut img = vec![0.0f32; d * d];
        par_chunks_mut(pool, &mut img, d, |y, row| {
            for (x, o) in row.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for a in 0..self.angles {
                    acc += self.sample(a, self.detector_t(a, x, y));
                }
                *o = acc;
            }
        });
        img
    }

    /// One image row accumulated angle-by-angle with incremental `t`.
    ///
    /// `t(x) = t(0) + x·cosθ` — the strength-reduced form. Computed as
    /// `t0 + x*c` (not a running sum) so results match the naive rotation
    /// to rounding.
    #[inline]
    // ninja-lint: effort(simd, algorithmic)
    fn accumulate_row(&self, y: usize, row: &mut [f32]) {
        let d = self.image_dim;
        let half = d as f32 * 0.5;
        for a in 0..self.angles {
            let c = self.cos_t[a];
            let s = self.sin_t[a];
            let t0 = (0.5 - half) * c + (y as f32 + 0.5 - half) * s + self.bins as f32 * 0.5;
            for (x, o) in row.iter_mut().enumerate() {
                *o += self.sample(a, t0 + x as f32 * c);
            }
        }
    }

    /// Compiler tier: angle-major with incremental detector coordinates —
    /// the gathered interpolation still blocks auto-vectorization.
    // ninja-lint: variant(simd)
    // ninja-lint: allow(NL008, "gathered interpolation defeats the auto-vectorizer; scalar codegen here is the measured result")
    pub fn run_simd(&self) -> Vec<f32> {
        let d = self.image_dim;
        let mut img = vec![0.0f32; d * d];
        for y in 0..d {
            self.accumulate_row(y, &mut img[y * d..(y + 1) * d]);
        }
        img
    }

    /// Low-effort endpoint: angle-major strength reduction + row
    /// parallelism.
    // ninja-lint: variant(algorithmic)
    pub fn run_algorithmic(&self, pool: &ThreadPool) -> Vec<f32> {
        let d = self.image_dim;
        let mut img = vec![0.0f32; d * d];
        par_chunks_mut(pool, &mut img, d, |y, row| {
            self.accumulate_row(y, row);
        });
        img
    }

    /// Ninja tier: 4 pixels per step with explicit interpolation gathers.
    // ninja-lint: variant(ninja)
    pub fn run_ninja(&self, pool: &ThreadPool) -> Vec<f32> {
        let d = self.image_dim;
        let mut img = vec![0.0f32; d * d];
        let max_t = F32x4::splat((self.bins - 2) as f32);
        let zero = F32x4::zero();
        par_chunks_mut(pool, &mut img, d, |y, row| {
            let half = d as f32 * 0.5;
            let vec_d = d / 4 * 4;
            for a in 0..self.angles {
                let c = self.cos_t[a];
                let s = self.sin_t[a];
                let t0 = (0.5 - half) * c + (y as f32 + 0.5 - half) * s + self.bins as f32 * 0.5;
                let row_base = I32x4::splat((a * self.bins) as i32);
                let step = F32x4::splat(c);
                for x in (0..vec_d).step_by(4) {
                    let xs = F32x4::new(x as f32, x as f32 + 1.0, x as f32 + 2.0, x as f32 + 3.0);
                    let t = (F32x4::splat(t0) + xs * step).min(max_t).max(zero);
                    let it = t.floor();
                    let ft = t - it;
                    let idx = row_base + it.to_i32_trunc();
                    let lo = F32x4::gather(&self.sino, idx);
                    let hi = F32x4::gather(&self.sino, idx + I32x4::splat(1));
                    let sample = lo + (hi - lo) * ft;
                    let acc = F32x4::from_slice(&row[x..]) + sample;
                    acc.write_to_slice(&mut row[x..]);
                }
                for (x, o) in row.iter_mut().enumerate().skip(vec_d) {
                    *o += self.sample(a, t0 + x as f32 * c);
                }
            }
        });
        img
    }
}

fn run(k: &BackProjection, variant: Variant, pool: &ThreadPool) -> Vec<f32> {
    match variant {
        Variant::Naive => k.run_naive(),
        Variant::Parallel => k.run_parallel(pool),
        Variant::Simd => k.run_simd(),
        Variant::Algorithmic => k.run_algorithmic(pool),
        Variant::Ninja => k.run_ninja(pool),
    }
}

fn work(k: &BackProjection) -> Work {
    let d = k.image_dim as f64;
    let a = k.angles as f64;
    Work {
        flops: d * d * a * 10.0,
        bytes: d * d * a * 8.0,
        elems: (k.image_dim * k.image_dim) as u64,
    }
}

/// Suite entry for the BackProjection kernel.
pub fn spec() -> KernelSpec {
    KernelSpec {
        name: "backprojection",
        description: "parallel-beam CT backprojection (compute bound, gather heavy)",
        bound: "compute",
        variants: [
            VariantInfo {
                variant: Variant::Naive,
                effort_loc: 0,
                what_changed: "pixel-major, rotation per (pixel, angle)",
            },
            VariantInfo {
                variant: Variant::Parallel,
                effort_loc: 2,
                what_changed: "parallel_for over image rows",
            },
            VariantInfo {
                variant: Variant::Simd,
                effort_loc: 12,
                what_changed: "angle-major loops, incremental detector coordinate",
            },
            VariantInfo {
                variant: Variant::Algorithmic,
                effort_loc: 14,
                what_changed: "strength reduction + row parallelism",
            },
            VariantInfo {
                variant: Variant::Ninja,
                effort_loc: 75,
                what_changed: "4-pixel SIMD with explicit interpolation gathers",
            },
        ],
        character: Characterization {
            flops_per_elem: 10.0 * 360.0,
            bytes_per_elem: 12.0,
            naive_simd_frac: 0.0,
            restructure_simd_frac: 0.3,
            simd_friendly_frac: 0.9,
            parallel_frac: 1.0,
            gather_per_elem: 2.0 * 360.0,
            algorithmic_factor: 1.5, // strength reduction saves the rotation
            simd_efficiency: 0.85,
        },
        make: |size, seed| {
            Box::new(Adapter {
                kernel: BackProjection::generate(size, seed),
                name: "backprojection",
                tolerance: 2e-3,
                run,
                work,
                reference: None,
            }) as Box<dyn Instance>
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_sinogram_gives_uniform_image() {
        let mut k = BackProjection::generate(ProblemSize::Test, 1);
        k.sino.iter_mut().for_each(|v| *v = 1.0);
        let img = k.run_naive();
        for &p in img.iter() {
            assert!((p - k.angles as f32).abs() < 1e-3, "pixel {p}");
        }
    }

    #[test]
    fn detector_t_is_centered() {
        let k = BackProjection::generate(ProblemSize::Test, 2);
        // The image-center pixel projects to the detector center for every
        // angle (up to the half-pixel offset).
        let mid = k.image_dim / 2;
        for a in 0..k.angles {
            let t = k.detector_t(a, mid, mid);
            assert!((t - k.bins as f32 * 0.5).abs() < 1.0, "angle {a}: t={t}");
        }
    }

    #[test]
    fn sample_interpolates_linearly() {
        let mut k = BackProjection::generate(ProblemSize::Test, 3);
        let row = 2;
        k.sino[row * k.bins + 5] = 1.0;
        k.sino[row * k.bins + 6] = 3.0;
        assert!((k.sample(row, 5.0) - 1.0).abs() < 1e-6);
        assert!((k.sample(row, 5.5) - 2.0).abs() < 1e-6);
        assert!((k.sample(row, 6.0) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn sample_clamps_out_of_range() {
        let k = BackProjection::generate(ProblemSize::Test, 4);
        let lo = k.sample(0, -100.0);
        let hi = k.sample(0, 1e9);
        assert_eq!(lo, k.sample(0, 0.0));
        assert_eq!(hi, k.sample(0, (k.bins - 2) as f32));
    }

    #[test]
    fn all_variants_agree_with_naive() {
        let k = BackProjection::generate(ProblemSize::Test, 5);
        let pool = ThreadPool::with_threads(2);
        let reference = k.run_naive();
        for (label, out) in [
            ("parallel", k.run_parallel(&pool)),
            ("simd", k.run_simd()),
            ("algorithmic", k.run_algorithmic(&pool)),
            ("ninja", k.run_ninja(&pool)),
        ] {
            for (i, (&a, &b)) in out.iter().zip(reference.iter()).enumerate() {
                let err = (a - b).abs() / b.abs().max(1.0);
                assert!(err < 2e-3, "{label}[{i}]: {a} vs {b}");
            }
        }
    }

    #[test]
    fn adapter_validates_all_variants() {
        let spec = spec();
        let pool = ThreadPool::with_threads(1);
        let mut inst = (spec.make)(ProblemSize::Test, 6);
        for v in Variant::ALL {
            inst.validate(v, &pool).unwrap();
        }
    }

    #[test]
    fn backprojection_is_linear_in_the_sinogram() {
        let base = BackProjection::generate(ProblemSize::Test, 9);
        let mut scaled = BackProjection::generate(ProblemSize::Test, 9);
        scaled.sino.iter_mut().for_each(|v| *v *= 2.0);
        let a = base.run_naive();
        let b = scaled.run_naive();
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((2.0 * x - y).abs() < 1e-3 * y.abs().max(1.0));
        }
    }
}
