//! MergeSort: sorting a large array of 32-bit floats.
//!
//! The paper's sorting benchmark (Chhugani et al.'s SIMD merge sort is the
//! Ninja reference). The ladder:
//!
//! * **naive** — textbook top-down recursion, allocating a fresh vector in
//!   every merge;
//! * **parallel** — the same recursion forked with `join`;
//! * **simd** — restructured serial code (insertion-sort base case,
//!   branch-light merge) — the compiler still cannot vectorize a
//!   data-dependent merge, so the gain is small (the paper's point: sorting
//!   *needs* an algorithmic change);
//! * **algorithmic** — iterative bottom-up merge with one ping-pong buffer,
//!   chunk-parallel sort + parallel pairwise merge rounds;
//! * **ninja** — the same parallel structure with a 4×4 **bitonic merge
//!   network** in the inner loop.

use crate::framework::{
    Adapter, Characterization, Instance, KernelSpec, ProblemSize, Variant, VariantInfo, Work,
};
use ninja_parallel::{par_chunks_mut, ThreadPool};
use ninja_simd::{F32x4, Mask32x4};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Run length below which insertion sort beats merging.
const INSERTION_CUTOFF: usize = 16;
/// Sub-problem size below which the parallel recursion stays serial.
const JOIN_CUTOFF: usize = 8192;

/// A sorting problem instance.
pub struct MergeSort {
    data: Vec<f32>,
}

impl MergeSort {
    /// Element count for each size preset.
    pub fn n_for(size: ProblemSize) -> usize {
        match size {
            ProblemSize::Test => 10_000,
            ProblemSize::Quick => 1 << 20,
            ProblemSize::Paper => 1 << 22,
        }
    }

    /// Generates a deterministic random array (with duplicates).
    pub fn generate(size: ProblemSize, seed: u64) -> Self {
        let n = Self::n_for(size);
        let mut rng = SmallRng::seed_from_u64(seed);
        let data = (0..n).map(|_| rng.gen_range(-1e6..1e6_f32)).collect();
        Self { data }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if there is nothing to sort.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Naive tier: textbook top-down merge sort, fresh allocation per merge.
    // ninja-lint: variant(naive)
    pub fn run_naive(&self) -> Vec<f32> {
        fn msort(v: &[f32]) -> Vec<f32> {
            if v.len() <= 1 {
                return v.to_vec();
            }
            let mid = v.len() / 2;
            let left = msort(&v[..mid]);
            let right = msort(&v[mid..]);
            let mut out = vec![0.0f32; v.len()];
            merge_scalar(&left, &right, &mut out);
            out
        }
        msort(&self.data)
    }

    /// Parallel tier: the naive recursion forked with `join`.
    // ninja-lint: variant(parallel)
    pub fn run_parallel(&self, pool: &ThreadPool) -> Vec<f32> {
        fn msort(pool: &ThreadPool, v: &[f32]) -> Vec<f32> {
            if v.len() <= 1 {
                return v.to_vec();
            }
            let mid = v.len() / 2;
            let (left, right) = if v.len() >= JOIN_CUTOFF {
                pool.join(|| msort(pool, &v[..mid]), || msort(pool, &v[mid..]))
            } else {
                (msort(pool, &v[..mid]), msort(pool, &v[mid..]))
            };
            let mut out = vec![0.0f32; v.len()];
            merge_scalar(&left, &right, &mut out);
            out
        }
        msort(pool, &self.data)
    }

    /// Compiler-friendly tier: serial recursion with an insertion-sort base
    /// case and a tighter merge loop — still not vectorizable.
    // ninja-lint: variant(simd)
    // ninja-lint: allow(NL008, "data-dependent merge order cannot auto-vectorize; the ninja rung's bitonic network is the vector answer")
    pub fn run_simd(&self) -> Vec<f32> {
        let mut buf = self.data.clone();
        let mut tmp = vec![0.0f32; buf.len()];
        bottom_up_sort(&mut buf, &mut tmp, merge_scalar);
        buf
    }

    /// Low-effort endpoint: bottom-up ping-pong sort, chunk-parallel with
    /// parallel merge rounds (scalar merges).
    // ninja-lint: variant(algorithmic)
    pub fn run_algorithmic(&self, pool: &ThreadPool) -> Vec<f32> {
        parallel_sort(pool, self.data.clone(), merge_scalar)
    }

    /// Ninja tier: the parallel structure plus the 4×4 bitonic SIMD merge
    /// network in every merge.
    // ninja-lint: variant(ninja)
    pub fn run_ninja(&self, pool: &ThreadPool) -> Vec<f32> {
        parallel_sort(pool, self.data.clone(), merge_simd)
    }
}

/// Classic two-pointer scalar merge of sorted `a` and `b` into `out`.
///
/// # Panics
///
/// Debug-panics if `a.len() + b.len() != out.len()`.
// ninja-lint: effort(naive)
pub fn merge_scalar(a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len() + b.len(), out.len());
    let (mut ia, mut ib) = (0, 0);
    for o in out.iter_mut() {
        if ia < a.len() && (ib >= b.len() || a[ia] <= b[ib]) {
            *o = a[ia];
            ia += 1;
        } else {
            *o = b[ib];
            ib += 1;
        }
    }
}

/// Sorts a bitonic 4-sequence ascending (two compare-exchange stages).
#[inline(always)]
// ninja-lint: effort(ninja)
fn bitonic_sort4(t: F32x4) -> F32x4 {
    let blend_low2 = Mask32x4::from_bools(true, true, false, false);
    let blend_even = Mask32x4::from_bools(true, false, true, false);
    // Distance-2 stage.
    let u = t.swap_halves();
    let t = blend_low2.select(t.min(u), t.max(u));
    // Distance-1 stage.
    let u = t.swap_pairs();
    blend_even.select(t.min(u), t.max(u))
}

/// Merges two ascending 4-vectors into an ascending 8-sequence `(lo, hi)`.
#[inline(always)]
// ninja-lint: effort(ninja)
fn bitonic_merge4(a: F32x4, b: F32x4) -> (F32x4, F32x4) {
    let b = b.reverse_lanes(); // concat(a, rev(b)) is bitonic
    let lo = bitonic_sort4(a.min(b));
    let hi = bitonic_sort4(a.max(b));
    (lo, hi)
}

/// SIMD merge: streams 4-vectors through the bitonic network, refilling
/// from whichever run has the smaller next head; finishes with a scalar
/// 3-way merge of the in-flight vector and both tails.
///
/// # Panics
///
/// Debug-panics if `a.len() + b.len() != out.len()`.
// ninja-lint: effort(ninja)
pub fn merge_simd(a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len() + b.len(), out.len());
    if a.len() < 8 || b.len() < 8 {
        return merge_scalar(a, b, out);
    }
    let mut ia = 4usize;
    let mut ib = 4usize;
    let mut io = 0usize;
    let mut va = F32x4::from_slice(a);
    let vb = F32x4::from_slice(b);
    let mut inflight = vb;
    // Invariant: va holds the 4 smallest unwritten elements' candidates;
    // every written element <= everything still unmerged.
    loop {
        let (lo, hi) = bitonic_merge4(va, inflight);
        lo.write_to_slice(&mut out[io..]);
        io += 4;
        va = hi;
        // Refill strictly from the run whose next element is globally
        // smallest; if that run cannot supply a full block, fall through to
        // the scalar tail (streaming the *other* run instead would emit
        // values larger than the exhausted run's remainder).
        let a_next = a.get(ia).copied().unwrap_or(f32::INFINITY);
        let b_next = b.get(ib).copied().unwrap_or(f32::INFINITY);
        if a_next <= b_next {
            if ia + 4 > a.len() {
                break;
            }
            inflight = F32x4::from_slice(&a[ia..]);
            ia += 4;
        } else {
            if ib + 4 > b.len() {
                break;
            }
            inflight = F32x4::from_slice(&b[ib..]);
            ib += 4;
        }
    }
    // Scalar 3-way merge of the spilled register and both tails.
    let mut spill = [0.0f32; 4];
    va.write_to_slice(&mut spill);
    let mut is = 0usize;
    while io < out.len() {
        let sa = if ia < a.len() { a[ia] } else { f32::INFINITY };
        let sb = if ib < b.len() { b[ib] } else { f32::INFINITY };
        let ss = if is < 4 { spill[is] } else { f32::INFINITY };
        if ss <= sa && ss <= sb {
            out[io] = ss;
            is += 1;
        } else if sa <= sb {
            out[io] = sa;
            ia += 1;
        } else {
            out[io] = sb;
            ib += 1;
        }
        io += 1;
    }
}

// ninja-lint: effort(simd, algorithmic, ninja)
fn insertion_sort(v: &mut [f32]) {
    for i in 1..v.len() {
        let x = v[i];
        let mut j = i;
        while j > 0 && v[j - 1] > x {
            v[j] = v[j - 1];
            j -= 1;
        }
        v[j] = x;
    }
}

type MergeFn = fn(&[f32], &[f32], &mut [f32]);

/// Serial bottom-up merge sort with one ping-pong buffer.
// ninja-lint: effort(simd, algorithmic, ninja)
fn bottom_up_sort(buf: &mut [f32], tmp: &mut [f32], merge: MergeFn) {
    bottom_up_sort_with_cutoff(buf, tmp, merge, INSERTION_CUTOFF)
}

/// Serial bottom-up merge sort with a configurable insertion-sort base
/// case — exposed for the blocking-size ablation bench (experiment A1).
///
/// # Panics
///
/// Panics if `cutoff == 0` or `tmp.len() != buf.len()`.
// ninja-lint: effort(simd, algorithmic, ninja)
pub fn bottom_up_sort_with_cutoff(buf: &mut [f32], tmp: &mut [f32], merge: MergeFn, cutoff: usize) {
    assert!(cutoff > 0, "cutoff must be positive");
    assert_eq!(buf.len(), tmp.len(), "scratch must match input length");
    let n = buf.len();
    for chunk in buf.chunks_mut(cutoff) {
        insertion_sort(chunk);
    }
    let mut width = cutoff;
    let mut in_buf = true; // current data lives in `buf`
    while width < n {
        {
            let (src, dst): (&[f32], &mut [f32]) = if in_buf {
                (&*buf, &mut *tmp)
            } else {
                (&*tmp, &mut *buf)
            };
            let mut lo = 0;
            while lo < n {
                let mid = (lo + width).min(n);
                let hi = (lo + 2 * width).min(n);
                if mid < hi {
                    merge(&src[lo..mid], &src[mid..hi], &mut dst[lo..hi]);
                } else {
                    dst[lo..hi].copy_from_slice(&src[lo..hi]);
                }
                lo = hi;
            }
        }
        in_buf = !in_buf;
        width *= 2;
    }
    if !in_buf {
        buf.copy_from_slice(tmp);
    }
}

/// Chunk-parallel sort followed by parallel pairwise merge rounds.
// ninja-lint: effort(algorithmic, ninja)
fn parallel_sort(pool: &ThreadPool, mut buf: Vec<f32>, merge: MergeFn) -> Vec<f32> {
    let n = buf.len();
    if n <= 2 * JOIN_CUTOFF || pool.num_threads() == 1 {
        let mut tmp = vec![0.0f32; n];
        bottom_up_sort(&mut buf, &mut tmp, merge);
        return buf;
    }
    let chunks = (pool.num_threads() * 4)
        .next_power_of_two()
        .min((n / JOIN_CUTOFF).next_power_of_two());
    let chunk_len = n.div_ceil(chunks);

    par_chunks_mut(pool, &mut buf, chunk_len, |_, c| {
        let mut tmp = vec![0.0f32; c.len()];
        bottom_up_sort(c, &mut tmp, merge);
    });

    let mut tmp = vec![0.0f32; n];
    let mut width = chunk_len;
    let mut cur_is_buf = true;
    while width < n {
        {
            let (src, dst): (&[f32], &mut [f32]) = if cur_is_buf {
                (&buf, &mut tmp)
            } else {
                (&tmp, &mut buf)
            };
            par_chunks_mut(pool, dst, 2 * width, |pair_idx, out| {
                let lo = pair_idx * 2 * width;
                let mid = (lo + width).min(n);
                let hi = (lo + out.len()).min(n);
                if mid < hi {
                    merge(&src[lo..mid], &src[mid..hi], out);
                } else {
                    out.copy_from_slice(&src[lo..hi]);
                }
            });
        }
        cur_is_buf = !cur_is_buf;
        width *= 2;
    }
    if cur_is_buf {
        buf
    } else {
        tmp
    }
}

fn run(k: &MergeSort, variant: Variant, pool: &ThreadPool) -> Vec<f32> {
    match variant {
        Variant::Naive => k.run_naive(),
        Variant::Parallel => k.run_parallel(pool),
        Variant::Simd => k.run_simd(),
        Variant::Algorithmic => k.run_algorithmic(pool),
        Variant::Ninja => k.run_ninja(pool),
    }
}

fn work(k: &MergeSort) -> Work {
    let n = k.len() as f64;
    let levels = n.log2().ceil();
    Work {
        flops: n * levels, // one compare per element per level
        bytes: n * levels * 8.0,
        elems: k.len() as u64,
    }
}

/// Suite entry for the MergeSort kernel.
pub fn spec() -> KernelSpec {
    KernelSpec {
        name: "mergesort",
        description: "large-array float sort (bandwidth bound, SIMD merge network showcase)",
        bound: "memory",
        variants: [
            VariantInfo {
                variant: Variant::Naive,
                effort_loc: 0,
                what_changed: "top-down recursion, allocation per merge",
            },
            VariantInfo {
                variant: Variant::Parallel,
                effort_loc: 4,
                what_changed: "fork the recursion with join",
            },
            VariantInfo {
                variant: Variant::Simd,
                effort_loc: 12,
                what_changed: "iterative bottom-up, insertion base (compiler still scalar)",
            },
            VariantInfo {
                variant: Variant::Algorithmic,
                effort_loc: 45,
                what_changed: "ping-pong buffer, chunk-parallel + parallel merge rounds",
            },
            VariantInfo {
                variant: Variant::Ninja,
                effort_loc: 130,
                what_changed: "4x4 bitonic SIMD merge network in the inner loop",
            },
        ],
        character: Characterization {
            flops_per_elem: 22.0,
            bytes_per_elem: 176.0,
            naive_simd_frac: 0.0,
            restructure_simd_frac: 0.0,
            simd_friendly_frac: 0.85,
            parallel_frac: 0.95,
            gather_per_elem: 0.0,
            algorithmic_factor: 1.8, // allocation removal + bottom-up locality
            simd_efficiency: 0.7,
        },
        make: |size, seed| {
            Box::new(Adapter {
                kernel: MergeSort::generate(size, seed),
                name: "mergesort",
                tolerance: 0.0,
                run,
                work,
                reference: None,
            }) as Box<dyn Instance>
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_copy(v: &[f32]) -> Vec<f32> {
        let mut s = v.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s
    }

    #[test]
    fn bitonic_merge_handles_all_interleavings() {
        let a = F32x4::new(1.0, 3.0, 5.0, 7.0);
        let b = F32x4::new(2.0, 4.0, 6.0, 8.0);
        let (lo, hi) = bitonic_merge4(a, b);
        assert_eq!(lo.to_array(), [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(hi.to_array(), [5.0, 6.0, 7.0, 8.0]);
        // Degenerate: all of b below a.
        let (lo, hi) = bitonic_merge4(F32x4::new(10.0, 11.0, 12.0, 13.0), b);
        assert_eq!(lo.to_array(), [2.0, 4.0, 6.0, 8.0]);
        assert_eq!(hi.to_array(), [10.0, 11.0, 12.0, 13.0]);
        // Duplicates.
        let d = F32x4::splat(5.0);
        let (lo, hi) = bitonic_merge4(d, d);
        assert_eq!(lo.to_array(), [5.0; 4]);
        assert_eq!(hi.to_array(), [5.0; 4]);
    }

    #[test]
    fn simd_merge_matches_scalar_merge() {
        let mut rng = SmallRng::seed_from_u64(99);
        for (la, lb) in [
            (8, 8),
            (16, 4),
            (4, 16),
            (32, 7),
            (7, 32),
            (100, 100),
            (9, 64),
        ] {
            let mut a: Vec<f32> = (0..la).map(|_| rng.gen_range(-100.0..100.0)).collect();
            let mut b: Vec<f32> = (0..lb).map(|_| rng.gen_range(-100.0..100.0)).collect();
            a.sort_by(|x, y| x.partial_cmp(y).unwrap());
            b.sort_by(|x, y| x.partial_cmp(y).unwrap());
            let mut got = vec![0.0f32; la + lb];
            let mut want = vec![0.0f32; la + lb];
            merge_simd(&a, &b, &mut got);
            merge_scalar(&a, &b, &mut want);
            assert_eq!(got, want, "sizes ({la},{lb})");
        }
    }

    #[test]
    fn simd_merge_exhaustion_regression() {
        // Found by proptest: when one run is nearly exhausted, the vector
        // loop must not keep streaming the other run past the exhausted
        // run's remaining (smaller) elements.
        let a: Vec<f32> = vec![0.0; 9]; // only 1 element left once ia == 8
        let mut b: Vec<f32> = vec![0.0; 8];
        b.extend([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let mut got = vec![0.0f32; a.len() + b.len()];
        let mut want = vec![0.0f32; a.len() + b.len()];
        merge_simd(&a, &b, &mut got);
        merge_scalar(&a, &b, &mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn all_variants_sort_correctly() {
        let k = MergeSort::generate(ProblemSize::Test, 3);
        let pool = ThreadPool::with_threads(3);
        let want = sorted_copy(&k.data);
        assert_eq!(k.run_naive(), want, "naive");
        assert_eq!(k.run_parallel(&pool), want, "parallel");
        assert_eq!(k.run_simd(), want, "simd");
        assert_eq!(k.run_algorithmic(&pool), want, "algorithmic");
        assert_eq!(k.run_ninja(&pool), want, "ninja");
    }

    #[test]
    fn sorting_preserves_multiset() {
        let k = MergeSort::generate(ProblemSize::Test, 8);
        let pool = ThreadPool::with_threads(2);
        let out = k.run_ninja(&pool);
        let mut orig = k.data.clone();
        let mut sorted = out.clone();
        orig.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(orig, sorted);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn tiny_and_empty_inputs() {
        for n in [0usize, 1, 2, 3, 15, 17] {
            let mut k = MergeSort::generate(ProblemSize::Test, 1);
            k.data.truncate(n);
            let want = sorted_copy(&k.data);
            let pool = ThreadPool::with_threads(2);
            assert_eq!(k.run_naive(), want, "naive n={n}");
            assert_eq!(k.run_simd(), want, "simd n={n}");
            assert_eq!(k.run_ninja(&pool), want, "ninja n={n}");
        }
    }

    #[test]
    fn adapter_validates_all_variants() {
        let spec = spec();
        let pool = ThreadPool::with_threads(2);
        let mut inst = (spec.make)(ProblemSize::Test, 5);
        for v in Variant::ALL {
            inst.validate(v, &pool).unwrap();
        }
    }
}
