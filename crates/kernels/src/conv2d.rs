//! 2D convolution: a 5×5 stencil over a large single-channel image.
//!
//! The paper's image-processing representative. The naive version tests
//! image bounds inside the innermost tap loop, which blocks vectorization;
//! the **algorithmic change** is the classic interior/boundary split (peel
//! the 2-pixel border, run branch-free code on the interior), after which
//! the compiler vectorizes across `x`. Ninja code issues explicit 4-wide
//! loads with register-blocked tap accumulation.
//!
//! Boundary semantics: zero padding outside the image.

use crate::framework::{
    Adapter, Characterization, Instance, KernelSpec, ProblemSize, Variant, VariantInfo, Work,
};
use ninja_parallel::{par_chunks_mut, ThreadPool};
use ninja_simd::F32x4;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Stencil radius (5×5 kernel).
pub const R: usize = 2;
/// Stencil diameter.
pub const K: usize = 2 * R + 1;

/// A 5×5 convolution problem instance.
pub struct Conv2d {
    width: usize,
    height: usize,
    image: Vec<f32>,
    taps: [[f32; K]; K],
}

impl Conv2d {
    /// Image edge length for each size preset (square images).
    pub fn dim_for(size: ProblemSize) -> usize {
        match size {
            ProblemSize::Test => 64,
            ProblemSize::Quick => 1024,
            ProblemSize::Paper => 2048,
        }
    }

    /// Generates a deterministic random image and kernel.
    pub fn generate(size: ProblemSize, seed: u64) -> Self {
        let dim = Self::dim_for(size);
        let mut rng = SmallRng::seed_from_u64(seed);
        let image = (0..dim * dim).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mut taps = [[0.0f32; K]; K];
        for row in taps.iter_mut() {
            for t in row.iter_mut() {
                *t = rng.gen_range(-0.5..0.5);
            }
        }
        Self {
            width: dim,
            height: dim,
            image,
            taps,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    #[inline]
    // ninja-lint: effort(naive)
    fn pixel_checked(&self, x: isize, y: isize) -> f32 {
        if x < 0 || y < 0 || x >= self.width as isize || y >= self.height as isize {
            0.0
        } else {
            self.image[y as usize * self.width + x as usize]
        }
    }

    #[inline]
    // ninja-lint: effort(naive)
    fn convolve_checked(&self, x: usize, y: usize) -> f32 {
        let mut acc = 0.0f32;
        for ky in 0..K {
            for kx in 0..K {
                let sx = x as isize + kx as isize - R as isize;
                let sy = y as isize + ky as isize - R as isize;
                acc += self.taps[ky][kx] * self.pixel_checked(sx, sy);
            }
        }
        acc
    }

    /// Naive tier: bounds check inside the innermost tap loop, serial.
    // ninja-lint: variant(naive)
    pub fn run_naive(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.width * self.height];
        for y in 0..self.height {
            for x in 0..self.width {
                out[y * self.width + x] = self.convolve_checked(x, y);
            }
        }
        out
    }

    /// Parallel tier: naive per-pixel code behind a row-parallel loop.
    // ninja-lint: variant(parallel)
    pub fn run_parallel(&self, pool: &ThreadPool) -> Vec<f32> {
        let w = self.width;
        let mut out = vec![0.0f32; w * self.height];
        par_chunks_mut(pool, &mut out, w, |y, row| {
            for (x, o) in row.iter_mut().enumerate() {
                *o = self.convolve_checked(x, y);
            }
        });
        out
    }

    /// Computes one interior row (no bounds checks) into `row`.
    ///
    /// `row[x]` for `x` in `[R, w-R)` is written with branch-free code; the
    /// border pixels of the row use the checked path.
    #[inline]
    // ninja-lint: effort(simd, algorithmic)
    fn interior_row(&self, y: usize, row: &mut [f32]) {
        let w = self.width;
        for x in 0..R {
            row[x] = self.convolve_checked(x, y);
            row[w - 1 - x] = self.convolve_checked(w - 1 - x, y);
        }
        for x in R..w - R {
            let mut acc = 0.0f32;
            for ky in 0..K {
                let base = (y + ky - R) * w + x - R;
                let line = &self.image[base..base + K];
                let t = &self.taps[ky];
                acc += t[0] * line[0]
                    + t[1] * line[1]
                    + t[2] * line[2]
                    + t[3] * line[3]
                    + t[4] * line[4];
            }
            row[x] = acc;
        }
    }

    /// Compiler-vectorizable tier: interior/boundary split, serial.
    // ninja-lint: variant(simd)
    pub fn run_simd(&self) -> Vec<f32> {
        let w = self.width;
        let mut out = vec![0.0f32; w * self.height];
        for y in 0..self.height {
            let row = &mut out[y * w..(y + 1) * w];
            if y < R || y >= self.height - R {
                for (x, o) in row.iter_mut().enumerate() {
                    *o = self.convolve_checked(x, y);
                }
            } else {
                self.interior_row(y, row);
            }
        }
        out
    }

    /// Low-effort endpoint: interior/boundary split plus row parallelism.
    // ninja-lint: variant(algorithmic)
    pub fn run_algorithmic(&self, pool: &ThreadPool) -> Vec<f32> {
        let w = self.width;
        let h = self.height;
        let mut out = vec![0.0f32; w * h];
        par_chunks_mut(pool, &mut out, w, |y, row| {
            if y < R || y >= h - R {
                for (x, o) in row.iter_mut().enumerate() {
                    *o = self.convolve_checked(x, y);
                }
            } else {
                self.interior_row(y, row);
            }
        });
        out
    }

    /// Ninja tier: explicit 4-wide SIMD across `x` with all 25 taps
    /// register-blocked, row-parallel.
    // ninja-lint: variant(ninja)
    pub fn run_ninja(&self, pool: &ThreadPool) -> Vec<f32> {
        let w = self.width;
        let h = self.height;
        let mut out = vec![0.0f32; w * h];
        par_chunks_mut(pool, &mut out, w, |y, row| {
            if y < R || y >= h - R {
                for (x, o) in row.iter_mut().enumerate() {
                    *o = self.convolve_checked(x, y);
                }
                return;
            }
            for x in 0..R {
                row[x] = self.convolve_checked(x, y);
                row[w - 1 - x] = self.convolve_checked(w - 1 - x, y);
            }
            let interior_end = w - R;
            let mut x = R;
            while x + 4 <= interior_end {
                let mut acc = F32x4::zero();
                for ky in 0..K {
                    let base = (y + ky - R) * w + x - R;
                    let t = &self.taps[ky];
                    acc = F32x4::splat(t[0]).mul_add(F32x4::from_slice(&self.image[base..]), acc);
                    acc =
                        F32x4::splat(t[1]).mul_add(F32x4::from_slice(&self.image[base + 1..]), acc);
                    acc =
                        F32x4::splat(t[2]).mul_add(F32x4::from_slice(&self.image[base + 2..]), acc);
                    acc =
                        F32x4::splat(t[3]).mul_add(F32x4::from_slice(&self.image[base + 3..]), acc);
                    acc =
                        F32x4::splat(t[4]).mul_add(F32x4::from_slice(&self.image[base + 4..]), acc);
                }
                acc.write_to_slice(&mut row[x..]);
                x += 4;
            }
            while x < interior_end {
                row[x] = self.convolve_checked(x, y);
                x += 1;
            }
        });
        out
    }
}

fn run(k: &Conv2d, variant: Variant, pool: &ThreadPool) -> Vec<f32> {
    match variant {
        Variant::Naive => k.run_naive(),
        Variant::Parallel => k.run_parallel(pool),
        Variant::Simd => k.run_simd(),
        Variant::Algorithmic => k.run_algorithmic(pool),
        Variant::Ninja => k.run_ninja(pool),
    }
}

fn work(k: &Conv2d) -> Work {
    let n = (k.width * k.height) as f64;
    Work {
        flops: n * (K * K) as f64 * 2.0,
        bytes: n * 8.0,
        elems: (k.width * k.height) as u64,
    }
}

/// Suite entry for the 2D convolution kernel.
pub fn spec() -> KernelSpec {
    KernelSpec {
        name: "conv2d",
        description: "5x5 image convolution (compute bound, boundary-split showcase)",
        bound: "compute",
        variants: [
            VariantInfo {
                variant: Variant::Naive,
                effort_loc: 0,
                what_changed: "bounds check inside the tap loop, serial",
            },
            VariantInfo {
                variant: Variant::Parallel,
                effort_loc: 2,
                what_changed: "parallel_for over rows",
            },
            VariantInfo {
                variant: Variant::Simd,
                effort_loc: 18,
                what_changed: "interior/boundary split, unrolled constant taps",
            },
            VariantInfo {
                variant: Variant::Algorithmic,
                effort_loc: 20,
                what_changed: "interior split + row parallelism",
            },
            VariantInfo {
                variant: Variant::Ninja,
                effort_loc: 80,
                what_changed: "hand SIMD across x, 25 taps register-blocked",
            },
        ],
        character: Characterization {
            flops_per_elem: (K * K) as f64 * 2.0,
            bytes_per_elem: 8.0,
            naive_simd_frac: 0.0,
            restructure_simd_frac: 0.98,
            simd_friendly_frac: 0.98,
            parallel_frac: 1.0,
            gather_per_elem: 0.0,
            algorithmic_factor: 1.3, // hoisting the bounds checks also wins scalar time
            simd_efficiency: 1.0,
        },
        make: |size, seed| {
            Box::new(Adapter {
                kernel: Conv2d::generate(size, seed),
                name: "conv2d",
                tolerance: 1e-4,
                run,
                work,
                reference: None,
            }) as Box<dyn Instance>
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_is_identity_on_interior() {
        let mut k = Conv2d::generate(ProblemSize::Test, 1);
        k.taps = [[0.0; K]; K];
        k.taps[R][R] = 1.0;
        let out = k.run_naive();
        for y in R..k.height - R {
            for x in R..k.width - R {
                assert_eq!(out[y * k.width + x], k.image[y * k.width + x]);
            }
        }
    }

    #[test]
    fn zero_padding_at_corner() {
        let mut k = Conv2d::generate(ProblemSize::Test, 2);
        k.taps = [[1.0; K]; K];
        let out = k.run_naive();
        // Top-left pixel sees only the 3x3 in-bounds quadrant.
        let mut want = 0.0;
        for y in 0..=R {
            for x in 0..=R {
                want += k.image[y * k.width + x];
            }
        }
        assert!((out[0] - want).abs() < 1e-5);
    }

    #[test]
    fn all_variants_agree_with_naive() {
        let k = Conv2d::generate(ProblemSize::Test, 3);
        let pool = ThreadPool::with_threads(2);
        let reference = k.run_naive();
        for (label, out) in [
            ("parallel", k.run_parallel(&pool)),
            ("simd", k.run_simd()),
            ("algorithmic", k.run_algorithmic(&pool)),
            ("ninja", k.run_ninja(&pool)),
        ] {
            assert_eq!(out.len(), reference.len(), "{label}");
            for (i, (&a, &b)) in out.iter().zip(reference.iter()).enumerate() {
                let err = (a - b).abs() / b.abs().max(1.0);
                assert!(err < 1e-4, "{label}[{i}]: {a} vs {b}");
            }
        }
    }

    #[test]
    fn adapter_validates_all_variants() {
        let spec = spec();
        let pool = ThreadPool::with_threads(1);
        for v in Variant::ALL {
            (spec.make)(ProblemSize::Test, 4)
                .validate(v, &pool)
                .unwrap();
        }
    }

    #[test]
    fn convolution_is_linear_in_the_taps() {
        let base = Conv2d::generate(ProblemSize::Test, 9);
        let mut scaled = Conv2d::generate(ProblemSize::Test, 9);
        for row in scaled.taps.iter_mut() {
            for t in row.iter_mut() {
                *t *= 3.0;
            }
        }
        let out1 = base.run_naive();
        let out3 = scaled.run_naive();
        for (a, b) in out1.iter().zip(out3.iter()) {
            assert!((3.0 * a - b).abs() < 1e-4 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn uniform_image_uniform_kernel_gives_flat_interior() {
        let mut k = Conv2d::generate(ProblemSize::Test, 10);
        k.image.iter_mut().for_each(|p| *p = 2.0);
        k.taps = [[0.04; K]; K]; // sums to 1
        let out = k.run_ninja(&ThreadPool::with_threads(1));
        for y in R..k.height - R {
            for x in R..k.width - R {
                let v = out[y * k.width + x];
                assert!((v - 2.0).abs() < 1e-4, "interior {v}");
            }
        }
    }
}
