//! Complex 1D convolution: a 16-tap complex FIR filter over a long signal.
//!
//! The paper's poster child for **AoS→SoA conversion**: complex numbers
//! stored as `{re, im}` structs defeat the vectorizer (the real/imaginary
//! cross terms become strided accesses), while split `re[]`/`im[]` arrays
//! make the filter a pure streaming kernel.
//!
//! `out[i] = Σ_k taps[k] · sig[i+k]` (complex multiply-accumulate, "valid"
//! mode: the output is `N − K + 1` samples long).

use crate::framework::{
    Adapter, Characterization, Instance, KernelSpec, ProblemSize, Variant, VariantInfo, Work,
};
use ninja_parallel::{par_chunks_mut, ThreadPool};
use ninja_simd::isa::{dispatch, Isa, IsaOp, SimdF32};
use ninja_simd::AlignedVec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of filter taps (the paper uses short FIR filters of this order).
pub const TAPS: usize = 16;

/// A complex sample in the naive array-of-structs layout.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

/// A complex FIR filtering problem instance.
///
/// The tap array is deliberately a runtime-sized `Vec` (as real filter code
/// reads coefficients from a file): with a compile-time-sized array, LLVM
/// fully unrolls and SLP-vectorizes even the "naive" AoS loop, which would
/// erase the baseline the paper defines.
pub struct Conv1d {
    signal: Vec<Complex>,
    taps: Vec<Complex>,
    // SoA mirrors, cache-line aligned for the explicit-SIMD tier.
    sig_re: AlignedVec<f32>,
    sig_im: AlignedVec<f32>,
}

impl Conv1d {
    /// Signal length for each size preset.
    pub fn n_for(size: ProblemSize) -> usize {
        match size {
            ProblemSize::Test => 4096,
            ProblemSize::Quick => 1 << 20,
            ProblemSize::Paper => 1 << 22,
        }
    }

    /// Generates a deterministic random signal and filter.
    pub fn generate(size: ProblemSize, seed: u64) -> Self {
        let n = Self::n_for(size);
        let mut rng = SmallRng::seed_from_u64(seed);
        let sample = |rng: &mut SmallRng| Complex {
            re: rng.gen_range(-1.0..1.0),
            im: rng.gen_range(-1.0..1.0),
        };
        let signal: Vec<Complex> = (0..n).map(|_| sample(&mut rng)).collect();
        let taps: Vec<Complex> = (0..TAPS).map(|_| sample(&mut rng)).collect();
        let sig_re: AlignedVec<f32> = signal.iter().map(|c| c.re).collect();
        let sig_im: AlignedVec<f32> = signal.iter().map(|c| c.im).collect();
        Self {
            signal,
            taps,
            sig_re,
            sig_im,
        }
    }

    /// Output length (`N − K + 1`).
    pub fn out_len(&self) -> usize {
        self.signal.len() - TAPS + 1
    }

    /// Naive tier: serial AoS complex MAC loop.
    // ninja-lint: variant(naive)
    pub fn run_naive(&self) -> Vec<f32> {
        let m = self.out_len();
        let mut out = vec![0.0f32; 2 * m];
        for i in 0..m {
            let mut acc = Complex::default();
            for (k, t) in self.taps.iter().enumerate() {
                let s = self.signal[i + k];
                acc.re += t.re * s.re - t.im * s.im;
                acc.im += t.re * s.im + t.im * s.re;
            }
            out[2 * i] = acc.re;
            out[2 * i + 1] = acc.im;
        }
        out
    }

    /// Parallel tier: naive loop behind a `parallel_for`.
    // ninja-lint: variant(parallel)
    pub fn run_parallel(&self, pool: &ThreadPool) -> Vec<f32> {
        let m = self.out_len();
        let mut out = vec![0.0f32; 2 * m];
        par_chunks_mut(pool, &mut out, 2 * 8192, |chunk_idx, chunk| {
            let base = chunk_idx * 8192;
            for (j, pair) in chunk.chunks_mut(2).enumerate() {
                let i = base + j;
                let mut acc = Complex::default();
                for (k, t) in self.taps.iter().enumerate() {
                    let s = self.signal[i + k];
                    acc.re += t.re * s.re - t.im * s.im;
                    acc.im += t.re * s.im + t.im * s.re;
                }
                pair[0] = acc.re;
                pair[1] = acc.im;
            }
        });
        out
    }

    /// Fills SoA outputs for `i` in `[lo, hi)` with a vectorizable loop
    /// (tap-outer, sample-inner; unit-stride float arithmetic only).
    #[inline]
    // ninja-lint: effort(simd, algorithmic)
    fn soa_range(&self, lo: usize, hi: usize, out_re: &mut [f32], out_im: &mut [f32]) {
        out_re.fill(0.0);
        out_im.fill(0.0);
        let n = out_re.len();
        let out_im = &mut out_im[..n];
        for (k, t) in self.taps.iter().enumerate() {
            let (tr, ti) = (t.re, t.im);
            // Slice every stream to the common length up front: one bounds
            // check per tap instead of one per sample, so the inner loop is
            // panic-free and the auto-vectorizer can turn it into packed
            // FMAs (with per-sample checks LLVM emits scalar code — caught
            // by the NL008 asm audit).
            let sr = &self.sig_re[lo + k..hi + k][..n];
            let si = &self.sig_im[lo + k..hi + k][..n];
            for j in 0..n {
                out_re[j] += tr * sr[j] - ti * si[j];
                out_im[j] += tr * si[j] + ti * sr[j];
            }
        }
    }

    /// Compiler-vectorizable tier: serial SoA, tap-outer streaming loops.
    // ninja-lint: variant(simd)
    pub fn run_simd(&self) -> Vec<f32> {
        let m = self.out_len();
        let mut re = vec![0.0f32; m];
        let mut im = vec![0.0f32; m];
        self.soa_range(0, m, &mut re, &mut im);
        interleave(&re, &im)
    }

    /// Low-effort endpoint: SoA streaming loops plus `parallel_for`.
    // ninja-lint: variant(algorithmic)
    pub fn run_algorithmic(&self, pool: &ThreadPool) -> Vec<f32> {
        let m = self.out_len();
        let mut re = vec![0.0f32; m];
        let mut im = vec![0.0f32; m];
        let this = self;
        ninja_parallel::par_zip_chunks_mut(pool, &mut re, &mut im, 8192, |chunk_idx, cre, cim| {
            let lo = chunk_idx * 8192;
            this.soa_range(lo, lo + cre.len(), cre, cim);
        });
        interleave(&re, &im)
    }

    /// Ninja tier: explicit width-generic SIMD complex MAC in the
    /// tap-outer streaming form (unit-stride loads, two read-modify-write
    /// streams), parallel over output blocks. The ISA backend is
    /// dispatched *inside* each worker closure because `#[target_feature]`
    /// trampolines do not cross thread boundaries (see
    /// `ninja_simd::isa::dispatch`).
    // ninja-lint: variant(ninja)
    pub fn run_ninja(&self, pool: &ThreadPool) -> Vec<f32> {
        let m = self.out_len();
        let mut re = vec![0.0f32; m];
        let mut im = vec![0.0f32; m];
        let this = self;
        ninja_parallel::par_zip_chunks_mut(pool, &mut re, &mut im, 8192, |chunk_idx, cre, cim| {
            dispatch(ConvChunk {
                kernel: this,
                lo: chunk_idx * 8192,
                out_re: cre,
                out_im: cim,
            });
        });
        interleave(&re, &im)
    }
}

/// One output chunk of the ninja rung's complex MAC, evaluated under
/// whichever ISA backend the dispatcher selects.
struct ConvChunk<'a> {
    kernel: &'a Conv1d,
    /// First output sample index covered by this chunk.
    lo: usize,
    out_re: &'a mut [f32],
    out_im: &'a mut [f32],
}

impl IsaOp for ConvChunk<'_> {
    type Output = ();
    // ninja-lint: effort(ninja)
    fn run<I: Isa>(self) {
        let lanes = <I::F32 as SimdF32>::LANES;
        let this = self.kernel;
        let (lo, cre, cim) = (self.lo, self.out_re, self.out_im);
        let len = cre.len();
        // Hoist the broadcast tap registers out of the hot loops (the
        // register type depends on the instantiated backend, so the splat
        // happens per chunk — 16 splats against 8192 samples).
        let taps_v: Vec<(I::F32, I::F32)> = this
            .taps
            .iter()
            .map(|t| (I::F32::splat(t.re), I::F32::splat(t.im)))
            .collect();
        let vec_len = len / lanes * lanes;
        let vec_len2 = len / (2 * lanes) * (2 * lanes);
        for j in (0..vec_len2).step_by(2 * lanes) {
            let i = lo + j;
            // Two interleaved accumulator pairs hide the FMA latency.
            let mut re0 = I::F32::zero();
            let mut im0 = I::F32::zero();
            let mut re1 = I::F32::zero();
            let mut im1 = I::F32::zero();
            for (k, &(tr, ti)) in taps_v.iter().enumerate() {
                let sr0 = I::F32::load(&this.sig_re[i + k..]);
                let si0 = I::F32::load(&this.sig_im[i + k..]);
                let sr1 = I::F32::load(&this.sig_re[i + k + lanes..]);
                let si1 = I::F32::load(&this.sig_im[i + k + lanes..]);
                re0 = tr.mul_add(sr0, re0) - ti * si0;
                im0 = tr.mul_add(si0, im0) + ti * sr0;
                re1 = tr.mul_add(sr1, re1) - ti * si1;
                im1 = tr.mul_add(si1, im1) + ti * sr1;
            }
            re0.store(&mut cre[j..]);
            im0.store(&mut cim[j..]);
            re1.store(&mut cre[j + lanes..]);
            im1.store(&mut cim[j + lanes..]);
        }
        for j in (vec_len2..vec_len).step_by(lanes) {
            let i = lo + j;
            let mut acc_re = I::F32::zero();
            let mut acc_im = I::F32::zero();
            for (k, &(tr, ti)) in taps_v.iter().enumerate() {
                let sr = I::F32::load(&this.sig_re[i + k..]);
                let si = I::F32::load(&this.sig_im[i + k..]);
                acc_re = tr.mul_add(sr, acc_re) - ti * si;
                acc_im = tr.mul_add(si, acc_im) + ti * sr;
            }
            acc_re.store(&mut cre[j..]);
            acc_im.store(&mut cim[j..]);
        }
        // Masked tail: partial loads of the remaining samples (inactive
        // lanes read as zero and contribute nothing), partial stores of
        // the remaining outputs. The source windows end exactly at the
        // last sample the active lanes touch.
        if vec_len < len {
            let n = len - vec_len;
            let i = lo + vec_len;
            let mut acc_re = I::F32::zero();
            let mut acc_im = I::F32::zero();
            for (k, &(tr, ti)) in taps_v.iter().enumerate() {
                let sr = I::F32::load_partial(&this.sig_re[i + k..i + k + n]);
                let si = I::F32::load_partial(&this.sig_im[i + k..i + k + n]);
                acc_re = tr.mul_add(sr, acc_re) - ti * si;
                acc_im = tr.mul_add(si, acc_im) + ti * sr;
            }
            acc_re.store_partial(&mut cre[vec_len..]);
            acc_im.store_partial(&mut cim[vec_len..]);
        }
    }
}

fn interleave(re: &[f32], im: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; 2 * re.len()];
    for i in 0..re.len() {
        out[2 * i] = re[i];
        out[2 * i + 1] = im[i];
    }
    out
}

fn run(k: &Conv1d, variant: Variant, pool: &ThreadPool) -> Vec<f32> {
    match variant {
        Variant::Naive => k.run_naive(),
        Variant::Parallel => k.run_parallel(pool),
        Variant::Simd => k.run_simd(),
        Variant::Algorithmic => k.run_algorithmic(pool),
        Variant::Ninja => k.run_ninja(pool),
    }
}

fn work(k: &Conv1d) -> Work {
    let m = k.out_len() as f64;
    Work {
        flops: m * (TAPS as f64) * 8.0,
        bytes: m * 16.0,
        elems: k.out_len() as u64,
    }
}

/// Suite entry for the complex 1D convolution kernel.
pub fn spec() -> KernelSpec {
    KernelSpec {
        name: "conv1d",
        description: "16-tap complex FIR filter (compute bound, AoS->SoA showcase)",
        bound: "compute",
        variants: [
            VariantInfo {
                variant: Variant::Naive,
                effort_loc: 0,
                what_changed: "serial AoS complex MAC",
            },
            VariantInfo {
                variant: Variant::Parallel,
                effort_loc: 2,
                what_changed: "parallel_for over outputs",
            },
            VariantInfo {
                variant: Variant::Simd,
                effort_loc: 14,
                what_changed: "split re/im arrays, tap-outer streaming loops",
            },
            VariantInfo {
                variant: Variant::Algorithmic,
                effort_loc: 16,
                what_changed: "SoA streaming + parallel_for",
            },
            VariantInfo {
                variant: Variant::Ninja,
                effort_loc: 65,
                what_changed: "hand SIMD complex MAC, register accumulators",
            },
        ],
        character: Characterization {
            flops_per_elem: TAPS as f64 * 8.0,
            bytes_per_elem: 16.0,
            naive_simd_frac: 0.0,
            restructure_simd_frac: 1.0,
            simd_friendly_frac: 1.0,
            parallel_frac: 1.0,
            gather_per_elem: 0.0,
            algorithmic_factor: 1.0,
            simd_efficiency: 1.0,
        },
        make: |size, seed| {
            Box::new(Adapter {
                kernel: Conv1d::generate(size, seed),
                name: "conv1d",
                tolerance: 1e-4,
                run,
                work,
                reference: None,
            }) as Box<dyn Instance>
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_filter_passes_signal_through() {
        let mut k = Conv1d::generate(ProblemSize::Test, 1);
        k.taps = vec![Complex::default(); TAPS];
        k.taps[0] = Complex { re: 1.0, im: 0.0 };
        let out = k.run_naive();
        for i in 0..k.out_len() {
            assert_eq!(out[2 * i], k.signal[i].re);
            assert_eq!(out[2 * i + 1], k.signal[i].im);
        }
    }

    #[test]
    fn multiply_by_i_rotates() {
        let mut k = Conv1d::generate(ProblemSize::Test, 2);
        k.taps = vec![Complex::default(); TAPS];
        k.taps[0] = Complex { re: 0.0, im: 1.0 }; // i * (a+bi) = -b + ai
        let out = k.run_naive();
        for i in 0..8 {
            assert_eq!(out[2 * i], -k.signal[i].im);
            assert_eq!(out[2 * i + 1], k.signal[i].re);
        }
    }

    #[test]
    fn all_variants_agree_with_naive() {
        let k = Conv1d::generate(ProblemSize::Test, 3);
        let pool = ThreadPool::with_threads(2);
        let reference = k.run_naive();
        for (label, out) in [
            ("parallel", k.run_parallel(&pool)),
            ("simd", k.run_simd()),
            ("algorithmic", k.run_algorithmic(&pool)),
            ("ninja", k.run_ninja(&pool)),
        ] {
            assert_eq!(out.len(), reference.len(), "{label}");
            for (i, (&a, &b)) in out.iter().zip(reference.iter()).enumerate() {
                let err = (a - b).abs() / b.abs().max(1.0);
                assert!(err < 1e-4, "{label}[{i}]: {a} vs {b}");
            }
        }
    }

    /// The Test preset's output length (4081) is odd, so every vector
    /// backend hits the masked-tail path in the same run.
    #[test]
    fn ninja_rung_agrees_under_every_reachable_backend() {
        use ninja_simd::isa::{available_kinds, dispatch_on};
        let k = Conv1d::generate(ProblemSize::Test, 9);
        let reference = k.run_naive();
        let m = k.out_len();
        assert_eq!(m % 8, 1, "preset must exercise the masked tail");
        for kind in available_kinds() {
            let mut re = vec![0.0f32; m];
            let mut im = vec![0.0f32; m];
            dispatch_on(
                kind,
                ConvChunk {
                    kernel: &k,
                    lo: 0,
                    out_re: &mut re,
                    out_im: &mut im,
                },
            );
            let out = interleave(&re, &im);
            for (i, (&a, &b)) in out.iter().zip(reference.iter()).enumerate() {
                let err = (a - b).abs() / b.abs().max(1.0);
                assert!(err < 1e-4, "{kind}[{i}]: {a} vs {b} (err {err})");
            }
        }
    }

    #[test]
    fn output_length_is_valid_mode() {
        let k = Conv1d::generate(ProblemSize::Test, 4);
        assert_eq!(k.out_len(), Conv1d::n_for(ProblemSize::Test) - TAPS + 1);
        assert_eq!(k.run_naive().len(), 2 * k.out_len());
    }

    #[test]
    fn adapter_validates_all_variants() {
        let spec = spec();
        let pool = ThreadPool::with_threads(1);
        let mut inst = (spec.make)(ProblemSize::Test, 6);
        for v in Variant::ALL {
            inst.validate(v, &pool).unwrap();
        }
    }
}
