//! Libor: Monte-Carlo LIBOR market-model pricing (Giles' benchmark).
//!
//! Each path evolves a curve of forward rates through `NMAT` exercise dates
//! under log-normal dynamics (one `exp` per rate per step), then discounts
//! a caplet portfolio along the evolved curve. Thousands of independent
//! paths make this the paper's Monte-Carlo representative.
//!
//! Optimization story:
//! * **naive** — one path at a time, `f64`, libm `exp`;
//! * **algorithmic change** — lay the computation out *across paths*
//!   (path-SoA): a group of paths advances in lock-step so the inner loops
//!   become lane-parallel straight-line `f32` arithmetic with inlined
//!   polynomial `exp`;
//! * **Ninja** — explicit 4-wide SIMD across paths with the vector `exp`.

use crate::framework::{
    Adapter, Characterization, Instance, KernelSpec, ProblemSize, Variant, VariantInfo, Work,
};
use crate::scalar_math::exp_poly;
use ninja_parallel::{par_chunks_mut, ThreadPool};
use ninja_simd::isa::{dispatch, math as vmath, Isa, IsaOp, SimdF32, Sse2, MAX_ISA_F32_LANES};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of forward rates on the curve.
pub const N_RATES: usize = 40;
/// Number of exercise dates each path steps through.
pub const NMAT: usize = 20;
/// Accrual period (years).
const DELTA: f32 = 0.25;
/// Caplet strike.
const STRIKE: f32 = 0.05;
/// Path-group width for the lane-parallel tiers.
const GROUP: usize = 8;

/// A LIBOR Monte-Carlo pricing instance.
pub struct Libor {
    paths: usize,
    init_rates: [f32; N_RATES],
    vols: [f32; NMAT],
    /// Standard normals, path-major: `z[p * NMAT + n]`.
    z: Vec<f32>,
    /// The same normals, step-major: `zt[n * paths + p]` (the path-SoA
    /// layout the restructured tiers use).
    zt: Vec<f32>,
}

impl Libor {
    /// Path count per preset.
    pub fn paths_for(size: ProblemSize) -> usize {
        match size {
            ProblemSize::Test => 256,
            ProblemSize::Quick => 16_384,
            ProblemSize::Paper => 65_536,
        }
    }

    /// Generates a deterministic instance (curve, vols, Gaussian draws).
    pub fn generate(size: ProblemSize, seed: u64) -> Self {
        let paths = Self::paths_for(size);
        let mut rng = SmallRng::seed_from_u64(seed);
        let init_rates = std::array::from_fn(|i| 0.04 + 0.005 * (i % 5) as f32);
        let vols = std::array::from_fn(|i| 0.15 + 0.01 * (i % 4) as f32);
        // Box-Muller standard normals.
        let mut z = Vec::with_capacity(paths * NMAT);
        while z.len() < paths * NMAT {
            let u1: f32 = rng.gen_range(1e-7..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let (s, c) = (2.0 * std::f32::consts::PI * u2).sin_cos();
            z.push(r * c);
            if z.len() < paths * NMAT {
                z.push(r * s);
            }
        }
        let mut zt = vec![0.0f32; paths * NMAT];
        for p in 0..paths {
            for n in 0..NMAT {
                zt[n * paths + p] = z[p * NMAT + n];
            }
        }
        Self {
            paths,
            init_rates,
            vols,
            z,
            zt,
        }
    }

    /// Number of Monte-Carlo paths.
    pub fn paths(&self) -> usize {
        self.paths
    }

    /// Evolves and prices one path in `f64` (the naive arithmetic).
    // ninja-lint: effort(naive)
    fn path_value_f64(&self, p: usize) -> f32 {
        let delta = DELTA as f64;
        let mut l = [0.0f64; N_RATES];
        for (li, &r0) in l.iter_mut().zip(self.init_rates.iter()) {
            *li = r0 as f64;
        }
        for n in 0..NMAT {
            let sqez = delta.sqrt() * self.z[p * NMAT + n] as f64;
            let mut v = 0.0f64;
            for i in n + 1..N_RATES {
                let lam = self.vols[(i - n - 1).min(NMAT - 1)] as f64;
                let con1 = delta * lam;
                v += con1 * l[i] / (1.0 + delta * l[i]);
                let vrat = (con1 * v + lam * (sqez - 0.5 * con1)).exp();
                l[i] *= vrat;
            }
        }
        // Caplet portfolio discounted along the evolved curve.
        let mut b = 1.0f64;
        let mut acc = 0.0f64;
        for li in l.iter().skip(NMAT) {
            b /= 1.0 + delta * li;
            acc += b * delta * (li - STRIKE as f64).max(0.0);
        }
        (acc * 100.0) as f32
    }

    /// Naive tier: serial, one `f64` path at a time.
    // ninja-lint: variant(naive)
    pub fn run_naive(&self) -> Vec<f32> {
        (0..self.paths).map(|p| self.path_value_f64(p)).collect()
    }

    /// Parallel tier: the naive path loop behind a `parallel_for`.
    // ninja-lint: variant(parallel)
    pub fn run_parallel(&self, pool: &ThreadPool) -> Vec<f32> {
        let mut out = vec![0.0f32; self.paths];
        par_chunks_mut(pool, &mut out, 512, |chunk_idx, chunk| {
            let base = chunk_idx * 512;
            for (j, o) in chunk.iter_mut().enumerate() {
                *o = self.path_value_f64(base + j);
            }
        });
        out
    }

    /// Advances a group of exactly `GROUP` paths in lock-step with
    /// constant-trip-count `f32` lane loops — the auto-vectorizable
    /// path-SoA form (a runtime trip count would block unrolling).
    // ninja-lint: effort(simd, algorithmic)
    fn group_values_f32(&self, group_base: usize, out: &mut [f32]) {
        assert_eq!(out.len(), GROUP, "group_values_f32 needs a full group");
        let mut l = [[0.0f32; GROUP]; N_RATES];
        for (i, row) in l.iter_mut().enumerate() {
            row.fill(self.init_rates[i]);
        }
        let sqrt_delta = DELTA.sqrt();
        let mut sqez = [0.0f32; GROUP];
        let mut v = [0.0f32; GROUP];
        for n in 0..NMAT {
            let zrow = &self.zt[n * self.paths + group_base..n * self.paths + group_base + GROUP];
            for lane in 0..GROUP {
                sqez[lane] = sqrt_delta * zrow[lane];
            }
            v.fill(0.0);
            for i in n + 1..N_RATES {
                let lam = self.vols[(i - n - 1).min(NMAT - 1)];
                let con1 = DELTA * lam;
                let li = &mut l[i];
                for lane in 0..GROUP {
                    v[lane] += con1 * li[lane] / (1.0 + DELTA * li[lane]);
                    let vrat = exp_poly(con1 * v[lane] + lam * (sqez[lane] - 0.5 * con1));
                    li[lane] *= vrat;
                }
            }
        }
        let mut b = [1.0f32; GROUP];
        let mut acc = [0.0f32; GROUP];
        for row in l.iter().skip(NMAT) {
            for lane in 0..GROUP {
                b[lane] /= 1.0 + DELTA * row[lane];
                acc[lane] += b[lane] * DELTA * (row[lane] - STRIKE).max(0.0);
            }
        }
        for lane in 0..GROUP {
            out[lane] = acc[lane] * 100.0;
        }
    }

    /// Compiler tier: serial path-SoA groups, inlined polynomial `exp`.
    ///
    /// # Panics
    ///
    /// Panics if the path count is not a multiple of the group width (all
    /// size presets are).
    // ninja-lint: variant(simd)
    pub fn run_simd(&self) -> Vec<f32> {
        assert_eq!(
            self.paths % GROUP,
            0,
            "path count must be a multiple of {GROUP}"
        );
        let mut out = vec![0.0f32; self.paths];
        for (g, chunk) in out.chunks_mut(GROUP).enumerate() {
            self.group_values_f32(g * GROUP, chunk);
        }
        out
    }

    /// Low-effort endpoint: path-SoA groups in parallel.
    // ninja-lint: variant(algorithmic)
    pub fn run_algorithmic(&self, pool: &ThreadPool) -> Vec<f32> {
        let mut out = vec![0.0f32; self.paths];
        par_chunks_mut(pool, &mut out, GROUP, |g, chunk| {
            self.group_values_f32(g * GROUP, chunk);
        });
        out
    }

    /// Ninja tier: one vector group of paths per instruction with the
    /// width-generic vector `exp` — 4 paths per step under SSE2/NEON, 8
    /// under AVX2 — parallel over path blocks. The ISA backend is
    /// dispatched *inside* each worker closure because `#[target_feature]`
    /// trampolines do not cross thread boundaries (see
    /// `ninja_simd::isa::dispatch`).
    ///
    /// # Panics
    ///
    /// Panics if the path count is not a multiple of the widest lane
    /// count (all presets are).
    // ninja-lint: variant(ninja)
    pub fn run_ninja(&self, pool: &ThreadPool) -> Vec<f32> {
        assert_eq!(
            self.paths % MAX_ISA_F32_LANES,
            0,
            "path count must be a multiple of {MAX_ISA_F32_LANES}"
        );
        let mut out = vec![0.0f32; self.paths];
        // A block is many groups under every backend; it must stay a
        // multiple of the widest lane count so each dispatched chunk
        // divides evenly into groups.
        const BLOCK: usize = 8 * MAX_ISA_F32_LANES;
        par_chunks_mut(pool, &mut out, BLOCK, |b, chunk| {
            dispatch(PathBlock {
                kernel: self,
                base: b * BLOCK,
                out: chunk,
            });
        });
        out
    }
}

/// One block of Monte-Carlo paths priced group-by-group under whichever
/// ISA backend the dispatcher selects.
struct PathBlock<'a> {
    kernel: &'a Libor,
    /// First path index covered by `out`.
    base: usize,
    out: &'a mut [f32],
}

impl IsaOp for PathBlock<'_> {
    type Output = ();
    fn run<I: Isa>(self) {
        let lanes = <I::F32 as SimdF32>::LANES;
        debug_assert_eq!(self.out.len() % lanes, 0);
        let k = self.kernel;
        for (g, chunk) in self.out.chunks_mut(lanes).enumerate() {
            let base = self.base + g * lanes;
            // The step-major draws for this group start at path `base`;
            // step `n` of lane `j` sits `n * paths + j` further on.
            price_paths_group::<I>(&k.init_rates, &k.vols, &k.zt[base..], k.paths, chunk);
        }
    }
}

/// Advances one vector group of paths in lock-step with explicit SIMD
/// and the vector `exp`, written once against the width-generic [`Isa`]
/// trait — the ninja rung's arithmetic at any lane width. `zs` holds the
/// group's standard normals with draw `n` of lane `j` at
/// `zs[n * stride + j]`; `out` receives one price per lane.
// ninja-lint: effort(ninja)
fn price_paths_group<I: Isa>(
    init_rates: &[f32; N_RATES],
    vols: &[f32; NMAT],
    zs: &[f32],
    stride: usize,
    out: &mut [f32],
) {
    let lanes = <I::F32 as SimdF32>::LANES;
    debug_assert_eq!(out.len(), lanes);
    let mut l: [I::F32; N_RATES] = std::array::from_fn(|i| I::F32::splat(init_rates[i]));
    let sqrt_delta = I::F32::splat(DELTA.sqrt());
    let delta = I::F32::splat(DELTA);
    let one = I::F32::splat(1.0);
    let half = I::F32::splat(0.5);
    for n in 0..NMAT {
        let sqez = sqrt_delta * I::F32::load(&zs[n * stride..]);
        let mut v = I::F32::zero();
        for i in n + 1..N_RATES {
            let lam = I::F32::splat(vols[(i - n - 1).min(NMAT - 1)]);
            let con1 = delta * lam;
            v = v + con1 * l[i] / (one + delta * l[i]);
            let vrat = vmath::exp::<I>(con1 * v + lam * (sqez - half * con1));
            l[i] = l[i] * vrat;
        }
    }
    let mut b = one;
    let mut acc = I::F32::zero();
    let strike = I::F32::splat(STRIKE);
    for li in l.iter().skip(NMAT) {
        b = b / (one + delta * *li);
        acc = acc + b * delta * (*li - strike).max(I::F32::zero());
    }
    (acc * I::F32::splat(100.0)).store(out);
}

// --- Serving surface -----------------------------------------------------
//
// Free path-pricing entry points for `ninja-serve`: a request carries one
// path's `NMAT` Gaussian draws and is priced against a server-resident
// curve. Each function is the math of one degradation-ladder rung.

/// The deterministic initial forward curve generated instances use.
pub fn default_init_rates() -> [f32; N_RATES] {
    std::array::from_fn(|i| 0.04 + 0.005 * (i % 5) as f32)
}

/// The deterministic caplet volatility ladder generated instances use.
pub fn default_vols() -> [f32; NMAT] {
    std::array::from_fn(|i| 0.15 + 0.01 * (i % 4) as f32)
}

/// Prices one path from its normal draws in `f64` with libm `exp` — the
/// serving layer's scalar floor.
pub fn price_path_f64(init_rates: &[f32; N_RATES], vols: &[f32; NMAT], z: &[f32; NMAT]) -> f32 {
    let delta = DELTA as f64;
    let mut l = [0.0f64; N_RATES];
    for (li, &r0) in l.iter_mut().zip(init_rates.iter()) {
        *li = r0 as f64;
    }
    for (n, &zn) in z.iter().enumerate() {
        let sqez = delta.sqrt() * zn as f64;
        let mut v = 0.0f64;
        for i in n + 1..N_RATES {
            let lam = vols[(i - n - 1).min(NMAT - 1)] as f64;
            let con1 = delta * lam;
            v += con1 * l[i] / (1.0 + delta * l[i]);
            let vrat = (con1 * v + lam * (sqez - 0.5 * con1)).exp();
            l[i] *= vrat;
        }
    }
    let mut b = 1.0f64;
    let mut acc = 0.0f64;
    for li in l.iter().skip(NMAT) {
        b /= 1.0 + delta * li;
        acc += b * delta * (li - STRIKE as f64).max(0.0);
    }
    (acc * 100.0) as f32
}

/// Prices one path in `f32` with the inlined polynomial `exp` — the
/// restructured (SIMD) rung's arithmetic.
pub fn price_path_poly(init_rates: &[f32; N_RATES], vols: &[f32; NMAT], z: &[f32; NMAT]) -> f32 {
    let mut l = *init_rates;
    let sqrt_delta = DELTA.sqrt();
    for (n, &zn) in z.iter().enumerate() {
        let sqez = sqrt_delta * zn;
        let mut v = 0.0f32;
        for i in n + 1..N_RATES {
            let lam = vols[(i - n - 1).min(NMAT - 1)];
            let con1 = DELTA * lam;
            v += con1 * l[i] / (1.0 + DELTA * l[i]);
            let vrat = exp_poly(con1 * v + lam * (sqez - 0.5 * con1));
            l[i] *= vrat;
        }
    }
    let mut b = 1.0f32;
    let mut acc = 0.0f32;
    for li in l.iter().skip(NMAT) {
        b /= 1.0 + DELTA * li;
        acc += b * DELTA * (li - STRIKE).max(0.0);
    }
    acc * 100.0
}

/// Prices four paths in lock-step with explicit SIMD and the vector
/// `exp` — the ninja rung's generic body pinned to the portable 128-bit
/// backend so the serving batch shape is stable across hosts. `zs` is
/// lane-major: draw `n` of lane `k` at `zs[4 * n + k]`.
pub fn price_paths4(
    init_rates: &[f32; N_RATES],
    vols: &[f32; NMAT],
    zs: &[f32; 4 * NMAT],
) -> [f32; 4] {
    let mut out = [0.0f32; 4];
    price_paths_group::<Sse2>(init_rates, vols, zs, 4, &mut out);
    out
}

fn run(k: &Libor, variant: Variant, pool: &ThreadPool) -> Vec<f32> {
    match variant {
        Variant::Naive => k.run_naive(),
        Variant::Parallel => k.run_parallel(pool),
        Variant::Simd => k.run_simd(),
        Variant::Algorithmic => k.run_algorithmic(pool),
        Variant::Ninja => k.run_ninja(pool),
    }
}

fn work(k: &Libor) -> Work {
    let p = k.paths as f64;
    // Triangular evolution loop: ~NMAT * (N - NMAT/2) rate updates.
    let updates = (NMAT * N_RATES - NMAT * NMAT / 2) as f64;
    Work {
        flops: p * updates * 40.0,
        bytes: p * (NMAT as f64) * 4.0,
        elems: k.paths as u64,
    }
}

/// Suite entry for the Libor kernel.
pub fn spec() -> KernelSpec {
    KernelSpec {
        name: "libor",
        description: "LIBOR market-model Monte Carlo (compute bound, exp heavy)",
        bound: "compute",
        variants: [
            VariantInfo {
                variant: Variant::Naive,
                effort_loc: 0,
                what_changed: "one f64 path at a time, libm exp",
            },
            VariantInfo {
                variant: Variant::Parallel,
                effort_loc: 2,
                what_changed: "parallel_for over paths",
            },
            VariantInfo {
                variant: Variant::Simd,
                effort_loc: 25,
                what_changed: "path-SoA groups, f32 polynomial exp",
            },
            VariantInfo {
                variant: Variant::Algorithmic,
                effort_loc: 27,
                what_changed: "path-SoA groups + parallel_for",
            },
            VariantInfo {
                variant: Variant::Ninja,
                effort_loc: 80,
                what_changed: "4 paths per SIMD lane group, vector exp",
            },
        ],
        character: Characterization {
            flops_per_elem: 28_000.0,
            bytes_per_elem: 80.0,
            naive_simd_frac: 0.0,
            restructure_simd_frac: 0.95,
            simd_friendly_frac: 0.95,
            parallel_frac: 1.0,
            gather_per_elem: 0.0,
            algorithmic_factor: 1.5, // f64 libm -> f32 polynomial scalar win
            simd_efficiency: 0.95,
        },
        make: |size, seed| {
            Box::new(Adapter {
                kernel: Libor::generate(size, seed),
                name: "libor",
                tolerance: 1e-2,
                run,
                work,
                reference: None,
            }) as Box<dyn Instance>
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_vol_path_is_deterministic() {
        let mut k = Libor::generate(ProblemSize::Test, 1);
        k.vols = [0.0; NMAT];
        let out = k.run_naive();
        // With zero volatility every path prices identically.
        for &v in out.iter() {
            assert!((v - out[0]).abs() < 1e-6);
        }
        // And the price is the deterministic caplet strip value (> 0 since
        // the initial curve is above part of the strike range).
        assert!(out[0] > 0.0);
    }

    #[test]
    fn transpose_matches_original_draws() {
        let k = Libor::generate(ProblemSize::Test, 2);
        for p in (0..k.paths).step_by(37) {
            for n in 0..NMAT {
                assert_eq!(k.z[p * NMAT + n], k.zt[n * k.paths + p]);
            }
        }
    }

    #[test]
    fn normals_have_sane_moments() {
        let k = Libor::generate(ProblemSize::Quick, 3);
        let n = k.z.len() as f64;
        let mean: f64 = k.z.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var: f64 = k.z.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn all_variants_agree_with_naive() {
        let k = Libor::generate(ProblemSize::Test, 4);
        let pool = ThreadPool::with_threads(2);
        let reference = k.run_naive();
        for (label, out) in [
            ("parallel", k.run_parallel(&pool)),
            ("simd", k.run_simd()),
            ("algorithmic", k.run_algorithmic(&pool)),
            ("ninja", k.run_ninja(&pool)),
        ] {
            for (i, (&a, &b)) in out.iter().zip(reference.iter()).enumerate() {
                let err = (a - b).abs() / b.abs().max(1.0);
                assert!(err < 1e-2, "{label}[{i}]: {a} vs {b}");
            }
        }
    }

    #[test]
    fn ninja_rung_agrees_under_every_reachable_backend() {
        use ninja_simd::isa::{available_kinds, dispatch_on};
        let k = Libor::generate(ProblemSize::Test, 4);
        let reference = k.run_naive();
        for kind in available_kinds() {
            let mut out = vec![0.0f32; k.paths()];
            dispatch_on(
                kind,
                PathBlock {
                    kernel: &k,
                    base: 0,
                    out: &mut out,
                },
            );
            for (i, (&a, &b)) in out.iter().zip(reference.iter()).enumerate() {
                let err = (a - b).abs() / b.abs().max(1.0);
                assert!(err < 1e-2, "{kind}[{i}]: {a} vs {b} (err {err})");
            }
        }
    }

    #[test]
    fn monte_carlo_mean_is_stable_across_variants() {
        let k = Libor::generate(ProblemSize::Test, 5);
        let pool = ThreadPool::with_threads(1);
        let mean = |v: &[f32]| v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
        let m_naive = mean(&k.run_naive());
        let m_ninja = mean(&k.run_ninja(&pool));
        assert!(
            (m_naive - m_ninja).abs() / m_naive.abs().max(1e-9) < 1e-3,
            "{m_naive} vs {m_ninja}"
        );
    }

    #[test]
    fn adapter_validates_all_variants() {
        let spec = spec();
        let pool = ThreadPool::with_threads(1);
        let mut inst = (spec.make)(ProblemSize::Test, 6);
        for v in Variant::ALL {
            inst.validate(v, &pool).unwrap();
        }
    }

    #[test]
    fn serving_surface_matches_instance_paths() {
        let k = Libor::generate(ProblemSize::Test, 8);
        // The generated instance uses exactly the default curve.
        assert_eq!(k.init_rates, default_init_rates());
        assert_eq!(k.vols, default_vols());
        let rates = default_init_rates();
        let vols = default_vols();
        let reference = k.run_naive();
        for p in (0..k.paths()).step_by(7) {
            let z: [f32; NMAT] = k.z[p * NMAT..(p + 1) * NMAT].try_into().unwrap();
            // Scalar floor is bit-identical to the naive instance math.
            assert_eq!(price_path_f64(&rates, &vols, &z), reference[p]);
            let poly = price_path_poly(&rates, &vols, &z);
            let err = (poly - reference[p]).abs() / reference[p].abs().max(1.0);
            assert!(err < 1e-2, "poly path {p}: {poly} vs {}", reference[p]);
        }
        // 4-lane SIMD pricing against the same draws, lane-major.
        for p0 in (0..k.paths() - 4).step_by(52) {
            let mut zs = [0.0f32; 4 * NMAT];
            for lane in 0..4 {
                for n in 0..NMAT {
                    zs[4 * n + lane] = k.z[(p0 + lane) * NMAT + n];
                }
            }
            let got = price_paths4(&rates, &vols, &zs);
            for lane in 0..4 {
                let b = reference[p0 + lane];
                let err = (got[lane] - b).abs() / b.abs().max(1.0);
                assert!(err < 1e-2, "simd path {}: {} vs {b}", p0 + lane, got[lane]);
            }
        }
    }

    #[test]
    fn higher_volatility_raises_the_caplet_price() {
        // Positive vega: scaling all vols up raises the Monte-Carlo mean.
        let base = Libor::generate(ProblemSize::Test, 9);
        let mut bumped = Libor::generate(ProblemSize::Test, 9);
        for v in bumped.vols.iter_mut() {
            *v *= 1.5;
        }
        let mean = |v: &[f32]| v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
        let m0 = mean(&base.run_naive());
        let m1 = mean(&bumped.run_naive());
        assert!(m1 > m0, "vega must be positive: {m0} -> {m1}");
    }
}
