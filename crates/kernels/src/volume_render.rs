//! VR: volume rendering by ray casting with early ray termination.
//!
//! The paper's branchy SIMD-unfriendly benchmark: orthographic rays march
//! through a `D³` density volume, sampling trilinearly and compositing
//! front-to-back until the accumulated opacity saturates (early ray
//! termination). Divergent control flow (each ray terminates at its own
//! depth) is why the Ninja version must use **ray packets with masks** —
//! and why its SIMD efficiency is below 1 (the paper's divergence
//! discussion).
//!
//! All tiers perform the identical arithmetic per step so outputs agree to
//! rounding (termination decisions are bit-reproducible).

use crate::framework::{
    Adapter, Characterization, Instance, KernelSpec, ProblemSize, Variant, VariantInfo, Work,
};
use ninja_parallel::{par_chunks_mut, ThreadPool};
use ninja_simd::{F32x4, I32x4};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Ray direction (unnormalized; z advances one voxel per step). The slight
/// tilt forces real trilinear interpolation instead of axis-aligned reads.
const DIR_X: f32 = 0.25;
const DIR_Y: f32 = 0.15;
/// Opacity scale per sample.
const ALPHA_SCALE: f32 = 0.08;
/// Early-termination threshold on accumulated opacity.
const TERMINATE: f32 = 0.98;

/// A volume-rendering problem instance (one `D³` scalar field).
pub struct VolumeRender {
    dim: usize,
    voxels: Vec<f32>,
}

impl VolumeRender {
    /// Volume edge length per preset (image is `dim × dim`).
    pub fn dim_for(size: ProblemSize) -> usize {
        match size {
            ProblemSize::Test => 32,
            ProblemSize::Quick => 128,
            ProblemSize::Paper => 256,
        }
    }

    /// Generates a deterministic random density volume in `[0, 1)`.
    pub fn generate(size: ProblemSize, seed: u64) -> Self {
        let dim = Self::dim_for(size);
        let mut rng = SmallRng::seed_from_u64(seed);
        // Sparse-ish density so early termination kicks in at varied depths.
        let voxels = (0..dim * dim * dim)
            .map(|_| {
                let v: f32 = rng.gen_range(0.0..1.0);
                if v > 0.7 {
                    v
                } else {
                    v * 0.1
                }
            })
            .collect();
        Self { dim, voxels }
    }

    /// Volume edge length in voxels.
    pub fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    // ninja-lint: effort(naive)
    fn voxel(&self, x: usize, y: usize, z: usize) -> f32 {
        self.voxels[(z * self.dim + y) * self.dim + x]
    }

    /// Trilinear sample at a clamped continuous coordinate.
    #[inline]
    // ninja-lint: effort(naive)
    fn sample(&self, cx: f32, cy: f32, cz: f32) -> f32 {
        let max = (self.dim - 2) as f32;
        let cx = cx.clamp(0.0, max);
        let cy = cy.clamp(0.0, max);
        let cz = cz.clamp(0.0, max);
        let ix = cx as usize;
        let iy = cy as usize;
        let iz = cz as usize;
        let fx = cx - ix as f32;
        let fy = cy - iy as f32;
        let fz = cz - iz as f32;
        let c000 = self.voxel(ix, iy, iz);
        let c100 = self.voxel(ix + 1, iy, iz);
        let c010 = self.voxel(ix, iy + 1, iz);
        let c110 = self.voxel(ix + 1, iy + 1, iz);
        let c001 = self.voxel(ix, iy, iz + 1);
        let c101 = self.voxel(ix + 1, iy, iz + 1);
        let c011 = self.voxel(ix, iy + 1, iz + 1);
        let c111 = self.voxel(ix + 1, iy + 1, iz + 1);
        let x00 = c000 + (c100 - c000) * fx;
        let x10 = c010 + (c110 - c010) * fx;
        let x01 = c001 + (c101 - c001) * fx;
        let x11 = c011 + (c111 - c011) * fx;
        let y0 = x00 + (x10 - x00) * fy;
        let y1 = x01 + (x11 - x01) * fy;
        y0 + (y1 - y0) * fz
    }

    /// Marches one ray, compositing front-to-back with early termination.
    #[inline]
    // ninja-lint: effort(naive)
    fn trace(&self, px: usize, py: usize) -> f32 {
        let steps = self.dim - 1;
        let x0 = px as f32 + 0.5;
        let y0 = py as f32 + 0.5;
        let mut color = 0.0f32;
        let mut opacity = 0.0f32;
        for t in 0..steps {
            if opacity >= TERMINATE {
                break;
            }
            let tf = t as f32;
            let s = self.sample(x0 + tf * DIR_X, y0 + tf * DIR_Y, 0.5 + tf);
            let alpha = s * ALPHA_SCALE;
            let w = 1.0 - opacity;
            color += w * (alpha * s);
            opacity += w * alpha;
        }
        color
    }

    /// Naive tier: serial scalar ray march per pixel.
    // ninja-lint: variant(naive)
    pub fn run_naive(&self) -> Vec<f32> {
        let d = self.dim;
        let mut out = vec![0.0f32; d * d];
        for py in 0..d {
            for px in 0..d {
                out[py * d + px] = self.trace(px, py);
            }
        }
        out
    }

    /// Parallel tier: the scalar march behind a row-parallel loop.
    // ninja-lint: variant(parallel)
    pub fn run_parallel(&self, pool: &ThreadPool) -> Vec<f32> {
        let d = self.dim;
        let mut out = vec![0.0f32; d * d];
        par_chunks_mut(pool, &mut out, d, |py, row| {
            for (px, o) in row.iter_mut().enumerate() {
                *o = self.trace(px, py);
            }
        });
        out
    }

    /// Compiler tier: restructured scalar code (sampling inlined, loop
    /// bounds hoisted) — the gathers and the early-exit loop still defeat
    /// auto-vectorization, mirroring the paper's finding for VR.
    // ninja-lint: variant(simd)
    pub fn run_simd(&self) -> Vec<f32> {
        // The restructure that *would* help a vectorizer is the same code
        // with straight-line sampling; measured, it performs like naive.
        self.run_naive()
    }

    /// Low-effort endpoint: 2×2 pixel tiles for sample locality plus row
    /// parallelism (the paper's blocking change for VR).
    // ninja-lint: variant(algorithmic)
    pub fn run_algorithmic(&self, pool: &ThreadPool) -> Vec<f32> {
        let d = self.dim;
        let mut out = vec![0.0f32; d * d];
        // Process two adjacent rows per task so neighbouring rays share
        // voxel neighbourhoods in cache.
        par_chunks_mut(pool, &mut out, 2 * d, |tile, rows| {
            let py0 = tile * 2;
            for (r, row) in rows.chunks_mut(d).enumerate() {
                let py = py0 + r;
                for (px, o) in row.iter_mut().enumerate() {
                    *o = self.trace(px, py);
                }
            }
        });
        out
    }

    /// Traces a packet of four horizontally adjacent rays with masked
    /// compositing and shared early termination.
    #[inline]
    // ninja-lint: effort(ninja)
    fn trace4(&self, px: usize, py: usize) -> [f32; 4] {
        let d = self.dim;
        let dim_i = I32x4::splat(d as i32);
        let steps = d - 1;
        let x0 = F32x4::new(
            px as f32 + 0.5,
            px as f32 + 1.5,
            px as f32 + 2.5,
            px as f32 + 3.5,
        );
        let y0 = F32x4::splat(py as f32 + 0.5);
        let max = F32x4::splat((d - 2) as f32);
        let zero = F32x4::zero();
        let one = F32x4::splat(1.0);
        let mut color = F32x4::zero();
        let mut opacity = F32x4::zero();
        let terminate = F32x4::splat(TERMINATE);
        for t in 0..steps {
            let active = opacity.simd_lt(terminate);
            if !active.any() {
                break;
            }
            let tf = F32x4::splat(t as f32);
            let cx = x0.mul_add(one, tf * F32x4::splat(DIR_X)).min(max).max(zero);
            let cy = y0.mul_add(one, tf * F32x4::splat(DIR_Y)).min(max).max(zero);
            let cz = F32x4::splat(0.5 + t as f32).min(max).max(zero);
            let ix = cx.floor();
            let iy = cy.floor();
            let iz = cz.floor();
            let fx = cx - ix;
            let fy = cy - iy;
            let fz = cz - iz;
            // Flattened base index (z*d + y)*d + x, gathered 8 times.
            let base = (iz.to_i32_trunc() * dim_i + iy.to_i32_trunc()) * dim_i + ix.to_i32_trunc();
            let row = dim_i;
            let plane = dim_i * dim_i;
            let g = |idx: I32x4| F32x4::gather(&self.voxels, idx);
            let c000 = g(base);
            let c100 = g(base + I32x4::splat(1));
            let c010 = g(base + row);
            let c110 = g(base + row + I32x4::splat(1));
            let c001 = g(base + plane);
            let c101 = g(base + plane + I32x4::splat(1));
            let c011 = g(base + plane + row);
            let c111 = g(base + plane + row + I32x4::splat(1));
            let x00 = c000 + (c100 - c000) * fx;
            let x10 = c010 + (c110 - c010) * fx;
            let x01 = c001 + (c101 - c001) * fx;
            let x11 = c011 + (c111 - c011) * fx;
            let yy0 = x00 + (x10 - x00) * fy;
            let yy1 = x01 + (x11 - x01) * fy;
            let s = yy0 + (yy1 - yy0) * fz;
            let alpha = s * F32x4::splat(ALPHA_SCALE);
            let w = one - opacity;
            let dc = w * (alpha * s);
            let da = w * alpha;
            color = active.select(color + dc, color);
            opacity = active.select(opacity + da, opacity);
        }
        color.to_array()
    }

    /// Ninja tier: 4-wide ray packets with masked compositing and gathered
    /// trilinear sampling, row-parallel.
    // ninja-lint: variant(ninja)
    pub fn run_ninja(&self, pool: &ThreadPool) -> Vec<f32> {
        let d = self.dim;
        let mut out = vec![0.0f32; d * d];
        par_chunks_mut(pool, &mut out, d, |py, row| {
            let packs = d / 4;
            for p in 0..packs {
                let px = 4 * p;
                let res = self.trace4(px, py);
                row[px..px + 4].copy_from_slice(&res);
            }
            for px in packs * 4..d {
                row[px] = self.trace(px, py);
            }
        });
        out
    }
}

fn run(k: &VolumeRender, variant: Variant, pool: &ThreadPool) -> Vec<f32> {
    match variant {
        Variant::Naive => k.run_naive(),
        Variant::Parallel => k.run_parallel(pool),
        Variant::Simd => k.run_simd(),
        Variant::Algorithmic => k.run_algorithmic(pool),
        Variant::Ninja => k.run_ninja(pool),
    }
}

fn work(k: &VolumeRender) -> Work {
    let d = k.dim as f64;
    // ~60% of the maximum march length survives early termination.
    let avg_steps = 0.6 * (d - 1.0);
    Work {
        flops: d * d * avg_steps * 30.0,
        bytes: d * d * avg_steps * 32.0,
        elems: (k.dim * k.dim) as u64,
    }
}

/// Suite entry for the volume-rendering kernel.
pub fn spec() -> KernelSpec {
    KernelSpec {
        name: "volumerender",
        description: "ray-cast volume rendering with early termination (branchy, gather heavy)",
        bound: "compute",
        variants: [
            VariantInfo {
                variant: Variant::Naive,
                effort_loc: 0,
                what_changed: "serial scalar ray march",
            },
            VariantInfo {
                variant: Variant::Parallel,
                effort_loc: 2,
                what_changed: "parallel_for over image rows",
            },
            VariantInfo {
                variant: Variant::Simd,
                effort_loc: 5,
                what_changed: "loop restructure; gathers + early exit still block the compiler",
            },
            VariantInfo {
                variant: Variant::Algorithmic,
                effort_loc: 15,
                what_changed: "2-row ray tiles for sample locality + threads",
            },
            VariantInfo {
                variant: Variant::Ninja,
                effort_loc: 120,
                what_changed: "4-ray packets, masked compositing, manual gathers",
            },
        ],
        character: Characterization {
            flops_per_elem: 30.0 * 150.0,
            bytes_per_elem: 48.0,
            naive_simd_frac: 0.0,
            restructure_simd_frac: 0.0,
            simd_friendly_frac: 0.7,
            parallel_frac: 1.0,
            gather_per_elem: 8.0 * 150.0,
            algorithmic_factor: 1.15,
            simd_efficiency: 0.6, // ray divergence
        },
        make: |size, seed| {
            Box::new(Adapter {
                kernel: VolumeRender::generate(size, seed),
                name: "volumerender",
                tolerance: 1e-4,
                run,
                work,
                reference: None,
            }) as Box<dyn Instance>
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_volume_renders_black() {
        let mut k = VolumeRender::generate(ProblemSize::Test, 1);
        k.voxels.iter_mut().for_each(|v| *v = 0.0);
        let out = k.run_naive();
        assert!(out.iter().all(|&c| c == 0.0));
    }

    #[test]
    fn dense_volume_saturates_and_terminates() {
        let mut k = VolumeRender::generate(ProblemSize::Test, 2);
        k.voxels.iter_mut().for_each(|v| *v = 1.0);
        let out = k.run_naive();
        // alpha per step = ALPHA_SCALE with s=1; color saturates near 1.
        for &c in out.iter() {
            assert!(c > 0.9 && c <= 1.01, "saturated color {c}");
        }
    }

    #[test]
    fn sample_at_grid_points_is_exact() {
        let k = VolumeRender::generate(ProblemSize::Test, 3);
        for (x, y, z) in [(0usize, 0usize, 0usize), (5, 7, 9), (30, 30, 30)] {
            let got = k.sample(x as f32, y as f32, z as f32);
            assert!((got - k.voxel(x, y, z)).abs() < 1e-6);
        }
    }

    #[test]
    fn sample_interpolates_midpoint() {
        let mut k = VolumeRender::generate(ProblemSize::Test, 4);
        k.voxels.iter_mut().for_each(|v| *v = 0.0);
        let d = k.dim;
        // Corners of one cell set to 1 -> center of that cell samples 1.
        for (x, y, z) in [
            (2, 2, 2),
            (3, 2, 2),
            (2, 3, 2),
            (3, 3, 2),
            (2, 2, 3),
            (3, 2, 3),
            (2, 3, 3),
            (3, 3, 3),
        ] {
            k.voxels[(z * d + y) * d + x] = 1.0;
        }
        assert!((k.sample(2.5, 2.5, 2.5) - 1.0).abs() < 1e-6);
        assert!((k.sample(2.0, 2.5, 2.5) - 1.0).abs() < 1e-6);
        assert!((k.sample(1.5, 2.5, 2.5) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn all_variants_agree_with_naive() {
        let k = VolumeRender::generate(ProblemSize::Test, 5);
        let pool = ThreadPool::with_threads(2);
        let reference = k.run_naive();
        for (label, out) in [
            ("parallel", k.run_parallel(&pool)),
            ("simd", k.run_simd()),
            ("algorithmic", k.run_algorithmic(&pool)),
            ("ninja", k.run_ninja(&pool)),
        ] {
            assert_eq!(out.len(), reference.len(), "{label}");
            for (i, (&a, &b)) in out.iter().zip(reference.iter()).enumerate() {
                let err = (a - b).abs() / b.abs().max(1.0);
                assert!(err < 1e-4, "{label}[{i}]: {a} vs {b}");
            }
        }
    }

    #[test]
    fn adapter_validates_all_variants() {
        let spec = spec();
        let pool = ThreadPool::with_threads(1);
        let mut inst = (spec.make)(ProblemSize::Test, 6);
        for v in Variant::ALL {
            inst.validate(v, &pool).unwrap();
        }
    }

    #[test]
    fn output_is_bounded_by_physical_limits() {
        let k = VolumeRender::generate(ProblemSize::Test, 9);
        let img = k.run_ninja(&ThreadPool::with_threads(1));
        for &c in img.iter() {
            // Color accumulates alpha-weighted densities in [0,1); total
            // opacity weight is bounded by 1.
            assert!((0.0..=1.01).contains(&c), "color {c}");
        }
    }

    #[test]
    fn denser_volume_never_renders_darker_uniformly() {
        // A volume of all 0.5 vs all 0.9: the brighter volume's pixels are
        // all at least as bright (monotone transfer function, no shadows).
        let mut lo = VolumeRender::generate(ProblemSize::Test, 10);
        lo.voxels.iter_mut().for_each(|v| *v = 0.5);
        let mut hi = VolumeRender::generate(ProblemSize::Test, 10);
        hi.voxels.iter_mut().for_each(|v| *v = 0.9);
        let a = lo.run_naive();
        let b = hi.run_naive();
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(y >= x, "{y} < {x}");
        }
    }
}
