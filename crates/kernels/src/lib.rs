//! The ten throughput-computing benchmarks of the Ninja-gap study.
//!
//! Each kernel is implemented at five optimization tiers — the paper's
//! optimization ladder:
//!
//! | [`Variant`]      | Meaning                                                        | Paper analogue                          |
//! |------------------|----------------------------------------------------------------|-----------------------------------------|
//! | `Naive`          | serial, scalar, parallelism-unaware C-style code               | the "naive" baseline                     |
//! | `Parallel`       | naive + a `parallel_for` annotation                            | `+ OpenMP pragma`                        |
//! | `Simd`           | serial, restructured so the compiler *can* vectorize           | `+ #pragma simd` / auto-vectorization    |
//! | `Algorithmic`    | SoA / blocking / SIMD-friendly algorithm + threads + compiler  | the paper's "low effort" endpoint        |
//! | `Ninja`          | hand-written intrinsics + threads + tuning                     | best-optimized "Ninja" code              |
//!
//! The **Ninja gap** for a kernel is `time(Naive) / time(Ninja)`; the
//! paper's headline claim is that `time(Algorithmic) / time(Ninja)` averages
//! just ~1.3X.
//!
//! Every kernel ships a reference implementation and validates each variant
//! against it; [`registry`] exposes the whole suite behind the type-erased
//! [`Instance`] interface consumed by the `ninja-core` harness.
//!
//! # Example
//!
//! ```
//! use ninja_kernels::{registry, ProblemSize, Variant};
//! use ninja_parallel::ThreadPool;
//!
//! let pool = ThreadPool::with_threads(1);
//! let spec = &registry()[0];
//! let mut instance = (spec.make)(ProblemSize::Test, 42);
//! instance.validate(Variant::Ninja, &pool).unwrap();
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]
// The naive tiers are intentionally index-style "C in Rust" loops — that
// coding style is the object of study, so iterator rewrites are off-limits.
#![allow(clippy::needless_range_loop)]
// Ninja-tier inner loops take unpacked scalar state on purpose.
#![allow(clippy::too_many_arguments)]

pub mod backprojection;
pub mod black_scholes;
pub mod chaos;
pub mod conv1d;
pub mod conv2d;
pub mod lbm;
pub mod libor;
pub mod merge_sort;
pub mod nbody;
pub mod tree_search;
pub mod volume_render;

mod framework;
pub mod scalar_math;

pub use framework::{
    Characterization, Instance, KernelSpec, OutputData, ProblemSize, ValidationError, Variant,
    VariantInfo, Work,
};

/// Returns the full benchmark suite, in the paper's presentation order.
///
/// Each [`KernelSpec`] carries the kernel's metadata, its roofline
/// characterization (consumed by `ninja-model`), and a factory for runnable
/// instances.
pub fn registry() -> Vec<KernelSpec> {
    vec![
        nbody::spec(),
        backprojection::spec(),
        conv1d::spec(),
        black_scholes::spec(),
        tree_search::spec(),
        merge_sort::spec(),
        conv2d::spec(),
        volume_render::spec(),
        lbm::spec(),
        libor::spec(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_ten_kernels_with_unique_names() {
        let specs = registry();
        assert_eq!(specs.len(), 10);
        let mut names: Vec<_> = specs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10, "kernel names must be unique");
    }

    #[test]
    fn every_kernel_declares_five_variants() {
        for spec in registry() {
            assert_eq!(spec.variants.len(), 5, "{}", spec.name);
            for (v, info) in Variant::ALL.iter().zip(spec.variants.iter()) {
                assert_eq!(info.variant, *v, "{} variant order", spec.name);
            }
            // Ninja effort must dominate every traditional tier (the paper's
            // programming-effort argument).
            let ninja = spec.variants[4].effort_loc;
            for info in &spec.variants[..4] {
                assert!(
                    info.effort_loc < ninja,
                    "{}: {} effort {} !< ninja {}",
                    spec.name,
                    info.variant.name(),
                    info.effort_loc,
                    ninja
                );
            }
        }
    }

    #[test]
    fn characterizations_are_sane() {
        for spec in registry() {
            let c = &spec.character;
            assert!(c.flops_per_elem > 0.0, "{}", spec.name);
            assert!(c.bytes_per_elem > 0.0, "{}", spec.name);
            assert!((0.0..=1.0).contains(&c.naive_simd_frac), "{}", spec.name);
            assert!((0.0..=1.0).contains(&c.simd_friendly_frac), "{}", spec.name);
            assert!(
                c.naive_simd_frac <= c.restructure_simd_frac
                    && c.restructure_simd_frac <= c.simd_friendly_frac,
                "{}",
                spec.name
            );
            assert!((0.5..=1.0).contains(&c.parallel_frac), "{}", spec.name);
            assert!(c.algorithmic_factor >= 1.0, "{}", spec.name);
        }
    }
}
