//! N-body: all-pairs gravitational force computation.
//!
//! The classic compute-bound throughput benchmark (the paper runs one
//! million bodies). One step evaluates, for every body `i`, the softened
//! gravitational acceleration induced by every body `j`:
//!
//! ```text
//! a_i = Σ_j  m_j · (p_j − p_i) / (|p_j − p_i|² + ε²)^{3/2}
//! ```
//!
//! Optimization story (paper §4):
//! * the **naive** version stores bodies as an array of structs and divides
//!   by `sqrt` — unvectorizable as written because of the AoS layout;
//! * **algorithmic change**: convert to SoA (`x[]`, `y[]`, `z[]`, `m[]`),
//!   after which the inner loop is a textbook auto-vectorization target;
//! * **Ninja**: 4-wide SIMD over `j` with the `rsqrtps` + Newton-refinement
//!   idiom and register-blocked accumulation.

use crate::framework::{
    Adapter, Characterization, Instance, KernelSpec, ProblemSize, Variant, VariantInfo, Work,
};
use ninja_parallel::{par_chunks_mut, ThreadPool};
use ninja_simd::{AlignedVec, F32x4};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Softening factor: keeps the self-interaction finite (it contributes
/// exactly zero force) and removes the `i == j` branch from every variant.
const EPS2: f32 = 0.01;

/// Arithmetic operations per body-body interaction (3 sub, 3 mul+2 add for
/// r², 1 add eps, rsqrt≈3, cube≈2, mass mul 1, 3 mul + 3 add accumulate).
const FLOPS_PER_INTERACTION: f64 = 21.0;

/// One body in the naive array-of-structs layout.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct Body {
    /// Position.
    pub x: f32,
    /// Position.
    pub y: f32,
    /// Position.
    pub z: f32,
    /// Mass.
    pub m: f32,
}

/// An N-body problem instance: the same bodies in AoS and SoA layouts.
pub struct NBody {
    bodies: Vec<Body>,
    // SoA mirror used by the algorithmic/ninja tiers, cache-line aligned
    // so the explicit-SIMD loops can use aligned loads.
    xs: AlignedVec<f32>,
    ys: AlignedVec<f32>,
    zs: AlignedVec<f32>,
    ms: AlignedVec<f32>,
}

impl NBody {
    /// Number of bodies for each size preset.
    pub fn n_for(size: ProblemSize) -> usize {
        match size {
            ProblemSize::Test => 192,
            ProblemSize::Quick => 2048,
            ProblemSize::Paper => 8192,
        }
    }

    /// Generates a deterministic random instance.
    pub fn generate(size: ProblemSize, seed: u64) -> Self {
        let n = Self::n_for(size);
        let mut rng = SmallRng::seed_from_u64(seed);
        let bodies: Vec<Body> = (0..n)
            .map(|_| Body {
                x: rng.gen_range(-1.0..1.0),
                y: rng.gen_range(-1.0..1.0),
                z: rng.gen_range(-1.0..1.0),
                m: rng.gen_range(0.1..1.0),
            })
            .collect();
        // Pad the SoA arrays to a multiple of the vector width with
        // zero-mass bodies so the SIMD loop needs no remainder handling.
        let padded = n.div_ceil(4) * 4;
        let mut xs = AlignedVec::zeroed(padded);
        let mut ys = AlignedVec::zeroed(padded);
        let mut zs = AlignedVec::zeroed(padded);
        let mut ms = AlignedVec::zeroed(padded);
        for (i, b) in bodies.iter().enumerate() {
            xs[i] = b.x;
            ys[i] = b.y;
            zs[i] = b.z;
            ms[i] = b.m;
        }
        Self {
            bodies,
            xs,
            ys,
            zs,
            ms,
        }
    }

    /// Number of bodies.
    pub fn len(&self) -> usize {
        self.bodies.len()
    }

    /// True if the instance holds no bodies.
    pub fn is_empty(&self) -> bool {
        self.bodies.is_empty()
    }

    #[inline]
    // ninja-lint: effort(naive)
    fn accel_of(&self, i: usize) -> [f32; 3] {
        let bi = self.bodies[i];
        let (mut ax, mut ay, mut az) = (0.0f32, 0.0f32, 0.0f32);
        for bj in &self.bodies {
            let dx = bj.x - bi.x;
            let dy = bj.y - bi.y;
            let dz = bj.z - bi.z;
            let r2 = dx * dx + dy * dy + dz * dz + EPS2;
            let inv_r = 1.0 / r2.sqrt();
            let s = bj.m * inv_r * inv_r * inv_r;
            ax += dx * s;
            ay += dy * s;
            az += dz * s;
        }
        [ax, ay, az]
    }

    /// Naive tier: serial AoS double loop, divide + `sqrt` per interaction.
    // ninja-lint: variant(naive)
    pub fn run_naive(&self) -> Vec<f32> {
        let n = self.len();
        let mut out = vec![0.0f32; 3 * n];
        for i in 0..n {
            let a = self.accel_of(i);
            out[3 * i] = a[0];
            out[3 * i + 1] = a[1];
            out[3 * i + 2] = a[2];
        }
        out
    }

    /// Parallel tier: the naive body loop behind a `parallel_for`.
    // ninja-lint: variant(parallel)
    pub fn run_parallel(&self, pool: &ThreadPool) -> Vec<f32> {
        let n = self.len();
        let mut out = vec![0.0f32; 3 * n];
        par_chunks_mut(pool, &mut out, 3 * 64, |chunk_idx, chunk| {
            let base = chunk_idx * 64;
            for (k, trio) in chunk.chunks_mut(3).enumerate() {
                let a = self.accel_of(base + k);
                trio.copy_from_slice(&a);
            }
        });
        out
    }

    /// Computes the acceleration of body `i` from the SoA arrays with four
    /// independent partial accumulators — the restructuring that lets the
    /// compiler vectorize a floating-point reduction without reassociation
    /// licenses (`rustc` has no `#pragma simd`, so the programmer splits
    /// the accumulator; the paper counts this as low-effort).
    #[inline]
    // ninja-lint: effort(simd, algorithmic)
    fn accel_soa(&self, i: usize) -> [f32; 3] {
        const LANES: usize = 4;
        let (xi, yi, zi) = (self.xs[i], self.ys[i], self.zs[i]);
        let mut ax = [0.0f32; LANES];
        let mut ay = [0.0f32; LANES];
        let mut az = [0.0f32; LANES];
        // The SoA arrays are padded to a multiple of LANES with zero-mass
        // bodies, so the blocked loop needs no remainder. `chunks_exact`
        // hands the compiler constant-length windows, eliding every bounds
        // check in the hot loop.
        let blocks = self
            .xs
            .chunks_exact(LANES)
            .zip(self.ys.chunks_exact(LANES))
            .zip(self.zs.chunks_exact(LANES).zip(self.ms.chunks_exact(LANES)));
        for ((xc, yc), (zc, mc)) in blocks {
            for l in 0..LANES {
                let dx = xc[l] - xi;
                let dy = yc[l] - yi;
                let dz = zc[l] - zi;
                let r2 = dx * dx + dy * dy + dz * dz + EPS2;
                let inv_r = 1.0 / r2.sqrt();
                let s = mc[l] * inv_r * inv_r * inv_r;
                ax[l] += dx * s;
                ay[l] += dy * s;
                az[l] += dz * s;
            }
        }
        let sum = |a: [f32; LANES]| (a[0] + a[1]) + (a[2] + a[3]);
        [sum(ax), sum(ay), sum(az)]
    }

    /// Compiler-vectorizable tier: serial, SoA layout, blocked independent
    /// accumulators — the form an auto-vectorizer handles.
    // ninja-lint: variant(simd)
    pub fn run_simd(&self) -> Vec<f32> {
        let n = self.len();
        let mut out = vec![0.0f32; 3 * n];
        for i in 0..n {
            let a = self.accel_soa(i);
            out[3 * i..3 * i + 3].copy_from_slice(&a);
        }
        out
    }

    /// Low-effort endpoint: the SoA vectorizable loop plus `parallel_for`.
    // ninja-lint: variant(algorithmic)
    pub fn run_algorithmic(&self, pool: &ThreadPool) -> Vec<f32> {
        let n = self.len();
        let mut out = vec![0.0f32; 3 * n];
        par_chunks_mut(pool, &mut out, 3 * 64, |chunk_idx, chunk| {
            let base = chunk_idx * 64;
            for (k, trio) in chunk.chunks_mut(3).enumerate() {
                trio.copy_from_slice(&self.accel_soa(base + k));
            }
        });
        out
    }

    /// Ninja tier: explicit 4-wide SIMD over `j` with Newton-refined
    /// `rsqrt`, parallel over `i`.
    // ninja-lint: variant(ninja)
    pub fn run_ninja(&self, pool: &ThreadPool) -> Vec<f32> {
        let n = self.len();
        let mut out = vec![0.0f32; 3 * n];
        let (xs, ys, zs, ms) = (&self.xs, &self.ys, &self.zs, &self.ms);
        par_chunks_mut(pool, &mut out, 3 * 64, |chunk_idx, chunk| {
            let base = chunk_idx * 64;
            for (k, trio) in chunk.chunks_mut(3).enumerate() {
                let i = base + k;
                let xi = F32x4::splat(xs[i]);
                let yi = F32x4::splat(ys[i]);
                let zi = F32x4::splat(zs[i]);
                let eps2 = F32x4::splat(EPS2);
                let mut ax = F32x4::zero();
                let mut ay = F32x4::zero();
                let mut az = F32x4::zero();
                for j in (0..xs.len()).step_by(4) {
                    let dx = F32x4::from_slice(&xs[j..]) - xi;
                    let dy = F32x4::from_slice(&ys[j..]) - yi;
                    let dz = F32x4::from_slice(&zs[j..]) - zi;
                    let r2 = dx.mul_add(dx, dy.mul_add(dy, dz.mul_add(dz, eps2)));
                    let inv_r = r2.rsqrt();
                    let s = F32x4::from_slice(&ms[j..]) * inv_r * inv_r * inv_r;
                    ax = dx.mul_add(s, ax);
                    ay = dy.mul_add(s, ay);
                    az = dz.mul_add(s, az);
                }
                trio[0] = ax.reduce_sum();
                trio[1] = ay.reduce_sum();
                trio[2] = az.reduce_sum();
            }
        });
        out
    }
}

fn run(k: &NBody, variant: Variant, pool: &ThreadPool) -> Vec<f32> {
    match variant {
        Variant::Naive => k.run_naive(),
        Variant::Parallel => k.run_parallel(pool),
        Variant::Simd => k.run_simd(),
        Variant::Algorithmic => k.run_algorithmic(pool),
        Variant::Ninja => k.run_ninja(pool),
    }
}

fn work(k: &NBody) -> Work {
    let n = k.len() as f64;
    Work {
        flops: n * n * FLOPS_PER_INTERACTION,
        bytes: n * 16.0, // the body arrays fit in cache; one streaming pass
        elems: k.len() as u64,
    }
}

/// Suite entry for the N-body kernel.
pub fn spec() -> KernelSpec {
    KernelSpec {
        name: "nbody",
        description: "all-pairs gravitational forces (compute bound, rsqrt heavy)",
        bound: "compute",
        variants: [
            VariantInfo {
                variant: Variant::Naive,
                effort_loc: 0,
                what_changed: "serial AoS double loop",
            },
            VariantInfo {
                variant: Variant::Parallel,
                effort_loc: 2,
                what_changed: "parallel_for over bodies",
            },
            VariantInfo {
                variant: Variant::Simd,
                effort_loc: 10,
                what_changed: "AoS->SoA so the compiler can vectorize the j loop",
            },
            VariantInfo {
                variant: Variant::Algorithmic,
                effort_loc: 12,
                what_changed: "SoA + parallel_for",
            },
            VariantInfo {
                variant: Variant::Ninja,
                effort_loc: 70,
                what_changed: "hand SIMD over j, rsqrt+Newton, padded arrays",
            },
        ],
        character: Characterization {
            flops_per_elem: FLOPS_PER_INTERACTION * NBody::n_for(ProblemSize::Paper) as f64,
            bytes_per_elem: 16.0,
            naive_simd_frac: 0.0,
            restructure_simd_frac: 1.0,
            simd_friendly_frac: 1.0,
            parallel_frac: 1.0,
            gather_per_elem: 0.0,
            algorithmic_factor: 1.0,
            simd_efficiency: 1.0,
        },
        make: |size, seed| {
            Box::new(Adapter {
                kernel: NBody::generate(size, seed),
                name: "nbody",
                tolerance: 2e-3,
                run,
                work,
                reference: None,
            }) as Box<dyn Instance>
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (NBody, ThreadPool) {
        (
            NBody::generate(ProblemSize::Test, 7),
            ThreadPool::with_threads(2),
        )
    }

    #[test]
    fn all_variants_agree_with_naive() {
        let (k, pool) = small();
        let reference = k.run_naive();
        for (label, out) in [
            ("parallel", k.run_parallel(&pool)),
            ("simd", k.run_simd()),
            ("algorithmic", k.run_algorithmic(&pool)),
            ("ninja", k.run_ninja(&pool)),
        ] {
            assert_eq!(out.len(), reference.len(), "{label}");
            for (i, (&a, &b)) in out.iter().zip(reference.iter()).enumerate() {
                let err = (a - b).abs() / b.abs().max(1.0);
                assert!(err < 2e-3, "{label}[{i}]: {a} vs {b}");
            }
        }
    }

    #[test]
    fn forces_are_newton_symmetric_for_two_bodies() {
        // Two equal masses: accelerations must be equal and opposite.
        let mut k = NBody::generate(ProblemSize::Test, 1);
        k.bodies = vec![
            Body {
                x: -1.0,
                y: 0.0,
                z: 0.0,
                m: 1.0,
            },
            Body {
                x: 1.0,
                y: 0.0,
                z: 0.0,
                m: 1.0,
            },
        ];
        let a = k.run_naive();
        assert!((a[0] + a[3]).abs() < 1e-6, "ax symmetric");
        assert!(a[0] > 0.0, "body 0 pulled toward +x");
    }

    #[test]
    fn self_interaction_is_zero() {
        let mut k = NBody::generate(ProblemSize::Test, 1);
        k.bodies = vec![Body {
            x: 0.5,
            y: -0.25,
            z: 1.0,
            m: 2.0,
        }];
        let a = k.run_naive();
        assert_eq!(a, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn instance_validates_via_registry_adapter() {
        let spec = spec();
        let pool = ThreadPool::with_threads(1);
        let mut inst = (spec.make)(ProblemSize::Test, 3);
        for v in Variant::ALL {
            inst.validate(v, &pool).unwrap();
        }
        assert!(inst.work().flops > 0.0);
    }

    #[test]
    fn deterministic_generation() {
        let a = NBody::generate(ProblemSize::Test, 9).run_naive();
        let b = NBody::generate(ProblemSize::Test, 9).run_naive();
        assert_eq!(a, b);
        let c = NBody::generate(ProblemSize::Test, 10).run_naive();
        assert_ne!(a, c);
    }

    #[test]
    fn soa_padding_is_zero_mass() {
        let k = NBody::generate(ProblemSize::Test, 4);
        assert_eq!(k.xs.len() % 4, 0);
        for j in k.len()..k.xs.len() {
            assert_eq!(k.ms[j], 0.0);
        }
    }

    #[test]
    fn total_momentum_change_is_zero() {
        // Newton's third law: sum_i m_i * a_i == 0 (forces are pairwise
        // equal and opposite, softening included).
        let k = NBody::generate(ProblemSize::Test, 13);
        let a = k.run_naive();
        let (mut px, mut py, mut pz) = (0.0f64, 0.0f64, 0.0f64);
        let mut scale = 0.0f64;
        for (i, b) in k.bodies.iter().enumerate() {
            px += b.m as f64 * a[3 * i] as f64;
            py += b.m as f64 * a[3 * i + 1] as f64;
            pz += b.m as f64 * a[3 * i + 2] as f64;
            scale += (b.m as f64) * (a[3 * i] as f64).abs();
        }
        for p in [px, py, pz] {
            assert!(
                p.abs() < 1e-4 * scale.max(1.0),
                "momentum drift {p} (scale {scale})"
            );
        }
    }

    #[test]
    fn far_away_body_feels_tiny_force() {
        let mut k = NBody::generate(ProblemSize::Test, 14);
        k.bodies = vec![
            Body {
                x: 0.0,
                y: 0.0,
                z: 0.0,
                m: 1.0,
            },
            Body {
                x: 1000.0,
                y: 0.0,
                z: 0.0,
                m: 1.0,
            },
        ];
        let a = k.run_naive();
        assert!(a[0].abs() < 1e-5, "force across 1000 units must be tiny");
        assert!(a[0] > 0.0, "but still attractive");
    }
}
