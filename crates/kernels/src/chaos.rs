//! Fault-injection kernel for exercising the harness's failure paths.
//!
//! Not part of [`crate::registry`] — the chaos kernel never contributes to
//! measured results. Tests and the `reproduce --chaos` flag inject it to
//! prove that one misbehaving variant cannot take down a suite run: the
//! victim variant fails in a chosen [`FailureMode`] while every other
//! variant does honest, validated work.
//!
//! Because [`KernelSpec::make`] is a plain function pointer, the failure
//! mode selects between four spec constructors and the *victim variant* is
//! encoded in the instance seed (`seed % 5` indexes [`Variant::ALL`]), so
//! tests can aim the fault at any rung of the ladder.

// ninja-lint: skip-file("fault-injection harness kernel; its variants fake work by design")

use crate::framework::{
    Characterization, Instance, KernelSpec, ProblemSize, ValidationError, Variant, VariantInfo,
    Work,
};
use ninja_parallel::ThreadPool;

/// How the victim variant misbehaves.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FailureMode {
    /// Panic during validation/measurement.
    Panic,
    /// Block forever (sleeps rather than spins, so a watchdog-abandoned
    /// thread does not burn a core for the rest of the process).
    Hang,
    /// Complete normally but return a NaN checksum.
    NonFinite,
    /// Return subtly wrong output that only validation can catch.
    WrongOutput,
}

impl FailureMode {
    /// Every mode, in the order the CLI documents them.
    pub const ALL: [FailureMode; 4] = [
        FailureMode::Panic,
        FailureMode::Hang,
        FailureMode::NonFinite,
        FailureMode::WrongOutput,
    ];

    /// Short CLI label (`panic`, `hang`, `nan`, `wrong`).
    pub fn name(self) -> &'static str {
        match self {
            FailureMode::Panic => "panic",
            FailureMode::Hang => "hang",
            FailureMode::NonFinite => "nan",
            FailureMode::WrongOutput => "wrong",
        }
    }

    /// Parses a label produced by [`FailureMode::name`].
    pub fn from_name(name: &str) -> Option<FailureMode> {
        FailureMode::ALL.into_iter().find(|m| m.name() == name)
    }
}

impl std::fmt::Display for FailureMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The victim variant encoded by an instance seed (`seed % 5`).
pub fn victim_of_seed(seed: u64) -> Variant {
    Variant::ALL[(seed % Variant::ALL.len() as u64) as usize]
}

struct ChaosInstance {
    mode: FailureMode,
    victim: Variant,
    data: Vec<f32>,
}

impl ChaosInstance {
    fn new(mode: FailureMode, size: ProblemSize, seed: u64) -> Self {
        let n = match size {
            ProblemSize::Test => 1 << 10,
            ProblemSize::Quick => 1 << 14,
            ProblemSize::Paper => 1 << 16,
        };
        // Deterministic, seed-independent inputs: the seed is reserved for
        // victim selection, and re-created instances (after a timeout or
        // panic) must regenerate identical data.
        let data = (0..n).map(|i| ((i % 97) as f32) * 0.25 + 1.0).collect();
        Self {
            mode,
            victim: victim_of_seed(seed),
            data,
        }
    }

    /// The honest computation every non-victim variant performs.
    fn honest_output(&self) -> Vec<f32> {
        self.data.iter().map(|&x| x * 1.5 + 2.0).collect()
    }

    fn output(&self, variant: Variant) -> Vec<f32> {
        let mut out = self.honest_output();
        if variant == self.victim && self.mode == FailureMode::WrongOutput {
            // Subtle corruption: one element, ~3% relative error — small
            // enough to keep the checksum plausible, large enough that a
            // per-element validator must flag it.
            let mid = out.len() / 2;
            out[mid] *= 1.03;
        }
        out
    }
}

impl Instance for ChaosInstance {
    fn run(&mut self, variant: Variant, _pool: &ThreadPool) -> f64 {
        if variant == self.victim {
            match self.mode {
                FailureMode::Panic => {
                    panic!("chaos: injected panic in variant {variant}")
                }
                FailureMode::Hang => loop {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                },
                FailureMode::NonFinite => return f64::NAN,
                FailureMode::WrongOutput => {}
            }
        }
        self.output(variant).iter().map(|&x| x as f64).sum()
    }

    fn validate(&mut self, variant: Variant, _pool: &ThreadPool) -> Result<(), ValidationError> {
        if variant == self.victim {
            match self.mode {
                FailureMode::Panic => {
                    panic!("chaos: injected panic in variant {variant}")
                }
                FailureMode::Hang => loop {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                },
                // NonFinite sabotages only the measured checksum, so
                // validation passes and the harness's non-finite check is
                // the one that must catch it.
                FailureMode::NonFinite => return Ok(()),
                FailureMode::WrongOutput => {}
            }
        }
        let reference = self.honest_output();
        let out = self.output(variant);
        let mut worst = (0.0f64, 0usize);
        for (i, (&a, &b)) in out.iter().zip(reference.iter()).enumerate() {
            let err = ((a - b).abs() as f64) / (b.abs() as f64).max(1.0);
            if err > worst.0 {
                worst = (err, i);
            }
        }
        if worst.0 > 1e-6 {
            return Err(ValidationError {
                kernel: "chaos",
                variant,
                detail: format!(
                    "worst relative error {:.3e} at element {} (injected corruption)",
                    worst.0, worst.1
                ),
            });
        }
        Ok(())
    }

    fn work(&self) -> Work {
        Work {
            flops: 2.0 * self.data.len() as f64,
            bytes: 8.0 * self.data.len() as f64,
            elems: self.data.len() as u64,
        }
    }
}

fn make_panic(size: ProblemSize, seed: u64) -> Box<dyn Instance> {
    Box::new(ChaosInstance::new(FailureMode::Panic, size, seed))
}

fn make_hang(size: ProblemSize, seed: u64) -> Box<dyn Instance> {
    Box::new(ChaosInstance::new(FailureMode::Hang, size, seed))
}

fn make_nan(size: ProblemSize, seed: u64) -> Box<dyn Instance> {
    Box::new(ChaosInstance::new(FailureMode::NonFinite, size, seed))
}

fn make_wrong(size: ProblemSize, seed: u64) -> Box<dyn Instance> {
    Box::new(ChaosInstance::new(FailureMode::WrongOutput, size, seed))
}

fn variants() -> [VariantInfo; 5] {
    let mut infos = Variant::ALL.map(|v| VariantInfo {
        variant: v,
        effort_loc: 1,
        what_changed: "fault injection — not a real optimization tier",
    });
    for (i, info) in infos.iter_mut().enumerate() {
        info.effort_loc = i as u32 + 1;
    }
    infos
}

/// The spec for one failure mode. The kernel is named `chaos-<mode>` so
/// reports make the injection obvious.
pub fn spec(mode: FailureMode) -> KernelSpec {
    let (name, description, make): (&'static str, &'static str, _) = match mode {
        FailureMode::Panic => (
            "chaos-panic",
            "fault injection: panics on the victim variant",
            make_panic as fn(_, _) -> _,
        ),
        FailureMode::Hang => (
            "chaos-hang",
            "fault injection: hangs on the victim variant",
            make_hang as fn(_, _) -> _,
        ),
        FailureMode::NonFinite => (
            "chaos-nan",
            "fault injection: NaN checksum on the victim variant",
            make_nan as fn(_, _) -> _,
        ),
        FailureMode::WrongOutput => (
            "chaos-wrong",
            "fault injection: wrong output on the victim variant",
            make_wrong as fn(_, _) -> _,
        ),
    };
    KernelSpec {
        name,
        description,
        bound: "compute",
        variants: variants(),
        character: Characterization {
            flops_per_elem: 2.0,
            bytes_per_elem: 8.0,
            naive_simd_frac: 0.0,
            restructure_simd_frac: 0.0,
            simd_friendly_frac: 0.0,
            parallel_frac: 0.5,
            gather_per_elem: 0.0,
            algorithmic_factor: 1.0,
            simd_efficiency: 1.0,
        },
        make,
    }
}

/// One spec per failure mode, in [`FailureMode::ALL`] order.
pub fn all_specs() -> Vec<KernelSpec> {
    FailureMode::ALL.into_iter().map(spec).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_roundtrip() {
        for m in FailureMode::ALL {
            assert_eq!(FailureMode::from_name(m.name()), Some(m));
            assert_eq!(format!("{m}"), m.name());
        }
        assert_eq!(FailureMode::from_name("bogus"), None);
    }

    #[test]
    fn victim_selection_covers_all_variants() {
        for (i, v) in Variant::ALL.into_iter().enumerate() {
            assert_eq!(victim_of_seed(i as u64), v);
            assert_eq!(victim_of_seed(i as u64 + 5), v);
        }
    }

    #[test]
    fn non_victim_variants_do_honest_work() {
        let pool = ThreadPool::with_threads(1);
        // Victim = ninja (seed 4); every other variant validates and
        // produces a matching finite checksum.
        let spec = spec(FailureMode::Panic);
        let mut inst = (spec.make)(ProblemSize::Test, 4);
        for v in [
            Variant::Naive,
            Variant::Parallel,
            Variant::Simd,
            Variant::Algorithmic,
        ] {
            inst.validate(v, &pool).unwrap();
            let c = inst.run(v, &pool);
            assert!(c.is_finite() && c > 0.0);
        }
    }

    #[test]
    fn panic_mode_panics_on_victim_only() {
        let pool = ThreadPool::with_threads(1);
        let spec = spec(FailureMode::Panic);
        let mut inst = (spec.make)(ProblemSize::Test, 0); // victim = naive
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inst.run(Variant::Naive, &pool)
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected panic"), "{msg}");
    }

    #[test]
    fn nan_mode_passes_validation_but_poisons_checksum() {
        let pool = ThreadPool::with_threads(1);
        let spec = spec(FailureMode::NonFinite);
        let mut inst = (spec.make)(ProblemSize::Test, 2); // victim = simd
        inst.validate(Variant::Simd, &pool).unwrap();
        assert!(inst.run(Variant::Simd, &pool).is_nan());
        assert!(inst.run(Variant::Naive, &pool).is_finite());
    }

    #[test]
    fn wrong_mode_fails_validation_with_detail() {
        let pool = ThreadPool::with_threads(1);
        let spec = spec(FailureMode::WrongOutput);
        let mut inst = (spec.make)(ProblemSize::Test, 3); // victim = algorithmic
        let err = inst.validate(Variant::Algorithmic, &pool).unwrap_err();
        assert!(err.detail.contains("injected corruption"), "{}", err.detail);
        inst.validate(Variant::Ninja, &pool).unwrap();
        // The corrupted checksum is still finite and close to honest.
        let bad = inst.run(Variant::Algorithmic, &pool);
        let good = inst.run(Variant::Naive, &pool);
        assert!(bad.is_finite());
        assert!(
            (bad - good).abs() / good > 0.0,
            "corruption must move the checksum"
        );
    }

    #[test]
    fn all_specs_have_unique_chaos_names() {
        let specs = all_specs();
        assert_eq!(specs.len(), 4);
        for s in &specs {
            assert!(s.name.starts_with("chaos-"));
        }
    }
}
