//! Fault-injection kernel for exercising the harness's failure paths.
//!
//! Not part of [`crate::registry`] — the chaos kernel never contributes to
//! measured results. Tests and the `reproduce --chaos` flag inject it to
//! prove that one misbehaving variant cannot take down a suite run: the
//! victim variant fails in a chosen [`FailureMode`] while every other
//! variant does honest, validated work.
//!
//! Because [`KernelSpec::make`] is a plain function pointer, the failure
//! mode selects between four spec constructors and the *victim variant* is
//! encoded in the instance seed (`seed % 5` indexes [`Variant::ALL`]), so
//! tests can aim the fault at any rung of the ladder.

// ninja-lint: skip-file("fault-injection harness kernel; its variants fake work by design")

use crate::framework::{
    Characterization, Instance, KernelSpec, ProblemSize, ValidationError, Variant, VariantInfo,
    Work,
};
use ninja_parallel::ThreadPool;

/// How the victim variant misbehaves.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FailureMode {
    /// Panic during validation/measurement.
    Panic,
    /// Block forever (sleeps rather than spins, so a watchdog-abandoned
    /// thread does not burn a core for the rest of the process).
    Hang,
    /// Complete normally but return a NaN checksum.
    NonFinite,
    /// Return subtly wrong output that only validation can catch.
    WrongOutput,
}

impl FailureMode {
    /// Every mode, in the order the CLI documents them.
    pub const ALL: [FailureMode; 4] = [
        FailureMode::Panic,
        FailureMode::Hang,
        FailureMode::NonFinite,
        FailureMode::WrongOutput,
    ];

    /// Short CLI label (`panic`, `hang`, `nan`, `wrong`).
    pub fn name(self) -> &'static str {
        match self {
            FailureMode::Panic => "panic",
            FailureMode::Hang => "hang",
            FailureMode::NonFinite => "nan",
            FailureMode::WrongOutput => "wrong",
        }
    }

    /// Parses a label produced by [`FailureMode::name`].
    pub fn from_name(name: &str) -> Option<FailureMode> {
        FailureMode::ALL.into_iter().find(|m| m.name() == name)
    }
}

impl std::fmt::Display for FailureMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The victim variant encoded by an instance seed (`seed % 5`).
pub fn victim_of_seed(seed: u64) -> Variant {
    Variant::ALL[(seed % Variant::ALL.len() as u64) as usize]
}

/// SplitMix64 step: the statistically solid minimal PRNG used anywhere
/// the workspace needs cheap deterministic hashing of a counter.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded probabilistic fault schedule, shared by `reproduce --chaos`
/// (via [`spec_scheduled`]) and the `ninja-serve` fault injector.
///
/// The schedule is a pure function of `(seed, rate, index)`: slot `index`
/// either faults with one of the four [`FailureMode`]s or passes clean,
/// and the same seed and rate reproduce the same decision sequence
/// bit-for-bit on every host. Consumers assign their own meaning to the
/// slot index (ladder rung for the chaos kernel, batch-attempt counter
/// for the serving layer).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ChaosSchedule {
    seed: u64,
    rate: f64,
}

impl ChaosSchedule {
    /// Builds a schedule; `rate` is clamped to `[0, 1]` (NaN becomes 0).
    pub fn new(seed: u64, rate: f64) -> Self {
        let rate = if rate.is_nan() {
            0.0
        } else {
            rate.clamp(0.0, 1.0)
        };
        Self { seed, rate }
    }

    /// The seed the schedule was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-slot fault probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The fault injected at schedule slot `index`, if any. Pure and
    /// order-independent: callers may query slots in any order.
    pub fn fault_at(&self, index: u64) -> Option<FailureMode> {
        let x = splitmix64(self.seed ^ splitmix64(index));
        // 53 high bits -> uniform in [0, 1).
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        if u >= self.rate {
            return None;
        }
        let pick = splitmix64(x) % FailureMode::ALL.len() as u64;
        Some(FailureMode::ALL[pick as usize])
    }

    /// One schedule decision per ladder rung, in [`Variant::ALL`] order —
    /// the fault map the scheduled chaos kernel runs under.
    pub fn variant_faults(&self) -> [Option<FailureMode>; 5] {
        std::array::from_fn(|i| self.fault_at(i as u64))
    }
}

/// Process-global schedule consumed by [`spec_scheduled`] instances.
/// Global because [`KernelSpec::make`] is a plain function pointer and
/// cannot capture the schedule; `reproduce` sets it once before running.
static SCHEDULE: std::sync::Mutex<Option<ChaosSchedule>> = std::sync::Mutex::new(None);

/// Installs (or clears) the schedule that future [`spec_scheduled`]
/// instances fault under.
pub fn set_schedule(schedule: Option<ChaosSchedule>) {
    *SCHEDULE.lock().unwrap_or_else(|e| e.into_inner()) = schedule;
}

fn current_schedule() -> Option<ChaosSchedule> {
    *SCHEDULE.lock().unwrap_or_else(|e| e.into_inner())
}

struct ChaosInstance {
    /// Per-rung fault map, [`Variant::ALL`] order.
    faults: [Option<FailureMode>; 5],
    data: Vec<f32>,
}

fn variant_index(v: Variant) -> usize {
    Variant::ALL
        .iter()
        .position(|&x| x == v)
        .expect("every variant is in Variant::ALL")
}

impl ChaosInstance {
    fn chaos_data(size: ProblemSize) -> Vec<f32> {
        let n = match size {
            ProblemSize::Test => 1 << 10,
            ProblemSize::Quick => 1 << 14,
            ProblemSize::Paper => 1 << 16,
        };
        // Deterministic, seed-independent inputs: the seed is reserved for
        // victim selection, and re-created instances (after a timeout or
        // panic) must regenerate identical data.
        (0..n).map(|i| ((i % 97) as f32) * 0.25 + 1.0).collect()
    }

    fn new(mode: FailureMode, size: ProblemSize, seed: u64) -> Self {
        let mut faults = [None; 5];
        faults[variant_index(victim_of_seed(seed))] = Some(mode);
        Self {
            faults,
            data: Self::chaos_data(size),
        }
    }

    fn new_scheduled(size: ProblemSize) -> Self {
        Self {
            faults: current_schedule()
                .map(|s| s.variant_faults())
                .unwrap_or([None; 5]),
            data: Self::chaos_data(size),
        }
    }

    fn fault_for(&self, v: Variant) -> Option<FailureMode> {
        self.faults[variant_index(v)]
    }

    /// The honest computation every non-victim variant performs.
    fn honest_output(&self) -> Vec<f32> {
        self.data.iter().map(|&x| x * 1.5 + 2.0).collect()
    }

    fn output(&self, variant: Variant) -> Vec<f32> {
        let mut out = self.honest_output();
        if self.fault_for(variant) == Some(FailureMode::WrongOutput) {
            // Subtle corruption: one element, ~3% relative error — small
            // enough to keep the checksum plausible, large enough that a
            // per-element validator must flag it.
            let mid = out.len() / 2;
            out[mid] *= 1.03;
        }
        out
    }
}

impl Instance for ChaosInstance {
    fn run(&mut self, variant: Variant, _pool: &ThreadPool) -> f64 {
        if let Some(mode) = self.fault_for(variant) {
            match mode {
                FailureMode::Panic => {
                    panic!("chaos: injected panic in variant {variant}")
                }
                FailureMode::Hang => loop {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                },
                FailureMode::NonFinite => return f64::NAN,
                FailureMode::WrongOutput => {}
            }
        }
        self.output(variant).iter().map(|&x| x as f64).sum()
    }

    fn validate(&mut self, variant: Variant, _pool: &ThreadPool) -> Result<(), ValidationError> {
        if let Some(mode) = self.fault_for(variant) {
            match mode {
                FailureMode::Panic => {
                    panic!("chaos: injected panic in variant {variant}")
                }
                FailureMode::Hang => loop {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                },
                // NonFinite sabotages only the measured checksum, so
                // validation passes and the harness's non-finite check is
                // the one that must catch it.
                FailureMode::NonFinite => return Ok(()),
                FailureMode::WrongOutput => {}
            }
        }
        let reference = self.honest_output();
        let out = self.output(variant);
        let mut worst = (0.0f64, 0usize);
        for (i, (&a, &b)) in out.iter().zip(reference.iter()).enumerate() {
            let err = ((a - b).abs() as f64) / (b.abs() as f64).max(1.0);
            if err > worst.0 {
                worst = (err, i);
            }
        }
        if worst.0 > 1e-6 {
            return Err(ValidationError {
                kernel: "chaos",
                variant,
                detail: format!(
                    "worst relative error {:.3e} at element {} (injected corruption)",
                    worst.0, worst.1
                ),
            });
        }
        Ok(())
    }

    fn work(&self) -> Work {
        Work {
            flops: 2.0 * self.data.len() as f64,
            bytes: 8.0 * self.data.len() as f64,
            elems: self.data.len() as u64,
        }
    }
}

fn make_panic(size: ProblemSize, seed: u64) -> Box<dyn Instance> {
    Box::new(ChaosInstance::new(FailureMode::Panic, size, seed))
}

fn make_hang(size: ProblemSize, seed: u64) -> Box<dyn Instance> {
    Box::new(ChaosInstance::new(FailureMode::Hang, size, seed))
}

fn make_nan(size: ProblemSize, seed: u64) -> Box<dyn Instance> {
    Box::new(ChaosInstance::new(FailureMode::NonFinite, size, seed))
}

fn make_wrong(size: ProblemSize, seed: u64) -> Box<dyn Instance> {
    Box::new(ChaosInstance::new(FailureMode::WrongOutput, size, seed))
}

fn variants() -> [VariantInfo; 5] {
    let mut infos = Variant::ALL.map(|v| VariantInfo {
        variant: v,
        effort_loc: 1,
        what_changed: "fault injection — not a real optimization tier",
    });
    for (i, info) in infos.iter_mut().enumerate() {
        info.effort_loc = i as u32 + 1;
    }
    infos
}

/// The spec for one failure mode. The kernel is named `chaos-<mode>` so
/// reports make the injection obvious.
pub fn spec(mode: FailureMode) -> KernelSpec {
    let (name, description, make): (&'static str, &'static str, _) = match mode {
        FailureMode::Panic => (
            "chaos-panic",
            "fault injection: panics on the victim variant",
            make_panic as fn(_, _) -> _,
        ),
        FailureMode::Hang => (
            "chaos-hang",
            "fault injection: hangs on the victim variant",
            make_hang as fn(_, _) -> _,
        ),
        FailureMode::NonFinite => (
            "chaos-nan",
            "fault injection: NaN checksum on the victim variant",
            make_nan as fn(_, _) -> _,
        ),
        FailureMode::WrongOutput => (
            "chaos-wrong",
            "fault injection: wrong output on the victim variant",
            make_wrong as fn(_, _) -> _,
        ),
    };
    KernelSpec {
        name,
        description,
        bound: "compute",
        variants: variants(),
        character: Characterization {
            flops_per_elem: 2.0,
            bytes_per_elem: 8.0,
            naive_simd_frac: 0.0,
            restructure_simd_frac: 0.0,
            simd_friendly_frac: 0.0,
            parallel_frac: 0.5,
            gather_per_elem: 0.0,
            algorithmic_factor: 1.0,
            simd_efficiency: 1.0,
        },
        make,
    }
}

/// One spec per failure mode, in [`FailureMode::ALL`] order.
pub fn all_specs() -> Vec<KernelSpec> {
    FailureMode::ALL.into_iter().map(spec).collect()
}

fn make_scheduled(size: ProblemSize, _seed: u64) -> Box<dyn Instance> {
    Box::new(ChaosInstance::new_scheduled(size))
}

/// The spec for the schedule-driven chaos kernel: each ladder rung faults
/// (or not) per the process-global [`ChaosSchedule`] installed with
/// [`set_schedule`]. Named `chaos-sched` so the `chaos` prefix keeps it
/// out of perfdb, like the single-victim specs.
pub fn spec_scheduled() -> KernelSpec {
    KernelSpec {
        name: "chaos-sched",
        description: "fault injection: seeded probabilistic per-rung schedule",
        bound: "compute",
        variants: variants(),
        character: Characterization {
            flops_per_elem: 2.0,
            bytes_per_elem: 8.0,
            naive_simd_frac: 0.0,
            restructure_simd_frac: 0.0,
            simd_friendly_frac: 0.0,
            parallel_frac: 0.5,
            gather_per_elem: 0.0,
            algorithmic_factor: 1.0,
            simd_efficiency: 1.0,
        },
        make: make_scheduled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_roundtrip() {
        for m in FailureMode::ALL {
            assert_eq!(FailureMode::from_name(m.name()), Some(m));
            assert_eq!(format!("{m}"), m.name());
        }
        assert_eq!(FailureMode::from_name("bogus"), None);
    }

    #[test]
    fn victim_selection_covers_all_variants() {
        for (i, v) in Variant::ALL.into_iter().enumerate() {
            assert_eq!(victim_of_seed(i as u64), v);
            assert_eq!(victim_of_seed(i as u64 + 5), v);
        }
    }

    #[test]
    fn non_victim_variants_do_honest_work() {
        let pool = ThreadPool::with_threads(1);
        // Victim = ninja (seed 4); every other variant validates and
        // produces a matching finite checksum.
        let spec = spec(FailureMode::Panic);
        let mut inst = (spec.make)(ProblemSize::Test, 4);
        for v in [
            Variant::Naive,
            Variant::Parallel,
            Variant::Simd,
            Variant::Algorithmic,
        ] {
            inst.validate(v, &pool).unwrap();
            let c = inst.run(v, &pool);
            assert!(c.is_finite() && c > 0.0);
        }
    }

    #[test]
    fn panic_mode_panics_on_victim_only() {
        let pool = ThreadPool::with_threads(1);
        let spec = spec(FailureMode::Panic);
        let mut inst = (spec.make)(ProblemSize::Test, 0); // victim = naive
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inst.run(Variant::Naive, &pool)
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected panic"), "{msg}");
    }

    #[test]
    fn nan_mode_passes_validation_but_poisons_checksum() {
        let pool = ThreadPool::with_threads(1);
        let spec = spec(FailureMode::NonFinite);
        let mut inst = (spec.make)(ProblemSize::Test, 2); // victim = simd
        inst.validate(Variant::Simd, &pool).unwrap();
        assert!(inst.run(Variant::Simd, &pool).is_nan());
        assert!(inst.run(Variant::Naive, &pool).is_finite());
    }

    #[test]
    fn wrong_mode_fails_validation_with_detail() {
        let pool = ThreadPool::with_threads(1);
        let spec = spec(FailureMode::WrongOutput);
        let mut inst = (spec.make)(ProblemSize::Test, 3); // victim = algorithmic
        let err = inst.validate(Variant::Algorithmic, &pool).unwrap_err();
        assert!(err.detail.contains("injected corruption"), "{}", err.detail);
        inst.validate(Variant::Ninja, &pool).unwrap();
        // The corrupted checksum is still finite and close to honest.
        let bad = inst.run(Variant::Algorithmic, &pool);
        let good = inst.run(Variant::Naive, &pool);
        assert!(bad.is_finite());
        assert!(
            (bad - good).abs() / good > 0.0,
            "corruption must move the checksum"
        );
    }

    #[test]
    fn all_specs_have_unique_chaos_names() {
        let specs = all_specs();
        assert_eq!(specs.len(), 4);
        for s in &specs {
            assert!(s.name.starts_with("chaos-"));
        }
        assert!(spec_scheduled().name.starts_with("chaos-"));
    }

    #[test]
    fn schedule_is_deterministic_and_order_independent() {
        let s = ChaosSchedule::new(42, 0.3);
        let forward: Vec<_> = (0..256).map(|i| s.fault_at(i)).collect();
        let backward: Vec<_> = (0..256).rev().map(|i| s.fault_at(i)).collect();
        let rev: Vec<_> = backward.into_iter().rev().collect();
        assert_eq!(forward, rev);
        // Same seed+rate rebuilt from scratch reproduces bit-for-bit.
        let s2 = ChaosSchedule::new(42, 0.3);
        assert_eq!(
            forward,
            (0..256).map(|i| s2.fault_at(i)).collect::<Vec<_>>()
        );
        // A different seed gives a different sequence.
        let s3 = ChaosSchedule::new(43, 0.3);
        assert_ne!(
            forward,
            (0..256).map(|i| s3.fault_at(i)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn schedule_rate_extremes() {
        let never = ChaosSchedule::new(7, 0.0);
        let always = ChaosSchedule::new(7, 1.0);
        for i in 0..128 {
            assert_eq!(never.fault_at(i), None);
            assert!(always.fault_at(i).is_some());
        }
        // Clamping: out-of-range and NaN rates are safe.
        assert_eq!(ChaosSchedule::new(7, -0.5).rate(), 0.0);
        assert_eq!(ChaosSchedule::new(7, 2.0).rate(), 1.0);
        assert_eq!(ChaosSchedule::new(7, f64::NAN).rate(), 0.0);
    }

    #[test]
    fn schedule_rate_roughly_matches_empirical_frequency() {
        let s = ChaosSchedule::new(1234, 0.25);
        let n = 4096;
        let hits = (0..n).filter(|&i| s.fault_at(i).is_some()).count();
        let freq = hits as f64 / n as f64;
        assert!(
            (freq - 0.25).abs() < 0.05,
            "empirical fault rate {freq} too far from 0.25"
        );
        // All four modes should appear at this rate and sample count.
        for mode in FailureMode::ALL {
            assert!(
                (0..n).any(|i| s.fault_at(i) == Some(mode)),
                "mode {mode} never drawn"
            );
        }
    }

    #[test]
    fn scheduled_spec_faults_per_installed_schedule() {
        let pool = ThreadPool::with_threads(1);
        // With no schedule installed every rung does honest work.
        set_schedule(None);
        let mut inst = (spec_scheduled().make)(ProblemSize::Test, 0);
        for v in Variant::ALL {
            inst.validate(v, &pool).unwrap();
            assert!(inst.run(v, &pool).is_finite());
        }
        // Find a seed whose rate-1.0 schedule puts WrongOutput on naive
        // (rate 1.0 faults every rung; scan seeds for the mode we want).
        let seed = (0..1000u64)
            .find(|&s| {
                ChaosSchedule::new(s, 1.0).variant_faults()[0] == Some(FailureMode::WrongOutput)
            })
            .expect("some seed maps rung 0 to WrongOutput");
        set_schedule(Some(ChaosSchedule::new(seed, 1.0)));
        let mut inst = (spec_scheduled().make)(ProblemSize::Test, 0);
        set_schedule(None); // instance captured the map at construction
        let err = inst.validate(Variant::Naive, &pool).unwrap_err();
        assert!(err.detail.contains("injected corruption"), "{}", err.detail);
    }
}
