//! Property tests over kernel building blocks and whole-kernel invariants.

use ninja_kernels::merge_sort::{bottom_up_sort_with_cutoff, merge_scalar, merge_simd};
use ninja_kernels::{conv1d::Conv1d, lbm::Lbm, tree_search::TreeSearch, ProblemSize};
use ninja_parallel::ThreadPool;
use proptest::prelude::*;

fn sorted_vec(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1e6f32..1e6, 0..max_len).prop_map(|mut v| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    })
}

proptest! {
    #[test]
    fn simd_merge_equals_scalar_merge(a in sorted_vec(200), b in sorted_vec(200)) {
        let mut got = vec![0.0f32; a.len() + b.len()];
        let mut want = vec![0.0f32; a.len() + b.len()];
        merge_simd(&a, &b, &mut got);
        merge_scalar(&a, &b, &mut want);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bottom_up_sort_sorts_for_any_cutoff(
        mut data in prop::collection::vec(-1e5f32..1e5, 0..500),
        cutoff in 1usize..64,
    ) {
        let mut want = data.clone();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut tmp = vec![0.0f32; data.len()];
        bottom_up_sort_with_cutoff(&mut data, &mut tmp, merge_scalar, cutoff);
        prop_assert_eq!(data, want);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn tree_search_variants_agree_for_any_seed(seed in 0u64..10_000) {
        let k = TreeSearch::generate(ProblemSize::Test, seed);
        let pool = ThreadPool::with_threads(2);
        let reference = k.run_naive();
        prop_assert_eq!(&k.run_algorithmic(&pool), &reference);
        prop_assert_eq!(&k.run_ninja(&pool), &reference);
    }

    #[test]
    fn conv1d_output_is_linear_in_the_signal(seed_a in 0u64..1000, seed_b in 1000u64..2000) {
        // Two instances sharing the same taps would be ideal; instead use
        // one instance and exploit homogeneity: conv(s) computed twice is
        // identical, and scaling the accumulation is exercised by the
        // identity below on a single instance's outputs.
        let k = Conv1d::generate(ProblemSize::Test, seed_a);
        let out1 = k.run_naive();
        let out2 = k.run_naive();
        prop_assert_eq!(out1, out2, "conv must be deterministic");
        let j = Conv1d::generate(ProblemSize::Test, seed_b);
        prop_assert_ne!(j.run_naive(), k.run_naive(), "different seeds differ");
    }

    #[test]
    fn lbm_conserves_mass_for_any_seed(seed in 0u64..10_000) {
        let k = Lbm::generate(ProblemSize::Test, seed);
        let rho = k.run_simd();
        let total: f64 = rho.iter().map(|&x| x as f64).sum();
        // Initial mass: cells have rho in [0.8, 1.2] at equilibrium.
        let cells = rho.len() as f64;
        prop_assert!(total > 0.75 * cells && total < 1.25 * cells, "total {total}");
    }
}
