//! Synthetic-recovery tests for the Amdahl/USL fitters: generate
//! speedup curves from *known* (serial_fraction, contention, coherency)
//! with deterministic multiplicative noise, then assert the fit
//! recovers the parameters within tolerance and is bit-for-bit
//! reproducible across runs.

use ninja_model::scaling::{
    amdahl_speedup, detect_knee, fit_scaling, usl_speedup, DEFAULT_KNEE_THRESHOLD,
};

/// SplitMix64: tiny deterministic PRNG so the "noise" in these tests is
/// a pure function of the seed (no global state, no platform variance).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// USL curve for threads 1..=max_n with multiplicative noise of
/// relative amplitude `noise` (0.0 = exact curve), seeded by `seed`.
fn noisy_usl_curve(
    sigma: f64,
    kappa: f64,
    max_n: usize,
    noise: f64,
    seed: u64,
) -> Vec<(usize, f64)> {
    let mut rng = SplitMix64(seed);
    (1..=max_n)
        .map(|n| {
            let ideal = usl_speedup(n as f64, sigma, kappa);
            let jitter = 1.0 + noise * (rng.unit_f64() - 0.5) * 2.0;
            (n, ideal * jitter)
        })
        .collect()
}

#[test]
fn amdahl_recovery_under_noise() {
    // Pure Amdahl curves (κ = 0) across a range of serial fractions,
    // 2% multiplicative noise: σ must come back within ±0.03.
    for (case, &true_sigma) in [0.02, 0.05, 0.10, 0.25].iter().enumerate() {
        let points = noisy_usl_curve(true_sigma, 0.0, 16, 0.02, 42 + case as u64);
        let fit = fit_scaling(&points).expect("fittable curve");
        assert!(
            (fit.serial_fraction - true_sigma).abs() < 0.03,
            "σ={true_sigma}: recovered {fit:?}"
        );
        assert!(fit.r_squared > 0.95, "σ={true_sigma}: {fit:?}");
    }
}

#[test]
fn usl_recovery_under_noise() {
    // Full USL curves with visible coherency; 1% noise. The linearised
    // least-squares estimator is unbiased enough at this noise level to
    // land near the truth.
    for (case, &(true_sigma, true_kappa)) in [(0.05, 0.001), (0.10, 0.005), (0.02, 0.010)]
        .iter()
        .enumerate()
    {
        let points = noisy_usl_curve(true_sigma, true_kappa, 32, 0.01, 7 + case as u64);
        let fit = fit_scaling(&points).expect("fittable curve");
        assert!(
            (fit.contention - true_sigma).abs() < 0.05,
            "σ={true_sigma} κ={true_kappa}: {fit:?}"
        );
        assert!(
            (fit.coherency - true_kappa).abs() < 0.005,
            "σ={true_sigma} κ={true_kappa}: {fit:?}"
        );
        assert!(
            fit.r_squared > 0.9,
            "σ={true_sigma} κ={true_kappa}: {fit:?}"
        );
    }
}

#[test]
fn exact_curves_recover_exactly() {
    let points = noisy_usl_curve(0.07, 0.002, 24, 0.0, 0);
    let fit = fit_scaling(&points).expect("fittable curve");
    assert!((fit.contention - 0.07).abs() < 1e-9, "{fit:?}");
    assert!((fit.coherency - 0.002).abs() < 1e-9, "{fit:?}");
    assert!(fit.r_squared > 0.999_999, "{fit:?}");
}

#[test]
fn fit_is_bit_reproducible_across_runs() {
    // The fitter is closed-form over f64 sums in a fixed order: the same
    // points must produce bit-identical parameters every time. Run the
    // whole pipeline (generation + fit) twice and compare raw bits.
    let run = || {
        let points = noisy_usl_curve(0.08, 0.003, 32, 0.02, 0xDEAD_BEEF);
        fit_scaling(&points).expect("fittable curve")
    };
    let (a, b) = (run(), run());
    assert_eq!(a.serial_fraction.to_bits(), b.serial_fraction.to_bits());
    assert_eq!(a.contention.to_bits(), b.contention.to_bits());
    assert_eq!(a.coherency.to_bits(), b.coherency.to_bits());
    assert_eq!(a.r_squared.to_bits(), b.r_squared.to_bits());
}

#[test]
fn knee_tracks_coherency() {
    // Higher κ must knee at or before a lower κ curve measured on the
    // same grid — this is the property the sweep report's bound
    // cross-check relies on (bandwidth-bound ≈ higher effective κ).
    let grid_max = 64;
    let gentle: Vec<(usize, f64)> = (1..=grid_max)
        .map(|n| (n, usl_speedup(n as f64, 0.02, 0.0002)))
        .collect();
    let harsh: Vec<(usize, f64)> = (1..=grid_max)
        .map(|n| (n, usl_speedup(n as f64, 0.02, 0.01)))
        .collect();
    let knee_gentle = detect_knee(&gentle, DEFAULT_KNEE_THRESHOLD).unwrap_or(usize::MAX);
    let knee_harsh = detect_knee(&harsh, DEFAULT_KNEE_THRESHOLD).unwrap_or(usize::MAX);
    assert!(
        knee_harsh < knee_gentle,
        "harsh κ should knee earlier: harsh={knee_harsh} gentle={knee_gentle}"
    );
}

#[test]
fn amdahl_curve_shape_sanity() {
    // S(1) = 1 for both models; Amdahl saturates at 1/σ.
    assert!((amdahl_speedup(1.0, 0.3) - 1.0).abs() < 1e-12);
    assert!((usl_speedup(1.0, 0.3, 0.01) - 1.0).abs() < 1e-12);
    assert!(amdahl_speedup(1e9, 0.1) < 10.0 + 1e-6);
}
