//! Roofline-style analytical machine model for the Ninja-gap reproduction.
//!
//! The original study measured three CPU generations (Conroe, Nehalem, the
//! 6-core Westmere X980) and the Intel MIC prototype. This host has one
//! core, so everything beyond per-core effects is **projected** by this
//! crate instead of measured: it combines each kernel's roofline
//! characterization ([`ninja_kernels::Characterization`]) with a machine
//! description ([`Machine`]) to predict per-variant execution time, the
//! Ninja gap, its parallel/SIMD/algorithmic decomposition, and the effect
//! of hardware programmability features (gather/scatter) — i.e. the data
//! behind the paper's Figures 1-3, 5 and its hardware-support discussion.
//!
//! The model is deliberately simple (the paper itself reasons about its
//! benchmarks as compute- vs bandwidth-bound): per-core vector throughput
//! with Amdahl-style efficiency terms, a bandwidth roofline, a software
//! gather penalty, and a fixed Ninja tuning margin. It reproduces *shapes*
//! (who wins, by roughly what factor), not the authors' absolute numbers.
//!
//! # Example
//!
//! ```
//! use ninja_model::{machines, predicted_gap};
//! let c = ninja_kernels::registry()[0].character; // nbody
//! let gap = predicted_gap(&c, &machines::westmere());
//! assert!(gap > 10.0, "nbody Ninja gap on Westmere should be large");
//! let residual = ninja_model::predicted_residual(&c, &machines::westmere());
//! assert!(residual < 2.0, "low-effort code should land close to Ninja");
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod attribution;
pub mod calibrate;
pub mod machines;
mod roofline;
pub mod scaling;

pub use attribution::{
    Attribution, BOUND_BANDWIDTH, BOUND_COMPUTE, BOUND_POORLY_UTILIZED, UTILIZATION_FLOOR_PCT,
};
pub use calibrate::{calibrated_host, measure_host, HostCalibration};
pub use machines::{nominal_host, Machine};
pub use roofline::{
    gap_breakdown, gather_ablation, hardware_evolution, predicted_gap, predicted_residual,
    time_per_elem, GapBreakdown, HardwareStep, COMPILER_VECTOR_EFFICIENCY, NINJA_TUNING,
};
pub use scaling::{
    amdahl_speedup, detect_knee, fit_amdahl, fit_scaling, fit_usl, usl_speedup, ScalingFit,
    DEFAULT_KNEE_THRESHOLD,
};

/// Geometric mean of a slice of positive ratios (the paper reports average
/// gaps as means over benchmarks; geometric mean is the right average for
/// ratios).
///
/// # Panics
///
/// Panics if `xs` is empty or contains a non-positive value.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean requires positive values");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geomean_empty_panics() {
        let _ = geomean(&[]);
    }
}
