//! Host calibration: build a [`Machine`] description of *this* machine
//! from three microbenchmarks (scalar FLOP rate, SIMD FLOP rate, streaming
//! read bandwidth), so model projections can be anchored to measured
//! per-core capability instead of datasheet numbers.

use crate::Machine;
use ninja_simd::F32x4;
use std::hint::black_box;
use std::time::Instant;

/// Raw microbenchmark results backing a calibrated [`Machine`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct HostCalibration {
    /// Sustained scalar multiply-add rate of one core, GFLOP/s.
    pub scalar_gflops: f64,
    /// Sustained 4-wide SIMD multiply-add rate of one core, GFLOP/s.
    pub simd_gflops: f64,
    /// Sustained single-thread streaming read bandwidth, GB/s.
    pub bandwidth_gbs: f64,
}

impl HostCalibration {
    /// Effective SIMD width: how much wider the vector pipeline actually is.
    pub fn effective_lanes(&self) -> f64 {
        self.simd_gflops / self.scalar_gflops
    }
}

/// Scalar multiply-add throughput: eight accumulator chains rotated by one
/// position per iteration. The rotation keeps the chains independent
/// (throughput-bound, not latency-bound) while the cross-chain data flow
/// stops the SLP vectorizer from turning the "scalar" measurement into a
/// SIMD one.
fn measure_scalar_gflops() -> f64 {
    const ITERS: u64 = 4_000_000;
    let (mut c0, mut c1, mut c2, mut c3) = (1.0f32, 1.1, 1.2, 1.3);
    let (mut c4, mut c5, mut c6, mut c7) = (1.4f32, 1.5, 1.6, 1.7);
    let a = black_box(1.000_000_1f32);
    let b = black_box(1e-9f32);
    let start = Instant::now();
    for _ in 0..ITERS {
        let t = c0;
        c0 = c1 * a + b;
        c1 = c2 * a + b;
        c2 = c3 * a + b;
        c3 = c4 * a + b;
        c4 = c5 * a + b;
        c5 = c6 * a + b;
        c6 = c7 * a + b;
        c7 = t * a + b;
    }
    let secs = start.elapsed().as_secs_f64();
    black_box((c0, c1, c2, c3, c4, c5, c6, c7));
    // 8 chains x (1 mul + 1 add) per iteration.
    (ITERS as f64 * 8.0 * 2.0) / secs / 1e9
}

/// SIMD multiply-add throughput with four independent vector chains.
fn measure_simd_gflops() -> f64 {
    const ITERS: u64 = 4_000_000;
    let mut acc = [
        F32x4::splat(1.0),
        F32x4::splat(1.1),
        F32x4::splat(1.2),
        F32x4::splat(1.3),
    ];
    let a = F32x4::splat(black_box(1.000_000_1f32));
    let b = F32x4::splat(black_box(1e-9f32));
    let start = Instant::now();
    for _ in 0..ITERS {
        for v in acc.iter_mut() {
            *v = v.mul_add(a, b);
        }
    }
    let secs = start.elapsed().as_secs_f64();
    black_box(acc.map(|v| v.reduce_sum()));
    // 4 chains x 4 lanes x (1 mul + 1 add).
    (ITERS as f64 * 4.0 * 4.0 * 2.0) / secs / 1e9
}

/// Streaming read bandwidth over a buffer far larger than the LLC.
fn measure_bandwidth_gbs() -> f64 {
    const BYTES: usize = 256 << 20;
    let buf: Vec<u64> = vec![3; BYTES / 8];
    // One warm pass, one timed pass.
    let mut sink = 0u64;
    for &x in &buf {
        sink = sink.wrapping_add(x);
    }
    let start = Instant::now();
    let mut sum = 0u64;
    for chunk in buf.chunks_exact(8) {
        // Eight independent adds per iteration keep the loop load-bound.
        sum = sum
            .wrapping_add(chunk[0])
            .wrapping_add(chunk[1])
            .wrapping_add(chunk[2])
            .wrapping_add(chunk[3])
            .wrapping_add(chunk[4])
            .wrapping_add(chunk[5])
            .wrapping_add(chunk[6])
            .wrapping_add(chunk[7]);
    }
    let secs = start.elapsed().as_secs_f64();
    black_box(sink.wrapping_add(sum));
    BYTES as f64 / secs / 1e9
}

/// Runs the three microbenchmarks (≈1 s total).
pub fn measure_host() -> HostCalibration {
    HostCalibration {
        scalar_gflops: measure_scalar_gflops(),
        simd_gflops: measure_simd_gflops(),
        bandwidth_gbs: measure_bandwidth_gbs(),
    }
}

/// Builds a [`Machine`] description of this host, assuming `threads`
/// participating cores each as capable as the measured one.
///
/// The frequency field is derived from the measured scalar rate (the model
/// only ever uses their product), the SIMD width from the measured
/// vector/scalar ratio, and machine bandwidth from the single-core number
/// with the mild per-core scaling typical of client parts.
pub fn calibrated_host(threads: usize) -> Machine {
    let cal = measure_host();
    machine_from(cal, threads)
}

/// Deterministic construction of a [`Machine`] from existing calibration
/// numbers (split out for testing).
pub fn machine_from(cal: HostCalibration, threads: usize) -> Machine {
    let lanes = cal.effective_lanes().round().clamp(1.0, 16.0) as u32;
    Machine {
        name: format!("calibrated host x{threads}"),
        year: 0,
        cores: threads.max(1) as u32,
        freq_ghz: cal.scalar_gflops / 2.0,
        simd_f32_lanes: lanes,
        flops_per_cycle_per_lane: 2.0,
        bandwidth_gbs: cal.bandwidth_gbs * (threads as f64).sqrt().max(1.0),
        core_bandwidth_gbs: cal.bandwidth_gbs,
        has_gather: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ninja_kernels::{registry, Variant};

    #[test]
    fn machine_from_is_sane() {
        let cal = HostCalibration {
            scalar_gflops: 4.0,
            simd_gflops: 14.0,
            bandwidth_gbs: 10.0,
        };
        let m = machine_from(cal, 4);
        assert_eq!(m.cores, 4);
        assert_eq!(m.simd_f32_lanes, 4); // 14/4 = 3.5 -> 4
        assert!((m.freq_ghz - 2.0).abs() < 1e-9);
        assert_eq!(m.core_bandwidth_gbs, 10.0);
        assert!(m.bandwidth_gbs >= m.core_bandwidth_gbs);
    }

    #[test]
    fn effective_lanes_ratio() {
        let cal = HostCalibration {
            scalar_gflops: 5.0,
            simd_gflops: 20.0,
            bandwidth_gbs: 8.0,
        };
        assert!((cal.effective_lanes() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn calibrated_machine_works_with_the_model() {
        // Run the real (brief) microbenchmarks once and feed the result
        // through the prediction path end to end.
        let m = calibrated_host(2);
        assert!(m.peak_gflops() > 0.1, "{m:?}");
        assert!(m.core_bandwidth_gbs > 0.05, "{m:?}");
        for spec in registry().iter().take(2) {
            let t = crate::time_per_elem(&spec.character, Variant::Ninja, &m);
            assert!(t.is_finite() && t > 0.0, "{}", spec.name);
            assert!(crate::predicted_gap(&spec.character, &m) >= 1.0);
        }
    }
}
