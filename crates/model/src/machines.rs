//! Descriptions of the machines the paper evaluates, plus hypothetical
//! future generations.

use serde::{Deserialize, Serialize};

/// A throughput-oriented machine description: the handful of parameters the
/// roofline model needs.
///
/// The numbers for the historical parts follow their public datasheets
/// (core counts, frequencies, SSE width, achievable stream bandwidth).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    /// Marketing name.
    pub name: String,
    /// Introduction year (drives the gap-growth-over-time figure).
    pub year: u32,
    /// Physical cores.
    pub cores: u32,
    /// Core frequency in GHz.
    pub freq_ghz: f64,
    /// SIMD width in `f32` lanes (SSE = 4, AVX = 8, MIC = 16).
    pub simd_f32_lanes: u32,
    /// Peak arithmetic throughput per cycle per lane (2 = mul + add issue).
    pub flops_per_cycle_per_lane: f64,
    /// Achievable machine memory bandwidth, GB/s.
    pub bandwidth_gbs: f64,
    /// Achievable single-core streaming bandwidth, GB/s.
    pub core_bandwidth_gbs: f64,
    /// Whether the ISA has hardware gather (the paper's MIC does; the SSE
    /// CPUs do not).
    pub has_gather: bool,
}

impl Machine {
    /// Peak scalar GFLOP/s of one core.
    pub fn core_scalar_gflops(&self) -> f64 {
        self.freq_ghz * self.flops_per_cycle_per_lane
    }

    /// Peak SIMD GFLOP/s of the whole machine.
    pub fn peak_gflops(&self) -> f64 {
        self.cores as f64
            * self.freq_ghz
            * self.flops_per_cycle_per_lane
            * self.simd_f32_lanes as f64
    }
}

impl std::fmt::Display for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({}): {}C x {:.1} GHz, {}-wide SIMD, {:.0} GB/s",
            self.name,
            self.year,
            self.cores,
            self.freq_ghz,
            self.simd_f32_lanes,
            self.bandwidth_gbs
        )
    }
}

/// The 2006 2-core Conroe-class part (Core 2 Duo E6600-class).
pub fn conroe() -> Machine {
    Machine {
        name: "Core 2 Duo (Conroe)".into(),
        year: 2006,
        cores: 2,
        freq_ghz: 2.4,
        simd_f32_lanes: 4,
        flops_per_cycle_per_lane: 2.0,
        bandwidth_gbs: 8.5,
        core_bandwidth_gbs: 5.5,
        has_gather: false,
    }
}

/// The 2008 4-core Nehalem-class part (Core i7 960-class).
pub fn nehalem() -> Machine {
    Machine {
        name: "Core i7 (Nehalem)".into(),
        year: 2008,
        cores: 4,
        freq_ghz: 3.2,
        simd_f32_lanes: 4,
        flops_per_cycle_per_lane: 2.0,
        bandwidth_gbs: 24.0,
        core_bandwidth_gbs: 10.0,
        has_gather: false,
    }
}

/// The paper's primary platform: the 6-core Core i7 X980 (Westmere).
pub fn westmere() -> Machine {
    Machine {
        name: "Core i7 X980 (Westmere)".into(),
        year: 2010,
        cores: 6,
        freq_ghz: 3.3,
        simd_f32_lanes: 4,
        flops_per_cycle_per_lane: 2.0,
        bandwidth_gbs: 30.0,
        core_bandwidth_gbs: 11.0,
        has_gather: false,
    }
}

/// The paper's manycore platform: Intel MIC (Knights Ferry class) — many
/// simple cores, 16-wide SIMD, hardware gather support.
pub fn mic() -> Machine {
    Machine {
        name: "Intel MIC (Knights Ferry)".into(),
        year: 2011,
        cores: 32,
        freq_ghz: 1.2,
        simd_f32_lanes: 16,
        flops_per_cycle_per_lane: 2.0,
        bandwidth_gbs: 115.0,
        core_bandwidth_gbs: 5.5,
        has_gather: true,
    }
}

/// A rough, uncalibrated description of the current host for use as an
/// attribution denominator when nobody paid for calibration.
///
/// [`crate::calibrate::calibrated_host`] measures the host (~1 s of
/// microbenchmarks), which is too expensive to run on every harness
/// construction. This placeholder assumes a ~3 GHz core with the suite's
/// 4-wide `f32` SIMD, FMA-class issue, and ~12 GB/s of per-core
/// bandwidth that scales sublinearly (`sqrt`) with threads — good enough
/// to rank cells against each other and classify their bound, not good
/// enough to quote absolute percent-of-peak. `year` 0 marks it as
/// synthetic. `reproduce --probe-metrics` upgrades to the calibrated
/// machine.
pub fn nominal_host(threads: usize) -> Machine {
    let threads = threads.max(1);
    let core_bandwidth_gbs = 12.0;
    Machine {
        name: format!("nominal host x{threads}"),
        year: 0,
        cores: threads as u32,
        freq_ghz: 3.0,
        simd_f32_lanes: 4,
        flops_per_cycle_per_lane: 2.0,
        bandwidth_gbs: core_bandwidth_gbs * (threads as f64).sqrt(),
        core_bandwidth_gbs,
        has_gather: false,
    }
}

/// The three CPU generations of the gap-growth figure, oldest first.
pub fn cpu_generations() -> Vec<Machine> {
    vec![conroe(), nehalem(), westmere()]
}

/// A hypothetical machine `gens` generations after Westmere, following the
/// paper's "this gap will keep growing" extrapolation: ~1.4X cores per
/// generation, SIMD width doubling every other generation, bandwidth
/// growing ~1.25X per generation (slower than compute — the widening
/// compute/bandwidth scissors the paper warns about).
pub fn future(gens: u32) -> Machine {
    let base = westmere();
    let cores = ((base.cores as f64) * 1.4f64.powi(gens as i32)).round() as u32;
    let lanes = base.simd_f32_lanes * 2u32.pow(gens.div_ceil(2));
    Machine {
        name: format!("Hypothetical Westmere+{gens}"),
        year: base.year + 2 * gens,
        cores,
        freq_ghz: base.freq_ghz,
        simd_f32_lanes: lanes,
        flops_per_cycle_per_lane: base.flops_per_cycle_per_lane,
        bandwidth_gbs: base.bandwidth_gbs * 1.25f64.powi(gens as i32),
        core_bandwidth_gbs: base.core_bandwidth_gbs * 1.1f64.powi(gens as i32),
        has_gather: gens >= 2, // AVX2-style gather arrives eventually
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generations_are_ordered_and_growing() {
        let gens = cpu_generations();
        assert_eq!(gens.len(), 3);
        for w in gens.windows(2) {
            assert!(w[0].year < w[1].year);
            assert!(w[0].peak_gflops() < w[1].peak_gflops());
        }
    }

    #[test]
    fn westmere_matches_paper_platform() {
        let m = westmere();
        assert_eq!(m.cores, 6);
        assert_eq!(m.simd_f32_lanes, 4);
        // 6 cores * 3.3 GHz * 2 flops * 4 lanes = 158.4 GFLOP/s peak.
        assert!((m.peak_gflops() - 158.4).abs() < 0.1);
    }

    #[test]
    fn mic_is_wider_and_more_parallel() {
        let m = mic();
        assert!(m.peak_gflops() > westmere().peak_gflops() * 4.0);
        assert!(m.has_gather);
    }

    #[test]
    fn future_grows_compute_faster_than_bandwidth() {
        let f2 = future(2);
        let w = westmere();
        let compute_growth = f2.peak_gflops() / w.peak_gflops();
        let bw_growth = f2.bandwidth_gbs / w.bandwidth_gbs;
        assert!(
            compute_growth > bw_growth * 1.5,
            "{compute_growth} vs {bw_growth}"
        );
    }

    #[test]
    fn nominal_host_scales_with_threads() {
        let one = nominal_host(1);
        let four = nominal_host(4);
        assert_eq!(one.cores, 1);
        assert_eq!(four.cores, 4);
        assert!((four.peak_gflops() - 4.0 * one.peak_gflops()).abs() < 1e-9);
        assert!((four.bandwidth_gbs - 2.0 * one.bandwidth_gbs).abs() < 1e-9);
        // Degenerate input clamps instead of producing a zero-core machine.
        assert_eq!(nominal_host(0).cores, 1);
    }

    #[test]
    fn machine_serde_roundtrip() {
        let m = westmere();
        let json = serde_json::to_string(&m).unwrap();
        let back: Machine = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn display_mentions_cores_and_width() {
        let s = format!("{}", westmere());
        assert!(s.contains("6C") && s.contains("4-wide"));
    }
}
