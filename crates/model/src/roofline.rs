//! The execution-time model: per-variant roofline prediction and gap
//! decomposition.

use crate::Machine;
use ninja_kernels::{Characterization, Variant};

/// Fraction of hand-tuned SIMD efficiency an auto-vectorizing compiler
/// achieves on restructured code (the residual the paper attributes to
/// instruction selection and scheduling).
pub const COMPILER_VECTOR_EFFICIENCY: f64 = 0.85;

/// Extra scalar-tuning margin of Ninja code over compiled code (register
/// blocking, software pipelining, prefetch placement).
pub const NINJA_TUNING: f64 = 1.15;

/// Flop-equivalent base cost of one software-emulated gather element
/// (extract index, scalar load, insert) — plus half a cycle per lane of
/// packing, charged in `time_per_elem`. Hardware gather costs ~1.
const SOFT_GATHER_COST: f64 = 1.5;
const HARD_GATHER_COST: f64 = 1.0;

/// Amdahl-style effective speedup: a fraction `frac` of the work speeds up
/// by `factor`, the rest doesn't.
#[inline]
fn amdahl(frac: f64, factor: f64) -> f64 {
    1.0 / ((1.0 - frac) + frac / factor)
}

/// Predicted execution time per output element (seconds) for one kernel
/// variant on one machine.
///
/// The model:
/// * compute time = (adjusted flops) / (effective GFLOP/s), where the
///   effective rate combines core count (Amdahl over `parallel_frac`),
///   vector width (Amdahl over the tier's vectorizable fraction, scaled by
///   SIMD efficiency), and the Ninja tuning margin;
/// * memory time = bytes / (bandwidth available to the cores used);
/// * software gathers add flop-equivalents on machines without hardware
///   gather;
/// * the un-restructured tiers (`Naive`, `Parallel`, `Simd`) pay the
///   kernel's `algorithmic_factor` as extra work (AoS traffic, redundant
///   computation, allocation), which the `Algorithmic`/`Ninja` tiers shed.
pub fn time_per_elem(c: &Characterization, v: Variant, m: &Machine) -> f64 {
    let lanes = m.simd_f32_lanes as f64;

    let (threads, vec_frac, vec_eff, extra_work, gathers) = match v {
        Variant::Naive => (
            1.0,
            c.naive_simd_frac,
            COMPILER_VECTOR_EFFICIENCY,
            c.algorithmic_factor,
            0.0,
        ),
        Variant::Parallel => (
            m.cores as f64,
            c.naive_simd_frac,
            COMPILER_VECTOR_EFFICIENCY,
            c.algorithmic_factor,
            0.0,
        ),
        Variant::Simd => (
            1.0,
            c.restructure_simd_frac,
            COMPILER_VECTOR_EFFICIENCY * c.simd_efficiency,
            c.algorithmic_factor,
            c.gather_per_elem * c.restructure_simd_frac,
        ),
        Variant::Algorithmic => (
            m.cores as f64,
            c.simd_friendly_frac,
            COMPILER_VECTOR_EFFICIENCY * c.simd_efficiency,
            1.0,
            c.gather_per_elem,
        ),
        Variant::Ninja => (
            m.cores as f64,
            c.simd_friendly_frac,
            c.simd_efficiency,
            1.0 / NINJA_TUNING,
            c.gather_per_elem,
        ),
    };

    let time_with = |vec_frac: f64, vec_eff: f64, gathers: f64| -> f64 {
        // Effective parallel speedup (Amdahl over the parallel fraction).
        let core_speedup = amdahl(c.parallel_frac, threads);
        // Effective vector speedup on one core.
        let vec_speedup = amdahl(vec_frac, (lanes * vec_eff).max(1.0));

        let gather_cost = if gathers > 0.0 && vec_frac > 0.0 {
            let per = if m.has_gather {
                HARD_GATHER_COST
            } else {
                SOFT_GATHER_COST + 0.5 * lanes
            };
            gathers * per
        } else {
            0.0
        };

        let flops = c.flops_per_elem * extra_work + gather_cost;
        let gflops = m.core_scalar_gflops() * core_speedup * vec_speedup;
        let compute_s = flops / (gflops * 1e9);

        let bytes = c.bytes_per_elem * extra_work;
        let bw = (threads * m.core_bandwidth_gbs).min(m.bandwidth_gbs);
        let memory_s = bytes / (bw * 1e9);

        compute_s.max(memory_s)
    };

    match v {
        // An implementer of the optimized tiers picks whichever of the
        // SIMD(+software gather) and plain scalar codings is faster — on a
        // narrow machine the gather overhead can exceed the vector win.
        Variant::Algorithmic | Variant::Ninja => {
            time_with(vec_frac, vec_eff, gathers).min(time_with(0.0, 1.0, 0.0))
        }
        _ => time_with(vec_frac, vec_eff, gathers),
    }
}

/// Predicted Ninja gap: `time(Naive) / time(Ninja)`.
pub fn predicted_gap(c: &Characterization, m: &Machine) -> f64 {
    time_per_elem(c, Variant::Naive, m) / time_per_elem(c, Variant::Ninja, m)
}

/// Predicted residual gap of the low-effort endpoint:
/// `time(Algorithmic) / time(Ninja)` — the paper's headline ~1.3X.
pub fn predicted_residual(c: &Characterization, m: &Machine) -> f64 {
    time_per_elem(c, Variant::Algorithmic, m) / time_per_elem(c, Variant::Ninja, m)
}

/// Decomposition of the predicted Ninja gap into the paper's stacked
/// components (its per-benchmark breakdown figure).
#[derive(Clone, Debug, PartialEq)]
pub struct GapBreakdown {
    /// Total `Naive / Ninja` ratio.
    pub total: f64,
    /// Speedup from threading alone (`Naive / Parallel`).
    pub parallel: f64,
    /// Speedup from compiler vectorization alone (`Naive / Simd`).
    pub simd: f64,
    /// Additional factor from algorithmic changes
    /// (`(Parallel ∪ Simd combined) / Algorithmic`). Can dip slightly below
    /// 1.0 when the thread and vector components overlap.
    pub algorithmic: f64,
    /// Remaining factor to Ninja (`Algorithmic / Ninja`).
    pub residual: f64,
}

/// Computes the per-benchmark gap decomposition on `m`.
pub fn gap_breakdown(c: &Characterization, m: &Machine) -> GapBreakdown {
    let t_naive = time_per_elem(c, Variant::Naive, m);
    let t_par = time_per_elem(c, Variant::Parallel, m);
    let t_simd = time_per_elem(c, Variant::Simd, m);
    let t_algo = time_per_elem(c, Variant::Algorithmic, m);
    let t_ninja = time_per_elem(c, Variant::Ninja, m);
    // Threads and vectors compose multiplicatively in the model; the
    // combined-but-unrestructured point is naive / (par_gain * simd_gain).
    let parallel = t_naive / t_par;
    let simd = t_naive / t_simd;
    let combined = t_naive / (parallel * simd);
    GapBreakdown {
        total: t_naive / t_ninja,
        parallel,
        simd,
        algorithmic: combined / t_algo,
        residual: t_algo / t_ninja,
    }
}

/// The hardware-programmability ablation (paper §6): predicted residual gap
/// of compiled code with and without hardware gather support.
///
/// Returns `(residual_without_gather, residual_with_gather, ninja_speedup)`
/// where `ninja_speedup` is how much Ninja code itself gains from hardware
/// gather.
pub fn gather_ablation(c: &Characterization, m: &Machine) -> (f64, f64, f64) {
    let mut no_gather = m.clone();
    no_gather.has_gather = false;
    let mut with_gather = m.clone();
    with_gather.has_gather = true;
    let r_no = predicted_residual(c, &no_gather);
    let r_yes = predicted_residual(c, &with_gather);
    let ninja_gain = time_per_elem(c, Variant::Ninja, &no_gather)
        / time_per_elem(c, Variant::Ninja, &with_gather);
    (r_no, r_yes, ninja_gain)
}

/// One row of the hardware-programmability sweep: an ISA configuration and
/// its predicted effect.
#[derive(Clone, Debug, PartialEq)]
pub struct HardwareStep {
    /// Configuration label (e.g. `"+FMA"`).
    pub config: String,
    /// Ninja-code speedup over the base configuration.
    pub ninja_speedup: f64,
    /// Residual gap (`Algorithmic / Ninja`) under this configuration.
    pub residual: f64,
}

/// The paper's §6 sweep: how ISA features expected after Westmere (hardware
/// gather, FMA, 8-wide AVX vectors) change Ninja performance and the
/// low-effort residual for one kernel.
pub fn hardware_evolution(c: &Characterization, base: &Machine) -> Vec<HardwareStep> {
    let t_base = time_per_elem(c, Variant::Ninja, base);
    let mut configs: Vec<(String, Machine)> = Vec::new();
    configs.push(("base (SSE)".to_owned(), base.clone()));
    let mut with_gather = base.clone();
    with_gather.has_gather = true;
    configs.push(("+gather".to_owned(), with_gather.clone()));
    let mut with_fma = with_gather.clone();
    with_fma.flops_per_cycle_per_lane = base.flops_per_cycle_per_lane * 2.0;
    configs.push(("+gather +FMA".to_owned(), with_fma.clone()));
    let mut with_avx = with_fma.clone();
    with_avx.simd_f32_lanes = base.simd_f32_lanes * 2;
    configs.push(("+gather +FMA +AVX".to_owned(), with_avx));
    configs
        .into_iter()
        .map(|(config, m)| HardwareStep {
            config,
            ninja_speedup: t_base / time_per_elem(c, Variant::Ninja, &m),
            residual: predicted_residual(c, &m),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;
    use ninja_kernels::registry;

    fn kernel(name: &str) -> Characterization {
        registry()
            .into_iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("kernel {name}"))
            .character
    }

    #[test]
    fn westmere_average_gap_is_paper_scale() {
        let m = machines::westmere();
        let gaps: Vec<f64> = registry()
            .iter()
            .map(|s| predicted_gap(&s.character, &m))
            .collect();
        let avg = crate::geomean(&gaps);
        // The paper reports an average of 24X (max 53X); the model should
        // land in the same regime.
        assert!(avg > 10.0 && avg < 45.0, "avg gap {avg}");
        let max = gaps.iter().cloned().fold(0.0, f64::max);
        assert!(max > 25.0 && max < 80.0, "max gap {max}");
    }

    #[test]
    fn westmere_average_residual_is_small() {
        let m = machines::westmere();
        let res: Vec<f64> = registry()
            .iter()
            .map(|s| predicted_residual(&s.character, &m))
            .collect();
        let avg = crate::geomean(&res);
        assert!(avg > 1.0 && avg < 1.8, "avg residual {avg} (paper: ~1.3X)");
        for (s, r) in registry().iter().zip(res.iter()) {
            assert!(*r >= 1.0 && *r < 3.0, "{}: residual {r}", s.name);
        }
    }

    #[test]
    fn gap_grows_across_generations() {
        let gens = machines::cpu_generations();
        let specs = registry();
        let avg_for = |m: &Machine| {
            crate::geomean(
                &specs
                    .iter()
                    .map(|s| predicted_gap(&s.character, m))
                    .collect::<Vec<_>>(),
            )
        };
        let avgs: Vec<f64> = gens.iter().map(avg_for).collect();
        assert!(avgs[0] < avgs[1] && avgs[1] < avgs[2], "{avgs:?}");
        // And keeps growing on hypothetical future parts.
        assert!(avg_for(&machines::future(2)) > avgs[2]);
    }

    #[test]
    fn mic_gap_exceeds_westmere_for_compute_kernels() {
        let c = kernel("nbody");
        assert!(
            predicted_gap(&c, &machines::mic()) > predicted_gap(&c, &machines::westmere()),
            "wider SIMD + more cores must widen the naive gap"
        );
    }

    #[test]
    fn ninja_is_never_slower_than_other_variants() {
        let m = machines::westmere();
        for s in registry() {
            let t_ninja = time_per_elem(&s.character, Variant::Ninja, &m);
            for v in Variant::ALL {
                let t = time_per_elem(&s.character, v, &m);
                assert!(
                    t >= t_ninja * 0.999,
                    "{}: {} predicted faster than ninja",
                    s.name,
                    v
                );
            }
        }
    }

    #[test]
    fn more_cores_never_hurt() {
        let c = kernel("blackscholes");
        let mut m = machines::westmere();
        let mut prev = f64::INFINITY;
        for cores in [1, 2, 4, 8, 16] {
            m.cores = cores;
            let t = time_per_elem(&c, Variant::Ninja, &m);
            assert!(t <= prev * 1.0001, "cores {cores}");
            prev = t;
        }
    }

    #[test]
    fn wider_simd_never_hurts_vectorizable_kernels() {
        let c = kernel("conv1d");
        let mut m = machines::westmere();
        let mut prev = f64::INFINITY;
        for lanes in [1, 2, 4, 8, 16] {
            m.simd_f32_lanes = lanes;
            let t = time_per_elem(&c, Variant::Ninja, &m);
            assert!(t <= prev * 1.0001, "lanes {lanes}");
            prev = t;
        }
    }

    #[test]
    fn bandwidth_bound_kernel_saturates() {
        // LBM on Westmere: ninja time should be bandwidth-limited, so
        // doubling compute resources barely helps.
        let c = kernel("lbm");
        let m = machines::westmere();
        let mut wide = m.clone();
        wide.simd_f32_lanes *= 4;
        let t = time_per_elem(&c, Variant::Ninja, &m);
        let t_wide = time_per_elem(&c, Variant::Ninja, &wide);
        assert!(t_wide > t * 0.9, "lbm should not scale with SIMD width");
    }

    #[test]
    fn gather_hardware_helps_gather_heavy_kernels_only() {
        let m = machines::westmere();
        let (_, _, gain_tree) = gather_ablation(&kernel("treesearch"), &m);
        let (_, _, gain_conv) = gather_ablation(&kernel("conv1d"), &m);
        assert!(
            gain_tree > 1.1,
            "treesearch ninja should gain from gather: {gain_tree}"
        );
        assert!((gain_conv - 1.0).abs() < 1e-9, "conv1d has no gathers");
    }

    #[test]
    fn hardware_evolution_is_monotone_for_compute_kernels() {
        let m = machines::westmere();
        // nbody: compute-bound at any bandwidth, fully vectorizable.
        let steps = hardware_evolution(&kernel("nbody"), &m);
        assert_eq!(steps.len(), 4);
        assert!((steps[0].ninja_speedup - 1.0).abs() < 1e-9);
        for w in steps.windows(2) {
            assert!(w[1].ninja_speedup >= w[0].ninja_speedup * 0.999, "{:?}", w);
        }
        // FMA + AVX together should at least double ninja throughput for a
        // fully vectorizable compute-bound kernel.
        assert!(steps[3].ninja_speedup > 2.0, "{:?}", steps[3]);
    }

    #[test]
    fn breakdown_components_multiply_to_total() {
        let m = machines::westmere();
        for s in registry() {
            let b = gap_breakdown(&s.character, &m);
            assert!(b.total >= 1.0, "{}", s.name);
            assert!(
                b.parallel >= 1.0 && b.simd >= 1.0 && b.residual >= 1.0,
                "{}",
                s.name
            );
            assert!(b.algorithmic > 0.5, "{}", s.name);
            // total == parallel * simd * algorithmic * residual (by construction).
            let product = b.parallel * b.simd * b.algorithmic * b.residual;
            assert!(
                (product / b.total - 1.0).abs() < 1e-9,
                "{}: product {product} vs total {}",
                s.name,
                b.total
            );
        }
    }
}
