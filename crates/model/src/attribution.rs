//! Roofline attribution of measured cells.
//!
//! The paper's methodology is diagnostic: a measured time means little
//! until it is placed on the machine's roofline — how many of the
//! available GFLOP/s did the variant achieve, how much of the achievable
//! bandwidth, and which of the two actually limits it. This module joins
//! one measurement (seconds) with a kernel's work counts (flops, bytes)
//! and a [`Machine`] description to produce that placement, plus
//! (optionally) the thread-pool utilization observed while the cell was
//! measured.
//!
//! Formulas (documented in DESIGN.md "Observability"):
//!
//! * `achieved_gflops = flops / seconds / 1e9`
//! * `achieved_gbs    = bytes / seconds / 1e9`
//! * `roofline_pct    = 100 * max(achieved_gflops / peak_gflops,
//!   achieved_gbs / bandwidth_gbs)` — distance to the nearest roof
//! * `bound`: arithmetic intensity `flops/bytes` vs. the machine balance
//!   point `peak_gflops / bandwidth_gbs` picks `compute` or `bandwidth`;
//!   a cell below [`UTILIZATION_FLOOR_PCT`] of its roof is limited by
//!   neither roof and is classified `poorly-utilized` instead.

use crate::Machine;

/// `bound` value for cells limited by arithmetic throughput.
pub const BOUND_COMPUTE: &str = "compute";
/// `bound` value for cells limited by memory bandwidth.
pub const BOUND_BANDWIDTH: &str = "bandwidth";
/// `bound` value for cells far from both roofs (scalar code, scheduling
/// loss, stalls): the roofline does not explain their time.
pub const BOUND_POORLY_UTILIZED: &str = "poorly-utilized";

/// Below this percent-of-roofline a cell is classified
/// [`BOUND_POORLY_UTILIZED`] regardless of its arithmetic intensity.
pub const UTILIZATION_FLOOR_PCT: f64 = 10.0;

/// Where one measured cell sits on the machine's roofline, plus the pool
/// utilization observed while it was measured (zeros when pool metrics
/// were not collected), plus — when hardware counters were available —
/// the *measured* bound classification and whether it agrees with the
/// modeled one.
#[derive(Clone, Debug, PartialEq)]
pub struct Attribution {
    /// Useful arithmetic throughput achieved, GFLOP/s.
    pub achieved_gflops: f64,
    /// Streaming throughput achieved, GB/s.
    pub achieved_gbs: f64,
    /// Percent of the nearest roof achieved (100 = at the roofline).
    pub roofline_pct: f64,
    /// `compute` / `bandwidth` / `poorly-utilized`.
    pub bound: String,
    /// Pool load-imbalance ratio during the measurement (max lane busy /
    /// mean active lane busy; 1.0 = balanced, 0.0 = not collected).
    pub pool_imbalance: f64,
    /// Percent of pool thread-time idle during the measurement
    /// (0.0 also when pool metrics were not collected).
    pub pool_idle_pct: f64,
    /// Fraction of executed pool jobs that arrived by work stealing
    /// during the measurement (0.0 when not collected, or when the region
    /// scheduled purely through `parallel_for` chunk claiming).
    pub pool_steal_ratio: f64,
    /// Measured instructions-per-cycle over the timed reps (`None` when
    /// hardware counters were unavailable).
    pub measured_ipc: Option<f64>,
    /// Measured LLC miss rate over the timed reps, in `[0, 1]`.
    pub measured_llc_miss_rate: Option<f64>,
    /// DRAM bandwidth estimated from LLC miss traffic (misses × 64 B ÷
    /// enabled time), GB/s. A lower bound on true traffic.
    pub measured_dram_gbs: Option<f64>,
    /// Bound classification derived from *measured* counters (same
    /// vocabulary as [`Attribution::bound`]): which roof the hardware
    /// says the cell ran into.
    pub measured_bound: Option<String>,
    /// Whether the measured and modeled bound classifications agree —
    /// the cross-check that catches a mis-calibrated roofline. `None`
    /// until counters were attached.
    pub agreement: Option<bool>,
}

impl Attribution {
    /// Places `seconds` of measured time for `flops`/`bytes` of work on
    /// `machine`'s roofline. Pool fields start at zero; fill them with
    /// [`Attribution::with_pool`].
    pub fn new(flops: f64, bytes: f64, seconds: f64, machine: &Machine) -> Self {
        if !(seconds.is_finite() && seconds > 0.0) {
            return Self {
                achieved_gflops: 0.0,
                achieved_gbs: 0.0,
                roofline_pct: 0.0,
                bound: BOUND_POORLY_UTILIZED.to_owned(),
                pool_imbalance: 0.0,
                pool_idle_pct: 0.0,
                pool_steal_ratio: 0.0,
                measured_ipc: None,
                measured_llc_miss_rate: None,
                measured_dram_gbs: None,
                measured_bound: None,
                agreement: None,
            };
        }
        let achieved_gflops = flops / seconds / 1e9;
        let achieved_gbs = bytes / seconds / 1e9;
        let compute_util = safe_div(achieved_gflops, machine.peak_gflops());
        let bw_util = safe_div(achieved_gbs, machine.bandwidth_gbs);
        let roofline_pct = 100.0 * compute_util.max(bw_util);
        let bound = if roofline_pct < UTILIZATION_FLOOR_PCT {
            BOUND_POORLY_UTILIZED
        } else {
            // Which roof the kernel's intensity runs into: intensity above
            // the machine's balance point means the compute roof is lower.
            let intensity = if bytes > 0.0 {
                flops / bytes
            } else {
                f64::INFINITY
            };
            let balance = safe_div(machine.peak_gflops(), machine.bandwidth_gbs);
            if intensity >= balance {
                BOUND_COMPUTE
            } else {
                BOUND_BANDWIDTH
            }
        };
        Self {
            achieved_gflops,
            achieved_gbs,
            roofline_pct,
            bound: bound.to_owned(),
            pool_imbalance: 0.0,
            pool_idle_pct: 0.0,
            pool_steal_ratio: 0.0,
            measured_ipc: None,
            measured_llc_miss_rate: None,
            measured_dram_gbs: None,
            measured_bound: None,
            agreement: None,
        }
    }

    /// Attaches the pool utilization observed during the measurement.
    /// `steal_ratio` is the stolen share of executed jobs
    /// ([`PoolMetrics::steal_ratio`] in `ninja-probe`); pass `0.0` when the
    /// region scheduled without deque traffic.
    #[must_use]
    pub fn with_pool(mut self, imbalance_ratio: f64, idle_fraction: f64, steal_ratio: f64) -> Self {
        self.pool_imbalance = imbalance_ratio;
        self.pool_idle_pct = 100.0 * idle_fraction.clamp(0.0, 1.0);
        self.pool_steal_ratio = steal_ratio.clamp(0.0, 1.0);
        self
    }

    /// Whether pool utilization was collected for this cell.
    pub fn has_pool_data(&self) -> bool {
        self.pool_imbalance > 0.0
    }

    /// Attaches hardware-counter-derived metrics and classifies the
    /// *measured* bound against `machine`'s roofs.
    ///
    /// The measured classification mirrors the modeled one but replaces
    /// the analytical byte count with DRAM traffic estimated from LLC
    /// misses: whichever roof utilization is higher —
    /// `measured_dram_gbs / bandwidth_gbs` or
    /// `achieved_gflops / peak_gflops` — names the binding roof, and a
    /// cell under [`UTILIZATION_FLOOR_PCT`] on both is
    /// [`BOUND_POORLY_UTILIZED`]. `agreement` is set iff the measured
    /// bound could be computed (requires `dram_gbs`); IPC and miss rate
    /// attach independently so partially-admitted counter groups still
    /// report what they saw.
    #[must_use]
    pub fn with_counters(
        mut self,
        machine: &Machine,
        ipc: Option<f64>,
        llc_miss_rate: Option<f64>,
        dram_gbs: Option<f64>,
    ) -> Self {
        self.measured_ipc = ipc.filter(|v| v.is_finite());
        self.measured_llc_miss_rate = llc_miss_rate
            .filter(|v| v.is_finite())
            .map(|v| v.clamp(0.0, 1.0));
        self.measured_dram_gbs = dram_gbs.filter(|v| v.is_finite() && *v >= 0.0);
        if let Some(gbs) = self.measured_dram_gbs {
            let measured_bw_util = safe_div(gbs, machine.bandwidth_gbs);
            let compute_util = safe_div(self.achieved_gflops, machine.peak_gflops());
            let measured = if 100.0 * measured_bw_util.max(compute_util) < UTILIZATION_FLOOR_PCT {
                BOUND_POORLY_UTILIZED
            } else if measured_bw_util >= compute_util {
                BOUND_BANDWIDTH
            } else {
                BOUND_COMPUTE
            };
            self.agreement = Some(measured == self.bound);
            self.measured_bound = Some(measured.to_owned());
        }
        self
    }

    /// Whether any hardware-counter metric was attached to this cell.
    pub fn has_counter_data(&self) -> bool {
        self.measured_ipc.is_some()
            || self.measured_llc_miss_rate.is_some()
            || self.measured_dram_gbs.is_some()
    }

    /// One-line human rendering, e.g.
    /// `"12.3 GFLOP/s, 4.5 GB/s, 31% of roofline (bandwidth-bound)"`.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{:.1} GFLOP/s, {:.1} GB/s, {:.0}% of roofline ({})",
            self.achieved_gflops,
            self.achieved_gbs,
            self.roofline_pct,
            match self.bound.as_str() {
                BOUND_COMPUTE => "compute-bound",
                BOUND_BANDWIDTH => "bandwidth-bound",
                _ => BOUND_POORLY_UTILIZED,
            }
        );
        if self.has_pool_data() {
            s.push_str(&format!(
                "; pool imbalance {:.2}, idle {:.0}%",
                self.pool_imbalance, self.pool_idle_pct
            ));
            if self.pool_steal_ratio > 0.0 {
                s.push_str(&format!(", steal {:.0}%", 100.0 * self.pool_steal_ratio));
            }
        }
        if self.has_counter_data() {
            s.push_str("; measured");
            if let Some(ipc) = self.measured_ipc {
                s.push_str(&format!(" ipc {ipc:.2}"));
            }
            if let Some(miss) = self.measured_llc_miss_rate {
                s.push_str(&format!(" llc-miss {:.0}%", 100.0 * miss));
            }
            if let Some(gbs) = self.measured_dram_gbs {
                s.push_str(&format!(" dram {gbs:.1} GB/s"));
            }
            match (&self.measured_bound, self.agreement) {
                (Some(bound), Some(true)) => {
                    s.push_str(&format!(" -> {bound} (model agrees)"));
                }
                (Some(bound), _) => {
                    s.push_str(&format!(" -> {bound} (model says {})", self.bound));
                }
                (None, _) => {}
            }
        }
        s
    }
}

// Hand-written (rather than derived) serde: the measured-counter fields
// are omitted entirely when absent so records written before — or on
// hosts without — hardware counters stay byte-identical, and absent
// fields read back as `None` (the derive stand-in would hard-error on a
// missing field).
impl serde::Serialize for Attribution {
    fn to_value(&self) -> serde::Value {
        let mut pairs = vec![
            (
                "achieved_gflops".to_owned(),
                self.achieved_gflops.to_value(),
            ),
            ("achieved_gbs".to_owned(), self.achieved_gbs.to_value()),
            ("roofline_pct".to_owned(), self.roofline_pct.to_value()),
            ("bound".to_owned(), self.bound.to_value()),
            ("pool_imbalance".to_owned(), self.pool_imbalance.to_value()),
            ("pool_idle_pct".to_owned(), self.pool_idle_pct.to_value()),
            (
                "pool_steal_ratio".to_owned(),
                self.pool_steal_ratio.to_value(),
            ),
        ];
        if let Some(v) = self.measured_ipc {
            pairs.push(("measured_ipc".to_owned(), v.to_value()));
        }
        if let Some(v) = self.measured_llc_miss_rate {
            pairs.push(("measured_llc_miss_rate".to_owned(), v.to_value()));
        }
        if let Some(v) = self.measured_dram_gbs {
            pairs.push(("measured_dram_gbs".to_owned(), v.to_value()));
        }
        if let Some(v) = &self.measured_bound {
            pairs.push(("measured_bound".to_owned(), v.to_value()));
        }
        if let Some(v) = self.agreement {
            pairs.push(("agreement".to_owned(), v.to_value()));
        }
        serde::Value::Object(pairs)
    }
}

impl serde::Deserialize for Attribution {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        fn opt<T: serde::Deserialize>(
            v: &serde::Value,
            name: &str,
        ) -> Result<Option<T>, serde::DeError> {
            match v.field(name) {
                Ok(val) => Ok(Some(T::from_value(val)?)),
                Err(_) => Ok(None),
            }
        }
        Ok(Self {
            achieved_gflops: f64::from_value(v.field("achieved_gflops")?)?,
            achieved_gbs: f64::from_value(v.field("achieved_gbs")?)?,
            roofline_pct: f64::from_value(v.field("roofline_pct")?)?,
            bound: String::from_value(v.field("bound")?)?,
            pool_imbalance: f64::from_value(v.field("pool_imbalance")?)?,
            pool_idle_pct: f64::from_value(v.field("pool_idle_pct")?)?,
            pool_steal_ratio: f64::from_value(v.field("pool_steal_ratio")?)?,
            measured_ipc: opt(v, "measured_ipc")?,
            measured_llc_miss_rate: opt(v, "measured_llc_miss_rate")?,
            measured_dram_gbs: opt(v, "measured_dram_gbs")?,
            measured_bound: opt(v, "measured_bound")?,
            agreement: opt(v, "agreement")?,
        })
    }
}

fn safe_div(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;

    #[test]
    fn compute_bound_kernel_near_its_roof() {
        let m = machines::westmere(); // peak 158.4 GFLOP/s, 30 GB/s
                                      // High intensity (20 flops/byte), achieving half the compute roof.
        let flops = 1e9 * 79.2;
        let bytes = flops / 20.0;
        let a = Attribution::new(flops, bytes, 1.0, &m);
        assert!((a.achieved_gflops - 79.2).abs() < 1e-9);
        assert!((a.roofline_pct - 50.0).abs() < 1e-9);
        assert_eq!(a.bound, BOUND_COMPUTE);
    }

    #[test]
    fn bandwidth_bound_kernel_is_classified_by_intensity() {
        let m = machines::westmere();
        // Streaming kernel: 0.25 flops/byte, 24 GB/s of the 30 GB/s roof.
        let bytes = 24e9;
        let flops = bytes * 0.25;
        let a = Attribution::new(flops, bytes, 1.0, &m);
        assert!((a.achieved_gbs - 24.0).abs() < 1e-9);
        assert!((a.roofline_pct - 80.0).abs() < 1e-9);
        assert_eq!(a.bound, BOUND_BANDWIDTH);
    }

    #[test]
    fn far_from_both_roofs_is_poorly_utilized() {
        let m = machines::westmere();
        // Scalar-ish: 1 GFLOP/s and 1 GB/s on a 158/30 machine.
        let a = Attribution::new(1e9, 1e9, 1.0, &m);
        assert!(a.roofline_pct < UTILIZATION_FLOOR_PCT);
        assert_eq!(a.bound, BOUND_POORLY_UTILIZED);
    }

    #[test]
    fn degenerate_time_yields_zeroed_attribution() {
        let m = machines::westmere();
        for s in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let a = Attribution::new(1e9, 1e9, s, &m);
            assert_eq!(a.achieved_gflops, 0.0);
            assert_eq!(a.bound, BOUND_POORLY_UTILIZED);
        }
    }

    #[test]
    fn zero_byte_work_counts_as_compute() {
        let m = machines::westmere();
        let a = Attribution::new(1e9 * 80.0, 0.0, 1.0, &m);
        assert_eq!(a.bound, BOUND_COMPUTE);
        assert_eq!(a.achieved_gbs, 0.0);
    }

    #[test]
    fn pool_fields_attach_and_render() {
        let m = machines::westmere();
        let a = Attribution::new(24e9 * 0.25, 24e9, 1.0, &m).with_pool(2.4, 0.41, 0.35);
        assert!(a.has_pool_data());
        assert!((a.pool_idle_pct - 41.0).abs() < 1e-9);
        assert!((a.pool_steal_ratio - 0.35).abs() < 1e-9);
        let s = a.summary();
        assert!(s.contains("bandwidth-bound"), "{s}");
        assert!(s.contains("imbalance 2.40"), "{s}");
        assert!(s.contains("steal 35%"), "{s}");
        // Zero steal ratio (pure chunk scheduling) stays out of the render.
        let chunked = Attribution::new(24e9 * 0.25, 24e9, 1.0, &m).with_pool(2.4, 0.41, 0.0);
        assert!(!chunked.summary().contains("steal"));
        let bare = Attribution::new(24e9 * 0.25, 24e9, 1.0, &m);
        assert!(!bare.has_pool_data());
        assert!(!bare.summary().contains("imbalance"));
    }

    #[test]
    fn serde_roundtrip() {
        let m = machines::westmere();
        let a = Attribution::new(5e9, 2e10, 0.5, &m).with_pool(1.2, 0.08, 0.22);
        let json = serde_json::to_string(&a).unwrap();
        let back: Attribution = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn measured_bandwidth_bound_agrees_with_model() {
        let m = machines::westmere(); // peak 158.4 GFLOP/s, 30 GB/s
        let bytes = 24e9;
        let flops = bytes * 0.25; // modeled: bandwidth-bound
        let a = Attribution::new(flops, bytes, 1.0, &m).with_counters(
            &m,
            Some(0.9),
            Some(0.35),
            Some(22.0), // hardware saw 22 of 30 GB/s: bandwidth roof
        );
        assert_eq!(a.measured_bound.as_deref(), Some(BOUND_BANDWIDTH));
        assert_eq!(a.agreement, Some(true));
        let s = a.summary();
        assert!(s.contains("ipc 0.90"), "{s}");
        assert!(s.contains("llc-miss 35%"), "{s}");
        assert!(s.contains("dram 22.0 GB/s"), "{s}");
        assert!(s.contains("model agrees"), "{s}");
    }

    #[test]
    fn measured_disagreement_is_flagged_not_hidden() {
        let m = machines::westmere();
        // Modeled compute-bound (high intensity, half the compute roof)...
        let flops = 1e9 * 79.2;
        let bytes = flops / 20.0;
        // ...but the hardware saw heavy DRAM traffic: 28 of 30 GB/s beats
        // the 50% compute utilization, so the measured bound is bandwidth.
        let a =
            Attribution::new(flops, bytes, 1.0, &m).with_counters(&m, Some(1.1), None, Some(28.0));
        assert_eq!(a.bound, BOUND_COMPUTE);
        assert_eq!(a.measured_bound.as_deref(), Some(BOUND_BANDWIDTH));
        assert_eq!(a.agreement, Some(false));
        let s = a.summary();
        assert!(s.contains("-> bandwidth (model says compute)"), "{s}");
    }

    #[test]
    fn measured_far_from_both_roofs_is_poorly_utilized() {
        let m = machines::westmere();
        let a =
            Attribution::new(1e9, 1e9, 1.0, &m).with_counters(&m, Some(0.3), Some(0.6), Some(1.0));
        assert_eq!(a.measured_bound.as_deref(), Some(BOUND_POORLY_UTILIZED));
        assert_eq!(a.agreement, Some(true));
    }

    #[test]
    fn partial_counters_attach_without_a_measured_bound() {
        // A counter group that admitted cycles+instructions but lost the
        // LLC events still reports IPC; no traffic estimate means no
        // measured bound and no agreement verdict.
        let m = machines::westmere();
        let a =
            Attribution::new(24e9 * 0.25, 24e9, 1.0, &m).with_counters(&m, Some(1.7), None, None);
        assert!(a.has_counter_data());
        assert_eq!(a.measured_bound, None);
        assert_eq!(a.agreement, None);
        let s = a.summary();
        assert!(s.contains("measured ipc 1.70"), "{s}");
        assert!(!s.contains("->"), "{s}");
        // Non-finite or negative derived values are dropped, not stored.
        let junk = Attribution::new(1e9, 1e9, 1.0, &m).with_counters(
            &m,
            Some(f64::NAN),
            Some(1.4),
            Some(-3.0),
        );
        assert_eq!(junk.measured_ipc, None);
        assert_eq!(junk.measured_llc_miss_rate, Some(1.0), "clamped to [0,1]");
        assert_eq!(junk.measured_dram_gbs, None);
    }

    #[test]
    fn counter_fields_roundtrip_and_stay_off_the_wire_when_absent() {
        let m = machines::westmere();
        let plain = Attribution::new(5e9, 2e10, 0.5, &m);
        let plain_json = serde_json::to_string(&plain).unwrap();
        assert!(!plain_json.contains("measured_"), "{plain_json}");
        assert!(!plain_json.contains("agreement"), "{plain_json}");

        let counted = plain
            .clone()
            .with_counters(&m, Some(1.4), Some(0.12), Some(25.0));
        let json = serde_json::to_string(&counted).unwrap();
        let back: Attribution = serde_json::from_str(&json).unwrap();
        assert_eq!(counted, back);
        assert!(json.contains("\"agreement\""), "{json}");
    }

    #[test]
    fn legacy_json_without_counter_fields_still_parses() {
        // Byte-for-byte the shape every record written before the counter
        // layer carried: all seven roofline/pool fields, nothing more.
        let legacy = r#"{"achieved_gflops":10.0,"achieved_gbs":20.0,
            "roofline_pct":66.7,"bound":"bandwidth","pool_imbalance":1.3,
            "pool_idle_pct":12.0,"pool_steal_ratio":0.05}"#;
        let a: Attribution = serde_json::from_str(legacy).unwrap();
        assert_eq!(a.bound, "bandwidth");
        assert_eq!(a.measured_ipc, None);
        assert_eq!(a.measured_bound, None);
        assert_eq!(a.agreement, None);
        assert!(!a.has_counter_data());
    }
}
