//! Roofline attribution of measured cells.
//!
//! The paper's methodology is diagnostic: a measured time means little
//! until it is placed on the machine's roofline — how many of the
//! available GFLOP/s did the variant achieve, how much of the achievable
//! bandwidth, and which of the two actually limits it. This module joins
//! one measurement (seconds) with a kernel's work counts (flops, bytes)
//! and a [`Machine`] description to produce that placement, plus
//! (optionally) the thread-pool utilization observed while the cell was
//! measured.
//!
//! Formulas (documented in DESIGN.md "Observability"):
//!
//! * `achieved_gflops = flops / seconds / 1e9`
//! * `achieved_gbs    = bytes / seconds / 1e9`
//! * `roofline_pct    = 100 * max(achieved_gflops / peak_gflops,
//!   achieved_gbs / bandwidth_gbs)` — distance to the nearest roof
//! * `bound`: arithmetic intensity `flops/bytes` vs. the machine balance
//!   point `peak_gflops / bandwidth_gbs` picks `compute` or `bandwidth`;
//!   a cell below [`UTILIZATION_FLOOR_PCT`] of its roof is limited by
//!   neither roof and is classified `poorly-utilized` instead.

use crate::Machine;
use serde::{Deserialize, Serialize};

/// `bound` value for cells limited by arithmetic throughput.
pub const BOUND_COMPUTE: &str = "compute";
/// `bound` value for cells limited by memory bandwidth.
pub const BOUND_BANDWIDTH: &str = "bandwidth";
/// `bound` value for cells far from both roofs (scalar code, scheduling
/// loss, stalls): the roofline does not explain their time.
pub const BOUND_POORLY_UTILIZED: &str = "poorly-utilized";

/// Below this percent-of-roofline a cell is classified
/// [`BOUND_POORLY_UTILIZED`] regardless of its arithmetic intensity.
pub const UTILIZATION_FLOOR_PCT: f64 = 10.0;

/// Where one measured cell sits on the machine's roofline, plus the pool
/// utilization observed while it was measured (zeros when pool metrics
/// were not collected).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Attribution {
    /// Useful arithmetic throughput achieved, GFLOP/s.
    pub achieved_gflops: f64,
    /// Streaming throughput achieved, GB/s.
    pub achieved_gbs: f64,
    /// Percent of the nearest roof achieved (100 = at the roofline).
    pub roofline_pct: f64,
    /// `compute` / `bandwidth` / `poorly-utilized`.
    pub bound: String,
    /// Pool load-imbalance ratio during the measurement (max lane busy /
    /// mean active lane busy; 1.0 = balanced, 0.0 = not collected).
    pub pool_imbalance: f64,
    /// Percent of pool thread-time idle during the measurement
    /// (0.0 also when pool metrics were not collected).
    pub pool_idle_pct: f64,
    /// Fraction of executed pool jobs that arrived by work stealing
    /// during the measurement (0.0 when not collected, or when the region
    /// scheduled purely through `parallel_for` chunk claiming).
    pub pool_steal_ratio: f64,
}

impl Attribution {
    /// Places `seconds` of measured time for `flops`/`bytes` of work on
    /// `machine`'s roofline. Pool fields start at zero; fill them with
    /// [`Attribution::with_pool`].
    pub fn new(flops: f64, bytes: f64, seconds: f64, machine: &Machine) -> Self {
        if !(seconds.is_finite() && seconds > 0.0) {
            return Self {
                achieved_gflops: 0.0,
                achieved_gbs: 0.0,
                roofline_pct: 0.0,
                bound: BOUND_POORLY_UTILIZED.to_owned(),
                pool_imbalance: 0.0,
                pool_idle_pct: 0.0,
                pool_steal_ratio: 0.0,
            };
        }
        let achieved_gflops = flops / seconds / 1e9;
        let achieved_gbs = bytes / seconds / 1e9;
        let compute_util = safe_div(achieved_gflops, machine.peak_gflops());
        let bw_util = safe_div(achieved_gbs, machine.bandwidth_gbs);
        let roofline_pct = 100.0 * compute_util.max(bw_util);
        let bound = if roofline_pct < UTILIZATION_FLOOR_PCT {
            BOUND_POORLY_UTILIZED
        } else {
            // Which roof the kernel's intensity runs into: intensity above
            // the machine's balance point means the compute roof is lower.
            let intensity = if bytes > 0.0 {
                flops / bytes
            } else {
                f64::INFINITY
            };
            let balance = safe_div(machine.peak_gflops(), machine.bandwidth_gbs);
            if intensity >= balance {
                BOUND_COMPUTE
            } else {
                BOUND_BANDWIDTH
            }
        };
        Self {
            achieved_gflops,
            achieved_gbs,
            roofline_pct,
            bound: bound.to_owned(),
            pool_imbalance: 0.0,
            pool_idle_pct: 0.0,
            pool_steal_ratio: 0.0,
        }
    }

    /// Attaches the pool utilization observed during the measurement.
    /// `steal_ratio` is the stolen share of executed jobs
    /// ([`PoolMetrics::steal_ratio`] in `ninja-probe`); pass `0.0` when the
    /// region scheduled without deque traffic.
    #[must_use]
    pub fn with_pool(mut self, imbalance_ratio: f64, idle_fraction: f64, steal_ratio: f64) -> Self {
        self.pool_imbalance = imbalance_ratio;
        self.pool_idle_pct = 100.0 * idle_fraction.clamp(0.0, 1.0);
        self.pool_steal_ratio = steal_ratio.clamp(0.0, 1.0);
        self
    }

    /// Whether pool utilization was collected for this cell.
    pub fn has_pool_data(&self) -> bool {
        self.pool_imbalance > 0.0
    }

    /// One-line human rendering, e.g.
    /// `"12.3 GFLOP/s, 4.5 GB/s, 31% of roofline (bandwidth-bound)"`.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{:.1} GFLOP/s, {:.1} GB/s, {:.0}% of roofline ({})",
            self.achieved_gflops,
            self.achieved_gbs,
            self.roofline_pct,
            match self.bound.as_str() {
                BOUND_COMPUTE => "compute-bound",
                BOUND_BANDWIDTH => "bandwidth-bound",
                _ => BOUND_POORLY_UTILIZED,
            }
        );
        if self.has_pool_data() {
            s.push_str(&format!(
                "; pool imbalance {:.2}, idle {:.0}%",
                self.pool_imbalance, self.pool_idle_pct
            ));
            if self.pool_steal_ratio > 0.0 {
                s.push_str(&format!(", steal {:.0}%", 100.0 * self.pool_steal_ratio));
            }
        }
        s
    }
}

fn safe_div(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;

    #[test]
    fn compute_bound_kernel_near_its_roof() {
        let m = machines::westmere(); // peak 158.4 GFLOP/s, 30 GB/s
                                      // High intensity (20 flops/byte), achieving half the compute roof.
        let flops = 1e9 * 79.2;
        let bytes = flops / 20.0;
        let a = Attribution::new(flops, bytes, 1.0, &m);
        assert!((a.achieved_gflops - 79.2).abs() < 1e-9);
        assert!((a.roofline_pct - 50.0).abs() < 1e-9);
        assert_eq!(a.bound, BOUND_COMPUTE);
    }

    #[test]
    fn bandwidth_bound_kernel_is_classified_by_intensity() {
        let m = machines::westmere();
        // Streaming kernel: 0.25 flops/byte, 24 GB/s of the 30 GB/s roof.
        let bytes = 24e9;
        let flops = bytes * 0.25;
        let a = Attribution::new(flops, bytes, 1.0, &m);
        assert!((a.achieved_gbs - 24.0).abs() < 1e-9);
        assert!((a.roofline_pct - 80.0).abs() < 1e-9);
        assert_eq!(a.bound, BOUND_BANDWIDTH);
    }

    #[test]
    fn far_from_both_roofs_is_poorly_utilized() {
        let m = machines::westmere();
        // Scalar-ish: 1 GFLOP/s and 1 GB/s on a 158/30 machine.
        let a = Attribution::new(1e9, 1e9, 1.0, &m);
        assert!(a.roofline_pct < UTILIZATION_FLOOR_PCT);
        assert_eq!(a.bound, BOUND_POORLY_UTILIZED);
    }

    #[test]
    fn degenerate_time_yields_zeroed_attribution() {
        let m = machines::westmere();
        for s in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let a = Attribution::new(1e9, 1e9, s, &m);
            assert_eq!(a.achieved_gflops, 0.0);
            assert_eq!(a.bound, BOUND_POORLY_UTILIZED);
        }
    }

    #[test]
    fn zero_byte_work_counts_as_compute() {
        let m = machines::westmere();
        let a = Attribution::new(1e9 * 80.0, 0.0, 1.0, &m);
        assert_eq!(a.bound, BOUND_COMPUTE);
        assert_eq!(a.achieved_gbs, 0.0);
    }

    #[test]
    fn pool_fields_attach_and_render() {
        let m = machines::westmere();
        let a = Attribution::new(24e9 * 0.25, 24e9, 1.0, &m).with_pool(2.4, 0.41, 0.35);
        assert!(a.has_pool_data());
        assert!((a.pool_idle_pct - 41.0).abs() < 1e-9);
        assert!((a.pool_steal_ratio - 0.35).abs() < 1e-9);
        let s = a.summary();
        assert!(s.contains("bandwidth-bound"), "{s}");
        assert!(s.contains("imbalance 2.40"), "{s}");
        assert!(s.contains("steal 35%"), "{s}");
        // Zero steal ratio (pure chunk scheduling) stays out of the render.
        let chunked = Attribution::new(24e9 * 0.25, 24e9, 1.0, &m).with_pool(2.4, 0.41, 0.0);
        assert!(!chunked.summary().contains("steal"));
        let bare = Attribution::new(24e9 * 0.25, 24e9, 1.0, &m);
        assert!(!bare.has_pool_data());
        assert!(!bare.summary().contains("imbalance"));
    }

    #[test]
    fn serde_roundtrip() {
        let m = machines::westmere();
        let a = Attribution::new(5e9, 2e10, 0.5, &m).with_pool(1.2, 0.08, 0.22);
        let json = serde_json::to_string(&a).unwrap();
        let back: Attribution = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
