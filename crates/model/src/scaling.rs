//! Amdahl / Universal Scalability Law fits over measured speedup curves.
//!
//! The paper's warning is that the Ninja gap *grows with cores*: a rung
//! that looks acceptable at one thread count may stop scaling at the
//! next processor generation. This module turns a measured speedup
//! curve — `(threads, speedup)` points produced by the sweep engine in
//! `ninja-core` — into the two classic scalability models:
//!
//! * **Amdahl**: `S(n) = n / (1 + σ·(n − 1))` where `σ` is the serial
//!   fraction of the work.
//! * **Universal Scalability Law** (Gunther): `S(n) = n / (1 + σ·(n − 1)
//!   + κ·n·(n − 1))` where `σ` models contention (queueing on a shared
//!   resource) and `κ` models coherency (pairwise crosstalk, e.g. cache
//!   line ping-pong). Amdahl is the `κ = 0` special case.
//!
//! Both are fitted by **closed-form least squares** on the linearised
//! form `y = n/S(n) − 1 = σ·(n − 1) + κ·n·(n − 1)` (no intercept, 2×2
//! normal equations). No iterative solver and no randomness: the same
//! curve always produces bit-identical parameters, which the
//! synthetic-recovery tests in `crates/model/tests/scaling_fit.rs` rely
//! on.
//!
//! The module also detects the **scaling knee**: the smallest measured
//! thread count at which the marginal speedup per added thread drops
//! below a threshold ([`DEFAULT_KNEE_THRESHOLD`]). The knee is a purely
//! empirical companion to the model fits — bandwidth-bound cells are
//! expected to knee earlier than compute-bound ones, which the sweep
//! report cross-checks against the roofline `bound` classification.

use serde::{Deserialize, Serialize};

/// Default marginal-speedup threshold for [`detect_knee`]: the knee is
/// the first measured thread count where adding one more thread buys
/// less than half a thread's worth of speedup.
pub const DEFAULT_KNEE_THRESHOLD: f64 = 0.5;

/// Determinant below this (relative to the matrix scale) is treated as
/// singular and the fit falls back to the Amdahl-only model.
const SINGULAR_EPS: f64 = 1e-12;

/// Ideal Amdahl speedup at `threads` for a given serial fraction.
///
/// `S(n) = n / (1 + serial_fraction·(n − 1))`. `threads` is a float so
/// the curve can be evaluated between measured points.
pub fn amdahl_speedup(threads: f64, serial_fraction: f64) -> f64 {
    threads / (1.0 + serial_fraction * (threads - 1.0))
}

/// Universal Scalability Law speedup at `threads`.
///
/// `S(n) = n / (1 + contention·(n − 1) + coherency·n·(n − 1))`.
/// With `coherency = 0` this reduces to [`amdahl_speedup`].
pub fn usl_speedup(threads: f64, contention: f64, coherency: f64) -> f64 {
    threads / (1.0 + contention * (threads - 1.0) + coherency * threads * (threads - 1.0))
}

/// Least-squares fit of one measured speedup curve to both scaling
/// models, produced by [`fit_scaling`].
///
/// `serial_fraction` is the Amdahl-only fit (coherency forced to zero);
/// `contention`/`coherency` are the joint USL fit; `r_squared` scores
/// the USL fit in speedup space (1.0 = the model reproduces every
/// measured point exactly; can go negative when the model is worse than
/// a horizontal line).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScalingFit {
    /// Amdahl serial fraction `σ` (κ pinned to 0), clamped to `[0, 1]`.
    pub serial_fraction: f64,
    /// USL contention parameter `σ`, clamped to `[0, 1]`.
    pub contention: f64,
    /// USL coherency parameter `κ`, clamped to `≥ 0`.
    pub coherency: f64,
    /// Coefficient of determination of the USL fit in speedup space.
    pub r_squared: f64,
}

impl ScalingFit {
    /// USL-predicted speedup at `threads` using the fitted parameters.
    pub fn predicted_speedup(&self, threads: f64) -> f64 {
        usl_speedup(threads, self.contention, self.coherency)
    }

    /// Per-point residuals `measured − predicted` in speedup space, in
    /// the order the points were given.
    pub fn residuals(&self, points: &[(usize, f64)]) -> Vec<f64> {
        points
            .iter()
            .map(|&(n, s)| s - self.predicted_speedup(n as f64))
            .collect()
    }

    /// The thread count where the fitted USL curve peaks,
    /// `n* = sqrt((1 − σ)/κ)`, or `None` when `κ = 0` (monotone curve,
    /// no retrograde region).
    pub fn peak_threads(&self) -> Option<f64> {
        if self.coherency > 0.0 && self.contention < 1.0 {
            Some(((1.0 - self.contention) / self.coherency).sqrt())
        } else {
            None
        }
    }
}

/// Fits both models to `points = (threads, measured speedup)`.
///
/// Returns `None` when the curve is degenerate: fewer than two distinct
/// thread counts with finite positive speedup, or no point above one
/// thread. Points at `threads = 1` are accepted (they anchor nothing in
/// the linearised regression but do count toward `r_squared`).
pub fn fit_scaling(points: &[(usize, f64)]) -> Option<ScalingFit> {
    let valid = valid_points(points);
    if !is_fittable(&valid) {
        return None;
    }
    let serial_fraction = amdahl_sigma(&valid).clamp(0.0, 1.0);
    let (contention, coherency) = usl_params(&valid, serial_fraction);
    let r_squared = r_squared(&valid, |n| usl_speedup(n, contention, coherency));
    Some(ScalingFit {
        serial_fraction,
        contention,
        coherency,
        r_squared,
    })
}

/// Amdahl-only least squares: returns the serial fraction `σ`, or
/// `None` for degenerate input (see [`fit_scaling`]).
pub fn fit_amdahl(points: &[(usize, f64)]) -> Option<f64> {
    let valid = valid_points(points);
    if !is_fittable(&valid) {
        return None;
    }
    Some(amdahl_sigma(&valid).clamp(0.0, 1.0))
}

/// Joint USL least squares: returns `(contention, coherency)`, or
/// `None` for degenerate input (see [`fit_scaling`]).
pub fn fit_usl(points: &[(usize, f64)]) -> Option<(f64, f64)> {
    let valid = valid_points(points);
    if !is_fittable(&valid) {
        return None;
    }
    let sigma_amdahl = amdahl_sigma(&valid).clamp(0.0, 1.0);
    Some(usl_params(&valid, sigma_amdahl))
}

/// Finds the scaling knee: the smallest measured thread count at which
/// the marginal speedup per added thread (slope between consecutive
/// measured points, ascending in `threads`) drops below `threshold`.
///
/// Returns `None` when the curve never flattens within the measured
/// range, or when fewer than two distinct thread counts were measured.
pub fn detect_knee(points: &[(usize, f64)], threshold: f64) -> Option<usize> {
    let mut sorted = valid_points(points);
    sorted.sort_by_key(|p| p.0);
    sorted.dedup_by_key(|p| p.0);
    for pair in sorted.windows(2) {
        let (n0, s0) = pair[0];
        let (n1, s1) = pair[1];
        let marginal = (s1 - s0) / (n1 - n0) as f64;
        if marginal < threshold {
            return Some(n1);
        }
    }
    None
}

/// Keeps points with finite, strictly positive speedup.
fn valid_points(points: &[(usize, f64)]) -> Vec<(usize, f64)> {
    points
        .iter()
        .copied()
        .filter(|&(n, s)| n >= 1 && s.is_finite() && s > 0.0)
        .collect()
}

/// A curve is fittable with at least two distinct thread counts, one of
/// which is above a single thread.
fn is_fittable(valid: &[(usize, f64)]) -> bool {
    let mut threads: Vec<usize> = valid.iter().map(|p| p.0).collect();
    threads.sort_unstable();
    threads.dedup();
    threads.len() >= 2 && threads.last().is_some_and(|&n| n > 1)
}

/// Linearised coordinates for one point: `(x1, x2, y)` with
/// `x1 = n − 1`, `x2 = n·(n − 1)`, `y = n/S − 1`.
fn linearise(n: usize, s: f64) -> (f64, f64, f64) {
    let nf = n as f64;
    (nf - 1.0, nf * (nf - 1.0), nf / s - 1.0)
}

/// Amdahl σ by least squares on the linearised form (single regressor,
/// no intercept): `σ = Σ x1·y / Σ x1²`.
fn amdahl_sigma(valid: &[(usize, f64)]) -> f64 {
    let (mut sxx, mut sxy) = (0.0, 0.0);
    for &(n, s) in valid {
        let (x1, _, y) = linearise(n, s);
        sxx += x1 * x1;
        sxy += x1 * y;
    }
    if sxx > 0.0 {
        sxy / sxx
    } else {
        0.0
    }
}

/// Joint USL (σ, κ) via 2×2 normal equations on the linearised form.
/// Falls back to the Amdahl-only solution (κ = 0) when the system is
/// singular (e.g. only one distinct thread count above 1) or when the
/// unconstrained κ comes out negative.
fn usl_params(valid: &[(usize, f64)], sigma_amdahl: f64) -> (f64, f64) {
    let (mut a11, mut a12, mut a22, mut b1, mut b2) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for &(n, s) in valid {
        let (x1, x2, y) = linearise(n, s);
        a11 += x1 * x1;
        a12 += x1 * x2;
        a22 += x2 * x2;
        b1 += x1 * y;
        b2 += x2 * y;
    }
    let det = a11 * a22 - a12 * a12;
    let scale = (a11 * a22).max(a12 * a12);
    if det.abs() <= SINGULAR_EPS * scale.max(1.0) {
        return (sigma_amdahl, 0.0);
    }
    let sigma = (b1 * a22 - b2 * a12) / det;
    let kappa = (a11 * b2 - a12 * b1) / det;
    if kappa < 0.0 {
        // Negative coherency is unphysical under USL; refit with κ = 0.
        (sigma_amdahl, 0.0)
    } else {
        (sigma.clamp(0.0, 1.0), kappa)
    }
}

/// Coefficient of determination of `predict` over the points, computed
/// in speedup space. A flat measured curve (zero variance) scores 1.0
/// when reproduced exactly and 0.0 otherwise.
fn r_squared(valid: &[(usize, f64)], predict: impl Fn(f64) -> f64) -> f64 {
    let mean = valid.iter().map(|p| p.1).sum::<f64>() / valid.len() as f64;
    let (mut ss_res, mut ss_tot) = (0.0, 0.0);
    for &(n, s) in valid {
        let e = s - predict(n as f64);
        ss_res += e * e;
        let d = s - mean;
        ss_tot += d * d;
    }
    if ss_tot <= 1e-12 {
        if ss_res <= 1e-9 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amdahl_curve(sigma: f64, max_n: usize) -> Vec<(usize, f64)> {
        (1..=max_n)
            .map(|n| (n, amdahl_speedup(n as f64, sigma)))
            .collect()
    }

    fn usl_curve(sigma: f64, kappa: f64, max_n: usize) -> Vec<(usize, f64)> {
        (1..=max_n)
            .map(|n| (n, usl_speedup(n as f64, sigma, kappa)))
            .collect()
    }

    #[test]
    fn amdahl_fit_recovers_exact_curve() {
        let sigma = 0.07;
        let fit = fit_scaling(&amdahl_curve(sigma, 16)).unwrap();
        assert!((fit.serial_fraction - sigma).abs() < 1e-12, "{fit:?}");
        assert!((fit.contention - sigma).abs() < 1e-9, "{fit:?}");
        assert!(fit.coherency.abs() < 1e-12, "{fit:?}");
        assert!(fit.r_squared > 0.999_999, "{fit:?}");
    }

    #[test]
    fn usl_fit_recovers_exact_curve() {
        let (sigma, kappa) = (0.05, 0.002);
        let fit = fit_scaling(&usl_curve(sigma, kappa, 32)).unwrap();
        assert!((fit.contention - sigma).abs() < 1e-9, "{fit:?}");
        assert!((fit.coherency - kappa).abs() < 1e-9, "{fit:?}");
        assert!(fit.r_squared > 0.999_999, "{fit:?}");
    }

    #[test]
    fn two_point_curve_fits_exactly() {
        // The CI smoke grid: threads {1, 2}. Amdahl has one free
        // parameter, one informative point — exact fit, r² = 1.
        let fit = fit_scaling(&[(1, 1.0), (2, 1.8)]).unwrap();
        assert!((fit.predicted_speedup(2.0) - 1.8).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12, "{fit:?}");
        assert_eq!(fit.coherency, 0.0);
    }

    #[test]
    fn perfect_linear_scaling_has_zero_serial_fraction() {
        let points: Vec<(usize, f64)> = (1..=8).map(|n| (n, n as f64)).collect();
        let fit = fit_scaling(&points).unwrap();
        assert_eq!(fit.serial_fraction, 0.0);
        assert_eq!(fit.contention, 0.0);
        assert_eq!(fit.coherency, 0.0);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_scaling_at_all_clamps_sigma_to_one() {
        // Speedup pinned at 1.0 for every thread count: y = n − 1,
        // unconstrained σ fits > 1? No: y/x1 = 1 exactly, σ = 1.
        let points: Vec<(usize, f64)> = (1..=8).map(|n| (n, 1.0)).collect();
        let fit = fit_scaling(&points).unwrap();
        assert!((fit.serial_fraction - 1.0).abs() < 1e-12, "{fit:?}");
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(fit_scaling(&[]).is_none());
        assert!(fit_scaling(&[(1, 1.0)]).is_none());
        assert!(fit_scaling(&[(4, 3.0)]).is_none(), "single thread count");
        assert!(fit_scaling(&[(4, 3.0), (4, 3.1)]).is_none());
        assert!(fit_scaling(&[(1, 1.0), (2, f64::NAN)]).is_none());
        assert!(fit_scaling(&[(1, 1.0), (2, 0.0)]).is_none());
        assert!(fit_amdahl(&[(1, 1.0)]).is_none());
        assert!(fit_usl(&[(1, 1.0)]).is_none());
    }

    #[test]
    fn negative_kappa_falls_back_to_amdahl() {
        // A curve whose overhead *shrinks* at high thread counts (e.g.
        // cache-capacity effects) drives the unconstrained κ negative;
        // the fit must refuse it and pin κ = 0.
        let points = [(1, 1.0), (2, 1.5), (4, 3.2), (8, 7.5)];
        let fit = fit_scaling(&points).unwrap();
        assert_eq!(fit.coherency, 0.0, "{fit:?}");
        assert_eq!(fit.contention, fit.serial_fraction, "{fit:?}");
        assert!(fit.serial_fraction > 0.0, "{fit:?}");
    }

    #[test]
    fn super_linear_curve_clamps_sigma_to_zero() {
        // Genuinely super-linear speedups linearise to negative y; the
        // clamped parameters stay physical (σ ≥ 0, κ ≥ 0).
        let points = [(1, 1.0), (2, 2.2), (4, 4.8), (8, 10.0)];
        let fit = fit_scaling(&points).unwrap();
        assert!(fit.serial_fraction >= 0.0, "{fit:?}");
        assert!(fit.contention >= 0.0, "{fit:?}");
        assert!(fit.coherency >= 0.0, "{fit:?}");
    }

    #[test]
    fn knee_detected_on_flattening_curve() {
        // Strong scaling to 4 threads, then nearly flat.
        let points = [(1, 1.0), (2, 1.9), (4, 3.6), (8, 3.9)];
        assert_eq!(detect_knee(&points, DEFAULT_KNEE_THRESHOLD), Some(8));
        // Linear curve: no knee in the measured range.
        let linear: Vec<(usize, f64)> = (1..=8).map(|n| (n, n as f64)).collect();
        assert_eq!(detect_knee(&linear, DEFAULT_KNEE_THRESHOLD), None);
        // Degenerate curves: no knee.
        assert_eq!(detect_knee(&[(2, 1.5)], 0.5), None);
        assert_eq!(detect_knee(&[], 0.5), None);
    }

    #[test]
    fn knee_is_order_independent() {
        let a = [(8, 3.9), (1, 1.0), (4, 3.6), (2, 1.9)];
        let b = [(1, 1.0), (2, 1.9), (4, 3.6), (8, 3.9)];
        assert_eq!(detect_knee(&a, 0.5), detect_knee(&b, 0.5));
    }

    #[test]
    fn peak_threads_matches_usl_formula() {
        let fit = ScalingFit {
            serial_fraction: 0.05,
            contention: 0.05,
            coherency: 0.002,
            r_squared: 1.0,
        };
        let peak = fit.peak_threads().unwrap();
        assert!((peak - (0.95f64 / 0.002).sqrt()).abs() < 1e-12);
        let amdahl_only = ScalingFit {
            coherency: 0.0,
            ..fit
        };
        assert!(amdahl_only.peak_threads().is_none());
    }

    #[test]
    fn residuals_are_measured_minus_predicted() {
        let fit = fit_scaling(&amdahl_curve(0.1, 8)).unwrap();
        let res = fit.residuals(&amdahl_curve(0.1, 8));
        assert_eq!(res.len(), 8);
        assert!(res.iter().all(|r| r.abs() < 1e-9), "{res:?}");
    }

    #[test]
    fn serde_roundtrip() {
        let fit = fit_scaling(&usl_curve(0.08, 0.001, 16)).unwrap();
        let json = serde_json::to_string(&fit).unwrap();
        let back: ScalingFit = serde_json::from_str(&json).unwrap();
        assert_eq!(fit, back);
    }
}
