//! The serving-layer acceptance test: under a seeded chaos schedule
//! injecting the full panic/hang/nan/wrong taxonomy at a ≥5% per-attempt
//! rate, a 10k-request run must (a) deliver zero incorrect responses,
//! (b) resolve every ticket as Ok/Rejected/Expired within its deadline
//! plus one backoff budget, (c) demonstrably degrade the batch path
//! ninja → SIMD → scalar via the circuit breakers, and (d) recover back
//! to the ninja rung once faults stop.

use std::sync::Arc;
use std::time::Duration;

use ninja_kernels::black_scholes::{price_contract, OptionContract};
use ninja_kernels::chaos::ChaosSchedule;
use ninja_kernels::libor::{default_init_rates, default_vols, price_path_f64, NMAT};
use ninja_kernels::ProblemSize;
use ninja_parallel::ThreadPool;
use ninja_serve::{
    BlackScholesServe, Engine, LiborServe, Response, Rung, ServeConfig, TreeSearchServe,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CHAOS_RATE: f64 = 0.15;
const WAVE: usize = 256;

fn chaos_config() -> ServeConfig {
    ServeConfig {
        queue_capacity: 2048,
        max_batch: 64,
        deadline: Duration::from_millis(200),
        backoff_base: Duration::from_micros(500),
        backoff_cap: Duration::from_millis(8),
        breaker_threshold: 1,
        breaker_cooldown: Duration::from_millis(50),
        attempt_grace: Duration::from_millis(50),
        // An injected hang must outlast deadline + grace so the attempt
        // timeout (executor abandonment) path actually fires, while
        // staying bounded so abandoned threads exit.
        hang_sleep: Duration::from_millis(400),
    }
}

/// The hard resolution contract: deadline, plus the attempt grace, plus
/// one backoff, plus scheduling slack for the observer itself.
fn resolve_budget(cfg: &ServeConfig) -> Duration {
    cfg.deadline + cfg.attempt_grace + cfg.backoff_cap + Duration::from_millis(500)
}

struct Tally {
    ok: u64,
    rejected: u64,
    expired: u64,
    unresolved: u64,
    incorrect: u64,
    ok_rungs: [u64; 3],
}

/// Drive `n` requests through `engine` in waves, verifying every Ok
/// against the client-side expectation.
fn drive<K, F>(engine: &Engine<K>, mut make_req: F, n: usize) -> Tally
where
    K: ninja_serve::BatchKernel,
    F: FnMut(usize) -> (K::Req, K::Resp),
{
    let budget = resolve_budget(&engine.config());
    let mut tally = Tally {
        ok: 0,
        rejected: 0,
        expired: 0,
        unresolved: 0,
        incorrect: 0,
        ok_rungs: [0; 3],
    };
    let mut sent = 0usize;
    while sent < n {
        let wave = WAVE.min(n - sent);
        let tickets: Vec<_> = (0..wave)
            .map(|i| {
                let (req, expected) = make_req(sent + i);
                (engine.submit(req), expected)
            })
            .collect();
        sent += wave;
        for (ticket, expected) in &tickets {
            match ticket.wait(budget) {
                Some(Response::Ok { value, rung, .. }) => {
                    tally.ok += 1;
                    tally.ok_rungs[rung.index()] += 1;
                    if !engine.kernel().matches(&value, expected) {
                        tally.incorrect += 1;
                    }
                }
                Some(Response::Rejected) => tally.rejected += 1,
                Some(Response::Expired) => tally.expired += 1,
                None => tally.unresolved += 1,
            }
        }
    }
    tally
}

#[test]
fn blackscholes_10k_under_chaos_never_lies_and_degrades_gracefully() {
    let pool = Arc::new(ThreadPool::with_threads(4));
    let cfg = chaos_config();
    let engine = Engine::new(
        BlackScholesServe::new(pool),
        cfg,
        Some(ChaosSchedule::new(2012, CHAOS_RATE)),
    );
    let mut rng = SmallRng::seed_from_u64(7);
    let tally = drive(
        &engine,
        |_| {
            let c = OptionContract {
                spot: rng.gen_range(5.0..120.0),
                strike: rng.gen_range(10.0..100.0),
                years: rng.gen_range(0.1..5.0),
                rate: rng.gen_range(0.01..0.08),
                vol: rng.gen_range(0.05..0.6),
            };
            (c, price_contract(&c))
        },
        10_000,
    );

    // (a) Zero incorrect responses: every injected wrong/NaN output was
    // caught by validation before delivery.
    assert_eq!(tally.incorrect, 0, "an unvalidated wrong response escaped");
    // (b) Every ticket resolved within the contract.
    assert_eq!(tally.unresolved, 0, "a ticket outlived deadline + backoff");
    assert_eq!(
        tally.ok + tally.rejected + tally.expired,
        10_000,
        "request accounting does not add up"
    );
    // The service still mostly works at this fault rate.
    assert!(tally.ok > 5_000, "only {} of 10k served Ok", tally.ok);

    // (c) Demonstrable ninja → SIMD → scalar degradation: the breakers
    // tripped and every rung of the ladder served validated traffic.
    let stats = engine.stats();
    assert!(stats.trips > 0, "no breaker ever tripped");
    assert!(
        tally.ok_rungs[Rung::Ninja.index()] > 0,
        "no Ok served at ninja rung"
    );
    assert!(
        tally.ok_rungs[Rung::Simd.index()] > 0,
        "breaker never degraded to the SIMD rung"
    );
    assert!(
        tally.ok_rungs[Rung::Scalar.index()] > 0,
        "breaker never degraded to the scalar floor"
    );
    // The chaos mix actually exercised every failure path.
    assert!(stats.panics > 0, "no panic fault observed");
    assert!(stats.timeouts > 0, "no hang/abandonment observed");
    assert!(stats.validation_failures > 0, "no wrong/nan fault caught");

    // (d) Recovery: stop injecting, let the cooldown elapse, and the
    // ladder climbs back to ninja.
    engine.set_chaos(None);
    std::thread::sleep(cfg.breaker_cooldown + Duration::from_millis(20));
    let mut rng = SmallRng::seed_from_u64(8);
    let post = drive(
        &engine,
        |_| {
            let c = OptionContract {
                spot: rng.gen_range(5.0..120.0),
                strike: rng.gen_range(10.0..100.0),
                years: rng.gen_range(0.1..5.0),
                rate: rng.gen_range(0.01..0.08),
                vol: rng.gen_range(0.05..0.6),
            };
            (c, price_contract(&c))
        },
        WAVE,
    );
    assert_eq!(post.ok, WAVE as u64, "post-chaos requests failed");
    assert_eq!(post.incorrect, 0);
    assert!(
        post.ok_rungs[Rung::Ninja.index()] > 0,
        "service never climbed back to the ninja rung"
    );
    assert!(
        engine.stats().recoveries > 0,
        "no breaker half-open recovery recorded"
    );
}

#[test]
fn treesearch_under_chaos_never_lies() {
    let pool = Arc::new(ThreadPool::with_threads(2));
    let engine = Engine::new(
        TreeSearchServe::new(ProblemSize::Test, 3, pool),
        chaos_config(),
        Some(ChaosSchedule::new(77, CHAOS_RATE)),
    );
    let hi = engine.kernel().tree().num_keys() as f32 * 1.3;
    let mut rng = SmallRng::seed_from_u64(9);
    let tally = drive(
        &engine,
        |_| {
            let q = rng.gen_range(-1.0..hi);
            (q, engine.kernel().tree().lower_bound_bst(q))
        },
        1_024,
    );
    assert_eq!(tally.incorrect, 0);
    assert_eq!(tally.unresolved, 0);
    assert!(tally.ok > 512, "only {} of 1024 served Ok", tally.ok);
}

#[test]
fn libor_under_chaos_never_lies() {
    let pool = Arc::new(ThreadPool::with_threads(2));
    let engine = Engine::new(
        LiborServe::new(pool),
        chaos_config(),
        Some(ChaosSchedule::new(41, CHAOS_RATE)),
    );
    let rates = default_init_rates();
    let vols = default_vols();
    let mut rng = SmallRng::seed_from_u64(10);
    let tally = drive(
        &engine,
        |_| {
            let z: [f32; NMAT] = std::array::from_fn(|_| rng.gen_range(-3.0..3.0));
            (z, price_path_f64(&rates, &vols, &z))
        },
        1_024,
    );
    assert_eq!(tally.incorrect, 0);
    assert_eq!(tally.unresolved, 0);
    assert!(tally.ok > 512, "only {} of 1024 served Ok", tally.ok);
}
