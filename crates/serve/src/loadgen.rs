//! Open-loop load generator and SLO reporting.
//!
//! Open-loop means arrivals follow a fixed schedule regardless of how
//! the service is coping — the honest way to measure a latency/load
//! curve, since closed-loop clients self-throttle and hide queueing
//! collapse. The generator submits requests at a constant offered rate,
//! then drains every ticket and classifies the resolutions; `Ok`
//! responses are re-verified client-side against an expected value so
//! an unvalidated wrong answer can never hide in the counts.

use std::time::{Duration, Instant};

use serde::Serialize;

use crate::engine::{BatchKernel, Engine, Response};
use crate::Rung;

/// One measured point of an SLO curve: a fixed offered load and the
/// delivered latency/outcome distribution.
#[derive(Clone, Debug, Serialize)]
pub struct SloPoint {
    /// Offered arrival rate, requests per second.
    pub offered_rps: f64,
    /// Requests submitted.
    pub sent: u64,
    /// Requests resolved `Ok` (validated).
    pub ok: u64,
    /// Requests shed at admission.
    pub rejected: u64,
    /// Requests that ran out of deadline.
    pub expired: u64,
    /// Tickets that failed to resolve within deadline + grace + one
    /// backoff (a serving-contract violation; must stay 0).
    pub unresolved: u64,
    /// `Ok` responses whose value disagreed with the client-side
    /// expectation (must stay 0 — validation guarantees it).
    pub incorrect: u64,
    /// `Ok` responses served below the ninja rung.
    pub degraded: u64,
    /// Median end-to-end latency of `Ok` responses, microseconds.
    pub p50_us: f64,
    /// 99th-percentile end-to-end latency of `Ok` responses.
    pub p99_us: f64,
    /// Breaker trips observed engine-wide by the end of the point.
    pub trips: u64,
    /// Breaker recoveries observed engine-wide by the end of the point.
    pub recoveries: u64,
}

/// An SLO curve for one served kernel, ready for JSON export and perfdb
/// ingestion.
#[derive(Clone, Debug, Serialize)]
pub struct ServeReport {
    /// Served kernel name.
    pub kernel: String,
    /// Worker threads in the shared pool.
    pub threads: usize,
    /// Chaos schedule seed, when injection was active.
    pub chaos_seed: Option<u64>,
    /// Chaos per-attempt fault rate, when injection was active.
    pub chaos_rate: Option<f64>,
    /// Request deadline in microseconds.
    pub deadline_us: u64,
    /// One point per offered rate.
    pub points: Vec<SloPoint>,
}

impl ServeReport {
    /// Render the curve as an aligned human-readable table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "serve SLO curve: kernel={} threads={} deadline={}us chaos={}",
            self.kernel,
            self.threads,
            self.deadline_us,
            match (self.chaos_seed, self.chaos_rate) {
                (Some(s), Some(r)) => format!("seed={s} rate={r}"),
                _ => "off".to_owned(),
            }
        );
        let _ = writeln!(
            out,
            "{:>10} {:>7} {:>7} {:>7} {:>7} {:>9} {:>10} {:>10} {:>6}",
            "offered/s",
            "ok",
            "shed",
            "expired",
            "degr",
            "incorrect",
            "p50(us)",
            "p99(us)",
            "trips"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:>10.0} {:>7} {:>7} {:>7} {:>7} {:>9} {:>10.0} {:>10.0} {:>6}",
                p.offered_rps,
                p.ok,
                p.rejected,
                p.expired,
                p.degraded,
                p.incorrect,
                p.p50_us,
                p.p99_us,
                p.trips
            );
        }
        out
    }
}

fn percentile(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return f64::NAN;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1] as f64
}

/// Drive `engine` open-loop at `offered_rps` for `n_requests` requests,
/// then drain and classify every ticket. `make_req` produces the i-th
/// request along with its expected response for client-side
/// re-verification of `Ok` resolutions.
pub fn run_open_loop<K, F>(
    engine: &Engine<K>,
    mut make_req: F,
    offered_rps: f64,
    n_requests: usize,
) -> SloPoint
where
    K: BatchKernel,
    F: FnMut(usize) -> (K::Req, K::Resp),
{
    assert!(offered_rps > 0.0, "offered rate must be positive");
    let interval = Duration::from_secs_f64(1.0 / offered_rps);
    let cfg = engine_config_snapshot(engine);
    // The resolution contract: deadline + attempt grace + one backoff,
    // plus scheduling slack for the wait itself.
    let resolve_budget =
        cfg.deadline + cfg.attempt_grace + cfg.backoff_cap + Duration::from_millis(250);

    let start = Instant::now();
    let mut tickets = Vec::with_capacity(n_requests);
    for i in 0..n_requests {
        // Open-loop pacing: send at the scheduled instant even if the
        // service is behind (that is the point).
        let due = start + interval.saturating_mul(i as u32);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let (req, expected) = make_req(i);
        tickets.push((engine.submit(req), expected));
    }

    let mut point = SloPoint {
        offered_rps,
        sent: n_requests as u64,
        ok: 0,
        rejected: 0,
        expired: 0,
        unresolved: 0,
        incorrect: 0,
        degraded: 0,
        p50_us: f64::NAN,
        p99_us: f64::NAN,
        trips: 0,
        recoveries: 0,
    };
    let mut latencies_us: Vec<u64> = Vec::new();
    for (ticket, expected) in &tickets {
        match ticket.wait(resolve_budget) {
            Some(Response::Ok {
                value,
                rung,
                total_us,
                ..
            }) => {
                point.ok += 1;
                if !engine.kernel().matches(&value, expected) {
                    point.incorrect += 1;
                }
                if rung != Rung::Ninja {
                    point.degraded += 1;
                }
                latencies_us.push(total_us);
            }
            Some(Response::Rejected) => point.rejected += 1,
            Some(Response::Expired) => point.expired += 1,
            None => point.unresolved += 1,
        }
    }
    latencies_us.sort_unstable();
    point.p50_us = percentile(&latencies_us, 0.50);
    point.p99_us = percentile(&latencies_us, 0.99);
    let stats = engine.stats();
    point.trips = stats.trips;
    point.recoveries = stats.recoveries;
    point
}

/// The engine's config, via a small accessor so the loadgen can size
/// its resolution budget from the engine it measures.
fn engine_config_snapshot<K: BatchKernel>(engine: &Engine<K>) -> crate::engine::ServeConfig {
    engine.config()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_nearest_rank() {
        let v = [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.99), 100.0);
        assert_eq!(percentile(&v, 0.01), 10.0);
        assert!(percentile(&[], 0.5).is_nan());
    }
}
