//! ninja-serve: a fault-tolerant batched serving layer over the gap
//! kernels.
//!
//! The ROADMAP's north star is requests-per-second-per-core, not bare
//! kernel GFLOP/s; this crate turns the measured kernels into a
//! long-running in-process service and wraps them in the robustness
//! envelope that determines *delivered* performance:
//!
//! * **Front door**: [`Engine::submit`] accepts one AoS request and
//!   returns a [`Ticket`] that resolves to exactly one [`Response`].
//!   Admission is bounded — a full queue sheds load with an immediate
//!   [`Response::Rejected`] instead of queueing into certain deadline
//!   death.
//! * **Batching**: a dedicated batcher thread coalesces queued requests
//!   into batches and executes them through a [`BatchKernel`], which lays
//!   the batch out SoA and runs the rung-appropriate kernel math on the
//!   shared [`ninja_parallel::ThreadPool`].
//! * **Deadlines**: each request carries an end-to-end deadline covering
//!   queue wait plus execution; a request that cannot be served in time
//!   resolves as [`Response::Expired`] — never silently dropped.
//! * **Isolation + retry**: every batch attempt runs on a supervised
//!   executor thread under `catch_unwind`; panics, hangs (detected by
//!   attempt timeout, the stuck executor is abandoned and replaced), and
//!   validation failures are retried with capped exponential backoff
//!   while the deadline budget lasts.
//! * **Validation**: every attempt's output is checked against a trusted
//!   scalar (`f64`) reference computed once per batch, so a faulting
//!   rung can *never* deliver a wrong answer — it is caught, counted,
//!   and retried or degraded.
//! * **Graceful degradation**: per-rung circuit breakers
//!   ([`breaker::Breaker`]) trip after repeated failures and route
//!   batches down the [`Rung`] ladder (ninja → SIMD → scalar); after a
//!   cooldown the breaker half-opens and probes recovery back up the
//!   ladder. The scalar floor has no breaker — it is the rung of last
//!   resort.
//! * **Chaos**: a deterministic seeded
//!   [`ninja_kernels::chaos::ChaosSchedule`] (shared with `reproduce
//!   --chaos`) injects the panic/hang/nan/wrong fault taxonomy at the
//!   service layer, making every robustness path testable bit-for-bit
//!   reproducibly.
//! * **Measurement**: the open-loop [`loadgen`] drives an engine at a
//!   fixed offered rate and reports p50/p99 latency, shed/expired/
//!   degraded counts, and breaker activity as SLO curve points that flow
//!   into perfdb.

#![deny(missing_docs)]

pub mod breaker;
pub mod engine;
pub mod kernels;
pub mod loadgen;

pub use breaker::Breaker;
pub use engine::{BatchKernel, Engine, EngineStats, Response, ServeConfig, Ticket};
pub use kernels::{BlackScholesServe, LiborServe, TreeSearchServe};
pub use loadgen::{run_open_loop, ServeReport, SloPoint};

/// One rung of the serving degradation ladder, best first.
///
/// The serving ladder is coarser than the five-tier measurement ladder:
/// it keeps the three rungs that differ in *failure surface* — the
/// hand-tuned SIMD path, the restructured compiler-friendly path, and
/// the trusted scalar floor.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Rung {
    /// Hand-vectorized kernel math (the measurement ladder's ninja tier).
    Ninja,
    /// Restructured `f32` math a compiler can vectorize (the SIMD /
    /// algorithmic tiers).
    Simd,
    /// Scalar `f64` reference math. The unconditional floor: no breaker
    /// ever removes it.
    Scalar,
}

impl Rung {
    /// The ladder in degradation order (try first → floor).
    pub const LADDER: [Rung; 3] = [Rung::Ninja, Rung::Simd, Rung::Scalar];

    /// Position in [`Rung::LADDER`].
    pub fn index(self) -> usize {
        match self {
            Rung::Ninja => 0,
            Rung::Simd => 1,
            Rung::Scalar => 2,
        }
    }

    /// Lower-case display label.
    pub fn name(self) -> &'static str {
        match self {
            Rung::Ninja => "ninja",
            Rung::Simd => "simd",
            Rung::Scalar => "scalar",
        }
    }
}

impl std::fmt::Display for Rung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_ordered_best_to_floor() {
        assert_eq!(Rung::LADDER[0], Rung::Ninja);
        assert_eq!(Rung::LADDER[2], Rung::Scalar);
        for (i, r) in Rung::LADDER.into_iter().enumerate() {
            assert_eq!(r.index(), i);
        }
        assert_eq!(Rung::Ninja.to_string(), "ninja");
    }
}
