//! Per-rung circuit breaker.
//!
//! Classic three-state breaker driven by the batcher thread (no interior
//! locking needed — one owner): **Closed** counts consecutive failures
//! and trips at a threshold; **Open** rejects the rung until a cooldown
//! elapses; **HalfOpen** admits a single probe attempt whose outcome
//! either closes the breaker (recovery) or re-opens it.

use std::time::{Duration, Instant};

#[derive(Copy, Clone, Debug, PartialEq)]
enum State {
    Closed { consecutive_failures: u32 },
    Open { until: Instant },
    HalfOpen,
}

/// A circuit breaker guarding one degradation-ladder rung.
#[derive(Clone, Debug)]
pub struct Breaker {
    state: State,
    threshold: u32,
    cooldown: Duration,
    trips: u64,
    recoveries: u64,
}

impl Breaker {
    /// A closed breaker that trips after `threshold` consecutive
    /// failures and stays open for `cooldown` before probing recovery.
    /// A threshold of 0 behaves as 1.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        Self {
            state: State::Closed {
                consecutive_failures: 0,
            },
            threshold: threshold.max(1),
            cooldown,
            trips: 0,
            recoveries: 0,
        }
    }

    /// May the guarded rung attempt a batch right now? An open breaker
    /// whose cooldown has elapsed transitions to half-open and admits
    /// the call as its recovery probe.
    pub fn allows(&mut self, now: Instant) -> bool {
        match self.state {
            State::Closed { .. } | State::HalfOpen => true,
            State::Open { until } => {
                if now >= until {
                    self.state = State::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful attempt. Returns `true` when this success
    /// recovered a half-open breaker back to closed.
    pub fn record_success(&mut self) -> bool {
        let recovered = self.state == State::HalfOpen;
        if recovered {
            self.recoveries += 1;
        }
        self.state = State::Closed {
            consecutive_failures: 0,
        };
        recovered
    }

    /// Record a failed attempt at `now`. Returns `true` when this
    /// failure tripped the breaker open.
    pub fn record_failure(&mut self, now: Instant) -> bool {
        match self.state {
            State::Closed {
                consecutive_failures,
            } => {
                let fails = consecutive_failures + 1;
                if fails >= self.threshold {
                    self.trip(now)
                } else {
                    self.state = State::Closed {
                        consecutive_failures: fails,
                    };
                    false
                }
            }
            // A failed recovery probe re-opens for another cooldown.
            State::HalfOpen => self.trip(now),
            State::Open { .. } => false,
        }
    }

    fn trip(&mut self, now: Instant) -> bool {
        self.state = State::Open {
            until: now + self.cooldown,
        };
        self.trips += 1;
        true
    }

    /// Number of closed→open (or half-open→open) transitions so far.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Number of half-open→closed recoveries so far.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Is the breaker currently passing traffic (closed or half-open)?
    pub fn is_closed(&self) -> bool {
        matches!(self.state, State::Closed { .. } | State::HalfOpen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let now = Instant::now();
        let mut b = Breaker::new(3, Duration::from_millis(10));
        assert!(!b.record_failure(now));
        assert!(!b.record_failure(now));
        assert!(b.record_failure(now));
        assert_eq!(b.trips(), 1);
        assert!(!b.allows(now));
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let now = Instant::now();
        let mut b = Breaker::new(2, Duration::from_millis(10));
        assert!(!b.record_failure(now));
        b.record_success();
        assert!(!b.record_failure(now));
        assert!(b.is_closed());
    }

    #[test]
    fn half_open_probe_recovers_or_reopens() {
        let now = Instant::now();
        let mut b = Breaker::new(1, Duration::from_millis(5));
        assert!(b.record_failure(now));
        assert!(!b.allows(now));
        // Cooldown elapsed: half-open admits one probe.
        let later = now + Duration::from_millis(6);
        assert!(b.allows(later));
        // Failed probe re-opens immediately (threshold irrelevant).
        assert!(b.record_failure(later));
        assert_eq!(b.trips(), 2);
        assert!(!b.allows(later));
        // Next probe succeeds: recovered.
        let later2 = later + Duration::from_millis(6);
        assert!(b.allows(later2));
        assert!(b.record_success());
        assert_eq!(b.recoveries(), 1);
        assert!(b.is_closed());
    }

    #[test]
    fn zero_threshold_acts_as_one() {
        let now = Instant::now();
        let mut b = Breaker::new(0, Duration::from_millis(1));
        assert!(b.record_failure(now));
    }
}
