//! The serving engine: bounded admission, batching, deadlines, retry
//! with backoff, executor isolation, and per-rung circuit breaking.
//!
//! One [`Engine`] serves one kernel. Requests enter through
//! [`Engine::submit`] into a bounded queue; a dedicated batcher thread
//! drains them into batches and drives each batch through the
//! degradation ladder until it is served or its members expire. Kernel
//! math never runs on the batcher thread: every attempt executes on a
//! supervised *executor* thread behind `catch_unwind` and an attempt
//! timeout, so a panicking or hung rung can neither unwind the batcher
//! nor wedge the service — the stuck executor is abandoned (and tagged
//! for the span validator) and a fresh one takes its place.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ninja_kernels::chaos::{ChaosSchedule, FailureMode};

use crate::breaker::Breaker;
use crate::Rung;

/// Batch execution surface one served kernel implements.
///
/// `run(Rung::Scalar, ..)` is the trusted reference: the engine executes
/// it on the batcher thread (never fault-injected) and validates every
/// other attempt against it with [`BatchKernel::matches`].
pub trait BatchKernel: Send + Sync + 'static {
    /// One AoS request.
    type Req: Send + Clone + 'static;
    /// One response value.
    type Resp: Send + Clone + 'static;

    /// Kernel name for spans and reports.
    fn name(&self) -> &'static str;

    /// Serve `reqs` at `rung`, one response per request. Implementations
    /// coalesce the AoS batch into SoA layouts as the rung requires.
    fn run(&self, rung: Rung, reqs: &[Self::Req]) -> Vec<Self::Resp>;

    /// Does a response agree with the scalar reference within the
    /// kernel's tolerance? Must reject non-finite values.
    fn matches(&self, got: &Self::Resp, reference: &Self::Resp) -> bool;

    /// Corrupt a response in place per the injected failure mode
    /// (chaos only: `NonFinite` and `WrongOutput`).
    fn corrupt(&self, resp: &mut Self::Resp, mode: FailureMode);
}

/// Engine tuning knobs.
#[derive(Copy, Clone, Debug)]
pub struct ServeConfig {
    /// Admission queue bound; a full queue sheds with `Rejected`.
    /// Capacity 0 rejects everything (useful in tests).
    pub queue_capacity: usize,
    /// Maximum requests coalesced into one batch.
    pub max_batch: usize,
    /// End-to-end deadline per request (queue wait + execution).
    pub deadline: Duration,
    /// First retry backoff; doubles per attempt up to `backoff_cap`.
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap: Duration,
    /// Consecutive failures that trip a rung's breaker.
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays open before probing recovery.
    pub breaker_cooldown: Duration,
    /// Extra wait past the batch's last deadline before an attempt is
    /// declared hung and its executor abandoned.
    pub attempt_grace: Duration,
    /// How long an injected `Hang` fault stalls the executor. Bounded so
    /// abandoned executor threads eventually exit instead of leaking.
    pub hang_sleep: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            max_batch: 64,
            deadline: Duration::from_millis(50),
            backoff_base: Duration::from_micros(500),
            backoff_cap: Duration::from_millis(8),
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(25),
            attempt_grace: Duration::from_millis(20),
            hang_sleep: Duration::from_millis(500),
        }
    }
}

/// The resolution of one request. Every submitted request resolves to
/// exactly one of these.
#[derive(Clone, Debug, PartialEq)]
pub enum Response<R> {
    /// Served and validated against the scalar reference.
    Ok {
        /// The validated response value.
        value: R,
        /// The ladder rung that served it.
        rung: Rung,
        /// Microseconds spent queued before batch pickup.
        queue_us: u64,
        /// End-to-end microseconds from submit to resolution.
        total_us: u64,
    },
    /// Shed at admission: the queue was full (or the engine shut down).
    Rejected,
    /// The deadline passed before a validated result existed.
    Expired,
}

impl<R> Response<R> {
    /// Is this an `Ok` resolution?
    pub fn is_ok(&self) -> bool {
        matches!(self, Response::Ok { .. })
    }
}

/// The caller's handle to one in-flight request.
pub struct Ticket<R> {
    rx: Receiver<Response<R>>,
}

impl<R> Ticket<R> {
    /// Wait up to `timeout` for the resolution. `None` means the engine
    /// failed to resolve in time — the load generator counts that as a
    /// contract violation, and the integration suite asserts it never
    /// happens within deadline + grace.
    pub fn wait(&self, timeout: Duration) -> Option<Response<R>> {
        self.rx.recv_timeout(timeout).ok()
    }
}

/// Cumulative engine counters (snapshot via [`Engine::stats`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EngineStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests shed at admission.
    pub rejected: u64,
    /// Requests that ran out of deadline.
    pub expired: u64,
    /// Requests served Ok, by ladder rung (`Rung::LADDER` order).
    pub ok_by_rung: [u64; 3],
    /// Batch attempts executed.
    pub attempts: u64,
    /// Attempts that panicked.
    pub panics: u64,
    /// Attempts abandoned as hung.
    pub timeouts: u64,
    /// Attempts whose output failed validation.
    pub validation_failures: u64,
    /// Breaker closed→open transitions.
    pub trips: u64,
    /// Breaker half-open→closed recoveries.
    pub recoveries: u64,
    /// Message of the most recent panicked attempt, for diagnostics.
    pub last_panic: Option<String>,
}

impl EngineStats {
    /// Total requests served Ok across rungs.
    pub fn ok(&self) -> u64 {
        self.ok_by_rung.iter().sum()
    }

    /// Ok responses served below the ninja rung.
    pub fn degraded(&self) -> u64 {
        self.ok_by_rung[1] + self.ok_by_rung[2]
    }
}

struct Envelope<K: BatchKernel> {
    req: K::Req,
    enqueued: Instant,
    deadline: Instant,
    tx: Sender<Response<K::Resp>>,
}

struct Shared<K: BatchKernel> {
    kernel: Arc<K>,
    config: ServeConfig,
    queue: Mutex<std::collections::VecDeque<Envelope<K>>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    stats: Mutex<EngineStats>,
    chaos: Mutex<Option<ChaosSchedule>>,
    /// Schedule slot consumed by the next batch attempt.
    attempt_slot: AtomicU64,
}

/// A serving engine for one kernel. Dropping the engine shuts the
/// batcher down; still-queued requests resolve as `Expired`.
pub struct Engine<K: BatchKernel> {
    shared: Arc<Shared<K>>,
    batcher: Option<std::thread::JoinHandle<()>>,
}

impl<K: BatchKernel> Engine<K> {
    /// Start an engine serving `kernel` under `config`, with chaos
    /// injection per `chaos` (`None` = faultless).
    pub fn new(kernel: K, config: ServeConfig, chaos: Option<ChaosSchedule>) -> Self {
        let shared = Arc::new(Shared {
            kernel: Arc::new(kernel),
            config,
            queue: Mutex::new(std::collections::VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: Mutex::new(EngineStats::default()),
            chaos: Mutex::new(chaos),
            attempt_slot: AtomicU64::new(0),
        });
        let b_shared = Arc::clone(&shared);
        let name = shared.kernel.name();
        let batcher = std::thread::Builder::new()
            .name(format!("serve-batch-{name}"))
            .spawn(move || batcher_loop(b_shared))
            .expect("spawn batcher thread");
        Self {
            shared,
            batcher: Some(batcher),
        }
    }

    /// The served kernel (for client-side response verification).
    pub fn kernel(&self) -> &K {
        &self.shared.kernel
    }

    /// The engine's configuration.
    pub fn config(&self) -> ServeConfig {
        self.shared.config
    }

    /// Submit one request. Never blocks: a full queue resolves the
    /// ticket immediately as `Rejected`.
    pub fn submit(&self, req: K::Req) -> Ticket<K::Resp> {
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let mut lock = lock_recover(&self.shared.queue);
        if self.shared.shutdown.load(Ordering::Acquire)
            || lock.len() >= self.shared.config.queue_capacity
        {
            drop(lock);
            lock_recover(&self.shared.stats).rejected += 1;
            let _ = tx.send(Response::Rejected);
            return Ticket { rx };
        }
        lock.push_back(Envelope {
            req,
            enqueued: now,
            deadline: now + self.shared.config.deadline,
            tx,
        });
        drop(lock);
        lock_recover(&self.shared.stats).submitted += 1;
        if ninja_probe::tracing_enabled() {
            ninja_probe::instant(&format!("serve:enqueue:{}", self.shared.kernel.name()));
        }
        self.shared.queue_cv.notify_one();
        Ticket { rx }
    }

    /// Replace the chaos schedule at runtime (`None` stops injection).
    /// Lets tests prove breaker recovery after faults cease.
    pub fn set_chaos(&self, chaos: Option<ChaosSchedule>) {
        *lock_recover(&self.shared.chaos) = chaos;
    }

    /// Snapshot the cumulative counters.
    pub fn stats(&self) -> EngineStats {
        lock_recover(&self.shared.stats).clone()
    }
}

impl<K: BatchKernel> Drop for Engine<K> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.queue_cv.notify_all();
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
    }
}

fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// --- Executor supervision ------------------------------------------------

struct Job<K: BatchKernel> {
    rung: Rung,
    reqs: Vec<K::Req>,
    fault: Option<FailureMode>,
    hang_sleep: Duration,
}

enum AttemptOutcome<R> {
    Completed(Vec<R>),
    Panicked(String),
    TimedOut,
}

/// Handle to the current executor thread generation. Replaced wholesale
/// when an attempt times out: the old thread keeps its (now orphaned)
/// channels and exits on its own once its bounded work finishes.
struct ExecutorHandle<K: BatchKernel> {
    kernel: Arc<K>,
    generation: u64,
    job_tx: Sender<Job<K>>,
    result_rx: Receiver<AttemptOutcome<K::Resp>>,
}

impl<K: BatchKernel> ExecutorHandle<K> {
    fn spawn(kernel: Arc<K>, generation: u64) -> Self {
        let (job_tx, job_rx) = mpsc::channel::<Job<K>>();
        let (result_tx, result_rx) = mpsc::channel();
        let exec_kernel = Arc::clone(&kernel);
        std::thread::Builder::new()
            .name(exec_thread_name(kernel.name(), generation))
            .spawn(move || executor_loop(exec_kernel, job_rx, result_tx))
            .expect("spawn executor thread");
        Self {
            kernel,
            generation,
            job_tx,
            result_rx,
        }
    }

    /// Run one attempt, waiting at most `budget`. On timeout the current
    /// executor is abandoned (tagged for the span validator so its
    /// unclosed spans are not misread as tracer bugs) and replaced.
    fn run_attempt(
        &mut self,
        rung: Rung,
        reqs: Vec<K::Req>,
        fault: Option<FailureMode>,
        hang_sleep: Duration,
        budget: Duration,
    ) -> AttemptOutcome<K::Resp> {
        if self
            .job_tx
            .send(Job {
                rung,
                reqs,
                fault,
                hang_sleep,
            })
            .is_err()
        {
            // Executor died unexpectedly; replace and report a timeout so
            // the batch retries.
            self.replace();
            return AttemptOutcome::TimedOut;
        }
        match self.result_rx.recv_timeout(budget) {
            Ok(outcome) => outcome,
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                ninja_probe::mark_thread_abandoned(&exec_thread_name(
                    self.kernel.name(),
                    self.generation,
                ));
                self.replace();
                AttemptOutcome::TimedOut
            }
        }
    }

    fn replace(&mut self) {
        *self = Self::spawn(Arc::clone(&self.kernel), self.generation + 1);
    }
}

fn exec_thread_name(kernel: &str, generation: u64) -> String {
    format!("serve-exec-{kernel}-{generation}")
}

fn executor_loop<K: BatchKernel>(
    kernel: Arc<K>,
    job_rx: Receiver<Job<K>>,
    result_tx: Sender<AttemptOutcome<K::Resp>>,
) {
    while let Ok(job) = job_rx.recv() {
        // An injected hang stalls before any work; the batcher's attempt
        // timeout fires first and abandons this thread. The stall is
        // bounded so the abandoned thread exits rather than leaking.
        if job.fault == Some(FailureMode::Hang) {
            std::thread::sleep(job.hang_sleep);
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _span = ninja_probe::tracing_enabled()
                .then(|| ninja_probe::span(&format!("serve:exec:{}:{}", kernel.name(), job.rung)));
            if job.fault == Some(FailureMode::Panic) {
                panic!("serve-chaos: injected panic at rung {}", job.rung);
            }
            kernel.run(job.rung, &job.reqs)
        }));
        let outcome = match result {
            Ok(mut out) => {
                match job.fault {
                    Some(FailureMode::NonFinite) | Some(FailureMode::WrongOutput) => {
                        // Corrupt one response — exactly the subtle fault
                        // validation must catch before delivery.
                        if let Some(mid) = out.len().checked_sub(1).map(|n| n / 2) {
                            kernel.corrupt(&mut out[mid], job.fault.unwrap());
                        }
                    }
                    _ => {}
                }
                AttemptOutcome::Completed(out)
            }
            Err(payload) => AttemptOutcome::Panicked(panic_message(payload.as_ref())),
        };
        if result_tx.send(outcome).is_err() {
            // Abandoned: the batcher gave up on this generation.
            return;
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

// --- Batcher -------------------------------------------------------------

struct Member<K: BatchKernel> {
    env: Envelope<K>,
    reference: K::Resp,
}

fn batcher_loop<K: BatchKernel>(shared: Arc<Shared<K>>) {
    let mut breakers = [
        Breaker::new(
            shared.config.breaker_threshold,
            shared.config.breaker_cooldown,
        ),
        Breaker::new(
            shared.config.breaker_threshold,
            shared.config.breaker_cooldown,
        ),
    ];
    let mut executor = ExecutorHandle::spawn(Arc::clone(&shared.kernel), 0);
    loop {
        let batch: Vec<Envelope<K>> = {
            let mut q = lock_recover(&shared.queue);
            while q.is_empty() {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(5))
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
            let take = q.len().min(shared.config.max_batch);
            q.drain(..take).collect()
        };
        process_batch(&shared, &mut breakers, &mut executor, batch);
        if shared.shutdown.load(Ordering::Acquire) {
            // Resolve anything still queued so no ticket dangles.
            let mut q = lock_recover(&shared.queue);
            let leftovers: Vec<_> = q.drain(..).collect();
            drop(q);
            let mut stats = lock_recover(&shared.stats);
            for env in leftovers {
                stats.expired += 1;
                let _ = env.tx.send(Response::Expired);
            }
            return;
        }
    }
}

/// Pick the best rung the breakers currently allow. Scalar is the
/// unconditional floor.
fn choose_rung(breakers: &mut [Breaker; 2], now: Instant) -> Rung {
    if breakers[0].allows(now) {
        Rung::Ninja
    } else if breakers[1].allows(now) {
        Rung::Simd
    } else {
        Rung::Scalar
    }
}

fn process_batch<K: BatchKernel>(
    shared: &Shared<K>,
    breakers: &mut [Breaker; 2],
    executor: &mut ExecutorHandle<K>,
    batch: Vec<Envelope<K>>,
) {
    let kernel = &shared.kernel;
    let cfg = &shared.config;
    let _batch_span = ninja_probe::tracing_enabled()
        .then(|| ninja_probe::span(&format!("serve:batch:{}", kernel.name())));
    let picked_up = Instant::now();

    // Trusted reference, computed once on this thread (never injected)
    // and reused across retries. This is what makes "zero incorrect
    // responses" enforceable: nothing resolves Ok without matching it.
    let reqs: Vec<K::Req> = batch.iter().map(|e| e.req.clone()).collect();
    let reference = kernel.run(Rung::Scalar, &reqs);
    let mut members: Vec<Member<K>> = batch
        .into_iter()
        .zip(reference)
        .map(|(env, reference)| Member { env, reference })
        .collect();

    let mut attempt_no: u32 = 0;
    loop {
        // Expire members whose deadline has passed.
        let now = Instant::now();
        let (expired, live): (Vec<_>, Vec<_>) =
            members.into_iter().partition(|m| now >= m.env.deadline);
        if !expired.is_empty() {
            let mut stats = lock_recover(&shared.stats);
            stats.expired += expired.len() as u64;
            drop(stats);
            for m in expired {
                let _ = m.env.tx.send(Response::Expired);
            }
        }
        members = live;
        if members.is_empty() {
            return;
        }

        let rung = choose_rung(breakers, now);
        // ORDERING: fault-schedule slot allocator; atomicity gives each
        // attempt a distinct slot and no other state hangs off it.
        let slot = shared.attempt_slot.fetch_add(1, Ordering::Relaxed);
        let fault = lock_recover(&shared.chaos).and_then(|s| s.fault_at(slot));
        let last_deadline = members
            .iter()
            .map(|m| m.env.deadline)
            .max()
            .expect("members nonempty");
        let budget = last_deadline.saturating_duration_since(now) + cfg.attempt_grace;
        let attempt_reqs: Vec<K::Req> = members.iter().map(|m| m.env.req.clone()).collect();

        lock_recover(&shared.stats).attempts += 1;
        let outcome = executor.run_attempt(rung, attempt_reqs, fault, cfg.hang_sleep, budget);

        let failure = match outcome {
            AttemptOutcome::Completed(out)
                if out.len() == members.len()
                    && out
                        .iter()
                        .zip(members.iter())
                        .all(|(got, m)| kernel.matches(got, &m.reference)) =>
            {
                // Validated: resolve every live member.
                let resolved = Instant::now();
                let mut stats = lock_recover(&shared.stats);
                stats.ok_by_rung[rung.index()] += members.len() as u64;
                if rung != Rung::Scalar && breakers[rung.index()].record_success() {
                    stats.recoveries += 1;
                }
                drop(stats);
                for (m, value) in members.into_iter().zip(out) {
                    let queue_us = picked_up.duration_since(m.env.enqueued).as_micros() as u64;
                    let total_us = resolved.duration_since(m.env.enqueued).as_micros() as u64;
                    let _ = m.env.tx.send(Response::Ok {
                        value,
                        rung,
                        queue_us,
                        total_us,
                    });
                }
                return;
            }
            AttemptOutcome::Completed(_) => {
                lock_recover(&shared.stats).validation_failures += 1;
                "validation"
            }
            AttemptOutcome::Panicked(message) => {
                let mut stats = lock_recover(&shared.stats);
                stats.panics += 1;
                stats.last_panic = Some(message);
                "panic"
            }
            AttemptOutcome::TimedOut => {
                lock_recover(&shared.stats).timeouts += 1;
                "timeout"
            }
        };
        if ninja_probe::tracing_enabled() {
            ninja_probe::instant(&format!(
                "serve:fault:{}:{}:{}",
                kernel.name(),
                rung,
                failure
            ));
        }
        if rung != Rung::Scalar && breakers[rung.index()].record_failure(Instant::now()) {
            lock_recover(&shared.stats).trips += 1;
        }

        // Capped exponential backoff, clipped to the remaining deadline
        // budget so a retry never pushes resolution past
        // deadline + grace + one backoff.
        let backoff = cfg
            .backoff_base
            .saturating_mul(1u32 << attempt_no.min(10))
            .min(cfg.backoff_cap);
        let remaining = last_deadline.saturating_duration_since(Instant::now());
        std::thread::sleep(backoff.min(remaining));
        attempt_no += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal kernel: response = request + 1000 at every rung.
    struct AddK;

    impl BatchKernel for AddK {
        type Req = u32;
        type Resp = u32;

        fn name(&self) -> &'static str {
            "addk"
        }

        fn run(&self, _rung: Rung, reqs: &[u32]) -> Vec<u32> {
            reqs.iter().map(|r| r + 1000).collect()
        }

        fn matches(&self, got: &u32, reference: &u32) -> bool {
            got == reference
        }

        fn corrupt(&self, resp: &mut u32, _mode: FailureMode) {
            *resp = resp.wrapping_add(7);
        }
    }

    fn wait_budget(cfg: &ServeConfig) -> Duration {
        cfg.deadline + cfg.attempt_grace + cfg.backoff_cap + Duration::from_millis(500)
    }

    #[test]
    fn faultless_requests_serve_ok_on_ninja() {
        let engine = Engine::new(AddK, ServeConfig::default(), None);
        let tickets: Vec<_> = (0..100u32).map(|i| (i, engine.submit(i))).collect();
        let budget = wait_budget(&engine.config());
        for (i, t) in tickets {
            match t.wait(budget) {
                Some(Response::Ok { value, rung, .. }) => {
                    assert_eq!(value, i + 1000);
                    assert_eq!(rung, Rung::Ninja);
                }
                other => panic!("request {i}: unexpected {other:?}"),
            }
        }
        let stats = engine.stats();
        assert_eq!(stats.ok(), 100);
        assert_eq!(stats.rejected + stats.expired, 0);
        assert_eq!(stats.trips, 0);
    }

    #[test]
    fn zero_capacity_sheds_everything() {
        let cfg = ServeConfig {
            queue_capacity: 0,
            ..ServeConfig::default()
        };
        let engine = Engine::new(AddK, cfg, None);
        for i in 0..10 {
            let t = engine.submit(i);
            assert_eq!(t.wait(Duration::from_secs(1)), Some(Response::Rejected));
        }
        assert_eq!(engine.stats().rejected, 10);
    }

    #[test]
    fn full_fault_rate_degrades_but_never_lies() {
        // Every attempt faults: panics, hangs, NaNs, and wrong outputs in
        // the deterministic schedule mix. Scalar retries eventually win
        // inside the deadline or the request expires — but no wrong value
        // is ever delivered.
        let cfg = ServeConfig {
            deadline: Duration::from_millis(120),
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_millis(60),
            attempt_grace: Duration::from_millis(30),
            hang_sleep: Duration::from_millis(400),
            ..ServeConfig::default()
        };
        let engine = Engine::new(AddK, cfg, Some(ChaosSchedule::new(11, 1.0)));
        let tickets: Vec<_> = (0..40u32).map(|i| (i, engine.submit(i))).collect();
        let budget = wait_budget(&cfg);
        let mut ok = 0;
        for (i, t) in tickets {
            match t.wait(budget) {
                Some(Response::Ok { value, .. }) => {
                    assert_eq!(value, i + 1000, "wrong value delivered");
                    ok += 1;
                }
                Some(Response::Expired) | Some(Response::Rejected) => {}
                None => panic!("request {i} never resolved within budget"),
            }
        }
        let stats = engine.stats();
        // Wrong/NaN faults were caught by validation, never delivered.
        assert!(stats.validation_failures > 0 || stats.panics > 0 || stats.timeouts > 0);
        // At 100% fault rate nothing can validate; ok must be 0 and every
        // failure accounted as expired.
        assert_eq!(ok, 0);
        assert_eq!(stats.expired, 40);
    }

    #[test]
    fn chaos_off_switch_restores_clean_service() {
        let cfg = ServeConfig {
            deadline: Duration::from_millis(100),
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_millis(20),
            hang_sleep: Duration::from_millis(300),
            ..ServeConfig::default()
        };
        let engine = Engine::new(AddK, cfg, Some(ChaosSchedule::new(5, 1.0)));
        let t = engine.submit(1);
        let _ = t.wait(wait_budget(&cfg));
        engine.set_chaos(None);
        std::thread::sleep(cfg.breaker_cooldown + Duration::from_millis(5));
        let t = engine.submit(2);
        match t.wait(wait_budget(&cfg)) {
            Some(Response::Ok { value, .. }) => assert_eq!(value, 1002),
            other => panic!("post-chaos request failed: {other:?}"),
        }
    }

    #[test]
    fn shutdown_resolves_queued_tickets() {
        // A kernel slow enough that the queue still holds requests when
        // the engine drops.
        struct SlowK;
        impl BatchKernel for SlowK {
            type Req = u32;
            type Resp = u32;
            fn name(&self) -> &'static str {
                "slowk"
            }
            fn run(&self, _rung: Rung, reqs: &[u32]) -> Vec<u32> {
                std::thread::sleep(Duration::from_millis(20));
                reqs.to_vec()
            }
            fn matches(&self, got: &u32, reference: &u32) -> bool {
                got == reference
            }
            fn corrupt(&self, _resp: &mut u32, _mode: FailureMode) {}
        }
        let cfg = ServeConfig {
            max_batch: 1,
            ..ServeConfig::default()
        };
        let engine = Engine::new(SlowK, cfg, None);
        let tickets: Vec<_> = (0..20u32).map(|i| engine.submit(i)).collect();
        drop(engine);
        for t in tickets {
            assert!(
                t.wait(Duration::from_secs(2)).is_some(),
                "ticket dangled across shutdown"
            );
        }
    }
}
