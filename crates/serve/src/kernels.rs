//! [`BatchKernel`] implementations for the three served kernels.
//!
//! Each adapter coalesces the engine's AoS request batch into the SoA
//! layout its rung needs and calls the kernel crate's serving surface:
//! the scalar rung is the trusted `f64` math, the SIMD rung the
//! restructured `f32` polynomial math, and the ninja rung the explicit
//! 4-wide SIMD math parallelized over the shared thread pool.

use std::sync::Arc;

use ninja_kernels::black_scholes::{
    price_batch_poly, price_batch_simd, price_contract, OptionContract,
};
use ninja_kernels::chaos::FailureMode;
use ninja_kernels::libor::{
    default_init_rates, default_vols, price_path_f64, price_path_poly, price_paths4, NMAT, N_RATES,
};
use ninja_kernels::tree_search::TreeSearch;
use ninja_kernels::ProblemSize;
use ninja_parallel::{par_chunks_mut, ThreadPool};

use crate::{BatchKernel, Rung};

/// Options per parallel chunk on the ninja rung.
const NINJA_CHUNK: usize = 16;

fn rel_close(got: f32, reference: f32, tol: f32) -> bool {
    // NaN/inf fail every comparison here, so corrupted values can never
    // validate.
    got.is_finite() && (got - reference).abs() / reference.abs().max(1.0) <= tol
}

// --- BlackScholes --------------------------------------------------------

/// Serves Black-Scholes pricing: request = one [`OptionContract`],
/// response = `(call, put)`.
pub struct BlackScholesServe {
    pool: Arc<ThreadPool>,
}

impl BlackScholesServe {
    /// Relative tolerance vs the scalar reference (the measurement
    /// suite's Black-Scholes tolerance).
    pub const TOLERANCE: f32 = 5e-3;

    /// New adapter executing ninja-rung batches on `pool`.
    pub fn new(pool: Arc<ThreadPool>) -> Self {
        Self { pool }
    }

    /// AoS → padded SoA (multiple of 4, benign pad values).
    fn soa(reqs: &[OptionContract]) -> [Vec<f32>; 5] {
        let padded = reqs.len().div_ceil(4) * 4;
        let mut spot = vec![1.0f32; padded];
        let mut strike = vec![1.0f32; padded];
        let mut years = vec![1.0f32; padded];
        let mut rate = vec![0.0f32; padded];
        let mut vol = vec![0.5f32; padded];
        for (i, c) in reqs.iter().enumerate() {
            spot[i] = c.spot;
            strike[i] = c.strike;
            years[i] = c.years;
            rate[i] = c.rate;
            vol[i] = c.vol;
        }
        [spot, strike, years, rate, vol]
    }

    fn deinterleave(pairs: &[f32], n: usize) -> Vec<(f32, f32)> {
        (0..n).map(|i| (pairs[2 * i], pairs[2 * i + 1])).collect()
    }
}

impl BatchKernel for BlackScholesServe {
    type Req = OptionContract;
    type Resp = (f32, f32);

    fn name(&self) -> &'static str {
        "blackscholes"
    }

    fn run(&self, rung: Rung, reqs: &[OptionContract]) -> Vec<(f32, f32)> {
        match rung {
            Rung::Scalar => reqs.iter().map(price_contract).collect(),
            Rung::Simd => {
                let [spot, strike, years, rate, vol] = Self::soa(reqs);
                let mut out = vec![0.0f32; 2 * spot.len()];
                price_batch_poly(&spot, &strike, &years, &rate, &vol, &mut out);
                Self::deinterleave(&out, reqs.len())
            }
            Rung::Ninja => {
                let [spot, strike, years, rate, vol] = Self::soa(reqs);
                let mut out = vec![0.0f32; 2 * spot.len()];
                par_chunks_mut(&self.pool, &mut out, 2 * NINJA_CHUNK, |ci, chunk| {
                    let lo = ci * NINJA_CHUNK;
                    let len = chunk.len() / 2;
                    price_batch_simd(
                        &spot[lo..lo + len],
                        &strike[lo..lo + len],
                        &years[lo..lo + len],
                        &rate[lo..lo + len],
                        &vol[lo..lo + len],
                        chunk,
                    );
                });
                Self::deinterleave(&out, reqs.len())
            }
        }
    }

    fn matches(&self, got: &(f32, f32), reference: &(f32, f32)) -> bool {
        rel_close(got.0, reference.0, Self::TOLERANCE)
            && rel_close(got.1, reference.1, Self::TOLERANCE)
    }

    fn corrupt(&self, resp: &mut (f32, f32), mode: FailureMode) {
        match mode {
            FailureMode::NonFinite => resp.0 = f32::NAN,
            // ~3% relative plus a small absolute bump, so the corruption
            // clears the tolerance even on near-zero prices.
            _ => resp.0 = resp.0 * 1.03 + 0.05,
        }
    }
}

// --- TreeSearch ----------------------------------------------------------

/// Serves lower-bound queries against a server-resident search tree:
/// request = one `f32` query, response = the exact rank.
pub struct TreeSearchServe {
    tree: TreeSearch,
    pool: Arc<ThreadPool>,
}

impl TreeSearchServe {
    /// New adapter over a deterministically generated tree.
    pub fn new(size: ProblemSize, seed: u64, pool: Arc<ThreadPool>) -> Self {
        Self {
            tree: TreeSearch::generate(size, seed),
            pool,
        }
    }

    /// The resident tree (for generating in-range test queries).
    pub fn tree(&self) -> &TreeSearch {
        &self.tree
    }
}

impl BatchKernel for TreeSearchServe {
    type Req = f32;
    type Resp = u32;

    fn name(&self) -> &'static str {
        "treesearch"
    }

    fn run(&self, rung: Rung, reqs: &[f32]) -> Vec<u32> {
        match rung {
            Rung::Scalar => reqs.iter().map(|&q| self.tree.lower_bound_bst(q)).collect(),
            Rung::Simd => reqs
                .iter()
                .map(|&q| self.tree.lower_bound_linearized(q))
                .collect(),
            Rung::Ninja => {
                let mut out = vec![0u32; reqs.len()];
                par_chunks_mut(&self.pool, &mut out, NINJA_CHUNK, |ci, chunk| {
                    let base = ci * NINJA_CHUNK;
                    let groups = chunk.len() / 4;
                    for g in 0..groups {
                        let i = base + 4 * g;
                        let res = self.tree.lower_bound4([
                            reqs[i],
                            reqs[i + 1],
                            reqs[i + 2],
                            reqs[i + 3],
                        ]);
                        chunk[4 * g..4 * g + 4].copy_from_slice(&res);
                    }
                    for j in groups * 4..chunk.len() {
                        chunk[j] = self.tree.lower_bound_linearized(reqs[base + j]);
                    }
                });
                out
            }
        }
    }

    fn matches(&self, got: &u32, reference: &u32) -> bool {
        got == reference
    }

    fn corrupt(&self, resp: &mut u32, mode: FailureMode) {
        match mode {
            FailureMode::NonFinite => *resp = u32::MAX,
            // Off-by-one rank: the subtlest integer corruption.
            _ => *resp = resp.wrapping_add(1),
        }
    }
}

// --- Libor ---------------------------------------------------------------

/// Serves LIBOR path pricing against a server-resident curve: request =
/// one path's `NMAT` standard-normal draws, response = the path value.
pub struct LiborServe {
    init_rates: [f32; N_RATES],
    vols: [f32; NMAT],
    pool: Arc<ThreadPool>,
}

impl LiborServe {
    /// Relative tolerance vs the scalar reference (the measurement
    /// suite's Libor tolerance).
    pub const TOLERANCE: f32 = 1e-2;

    /// New adapter over the default deterministic curve.
    pub fn new(pool: Arc<ThreadPool>) -> Self {
        Self {
            init_rates: default_init_rates(),
            vols: default_vols(),
            pool,
        }
    }
}

impl BatchKernel for LiborServe {
    type Req = [f32; NMAT];
    type Resp = f32;

    fn name(&self) -> &'static str {
        "libor"
    }

    fn run(&self, rung: Rung, reqs: &[[f32; NMAT]]) -> Vec<f32> {
        match rung {
            Rung::Scalar => reqs
                .iter()
                .map(|z| price_path_f64(&self.init_rates, &self.vols, z))
                .collect(),
            Rung::Simd => reqs
                .iter()
                .map(|z| price_path_poly(&self.init_rates, &self.vols, z))
                .collect(),
            Rung::Ninja => {
                let mut out = vec![0.0f32; reqs.len()];
                par_chunks_mut(&self.pool, &mut out, 4, |g, chunk| {
                    let base = 4 * g;
                    if chunk.len() == 4 {
                        // Transpose four paths' draws into lane-major order.
                        let mut zs = [0.0f32; 4 * NMAT];
                        for lane in 0..4 {
                            for n in 0..NMAT {
                                zs[4 * n + lane] = reqs[base + lane][n];
                            }
                        }
                        let vals = price_paths4(&self.init_rates, &self.vols, &zs);
                        chunk.copy_from_slice(&vals);
                    } else {
                        // Remainder lanes: restructured scalar math.
                        for (j, o) in chunk.iter_mut().enumerate() {
                            *o = price_path_poly(&self.init_rates, &self.vols, &reqs[base + j]);
                        }
                    }
                });
                out
            }
        }
    }

    fn matches(&self, got: &f32, reference: &f32) -> bool {
        rel_close(*got, *reference, Self::TOLERANCE)
    }

    fn corrupt(&self, resp: &mut f32, mode: FailureMode) {
        match mode {
            FailureMode::NonFinite => *resp = f32::NAN,
            // ~5% relative plus a small absolute bump, so the corruption
            // clears the tolerance even on near-zero path values.
            _ => *resp = *resp * 1.05 + 0.05,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Arc<ThreadPool> {
        Arc::new(ThreadPool::with_threads(2))
    }

    #[test]
    fn blackscholes_rungs_agree_with_scalar() {
        let k = BlackScholesServe::new(pool());
        let reqs: Vec<OptionContract> = (0..37)
            .map(|i| OptionContract {
                spot: 40.0 + i as f32,
                strike: 50.0,
                years: 1.0 + (i % 3) as f32 * 0.5,
                rate: 0.03,
                vol: 0.2 + (i % 5) as f32 * 0.05,
            })
            .collect();
        let reference = k.run(Rung::Scalar, &reqs);
        for rung in [Rung::Simd, Rung::Ninja] {
            let got = k.run(rung, &reqs);
            assert_eq!(got.len(), reqs.len());
            for (g, r) in got.iter().zip(reference.iter()) {
                assert!(k.matches(g, r), "{rung}: {g:?} vs {r:?}");
            }
        }
    }

    #[test]
    fn treesearch_rungs_agree_and_corruption_is_caught() {
        let k = TreeSearchServe::new(ProblemSize::Test, 3, pool());
        let reqs: Vec<f32> = (0..41).map(|i| 1.0 + 17.3 * i as f32).collect();
        let reference = k.run(Rung::Scalar, &reqs);
        for rung in [Rung::Simd, Rung::Ninja] {
            assert_eq!(k.run(rung, &reqs), reference, "{rung}");
        }
        let mut bad = reference[0];
        k.corrupt(&mut bad, FailureMode::WrongOutput);
        assert!(!k.matches(&bad, &reference[0]));
    }

    #[test]
    fn libor_rungs_agree_and_corruption_is_caught() {
        let k = LiborServe::new(pool());
        // Small deterministic pseudo-normal draws.
        let reqs: Vec<[f32; NMAT]> = (0..11)
            .map(|p| std::array::from_fn(|n| (((p * NMAT + n) % 13) as f32 - 6.0) / 4.0))
            .collect();
        let reference = k.run(Rung::Scalar, &reqs);
        for rung in [Rung::Simd, Rung::Ninja] {
            let got = k.run(rung, &reqs);
            for (g, r) in got.iter().zip(reference.iter()) {
                assert!(k.matches(g, r), "{rung}: {g} vs {r}");
            }
        }
        let mut bad = reference[0];
        k.corrupt(&mut bad, FailureMode::NonFinite);
        assert!(!k.matches(&bad, &reference[0]));
        let mut wrong = reference[0];
        k.corrupt(&mut wrong, FailureMode::WrongOutput);
        assert!(!k.matches(&wrong, &reference[0]));
    }
}
