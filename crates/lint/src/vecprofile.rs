//! Maps assembly evidence (see [`crate::asm`]) back to kernel rungs and
//! turns it into per-rung vectorization profiles plus the NL008/NL009
//! findings.
//!
//! Attribution works symbol-first: a listing function is a *root* for a
//! rung when its demangled path names both the kernel module (the source
//! file stem) and a function that carries a `variant(...)`/`effort(...)`
//! marker for that rung. Trait-impl symbols demangle to compound
//! segments like `<ninja_kernels::conv1d::Conv1d as ...>` followed by a
//! plain `run_naive` segment, and same-function closures keep the
//! function name as a segment, so both match without special cases.
//! Because rung entry points often delegate all floating-point work to
//! closures spawned through the parallel runtime, evidence is collected
//! *transitively*: a breadth-first walk over the mangled symbols
//! referenced by each root's body pulls in the helpers that survived
//! inlining.
//!
//! The one false-negative mode worth knowing: a function inlined away
//! completely leaves no symbol, so a rung may legitimately report
//! `matched_symbols == 0`. NL008 therefore *skips* such rungs instead of
//! guessing (DESIGN.md "Vectorization evidence" discusses this).

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::process::Command;

use serde::Serialize;

use crate::asm::{AsmListing, InsnCounts};
use crate::markers::Rung;
use crate::rules::{Finding, RuleId};
use crate::source::SourceFile;
use crate::LintError;

/// Minimum packed-FP count before NL009 reports a naive rung as
/// auto-vectorized; the odd stray packed move-adjacent op in prologue
/// code should not count as "the compiler bridged the gap".
const NL009_MIN_VECTOR_FP_OPS: u32 = 4;

/// Vectorization evidence for one (kernel, rung) cell, extracted from
/// compiler output.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct VecProfile {
    /// Kernel name (source file stem, e.g. `black_scholes`).
    pub kernel: String,
    /// Rung name (`naive`/`parallel`/`simd`/`algorithmic`/`ninja`).
    pub rung: String,
    /// Widest vector register on classified arithmetic, in bits; zero
    /// means scalar-only evidence.
    pub width_bits: u32,
    /// Whether fused multiply-add instructions were emitted.
    pub fma: bool,
    /// Whether gather loads were emitted.
    pub gather: bool,
    /// Whether scatter stores were emitted.
    pub scatter: bool,
    /// Packed floating-point arithmetic count.
    pub vector_fp_ops: u32,
    /// Scalar floating-point arithmetic count.
    pub scalar_fp_ops: u32,
    /// Integer vector arithmetic count.
    pub vector_int_ops: u32,
    /// Number of listing symbols that matched this rung directly
    /// (before the transitive walk). Zero = everything inlined away.
    pub matched_symbols: u32,
    /// Human classification: `no-evidence`, `scalar`, `vec64`,
    /// `vec128`, `vec256` or `vec512`.
    pub classification: String,
}

impl VecProfile {
    fn from_counts(kernel: &str, rung: Rung, counts: InsnCounts, matched: u32) -> Self {
        let classification = if matched == 0 {
            "no-evidence"
        } else if !counts.any_vector_ops() {
            "scalar"
        } else {
            match counts.max_vector_bits {
                512 => "vec512",
                256 => "vec256",
                128 => "vec128",
                64 => "vec64",
                _ => "scalar",
            }
        };
        VecProfile {
            kernel: kernel.to_string(),
            rung: rung.name().to_string(),
            width_bits: counts.max_vector_bits,
            fma: counts.fma,
            gather: counts.gather,
            scatter: counts.scatter,
            vector_fp_ops: counts.vector_fp_ops,
            scalar_fp_ops: counts.scalar_fp_ops,
            vector_int_ops: counts.vector_int_ops,
            matched_symbols: matched,
            classification: classification.to_string(),
        }
    }
}

/// The result of an `--asm` audit: the lint report (NL008/NL009
/// findings) plus every per-rung profile that produced evidence.
#[derive(Clone, Debug)]
pub struct AsmAudit {
    /// Findings wrapped in the standard report (drives `--deny-warnings`
    /// and `--json` exactly like the source-token rules).
    pub report: crate::LintReport,
    /// Per-(kernel, rung) vectorization profiles, sorted.
    pub profiles: Vec<VecProfile>,
}

/// Options for [`asm_audit`].
#[derive(Clone, Debug, Default)]
pub struct AsmOptions {
    /// `-C target-cpu=<level>` to compile with (e.g. `x86-64-v3`);
    /// `None` uses the toolchain default.
    pub target_cpu: Option<String>,
    /// Pre-emitted `.s` listings to audit instead of driving cargo —
    /// used by tests and by CI stages that already built.
    pub asm_files: Vec<PathBuf>,
}

fn kernel_name(rel_path: &str) -> String {
    Path::new(rel_path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| rel_path.to_string())
}

/// Whether a demangled path places the symbol inside `module` — either a
/// plain segment equal to the module name or a compound (trait-impl)
/// segment containing `module::`.
fn path_names_module(path: &[String], module: &str) -> bool {
    let scoped = format!("{module}::");
    path.iter()
        .any(|seg| seg == module || seg.contains(&scoped))
}

/// Per-rung function names that carry markers in one source file.
fn rung_fn_names(file: &SourceFile) -> BTreeMap<Rung, Vec<&str>> {
    let mut map: BTreeMap<Rung, Vec<&str>> = BTreeMap::new();
    for span in &file.segmented.spans {
        for rung in span.rungs() {
            map.entry(rung).or_default().push(span.name.as_str());
        }
    }
    map
}

/// Computes the vectorization profile of every marked rung in `files`
/// against the functions of `listings`. Files without markers and rungs
/// with no surviving symbols still produce a profile (classification
/// `no-evidence`) so the report shows what could not be proven.
pub fn profile_rungs(files: &[SourceFile], listings: &[AsmListing]) -> Vec<VecProfile> {
    // Index every listing function by mangled symbol for the BFS.
    let mut by_symbol: HashMap<&str, (usize, usize)> = HashMap::new();
    for (li, listing) in listings.iter().enumerate() {
        for (fi, f) in listing.functions.iter().enumerate() {
            by_symbol.insert(f.symbol.as_str(), (li, fi));
        }
    }

    let mut profiles = Vec::new();
    for file in files {
        if !file.is_kernel_file() || file.segmented.skip_file.is_some() {
            continue;
        }
        let module = kernel_name(&file.rel_path);
        for (rung, fn_names) in rung_fn_names(file) {
            let mut counts = InsnCounts::default();
            let mut matched = 0u32;
            let mut visited: BTreeSet<&str> = BTreeSet::new();
            let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
            for listing in listings {
                for f in &listing.functions {
                    let is_root = path_names_module(&f.path, &module)
                        && f.path.iter().any(|seg| fn_names.iter().any(|n| seg == n));
                    if is_root && visited.insert(f.symbol.as_str()) {
                        matched += 1;
                        queue.push_back(by_symbol[f.symbol.as_str()]);
                    }
                }
            }
            while let Some((li, fi)) = queue.pop_front() {
                let f = &listings[li].functions[fi];
                counts.merge(&f.counts);
                for callee in &f.callees {
                    if let Some(&loc) = by_symbol.get(callee.as_str()) {
                        if visited.insert(listings[loc.0].functions[loc.1].symbol.as_str()) {
                            queue.push_back(loc);
                        }
                    }
                }
            }
            profiles.push(VecProfile::from_counts(&module, rung, counts, matched));
        }
    }
    profiles.sort_by(|a, b| (&a.kernel, &a.rung).cmp(&(&b.kernel, &b.rung)));
    profiles
}

/// Runs the asm-evidence rules over `files` + `listings`: NL008
/// (simd/ninja rung with zero vector arithmetic) and NL009 (naive rung
/// the compiler auto-vectorized; info severity). Returns the profiles
/// alongside the findings so callers render both.
pub fn check_asm(files: &[SourceFile], listings: &[AsmListing]) -> (Vec<VecProfile>, Vec<Finding>) {
    let profiles = profile_rungs(files, listings);
    let by_cell: HashMap<(&str, &str), &VecProfile> = profiles
        .iter()
        .map(|p| ((p.kernel.as_str(), p.rung.as_str()), p))
        .collect();

    let mut findings = Vec::new();
    for file in files {
        if !file.is_kernel_file() || file.segmented.skip_file.is_some() {
            continue;
        }
        let module = kernel_name(&file.rel_path);
        for span in &file.segmented.spans {
            for rung in &span.entry_rungs {
                let Some(profile) = by_cell.get(&(module.as_str(), rung.name())) else {
                    continue;
                };
                match rung {
                    Rung::Simd | Rung::Ninja => {
                        // A rung whose symbols were all inlined away is a
                        // documented false-negative mode, not a finding.
                        if profile.matched_symbols == 0
                            || profile.vector_fp_ops > 0
                            || profile.vector_int_ops > 0
                        {
                            continue;
                        }
                        if span.allowed("NL008").is_some() {
                            continue;
                        }
                        // A ninja rung already waived for having no SIMD
                        // in source (NL003) cannot be expected to emit it.
                        if *rung == Rung::Ninja && span.allowed("NL003").is_some() {
                            continue;
                        }
                        findings.push(Finding {
                            rule: RuleId::NinjaRungNotVectorized,
                            file: file.rel_path.clone(),
                            line: span.sig_line,
                            message: format!(
                                "{} rung of `{}` emits no vector arithmetic: {} scalar FP op(s) \
                                 across {} matched symbol(s) — the compiled code does not back \
                                 the rung's claim",
                                rung.name(),
                                module,
                                profile.scalar_fp_ops,
                                profile.matched_symbols
                            ),
                        });
                    }
                    Rung::Naive => {
                        if profile.matched_symbols == 0
                            || profile.vector_fp_ops < NL009_MIN_VECTOR_FP_OPS
                            || span.allowed("NL009").is_some()
                        {
                            continue;
                        }
                        findings.push(Finding {
                            rule: RuleId::ScalarRungAutovectorized,
                            file: file.rel_path.clone(),
                            line: span.sig_line,
                            message: format!(
                                "naive rung of `{}` was auto-vectorized by the compiler \
                                 ({} packed FP op(s), width {}-bit{}) — the paper's thesis, \
                                 caught in the act",
                                module,
                                profile.vector_fp_ops,
                                profile.width_bits,
                                if profile.fma { ", fma" } else { "" }
                            ),
                        });
                    }
                    Rung::Parallel | Rung::Algorithmic => {}
                }
            }
        }
    }
    findings.sort_by_key(|f| (f.file.clone(), f.line, f.rule.id()));
    (profiles, findings)
}

/// Renders profiles as stable, grep-friendly lines (one per cell):
/// `vecprofile <kernel>/<rung>: <classification> fma=<y|n> ...`.
pub fn render_profiles(profiles: &[VecProfile]) -> String {
    let mut out = String::new();
    for p in profiles {
        out.push_str(&format!(
            "vecprofile {}/{}: {} width={} fma={} gather={} scatter={} vfp={} sfp={} vint={} symbols={}\n",
            p.kernel,
            p.rung,
            p.classification,
            p.width_bits,
            yn(p.fma),
            yn(p.gather),
            yn(p.scatter),
            p.vector_fp_ops,
            p.scalar_fp_ops,
            p.vector_int_ops,
            p.matched_symbols
        ));
    }
    out
}

fn yn(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

/// Drives the full `--asm` audit: obtain listings (from
/// `opts.asm_files`, or by compiling `crates/kernels` with
/// `--emit asm`), lint the kernel sources against them, and wrap the
/// result in a [`crate::LintReport`] with profiles attached.
pub fn asm_audit(root: &Path, opts: &AsmOptions) -> Result<AsmAudit, LintError> {
    let listings = if opts.asm_files.is_empty() {
        vec![emit_kernel_asm(root, opts.target_cpu.as_deref())?]
    } else {
        let mut v = Vec::new();
        for path in &opts.asm_files {
            let text = std::fs::read_to_string(path)
                .map_err(|e| LintError(format!("cannot read asm file {}: {e}", path.display())))?;
            v.push(crate::asm::parse_listing(&text));
        }
        v
    };

    let src_dir = root.join("crates").join("kernels").join("src");
    let mut paths = Vec::new();
    crate::collect_rs_files(&src_dir, &mut paths)?;
    paths.sort();
    let mut files = Vec::new();
    for path in &paths {
        let src = std::fs::read_to_string(path)
            .map_err(|e| LintError(format!("cannot read {}: {e}", path.display())))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .into_owned();
        files.push(SourceFile::from_source(rel, src));
    }

    let (profiles, findings) = check_asm(&files, &listings);
    let report = crate::LintReport::new(root.to_string_lossy().into_owned(), files.len(), findings);
    Ok(AsmAudit { report, profiles })
}

/// Compiles `crates/kernels` to assembly at the requested
/// `-C target-cpu` level and parses the newest emitted listing.
///
/// The workspace release profile sets `lto = "thin"`, which makes cargo
/// pass `-C linker-plugin-lto` to rlib builds; `--emit asm` would then
/// capture pre-link-LTO IR where the loop vectorizer has not run yet.
/// Appending `-C linker-plugin-lto=no` (last flag wins) restores the
/// normal per-crate codegen pipeline so the listing shows what actually
/// ships in non-LTO terms.
fn emit_kernel_asm(root: &Path, target_cpu: Option<&str>) -> Result<AsmListing, LintError> {
    let tag = target_cpu.unwrap_or("default");
    let target_dir = root.join("target").join("asm-audit").join(tag);
    let mut cmd = Command::new("cargo");
    cmd.current_dir(root)
        .env("CARGO_TARGET_DIR", &target_dir)
        .args([
            "rustc",
            "--release",
            "-p",
            "ninja-kernels",
            "--lib",
            "--",
            "--emit=asm",
            "-Clinker-plugin-lto=no",
        ]);
    if let Some(level) = target_cpu {
        cmd.arg(format!("-Ctarget-cpu={level}"));
    }
    let out = cmd
        .output()
        .map_err(|e| LintError(format!("failed to spawn cargo rustc: {e}")))?;
    if !out.status.success() {
        return Err(LintError(format!(
            "cargo rustc --emit=asm failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        )));
    }
    let deps = target_dir.join("release").join("deps");
    let mut newest: Option<(std::time::SystemTime, PathBuf)> = None;
    let entries = std::fs::read_dir(&deps)
        .map_err(|e| LintError(format!("cannot read {}: {e}", deps.display())))?;
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("ninja_kernels") && name.ends_with(".s") {
            let mtime = entry
                .metadata()
                .and_then(|m| m.modified())
                .unwrap_or(std::time::UNIX_EPOCH);
            if newest.as_ref().is_none_or(|(t, _)| mtime > *t) {
                newest = Some((mtime, path));
            }
        }
    }
    let (_, path) = newest
        .ok_or_else(|| LintError(format!("no ninja_kernels-*.s under {}", deps.display())))?;
    let text = std::fs::read_to_string(&path)
        .map_err(|e| LintError(format!("cannot read {}: {e}", path.display())))?;
    Ok(crate::asm::parse_listing(&text))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::parse_listing;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::from_source(rel.to_string(), src.to_string())
    }

    const DEMO_SRC: &str = "\
// ninja-lint: variant(naive)
pub fn run_naive(x: &mut [f32]) { helper(x) }

// ninja-lint: variant(simd)
pub fn run_simd(x: &mut [f32]) { helper(x) }
";

    #[test]
    fn profiles_attribute_evidence_transitively_and_per_rung() {
        // run_naive is scalar; run_simd calls a surviving helper that
        // carries the packed ops.
        let asm = "\
_ZN4demo9run_naive17h0000000000000000E:
\tmulss\t%xmm1, %xmm0
\tretq
_ZN4demo8run_simd17h1111111111111111E:
\tcallq\t_ZN4demo6helper17h2222222222222222E
\tretq
_ZN4demo6helper17h2222222222222222E:
\tvmulps\t%ymm1, %ymm2, %ymm0
\tvfmadd231ps\t%ymm1, %ymm2, %ymm0
\tretq
";
        let files = [file("demo.rs", DEMO_SRC)];
        let listings = [parse_listing(asm)];
        let profiles = profile_rungs(&files, &listings);
        assert_eq!(profiles.len(), 2);
        let naive = profiles.iter().find(|p| p.rung == "naive").unwrap();
        assert_eq!(naive.classification, "scalar");
        assert_eq!(naive.scalar_fp_ops, 1);
        assert_eq!(naive.matched_symbols, 1);
        let simd = profiles.iter().find(|p| p.rung == "simd").unwrap();
        assert_eq!(simd.classification, "vec256");
        assert_eq!(simd.vector_fp_ops, 2);
        assert!(simd.fma);
        // helper was pulled in by the walk, not matched directly.
        assert_eq!(simd.matched_symbols, 1);
    }

    #[test]
    fn inlined_away_rungs_report_no_evidence_and_stay_silent() {
        let asm = "_ZN5other4func17h0000000000000000E:\n\tretq\n";
        let files = [file("demo.rs", DEMO_SRC)];
        let listings = [parse_listing(asm)];
        let (profiles, findings) = check_asm(&files, &listings);
        assert!(profiles.iter().all(|p| p.classification == "no-evidence"));
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn trait_impl_symbols_and_closures_match_the_module() {
        let asm = "\
_ZN48_$LT$demo..Demo$u20$as$u20$framework..Kernel$GT$8run_simd17h0000000000000000E:
\tvaddps\t%zmm1, %zmm2, %zmm0
\tretq
";
        let src = "// ninja-lint: variant(simd)\npub fn run_simd(x: &mut [f32]) {}\n";
        let files = [file("demo.rs", src)];
        let listings = [parse_listing(asm)];
        let profiles = profile_rungs(&files, &listings);
        assert_eq!(profiles.len(), 1);
        assert_eq!(profiles[0].classification, "vec512");
        assert_eq!(profiles[0].width_bits, 512);
    }

    #[test]
    fn render_is_stable_and_grep_friendly() {
        let p = VecProfile::from_counts(
            "demo",
            Rung::Ninja,
            InsnCounts {
                vector_fp_ops: 7,
                max_vector_bits: 256,
                fma: true,
                ..InsnCounts::default()
            },
            2,
        );
        let text = render_profiles(&[p]);
        assert!(
            text.contains("vecprofile demo/ninja: vec256 width=256 fma=yes"),
            "{text}"
        );
    }

    #[test]
    fn integer_simd_counts_as_vectorization_for_nl008() {
        // tree_search/merge_sort-style rungs vectorize with integer ops
        // only; NL008 must not fire on them.
        let asm = "\
_ZN4demo8run_simd17h0000000000000000E:
\tvpaddd\t%xmm1, %xmm2, %xmm0
\tvpcmpgtd\t%xmm1, %xmm2, %xmm0
\tretq
";
        let src = "// ninja-lint: variant(simd)\npub fn run_simd(x: &mut [i32]) {}\n";
        let files = [file("demo.rs", src)];
        let (profiles, findings) = check_asm(&files, &[parse_listing(asm)]);
        assert_eq!(profiles[0].classification, "vec128");
        assert!(findings.is_empty(), "{findings:?}");
    }
}
