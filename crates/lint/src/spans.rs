//! Function-span segmentation: brace matching over the token stream.
//!
//! The lint reasons about *spans* — top-level or impl-level `fn` items
//! together with the markers attached above them. Nested functions and
//! closures are folded into their enclosing span: what matters for the
//! taxonomy is what a dispatch entry point can reach textually.

use crate::lexer::{Lexed, TokKind, Token};
use crate::markers::{Marker, MarkerError, PlacedMarker, Rung};

/// How far above a `fn` a marker may sit (doc comments and attributes
/// between marker and item are fine; unattached markers are an error).
const ATTACH_WINDOW: u32 = 12;

/// One `fn` item with everything the rules need to know about it.
#[derive(Clone, Debug)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub sig_line: u32,
    /// 1-based line of the body's closing `}`.
    pub end_line: u32,
    /// 1-based line of the body's opening `{` (== `end_line` for
    /// body-less trait methods, which have no tokens).
    pub body_start: u32,
    /// Identifier tokens inside the body (keywords included), with lines.
    pub body_idents: Vec<(u32, String)>,
    /// Rungs this span is a dispatch entry for (`variant(...)` marker).
    pub entry_rungs: Vec<Rung>,
    /// Rungs this span counts toward for effort only (`effort(...)`).
    pub effort_rungs: Vec<Rung>,
    /// Rules waived on this span, with reasons.
    pub allows: Vec<(String, String)>,
}

impl FnSpan {
    /// All rungs this span is attributed to (entry first, then effort).
    pub fn rungs(&self) -> impl Iterator<Item = Rung> + '_ {
        self.entry_rungs
            .iter()
            .chain(self.effort_rungs.iter())
            .copied()
    }

    /// Whether the span carries any attribution at all.
    pub fn is_attributed(&self) -> bool {
        !self.entry_rungs.is_empty() || !self.effort_rungs.is_empty()
    }

    /// Whether rule `id` is waived here; returns the reason if so.
    pub fn allowed(&self, id: &str) -> Option<&str> {
        self.allows
            .iter()
            .find(|(rule, _)| rule == id)
            .map(|(_, reason)| reason.as_str())
    }

    /// First body line referencing any identifier in `names`, with the
    /// matching identifier.
    pub fn first_reference(&self, names: &[&str]) -> Option<(u32, String)> {
        self.body_idents
            .iter()
            .find(|(_, id)| names.contains(&id.as_str()))
            .map(|(line, id)| (*line, id.clone()))
    }
}

/// Segmentation result: spans plus attachment diagnostics.
#[derive(Clone, Debug, Default)]
pub struct Segmented {
    /// All `fn` spans in source order.
    pub spans: Vec<FnSpan>,
    /// skip-file reason, if the file opted out of ladder rules.
    pub skip_file: Option<String>,
    /// Markers that did not attach to any `fn` (rule NL007 feeds on these).
    pub orphans: Vec<MarkerError>,
}

/// Builds spans from lexed tokens and attaches parsed markers.
pub fn segment(lexed: &Lexed, markers: &[PlacedMarker]) -> Segmented {
    let mut out = Segmented::default();
    let toks = &lexed.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn") {
            let (span, next) = read_fn(toks, i);
            if let Some(span) = span {
                out.spans.push(span);
            }
            i = next;
        } else {
            i += 1;
        }
    }

    for pm in markers {
        match &pm.marker {
            Marker::SkipFile(reason) => {
                if out.skip_file.is_some() {
                    out.orphans.push(MarkerError {
                        line: pm.line,
                        message: "duplicate skip-file marker".into(),
                    });
                } else {
                    out.skip_file = Some(reason.clone());
                }
            }
            marker => {
                let target = out
                    .spans
                    .iter_mut()
                    .find(|s| s.sig_line > pm.line && s.sig_line - pm.line <= ATTACH_WINDOW);
                match target {
                    Some(span) => match marker {
                        Marker::Variant(rungs) => {
                            if span.entry_rungs.is_empty() {
                                span.entry_rungs = rungs.clone();
                            } else {
                                out.orphans.push(MarkerError {
                                    line: pm.line,
                                    message: format!(
                                        "fn `{}` already has a variant(...) marker",
                                        span.name
                                    ),
                                });
                            }
                        }
                        Marker::Effort(rungs) => {
                            if span.effort_rungs.is_empty() {
                                span.effort_rungs = rungs.clone();
                            } else {
                                out.orphans.push(MarkerError {
                                    line: pm.line,
                                    message: format!(
                                        "fn `{}` already has an effort(...) marker",
                                        span.name
                                    ),
                                });
                            }
                        }
                        Marker::Allow(rule, reason) => {
                            span.allows.push((rule.clone(), reason.clone()));
                        }
                        Marker::SkipFile(_) => unreachable!("handled above"),
                    },
                    None => out.orphans.push(MarkerError {
                        line: pm.line,
                        message: format!(
                            "marker does not attach to a fn within {ATTACH_WINDOW} lines"
                        ),
                    }),
                }
            }
        }
    }
    out
}

/// Reads one `fn` item starting at the `fn` keyword (index `at`).
/// Returns the span (None for body-less trait methods) and the index of
/// the first token after the item.
fn read_fn(toks: &[Token], at: usize) -> (Option<FnSpan>, usize) {
    let sig_line = toks[at].line;
    let mut i = at + 1;
    let name = match toks.get(i).and_then(Token::ident) {
        Some(n) => n.to_string(),
        None => return (None, at + 1),
    };
    // Find the body's `{` at paren depth 0 (or a `;` for trait methods).
    let mut paren = 0i32;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => paren += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => paren -= 1,
            TokKind::Punct(';') if paren == 0 => {
                return (None, i + 1);
            }
            TokKind::Punct('{') if paren == 0 => break,
            _ => {}
        }
        i += 1;
    }
    if i >= toks.len() {
        return (None, toks.len());
    }
    let body_start = toks[i].line;
    let mut depth = 0i32;
    let mut body_idents = Vec::new();
    let mut end_line = body_start;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    end_line = toks[i].line;
                    i += 1;
                    break;
                }
            }
            TokKind::Ident(id) => body_idents.push((toks[i].line, id.clone())),
            _ => {}
        }
        end_line = toks[i].line;
        i += 1;
    }
    (
        Some(FnSpan {
            name,
            sig_line,
            end_line,
            body_start,
            body_idents,
            entry_rungs: Vec::new(),
            effort_rungs: Vec::new(),
            allows: Vec::new(),
        }),
        i,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::markers::parse_markers;

    fn seg(src: &str) -> Segmented {
        let lexed = lex(src);
        let (markers, errs) = parse_markers(&lexed.comments);
        assert!(errs.is_empty(), "{errs:?}");
        segment(&lexed, &markers)
    }

    #[test]
    fn finds_fns_and_bodies() {
        let s = seg("fn a() { let x = 1; }\n\nimpl T {\n    fn b(&self) -> u32 {\n        self.x\n    }\n}\n");
        assert_eq!(s.spans.len(), 2);
        assert_eq!(s.spans[0].name, "a");
        assert_eq!(s.spans[1].name, "b");
        assert_eq!(s.spans[1].sig_line, 4);
        assert_eq!(s.spans[1].end_line, 6);
        assert!(s.spans[1].body_idents.iter().any(|(_, i)| i == "self"));
    }

    #[test]
    fn nested_fns_fold_into_parent() {
        let s = seg("fn outer() {\n    fn inner() { helper(); }\n    inner();\n}\n");
        assert_eq!(s.spans.len(), 1);
        assert!(s.spans[0].body_idents.iter().any(|(_, i)| i == "helper"));
        assert_eq!(s.spans[0].end_line, 4);
    }

    #[test]
    fn trait_methods_without_bodies_are_skipped() {
        let s = seg(
            "trait T {\n    fn sig(&self) -> f64;\n    fn with_body(&self) -> f64 { 0.0 }\n}\n",
        );
        assert_eq!(s.spans.len(), 1);
        assert_eq!(s.spans[0].name, "with_body");
    }

    #[test]
    fn markers_attach_to_next_fn() {
        let s = seg(concat!(
            "// ninja-lint: variant(naive)\n",
            "/// Docs in between are fine.\n",
            "fn run_naive() { work(); }\n",
            "// ninja-lint: effort(simd, ninja)\n",
            "// ninja-lint: allow(NL001, \"pool is None on this path\")\n",
            "fn helper() { pool(); }\n",
        ));
        assert_eq!(s.spans[0].entry_rungs, vec![Rung::Naive]);
        assert_eq!(s.spans[1].effort_rungs, vec![Rung::Simd, Rung::Ninja]);
        assert_eq!(
            s.spans[1].allowed("NL001"),
            Some("pool is None on this path")
        );
        assert!(s.spans[1].allowed("NL002").is_none());
    }

    #[test]
    fn orphan_markers_are_reported() {
        let s = seg("// ninja-lint: variant(naive)\n\n\n\n\n\n\n\n\n\n\n\n\n\nfn far_away() {}\n");
        assert_eq!(s.spans[0].entry_rungs, Vec::<Rung>::new());
        assert_eq!(s.orphans.len(), 1);
        assert!(s.orphans[0].message.contains("does not attach"));
    }

    #[test]
    fn skip_file_is_captured() {
        let s = seg("// ninja-lint: skip-file(\"fault injection\")\nfn f() {}\n");
        assert_eq!(s.skip_file.as_deref(), Some("fault injection"));
    }

    #[test]
    fn braces_in_match_arms_balance() {
        let s = seg("fn f(v: V) -> u32 {\n    match v {\n        V::A => { 1 }\n        V::B => 2,\n    }\n}\nfn g() {}\n");
        assert_eq!(s.spans.len(), 2);
        assert_eq!(s.spans[0].end_line, 6);
    }
}
