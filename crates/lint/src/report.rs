//! Machine-readable findings report, mirroring the harness report
//! conventions (`SuiteReport`): stable kind tags, per-item records, and
//! a `to_json` that downstream tooling can consume without parsing
//! human-oriented text.

use crate::rules::{Finding, RuleId, Severity, ALL_RULES};
use crate::vecprofile::VecProfile;
use serde::Serialize;

/// One finding as serialized into the report.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct FindingRecord {
    /// Stable rule ID (`NL001`...).
    pub rule: String,
    /// Kebab-case rule name.
    pub name: String,
    /// `warning` or `info` (info findings never fail `--deny-warnings`).
    pub severity: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the violation.
    pub line: u64,
    /// Human-readable specifics.
    pub message: String,
}

/// Static description of one rule, included so a report is
/// self-describing.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct RuleRecord {
    /// Stable rule ID.
    pub id: String,
    /// Kebab-case rule name.
    pub name: String,
    /// One-line description.
    pub description: String,
}

/// A full lint run over a set of files.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct LintReport {
    /// Root the relative paths are anchored at.
    pub root: String,
    /// Number of files scanned.
    pub files_scanned: u64,
    /// Every rule the engine knows, whether or not it fired.
    pub rules: Vec<RuleRecord>,
    /// All findings, in (file, line) order.
    pub findings: Vec<FindingRecord>,
    /// Per-rung vectorization profiles (`--asm` mode only; empty in a
    /// plain source lint).
    pub vec_profiles: Vec<VecProfile>,
    /// True when no *warning*-severity rule fired (info findings do not
    /// dirty a report).
    pub clean: bool,
}

impl LintReport {
    /// Builds a report from raw findings.
    pub fn new(root: String, files_scanned: usize, findings: Vec<Finding>) -> Self {
        let mut findings = findings;
        findings
            .sort_by(|a, b| (&a.file, a.line, a.rule.id()).cmp(&(&b.file, b.line, b.rule.id())));
        let records: Vec<FindingRecord> = findings
            .iter()
            .map(|f| FindingRecord {
                rule: f.rule.id().to_string(),
                name: f.rule.name().to_string(),
                severity: f.rule.severity().as_str().to_string(),
                file: f.file.clone(),
                line: f.line as u64,
                message: f.message.clone(),
            })
            .collect();
        Self {
            root,
            files_scanned: files_scanned as u64,
            rules: ALL_RULES
                .into_iter()
                .map(|r| RuleRecord {
                    id: r.id().to_string(),
                    name: r.name().to_string(),
                    description: r.description().to_string(),
                })
                .collect(),
            clean: !findings
                .iter()
                .any(|f| f.rule.severity() == Severity::Warning),
            findings: records,
            vec_profiles: Vec::new(),
        }
    }

    /// Attaches `--asm` vectorization profiles to the report.
    pub fn with_profiles(mut self, profiles: Vec<VecProfile>) -> Self {
        self.vec_profiles = profiles;
        self
    }

    /// Serializes the report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("lint reports are serializable")
    }

    /// Findings for one rule.
    pub fn by_rule(&self, rule: RuleId) -> impl Iterator<Item = &FindingRecord> {
        self.findings.iter().filter(move |f| f.rule == rule.id())
    }

    /// Renders the human-readable summary printed by the binary: one
    /// `file:line: [ID name] message` line per finding plus a tally.
    /// Info findings are prefixed so they read as observations.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut infos = 0u64;
        for f in &self.findings {
            let prefix = if f.severity == "info" {
                infos += 1;
                "info: "
            } else {
                ""
            };
            out.push_str(&format!(
                "{}:{}: {}[{} {}] {}\n",
                f.file, f.line, prefix, f.rule, f.name, f.message
            ));
        }
        let warnings = self.findings.len() as u64 - infos;
        if self.clean {
            out.push_str(&format!(
                "ninja-lint: clean ({} file(s) scanned, {} rule(s))\n",
                self.files_scanned,
                self.rules.len()
            ));
            if infos > 0 {
                out.push_str(&format!("ninja-lint: {infos} info note(s)\n"));
            }
        } else {
            out.push_str(&format!(
                "ninja-lint: {} finding(s) across {} file(s)\n",
                warnings, self.files_scanned
            ));
            if infos > 0 {
                out.push_str(&format!("ninja-lint: plus {infos} info note(s)\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: RuleId, file: &str, line: u32) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message: "msg".to_string(),
        }
    }

    #[test]
    fn report_is_sorted_and_self_describing() {
        let r = LintReport::new(
            "/repo".into(),
            3,
            vec![
                finding(RuleId::MissingSafetyComment, "b.rs", 9),
                finding(RuleId::ThreadsInSerialRung, "a.rs", 4),
            ],
        );
        assert!(!r.clean);
        assert_eq!(r.findings[0].file, "a.rs");
        assert_eq!(r.findings[0].rule, "NL001");
        assert_eq!(r.findings[0].severity, "warning");
        assert_eq!(r.rules.len(), 10);
        assert_eq!(r.by_rule(RuleId::MissingSafetyComment).count(), 1);
    }

    #[test]
    fn json_has_stable_fields() {
        let r = LintReport::new(
            "/repo".into(),
            1,
            vec![finding(RuleId::EffortLocDrift, "k.rs", 12)],
        );
        let json = r.to_json();
        for needle in [
            "\"rule\": \"NL004\"",
            "\"name\": \"effort-loc-drift\"",
            "\"severity\": \"warning\"",
            "\"file\": \"k.rs\"",
            "\"line\": 12",
            "\"clean\": false",
            "\"files_scanned\": 1",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn text_rendering_names_every_finding() {
        let r = LintReport::new(
            "/repo".into(),
            2,
            vec![finding(RuleId::NinjaWithoutSimd, "k.rs", 1)],
        );
        let text = r.render_text();
        assert!(text.contains("k.rs:1: [NL003 ninja-without-simd] msg"));
        assert!(text.contains("1 finding(s)"));
        let clean = LintReport::new("/repo".into(), 2, Vec::new());
        assert!(clean.render_text().contains("clean"));
    }

    #[test]
    fn info_findings_do_not_dirty_a_report() {
        let r = LintReport::new(
            "/repo".into(),
            1,
            vec![finding(RuleId::ScalarRungAutovectorized, "k.rs", 3)],
        );
        assert!(r.clean, "info-only reports stay clean: {r:#?}");
        assert_eq!(r.findings[0].severity, "info");
        let text = r.render_text();
        assert!(text.contains("info: [NL009"), "{text}");
        assert!(text.contains("clean"), "{text}");
        assert!(text.contains("1 info note(s)"), "{text}");
    }
}
