//! The rule engine: per-rung purity rules, effort drift, the workspace
//! SAFETY audit, and marker hygiene.
//!
//! Every rule has a stable ID. IDs are load-bearing: `allow(NLnnn, ...)`
//! markers, CI output and the JSON findings report all key on them, so
//! they must never be renumbered.
//!
//! | ID    | name                        | scope        |
//! |-------|-----------------------------|--------------|
//! | NL001 | threads-in-serial-rung      | kernel files |
//! | NL002 | simd-in-scalar-rung         | kernel files |
//! | NL003 | ninja-without-simd          | kernel files |
//! | NL004 | effort-loc-drift            | kernel files |
//! | NL005 | missing-safety-comment      | every file   |
//! | NL006 | incomplete-variant-coverage | kernel files |
//! | NL007 | malformed-marker            | every file   |
//! | NL008 | ninja-rung-not-vectorized   | `--asm` mode |
//! | NL009 | scalar-rung-autovectorized  | `--asm` mode |
//! | NL010 | unjustified-relaxed-ordering| every file   |
//!
//! NL008/NL009 live in [`crate::vecprofile`] because they judge compiler
//! output, not source tokens; they share this module's `RuleId` space so
//! `allow(...)` markers and `--deny-warnings` treat them uniformly.

use crate::markers::Rung;
use crate::source::SourceFile;
use crate::spans::FnSpan;
use std::collections::HashSet;

/// Identifiers whose presence in a serial-rung body means the variant is
/// not actually serial (the `ninja-parallel` public surface).
pub const THREAD_IDENTS: [&str; 8] = [
    "ThreadPool",
    "ninja_parallel",
    "parallel_for",
    "parallel_for_each",
    "parallel_reduce",
    "par_chunks_mut",
    "par_zip_chunks_mut",
    "Scope",
];

/// Identifiers whose presence in a traditional-rung body means the
/// variant smuggles in Ninja machinery: explicit vectors, masks,
/// `unsafe`, or the width-generic `Isa` surface — writing a rung against
/// the trait is still hand-SIMD, whatever backend the dispatcher picks.
pub const EXPLICIT_SIMD_IDENTS: [&str; 20] = [
    "ninja_simd",
    "F32x4",
    "F32x8",
    "F64x2",
    "F64x4",
    "I32x4",
    "Mask32x4",
    "Mask64x2",
    "AlignedVec",
    "Isa",
    "IsaOp",
    "dispatch",
    "dispatch_on",
    "SimdF32",
    "SimdF64",
    "SimdI32",
    "SimdMask",
    "Sse2",
    "Avx2",
    "Neon",
];

/// Vector/mask identifiers that count as *evidence of* explicit SIMD for
/// the Ninja-tier requirement (a strict subset of
/// [`EXPLICIT_SIMD_IDENTS`]: owning an [`AlignedVec`] is not by itself
/// vector code). A rung written once against the width-generic `Isa`
/// trait — `fn body<I: Isa>(..)` dispatched at runtime — counts exactly
/// like a fixed-width `F32x4` body.
pub const SIMD_EVIDENCE_IDENTS: [&str; 18] = [
    "F32x4",
    "F32x8",
    "F64x2",
    "F64x4",
    "I32x4",
    "Mask32x4",
    "Mask64x2",
    "Isa",
    "IsaOp",
    "dispatch",
    "dispatch_on",
    "SimdF32",
    "SimdF64",
    "SimdI32",
    "SimdMask",
    "Sse2",
    "Avx2",
    "Neon",
];

/// Declared-vs-measured effort tolerance: a declared `effort_loc` of `d`
/// and a measured diff of `m` lines agree when each is at most
/// `SLOPE * other + OFFSET`. The bound is deliberately loose — `effort_loc`
/// is a hand-estimated metric — and exists to catch order-of-magnitude
/// drift, not off-by-a-few.
pub const EFFORT_SLOPE: u32 = 4;
/// Additive slack of the effort tolerance (see [`EFFORT_SLOPE`]).
pub const EFFORT_OFFSET: u32 = 24;

/// How many lines above an `unsafe` token the SAFETY audit searches,
/// skipping blanks, attributes and grouped `unsafe impl` lines.
const SAFETY_WINDOW: usize = 10;

/// How many lines above a relaxed-ordering site the ORDERING audit
/// searches, mirroring [`SAFETY_WINDOW`]; grouped `Ordering::Relaxed`
/// sites may share one justification.
const ORDERING_WINDOW: usize = 10;

/// All rules, in ID order.
pub const ALL_RULES: [RuleId; 10] = [
    RuleId::ThreadsInSerialRung,
    RuleId::SimdInScalarRung,
    RuleId::NinjaWithoutSimd,
    RuleId::EffortLocDrift,
    RuleId::MissingSafetyComment,
    RuleId::IncompleteVariantCoverage,
    RuleId::MalformedMarker,
    RuleId::NinjaRungNotVectorized,
    RuleId::ScalarRungAutovectorized,
    RuleId::UnjustifiedRelaxedOrdering,
];

/// Severity of a finding. `Warning` findings gate `--deny-warnings` and
/// flip a report to not-clean; `Info` findings are advisory observations
/// (today only NL009, which reports the *good* news that the compiler
/// auto-vectorized a naive rung).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Severity {
    /// Advisory: reported, never fails the build.
    Info,
    /// Violation: fails `--deny-warnings` and marks the report unclean.
    Warning,
}

impl Severity {
    /// Stable lowercase name (`info`/`warning`) for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
        }
    }
}

/// Stable identifier of one lint rule.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum RuleId {
    /// NL001: a Naive/Simd-rung body references the thread runtime.
    ThreadsInSerialRung,
    /// NL002: a Naive/Parallel-rung body references explicit SIMD or
    /// `unsafe`.
    SimdInScalarRung,
    /// NL003: a kernel's Ninja tier never touches an explicit vector type.
    NinjaWithoutSimd,
    /// NL004: declared `effort_loc` disagrees with the measured diff size.
    EffortLocDrift,
    /// NL005: an `unsafe` site without an adjacent `// SAFETY:` comment.
    MissingSafetyComment,
    /// NL006: a kernel file is missing variant attribution for some rung.
    IncompleteVariantCoverage,
    /// NL007: a `ninja-lint` marker that does not parse or attach.
    MalformedMarker,
    /// NL008: a Simd/Ninja rung whose compiled code emits no vector
    /// arithmetic (asm evidence; see [`crate::vecprofile`]).
    NinjaRungNotVectorized,
    /// NL009 (info): a Naive rung the compiler auto-vectorized.
    ScalarRungAutovectorized,
    /// NL010: `Ordering::Relaxed` or a `static mut` declaration without
    /// an adjacent `// ORDERING:` justification.
    UnjustifiedRelaxedOrdering,
}

impl RuleId {
    /// Stable machine-readable ID (`NL001`...).
    pub fn id(self) -> &'static str {
        match self {
            RuleId::ThreadsInSerialRung => "NL001",
            RuleId::SimdInScalarRung => "NL002",
            RuleId::NinjaWithoutSimd => "NL003",
            RuleId::EffortLocDrift => "NL004",
            RuleId::MissingSafetyComment => "NL005",
            RuleId::IncompleteVariantCoverage => "NL006",
            RuleId::MalformedMarker => "NL007",
            RuleId::NinjaRungNotVectorized => "NL008",
            RuleId::ScalarRungAutovectorized => "NL009",
            RuleId::UnjustifiedRelaxedOrdering => "NL010",
        }
    }

    /// Severity class of findings from this rule.
    pub fn severity(self) -> Severity {
        match self {
            RuleId::ScalarRungAutovectorized => Severity::Info,
            _ => Severity::Warning,
        }
    }

    /// Short kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::ThreadsInSerialRung => "threads-in-serial-rung",
            RuleId::SimdInScalarRung => "simd-in-scalar-rung",
            RuleId::NinjaWithoutSimd => "ninja-without-simd",
            RuleId::EffortLocDrift => "effort-loc-drift",
            RuleId::MissingSafetyComment => "missing-safety-comment",
            RuleId::IncompleteVariantCoverage => "incomplete-variant-coverage",
            RuleId::MalformedMarker => "malformed-marker",
            RuleId::NinjaRungNotVectorized => "ninja-rung-not-vectorized",
            RuleId::ScalarRungAutovectorized => "scalar-rung-autovectorized",
            RuleId::UnjustifiedRelaxedOrdering => "unjustified-relaxed-ordering",
        }
    }

    /// One-line description for `--list-rules` and the JSON report.
    pub fn description(self) -> &'static str {
        match self {
            RuleId::ThreadsInSerialRung => {
                "naive/simd variant bodies must not reference the thread runtime \
                 (ThreadPool, parallel_for, par_chunks_mut, ...)"
            }
            RuleId::SimdInScalarRung => {
                "naive/parallel variant bodies must not reference explicit SIMD \
                 types (F32x4, masks, AlignedVec, ...), the width-generic Isa \
                 dispatch surface, or use `unsafe`"
            }
            RuleId::NinjaWithoutSimd => {
                "a kernel's ninja tier must reference an explicit vector type \
                 or the width-generic Isa surface, or carry an allow() with a \
                 reason"
            }
            RuleId::EffortLocDrift => {
                "declared effort_loc must be within tolerance of the measured \
                 source-line diff of the variant's attributed spans vs naive"
            }
            RuleId::MissingSafetyComment => {
                "every `unsafe` block/impl/fn needs an adjacent `// SAFETY:` \
                 comment (or a `# Safety` doc section)"
            }
            RuleId::IncompleteVariantCoverage => {
                "a kernel file must attribute an entry span to every rung of \
                 the variant ladder (or be marked skip-file with a reason)"
            }
            RuleId::MalformedMarker => {
                "ninja-lint markers must parse and attach to a fn; typos must \
                 not silently disable enforcement"
            }
            RuleId::NinjaRungNotVectorized => {
                "a simd/ninja rung's compiled code must emit vector arithmetic \
                 (FP or integer); checked against --emit asm evidence in --asm \
                 mode"
            }
            RuleId::ScalarRungAutovectorized => {
                "info: the compiler auto-vectorized a naive rung — the paper's \
                 thesis observed directly; reported in --asm mode"
            }
            RuleId::UnjustifiedRelaxedOrdering => {
                "every `Ordering::Relaxed` site and `static mut` declaration \
                 needs an adjacent `// ORDERING:` justification"
            }
        }
    }

    /// Parses `NLnnn` back into a rule.
    pub fn from_id(s: &str) -> Option<RuleId> {
        ALL_RULES.into_iter().find(|r| r.id() == s)
    }
}

/// One finding: a rule violation at a file:line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleId,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the violation.
    pub line: u32,
    /// Human-readable description with the specifics.
    pub message: String,
}

/// Runs every applicable rule on one analyzed file.
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    check_markers(file, &mut findings);
    check_safety(file, &mut findings);
    check_ordering(file, &mut findings);
    if file.is_kernel_file() && file.segmented.skip_file.is_none() {
        check_purity(file, &mut findings);
        check_ninja_simd(file, &mut findings);
        check_effort(file, &mut findings);
        check_coverage(file, &mut findings);
    }
    findings.sort_by_key(|f| (f.line, f.rule.id()));
    findings
}

/// NL007: marker parse errors and orphaned markers.
fn check_markers(file: &SourceFile, findings: &mut Vec<Finding>) {
    for e in file
        .marker_errors
        .iter()
        .chain(file.segmented.orphans.iter())
    {
        findings.push(Finding {
            rule: RuleId::MalformedMarker,
            file: file.rel_path.clone(),
            line: e.line,
            message: e.message.clone(),
        });
    }
}

/// NL001 + NL002: rung purity over attributed spans.
///
/// A span's constraint set is the *intersection* of its rungs' bans: a
/// helper attributed to `effort(simd, algorithmic, ninja)` may use
/// threads (algorithmic/ninja legitimize them), while one attributed to
/// `effort(naive, parallel)` may not use explicit SIMD.
fn check_purity(file: &SourceFile, findings: &mut Vec<Finding>) {
    for span in file.segmented.spans.iter().filter(|s| s.is_attributed()) {
        if span.rungs().all(Rung::bans_threads) && span.allowed("NL001").is_none() {
            if let Some((line, id)) = span.first_reference(&THREAD_IDENTS) {
                findings.push(Finding {
                    rule: RuleId::ThreadsInSerialRung,
                    file: file.rel_path.clone(),
                    line,
                    message: format!(
                        "fn `{}` ({}) references thread runtime `{}` — this rung \
                         must be serial",
                        span.name,
                        rung_list(span),
                        id
                    ),
                });
            }
        }
        if span.rungs().all(Rung::bans_explicit_simd) && span.allowed("NL002").is_none() {
            let hit = span
                .first_reference(&EXPLICIT_SIMD_IDENTS)
                .or_else(|| span.first_reference(&["unsafe"]));
            if let Some((line, id)) = hit {
                findings.push(Finding {
                    rule: RuleId::SimdInScalarRung,
                    file: file.rel_path.clone(),
                    line,
                    message: format!(
                        "fn `{}` ({}) references `{}` — this rung must stay \
                         within safe, scalar, compiler-visible code",
                        span.name,
                        rung_list(span),
                        id
                    ),
                });
            }
        }
    }
}

/// NL003: the Ninja tier must show explicit SIMD somewhere in its
/// attributed spans (entry or effort).
fn check_ninja_simd(file: &SourceFile, findings: &mut Vec<Finding>) {
    let ninja_spans: Vec<&FnSpan> = file
        .segmented
        .spans
        .iter()
        .filter(|s| s.rungs().any(|r| r == Rung::Ninja))
        .collect();
    if ninja_spans.is_empty() {
        return; // NL006 reports the missing rung.
    }
    if let Some(reason) = ninja_spans.iter().find_map(|s| s.allowed("NL003")) {
        let _ = reason; // explicit waiver with a recorded reason
        return;
    }
    let has_simd = ninja_spans
        .iter()
        .any(|s| s.first_reference(&SIMD_EVIDENCE_IDENTS).is_some());
    if !has_simd {
        let entry = ninja_spans[0];
        findings.push(Finding {
            rule: RuleId::NinjaWithoutSimd,
            file: file.rel_path.clone(),
            line: entry.sig_line,
            message: format!(
                "no span attributed to the ninja rung (starting at fn `{}`) \
                 references an explicit vector type ({})",
                entry.name,
                SIMD_EVIDENCE_IDENTS.join("/")
            ),
        });
    }
}

/// NL004: declared `effort_loc` vs the measured line diff against naive.
///
/// The measured effort of rung `R` is the number of distinct normalized
/// source lines in `R`-attributed spans that do not appear in any
/// naive-attributed span — a mechanical stand-in for the paper's
/// "lines added/changed relative to the naive version".
fn check_effort(file: &SourceFile, findings: &mut Vec<Finding>) {
    let naive_lines = attributed_lines(file, Rung::Naive);
    for (rung, declared, decl_line) in &file.effort_decls {
        if *rung == Rung::Naive {
            continue; // zero by definition; nothing to diff against
        }
        let span_allows = file
            .segmented
            .spans
            .iter()
            .filter(|s| s.rungs().any(|r| r == *rung))
            .any(|s| s.allowed("NL004").is_some());
        if span_allows {
            continue;
        }
        let lines = attributed_lines(file, *rung);
        if lines.is_empty() {
            continue; // NL006 reports the missing attribution.
        }
        let measured = lines.difference(&naive_lines).count() as u32;
        let declared = *declared;
        let within = |a: u32, b: u32| a <= b.saturating_mul(EFFORT_SLOPE) + EFFORT_OFFSET;
        if !within(declared, measured) || !within(measured, declared) {
            findings.push(Finding {
                rule: RuleId::EffortLocDrift,
                file: file.rel_path.clone(),
                line: *decl_line,
                message: format!(
                    "{rung} declares effort_loc = {declared} but the lint \
                     measures a {measured}-line diff vs naive (tolerance: each \
                     within {EFFORT_SLOPE}x + {EFFORT_OFFSET} of the other)"
                ),
            });
        }
    }
}

/// Distinct normalized body lines over every span attributed to `rung`.
fn attributed_lines(file: &SourceFile, rung: Rung) -> HashSet<String> {
    let mut set = HashSet::new();
    for span in &file.segmented.spans {
        if !span.rungs().any(|r| r == rung) {
            continue;
        }
        let lo = span.body_start as usize;
        let hi = (span.end_line as usize).min(file.lines.len());
        for raw in &file.lines[lo.saturating_sub(1)..hi] {
            let t = raw.trim();
            if t.is_empty() || t.starts_with("//") {
                continue;
            }
            set.insert(t.to_string());
        }
    }
    set
}

/// NL006: every rung needs an entry span (or the file a skip-file marker).
fn check_coverage(file: &SourceFile, findings: &mut Vec<Finding>) {
    for rung in Rung::ALL {
        let covered = file
            .segmented
            .spans
            .iter()
            .any(|s| s.entry_rungs.contains(&rung));
        if !covered {
            findings.push(Finding {
                rule: RuleId::IncompleteVariantCoverage,
                file: file.rel_path.clone(),
                line: 1,
                message: format!(
                    "kernel file has no `// ninja-lint: variant({rung})` entry \
                     span; the {rung} rung is unauditable"
                ),
            });
        }
    }
}

/// NL005: the `unsafe` audit.
///
/// For every source line containing an `unsafe` token (outside comments
/// and strings), an adjacent justification is required: `SAFETY:` in a
/// comment on the same line or in the contiguous comment/attribute block
/// above it, or a `# Safety` doc section for `unsafe fn` items. Grouped
/// `unsafe impl` lines may share one comment.
fn check_safety(file: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    let mut unsafe_lines: Vec<u32> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        // `unsafe fn(...)` with no name between `fn` and `(` is a
        // function-pointer *type*, not an unsafe operation.
        let is_fn_ptr_type = toks.get(i + 1).is_some_and(|t| t.is_ident("fn"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('));
        if !is_fn_ptr_type {
            unsafe_lines.push(t.line);
        }
    }
    unsafe_lines.dedup();

    for line in unsafe_lines {
        if !has_adjacent_safety(file, line) {
            findings.push(Finding {
                rule: RuleId::MissingSafetyComment,
                file: file.rel_path.clone(),
                line,
                message: "`unsafe` without an adjacent `// SAFETY:` comment \
                          (or `# Safety` doc section)"
                    .to_string(),
            });
        }
    }
}

/// Whether the `unsafe` on `line` has a justification nearby.
fn has_adjacent_safety(file: &SourceFile, line: u32) -> bool {
    let has_safety_text = |l: u32| {
        file.comment_on(l)
            .is_some_and(|t| t.contains("SAFETY:") || t.contains("# Safety"))
    };
    if has_safety_text(line) {
        return true;
    }
    let mut cur = line;
    for _ in 0..SAFETY_WINDOW {
        if cur <= 1 {
            return false;
        }
        cur -= 1;
        if has_safety_text(cur) {
            return true;
        }
        let raw = file.line(cur).map(str::trim).unwrap_or("");
        let is_comment = file.comment_on(cur).is_some() || raw.starts_with("//");
        let is_attr = raw.starts_with("#[") || raw.starts_with("#!");
        let is_grouped_unsafe = raw.starts_with("unsafe impl");
        if raw.is_empty() || is_comment || is_attr || is_grouped_unsafe {
            continue;
        }
        return false;
    }
    false
}

/// NL010: the relaxed-ordering audit, NL005's concurrency sibling.
///
/// `Ordering::Relaxed` is correct more often than it is *justified*; the
/// rule demands the justification travel with the site. Every
/// `Ordering::Relaxed` token sequence and every `static mut NAME:`
/// declaration needs `ORDERING:` in a comment on the same line or in the
/// contiguous comment/attribute block above. Neighbouring relaxed sites
/// may share one justification (the upward scan skips lines that are
/// themselves relaxed sites), and a span-level
/// `allow(NL010, "reason")` marker waives the fn.
fn check_ordering(file: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    // (line, what) per site.
    let mut sites: Vec<(u32, &'static str)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("Ordering")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("Relaxed"))
        {
            sites.push((t.line, "`Ordering::Relaxed`"));
        }
        // A `static mut NAME:` *declaration*. Requiring the name + colon
        // keeps `&'static mut T` types (whose lifetime quote the lexer
        // drops) from matching.
        if t.is_ident("static")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("mut"))
            && toks.get(i + 2).is_some_and(|t| t.ident().is_some())
            && toks.get(i + 3).is_some_and(|t| t.is_punct(':'))
        {
            sites.push((t.line, "`static mut`"));
        }
    }
    sites.dedup_by_key(|(line, _)| *line);
    let site_lines: HashSet<u32> = sites.iter().map(|(l, _)| *l).collect();

    for (line, what) in sites {
        if has_adjacent_ordering(file, line, &site_lines) {
            continue;
        }
        let waived = file
            .segmented
            .spans
            .iter()
            .any(|s| s.sig_line <= line && line <= s.end_line && s.allowed("NL010").is_some());
        if waived {
            continue;
        }
        findings.push(Finding {
            rule: RuleId::UnjustifiedRelaxedOrdering,
            file: file.rel_path.clone(),
            line,
            message: format!("{what} without an adjacent `// ORDERING:` justification"),
        });
    }
}

/// Whether the relaxed site on `line` has an `ORDERING:` justification
/// nearby (same-line comment or the contiguous block above, skipping
/// blanks, comments, attributes, sibling relaxed sites, and statement
/// continuations — rustfmt splits `x.field\n.fetch_add(.., Relaxed)`
/// chains, so a line with no `;`/`{`/`}` terminator is treated as part
/// of the site's own statement, not intervening code).
fn has_adjacent_ordering(file: &SourceFile, line: u32, site_lines: &HashSet<u32>) -> bool {
    let has_ordering_text = |l: u32| file.comment_on(l).is_some_and(|t| t.contains("ORDERING:"));
    if has_ordering_text(line) {
        return true;
    }
    let mut cur = line;
    for _ in 0..ORDERING_WINDOW {
        if cur <= 1 {
            return false;
        }
        cur -= 1;
        if has_ordering_text(cur) {
            return true;
        }
        let raw = file.line(cur).map(str::trim).unwrap_or("");
        let is_comment = file.comment_on(cur).is_some() || raw.starts_with("//");
        let is_attr = raw.starts_with("#[") || raw.starts_with("#!");
        let is_continuation = !raw.ends_with(';') && !raw.ends_with('{') && !raw.ends_with('}');
        if raw.is_empty() || is_comment || is_attr || is_continuation || site_lines.contains(&cur) {
            continue;
        }
        return false;
    }
    false
}

/// Formats a span's attributed rungs for messages, e.g. `naive` or
/// `effort: simd+algorithmic`.
fn rung_list(span: &FnSpan) -> String {
    let names: Vec<&str> = span.rungs().map(Rung::name).collect();
    let joined = names.join("+");
    if span.entry_rungs.is_empty() {
        format!("effort: {joined}")
    } else {
        joined
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn analyze(src: &str) -> Vec<Finding> {
        let file = SourceFile::from_source("test.rs".into(), src.to_string());
        check_file(&file)
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule.id()).collect()
    }

    /// A minimal clean kernel file exercising every rung.
    const CLEAN: &str = include_str!("../tests/fixtures/clean.rs");

    #[test]
    fn clean_kernel_has_no_findings() {
        let findings = analyze(CLEAN);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn rule_ids_are_stable_and_self_describing() {
        let ids: Vec<_> = ALL_RULES.iter().map(|r| r.id()).collect();
        assert_eq!(
            ids,
            [
                "NL001", "NL002", "NL003", "NL004", "NL005", "NL006", "NL007", "NL008", "NL009",
                "NL010"
            ]
        );
        for r in ALL_RULES {
            assert_eq!(RuleId::from_id(r.id()), Some(r));
            assert!(!r.name().is_empty() && !r.description().is_empty());
        }
        assert_eq!(RuleId::from_id("NL999"), None);
        // Exactly one info-severity rule: the auto-vectorization observer.
        let infos: Vec<_> = ALL_RULES
            .iter()
            .filter(|r| r.severity() == Severity::Info)
            .collect();
        assert_eq!(infos, [&RuleId::ScalarRungAutovectorized]);
    }

    #[test]
    fn threads_in_naive_fires() {
        let findings = analyze(
            "// ninja-lint: variant(naive)\nfn run_naive(pool: &ThreadPool) {\n    pool.parallel_for(0..4, 1, |_| {});\n}\n",
        );
        assert!(rules_of(&findings).contains(&"NL001"), "{findings:#?}");
    }

    #[test]
    fn shared_helper_with_high_rung_may_use_threads() {
        let findings = analyze(
            "// ninja-lint: effort(simd, algorithmic, ninja)\nfn step(pool: Option<&ThreadPool>) {\n    if let Some(p) = pool { p.parallel_for(0..1, 1, |_| {}); }\n}\n",
        );
        assert!(!rules_of(&findings).contains(&"NL001"), "{findings:#?}");
    }

    #[test]
    fn unsafe_in_parallel_rung_fires_nl002() {
        let findings = analyze(
            "// ninja-lint: variant(parallel)\nfn run_parallel(&self) {\n    // SAFETY: not actually sound, which is the point.\n    unsafe { shortcut() };\n}\n",
        );
        assert!(rules_of(&findings).contains(&"NL002"), "{findings:#?}");
        assert!(!rules_of(&findings).contains(&"NL005"));
    }

    #[test]
    fn isa_dispatch_in_parallel_rung_fires_nl002() {
        // The width-generic surface is still explicit SIMD: a
        // naive-plus-threads rung may not route through the dispatcher.
        let findings = analyze(
            "// ninja-lint: variant(parallel)\nfn run_parallel(&self, pool: &ThreadPool) {\n    par_chunks_mut(pool, &mut self.out, 64, |_, chunk| {\n        dispatch(DotRange { out: chunk });\n    });\n}\n",
        );
        assert!(rules_of(&findings).contains(&"NL002"), "{findings:#?}");
    }

    #[test]
    fn isa_generic_body_satisfies_nl003() {
        // A ninja tier written once against `Isa` — no fixed-width type
        // anywhere — is hand-SIMD evidence, not an NL003 violation.
        let findings = analyze(
            "// ninja-lint: variant(ninja)\nfn run_ninja(&self) {\n    dispatch(DotRange { out: &mut self.out });\n}\n// ninja-lint: effort(ninja)\nfn dot_range<I: Isa>(xs: &[f32], out: &mut [f32]) {\n    let lanes = <I::F32 as SimdF32>::LANES;\n    let v = I::F32::load(&xs[..lanes]);\n    v.store(out);\n}\n",
        );
        assert!(!rules_of(&findings).contains(&"NL003"), "{findings:#?}");
    }

    #[test]
    fn allow_waives_a_rule_with_reason() {
        let findings = analyze(
            "// ninja-lint: variant(naive)\n// ninja-lint: allow(NL001, \"measures pool overhead itself\")\nfn run_naive(pool: &ThreadPool) {\n    pool.parallel_for(0..1, 1, |_| {});\n}\n",
        );
        assert!(!rules_of(&findings).contains(&"NL001"), "{findings:#?}");
    }

    #[test]
    fn missing_safety_comment_fires_and_adjacent_passes() {
        let bad = analyze("fn f(p: *const u32) -> u32 {\n    unsafe { *p }\n}\n");
        assert_eq!(rules_of(&bad), ["NL005"]);
        assert_eq!(bad[0].line, 2);

        let good = analyze(
            "fn f(p: *const u32) -> u32 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n",
        );
        assert!(good.is_empty(), "{good:#?}");
    }

    #[test]
    fn safety_comment_reaches_through_attributes_and_grouped_impls() {
        let good = analyze(
            "struct P(*mut u8);\n// SAFETY: P is only read behind a lock.\nunsafe impl Send for P {}\nunsafe impl Sync for P {}\n",
        );
        assert!(good.is_empty(), "{good:#?}");

        let cfg = analyze(
            "fn f() {\n    // SAFETY: sse2 is x86_64 baseline.\n    #[cfg(target_arch = \"x86_64\")]\n    unsafe { intrinsics() };\n}\n",
        );
        assert!(cfg.is_empty(), "{cfg:#?}");
    }

    #[test]
    fn safety_doc_section_counts_for_unsafe_fn() {
        let good = analyze(
            "/// Dereferences p.\n///\n/// # Safety\n/// p must be valid.\nunsafe fn f(p: *const u32) -> u32 {\n    // SAFETY: per this fn's contract.\n    unsafe { *p }\n}\n",
        );
        assert!(good.is_empty(), "{good:#?}");
    }

    #[test]
    fn unsafe_fn_pointer_type_is_not_an_unsafe_site() {
        let findings = analyze("struct J {\n    exec: unsafe fn(*const ()),\n}\n");
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn unsafe_in_string_or_comment_is_ignored() {
        let findings = analyze("fn f() {\n    let s = \"unsafe\"; // unsafe in prose\n}\n");
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn effort_drift_fires_on_order_of_magnitude_gap() {
        // A one-line parallel body declaring 500 lines of effort.
        let src = CLEAN.replace("effort_loc: 4,", "effort_loc: 500,");
        let findings = analyze(&src);
        assert_eq!(rules_of(&findings), ["NL004"], "{findings:#?}");
        assert!(findings[0].message.contains("500"));
    }

    #[test]
    fn coverage_fires_per_missing_rung() {
        let findings = analyze(
            "// ninja-lint: variant(naive)\nfn run_naive() {}\nfn spec() { let effort_loc = 0; }\nfn info() -> u32 { VariantInfo { variant: Variant::Naive, effort_loc: 0 }.effort_loc }\n",
        );
        let nl006 = findings.iter().filter(|f| f.rule.id() == "NL006").count();
        assert_eq!(nl006, 4, "{findings:#?}");
    }

    #[test]
    fn skip_file_disables_ladder_rules_but_not_safety() {
        let findings = analyze(
            "// ninja-lint: skip-file(\"fault injection kernel\")\nfn info() -> u32 { VariantInfo { variant: Variant::Naive, effort_loc: 0 }.effort_loc }\nfn f(p: *const u32) -> u32 { unsafe { *p } }\n",
        );
        assert_eq!(rules_of(&findings), ["NL005"], "{findings:#?}");
    }

    #[test]
    fn malformed_marker_fires() {
        let findings = analyze("// ninja-lint: variant(bogus)\nfn f() {}\n");
        assert_eq!(rules_of(&findings), ["NL007"]);
    }

    #[test]
    fn relaxed_ordering_fires_and_justified_passes() {
        let bad = analyze("fn f(c: &AtomicU64) -> u64 {\n    c.load(Ordering::Relaxed)\n}\n");
        assert_eq!(rules_of(&bad), ["NL010"], "{bad:#?}");
        assert_eq!(bad[0].line, 2);

        let good = analyze(
            "fn f(c: &AtomicU64) -> u64 {\n    // ORDERING: monotonic counter; readers tolerate staleness.\n    c.load(Ordering::Relaxed)\n}\n",
        );
        assert!(good.is_empty(), "{good:#?}");
    }

    #[test]
    fn grouped_relaxed_sites_share_one_justification() {
        let good = analyze(
            "fn f(a: &AtomicU64, b: &AtomicU64) -> u64 {\n    // ORDERING: both counters are independent statistics.\n    a.load(Ordering::Relaxed)\n        + b.load(Ordering::Relaxed)\n}\n",
        );
        assert!(good.is_empty(), "{good:#?}");
    }

    #[test]
    fn justification_reaches_through_a_rustfmt_split_chain() {
        // rustfmt breaks long chains so the `Relaxed` token lands lines
        // below the comment, with only continuation lines between.
        let good = analyze(
            "fn f(s: &Shared) {\n    // ORDERING: monotonic stats counter.\n    s.counters.lanes[0]\n        .tasks\n        .fetch_add(1, Ordering::Relaxed);\n}\n",
        );
        assert!(good.is_empty(), "{good:#?}");

        // A completed statement (terminated line) still blocks the walk.
        let bad = analyze(
            "fn f(s: &Shared) {\n    // ORDERING: stats counter.\n    let x = other();\n    s.tasks.fetch_add(1, Ordering::Relaxed);\n}\n",
        );
        assert_eq!(rules_of(&bad), ["NL010"], "{bad:#?}");
    }

    #[test]
    fn static_mut_declaration_needs_ordering_but_lifetime_does_not() {
        let bad = analyze("static mut COUNTER: u64 = 0;\n");
        assert_eq!(rules_of(&bad), ["NL010"], "{bad:#?}");

        // `&'static mut` is a type, not a declaration; the lexer drops
        // the lifetime quote so this must not match.
        let ty = analyze("fn f(x: &'static mut u64) -> u64 { *x }\n");
        assert!(ty.is_empty(), "{ty:#?}");

        let good = analyze(
            "// ORDERING: written once before any thread spawns.\n// SAFETY: see above.\nstatic mut SEED: u64 = 0;\n",
        );
        assert!(good.is_empty(), "{good:#?}");
    }

    #[test]
    fn other_orderings_are_exempt_from_nl010() {
        let findings = analyze(
            "fn f(c: &AtomicU64) -> u64 {\n    c.fetch_add(1, Ordering::AcqRel);\n    c.load(Ordering::Acquire) + c.load(Ordering::SeqCst)\n}\n",
        );
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn allow_nl010_waives_a_span() {
        let findings = analyze(
            "// ninja-lint: allow(NL010, \"benchmark deliberately races\")\nfn f(c: &AtomicU64) -> u64 {\n    c.load(Ordering::Relaxed)\n}\n",
        );
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn relaxed_in_comment_or_string_is_exempt() {
        let findings = analyze(
            "fn f() {\n    // Ordering::Relaxed would be wrong here.\n    let s = \"Ordering::Relaxed\";\n}\n",
        );
        assert!(findings.is_empty(), "{findings:#?}");
    }
}
