//! `// ninja-lint:` marker comments.
//!
//! Markers are how kernel sources tell the lint which rung of the
//! [`Variant` ladder](https://example.com) a function implements:
//!
//! ```text
//! // ninja-lint: variant(naive)             exclusive dispatch entry point
//! // ninja-lint: variant(simd, algorithmic) entry shared by two rungs
//! // ninja-lint: effort(ninja)              helper attributed for effort
//! //                                        accounting only (purity rules
//! //                                        use the *least* upper bound of
//! //                                        its rungs)
//! // ninja-lint: allow(NL003, "reason")     waive one rule on the next fn
//! // ninja-lint: skip-file("reason")        exempt a file from the ladder
//! //                                        rules (the SAFETY audit still
//! //                                        applies)
//! ```
//!
//! `variant(...)`/`effort(...)`/`allow(...)` attach to the next `fn`
//! item; `skip-file` applies to the whole file.

use crate::lexer::Comment;
use std::fmt;

/// One rung of the optimization ladder, mirrored from
/// `ninja_kernels::Variant` (the lint crate is dependency-free on purpose:
/// it must be able to lint a tree that does not compile).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rung {
    /// Serial scalar code.
    Naive,
    /// Threads only.
    Parallel,
    /// Compiler-vectorizable restructuring, serial.
    Simd,
    /// Restructuring + threads (the low-effort endpoint).
    Algorithmic,
    /// Hand intrinsics + threads + tuning.
    Ninja,
}

impl Rung {
    /// Every rung in ladder order.
    pub const ALL: [Rung; 5] = [
        Rung::Naive,
        Rung::Parallel,
        Rung::Simd,
        Rung::Algorithmic,
        Rung::Ninja,
    ];

    /// Lowercase label as used in markers and `Variant::name`.
    pub fn name(self) -> &'static str {
        match self {
            Rung::Naive => "naive",
            Rung::Parallel => "parallel",
            Rung::Simd => "simd",
            Rung::Algorithmic => "algorithmic",
            Rung::Ninja => "ninja",
        }
    }

    /// Parses a lowercase rung label.
    pub fn from_name(s: &str) -> Option<Rung> {
        Rung::ALL.into_iter().find(|r| r.name() == s)
    }

    /// Whether this rung's taxonomy forbids any thread-runtime reference.
    pub fn bans_threads(self) -> bool {
        matches!(self, Rung::Naive | Rung::Simd)
    }

    /// Whether this rung's taxonomy forbids explicit SIMD types and
    /// `unsafe` (the "traditional programming" rungs).
    pub fn bans_explicit_simd(self) -> bool {
        matches!(self, Rung::Naive | Rung::Parallel)
    }
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A parsed marker, with the line it appeared on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Marker {
    /// `variant(rungs...)`: the next fn is a dispatch entry for these rungs.
    Variant(Vec<Rung>),
    /// `effort(rungs...)`: the next fn counts toward these rungs' effort.
    Effort(Vec<Rung>),
    /// `allow(RULE, "reason")`: waive one rule on the next fn.
    Allow(String, String),
    /// `skip-file("reason")`: exempt the file from ladder rules.
    SkipFile(String),
}

/// A marker plus its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlacedMarker {
    /// 1-based line of the marker comment.
    pub line: u32,
    /// The parsed marker.
    pub marker: Marker,
}

/// A marker comment that failed to parse (reported as rule NL007 so typos
/// cannot silently disable enforcement).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MarkerError {
    /// 1-based line of the bad marker.
    pub line: u32,
    /// What was wrong with it.
    pub message: String,
}

/// Extracts all markers from a file's comments.
pub fn parse_markers(comments: &[Comment]) -> (Vec<PlacedMarker>, Vec<MarkerError>) {
    let mut markers = Vec::new();
    let mut errors = Vec::new();
    for c in comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("ninja-lint:") else {
            // A comment that *starts* with the tool name but lacks the colon
            // is a botched marker; prose that merely mentions the tool is not.
            if text.starts_with("ninja-lint") {
                errors.push(MarkerError {
                    line: c.line,
                    message: format!(
                        "comment starts with ninja-lint but is not a `ninja-lint: <directive>` marker: `{text}`"
                    ),
                });
            }
            continue;
        };
        match parse_directive(rest.trim()) {
            Ok(marker) => markers.push(PlacedMarker {
                line: c.line,
                marker,
            }),
            Err(message) => errors.push(MarkerError {
                line: c.line,
                message,
            }),
        }
    }
    (markers, errors)
}

/// Parses the directive text after `ninja-lint:`.
fn parse_directive(s: &str) -> Result<Marker, String> {
    let (head, args) = split_call(s)?;
    match head {
        "variant" => Ok(Marker::Variant(parse_rungs(args)?)),
        "effort" => Ok(Marker::Effort(parse_rungs(args)?)),
        "allow" => {
            let (rule, reason) = args
                .split_once(',')
                .ok_or_else(|| "allow needs `allow(RULE, \"reason\")`".to_string())?;
            let rule = rule.trim();
            if !rule.starts_with("NL") || rule.len() != 5 {
                return Err(format!("`{rule}` is not a rule id (expected NLnnn)"));
            }
            let reason = unquote(reason.trim())?;
            if reason.is_empty() {
                return Err("allow needs a non-empty reason string".into());
            }
            Ok(Marker::Allow(rule.to_string(), reason))
        }
        "skip-file" => {
            let reason = unquote(args.trim())?;
            if reason.is_empty() {
                return Err("skip-file needs a non-empty reason string".into());
            }
            Ok(Marker::SkipFile(reason))
        }
        other => Err(format!(
            "unknown directive `{other}` (expected variant/effort/allow/skip-file)"
        )),
    }
}

/// Splits `name(args)` into `("name", "args")`.
fn split_call(s: &str) -> Result<(&str, &str), String> {
    let open = s
        .find('(')
        .ok_or_else(|| format!("directive `{s}` is missing `(...)`"))?;
    let close = s
        .rfind(')')
        .ok_or_else(|| format!("directive `{s}` is missing closing `)`"))?;
    if close < open || !s[close + 1..].trim().is_empty() {
        return Err(format!("malformed directive `{s}`"));
    }
    Ok((s[..open].trim(), &s[open + 1..close]))
}

/// Parses a comma-separated rung list.
fn parse_rungs(args: &str) -> Result<Vec<Rung>, String> {
    let mut rungs = Vec::new();
    for part in args.split(',') {
        let part = part.trim();
        let rung = Rung::from_name(part).ok_or_else(|| {
            format!("`{part}` is not a rung (naive/parallel/simd/algorithmic/ninja)")
        })?;
        if rungs.contains(&rung) {
            return Err(format!("rung `{part}` listed twice"));
        }
        rungs.push(rung);
    }
    if rungs.is_empty() {
        Err("empty rung list".into())
    } else {
        Ok(rungs)
    }
}

/// Strips matching double quotes.
fn unquote(s: &str) -> Result<String, String> {
    let s = s
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("expected a double-quoted string, got `{s}`"))?;
    Ok(s.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(line: u32, text: &str) -> Comment {
        Comment {
            line,
            text: text.to_string(),
        }
    }

    #[test]
    fn parses_variant_and_effort_lists() {
        let (m, e) = parse_markers(&[
            comment(3, " ninja-lint: variant(naive)"),
            comment(9, " ninja-lint: effort(simd, algorithmic, ninja)"),
        ]);
        assert!(e.is_empty());
        assert_eq!(m[0].marker, Marker::Variant(vec![Rung::Naive]));
        assert_eq!(m[0].line, 3);
        assert_eq!(
            m[1].marker,
            Marker::Effort(vec![Rung::Simd, Rung::Algorithmic, Rung::Ninja])
        );
    }

    #[test]
    fn parses_allow_and_skip_file() {
        let (m, e) = parse_markers(&[
            comment(1, " ninja-lint: allow(NL003, \"scalar ninja by design\")"),
            comment(2, " ninja-lint: skip-file(\"fault-injection kernel\")"),
        ]);
        assert!(e.is_empty(), "{e:?}");
        assert_eq!(
            m[0].marker,
            Marker::Allow("NL003".into(), "scalar ninja by design".into())
        );
        assert_eq!(
            m[1].marker,
            Marker::SkipFile("fault-injection kernel".into())
        );
    }

    #[test]
    fn rejects_typos_loudly() {
        let (_, e) = parse_markers(&[
            comment(1, " ninja-lint: varian(naive)"),
            comment(2, " ninja-lint: variant(nave)"),
            comment(3, " ninja-lint: variant()"),
            comment(4, " ninja-lint: allow(NL1, \"x\")"),
            comment(5, " ninja-lint marker without colon"),
            comment(6, " ninja-lint: variant(naive, naive)"),
        ]);
        assert_eq!(e.len(), 6);
        assert!(e[0].message.contains("unknown directive"));
        assert!(e[1].message.contains("not a rung"));
        assert!(e[4].message.contains("not a"));
    }

    #[test]
    fn ordinary_comments_are_ignored() {
        let (m, e) = parse_markers(&[comment(1, " plain prose about vectors")]);
        assert!(m.is_empty() && e.is_empty());
    }

    #[test]
    fn rung_bans_match_the_paper_taxonomy() {
        assert!(Rung::Naive.bans_threads() && Rung::Simd.bans_threads());
        assert!(!Rung::Parallel.bans_threads() && !Rung::Ninja.bans_threads());
        assert!(Rung::Naive.bans_explicit_simd() && Rung::Parallel.bans_explicit_simd());
        assert!(!Rung::Simd.bans_explicit_simd() && !Rung::Algorithmic.bans_explicit_simd());
        for r in Rung::ALL {
            assert_eq!(Rung::from_name(r.name()), Some(r));
            assert_eq!(format!("{r}"), r.name());
        }
    }
}
